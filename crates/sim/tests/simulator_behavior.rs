//! Behavioral validation of the packet simulator: line-rate sanity,
//! congestion behavior, transport correctness, and the paper's headline
//! routing effects at small scale — all through the `RoutingScheme`-based
//! API (direct `Simulator` construction and the `Scenario` builder).

use fatpaths_core::ecmp::DistanceMatrix;
use fatpaths_core::scheme::MinimalScheme;
use fatpaths_net::topo::{slimfly::slim_fly, star::star};
use fatpaths_sim::{
    LoadBalancing, Scenario, SchemeSpec, SimConfig, Simulator, TcpVariant, Transport,
};
use fatpaths_workloads::arrivals::FlowSpec;
use fatpaths_workloads::MIB;

fn ndp_cfg(lb: LoadBalancing) -> SimConfig {
    SimConfig {
        transport: Transport::ndp_default(),
        lb,
        ..SimConfig::default()
    }
}

fn tcp_cfg(variant: TcpVariant, lb: LoadBalancing) -> SimConfig {
    SimConfig {
        transport: Transport::tcp_default(variant),
        lb,
        ..SimConfig::default()
    }
}

/// 10 Gb/s line rate in MiB/s.
const LINE_MIB_S: f64 = 10e9 / 8.0 / (1024.0 * 1024.0);

#[test]
fn single_ndp_flow_reaches_near_line_rate() {
    let topo = star(4);
    let dm = DistanceMatrix::build(&topo.graph);
    let ms = MinimalScheme::new(&topo.graph, &dm);
    let mut sim = Simulator::new(&topo, &ms, ndp_cfg(LoadBalancing::EcmpFlow));
    sim.add_flows(&[FlowSpec {
        src: 0,
        dst: 1,
        size: MIB,
        start: 0,
    }]);
    let res = sim.run();
    assert_eq!(res.completion_rate(), 1.0);
    let tp = res.flows[0].throughput_mib_s().unwrap();
    assert!(tp > 0.7 * LINE_MIB_S, "throughput {tp} MiB/s too low");
    assert!(tp <= LINE_MIB_S * 1.01, "throughput {tp} exceeds line rate");
    assert_eq!(res.trims, 0);
}

#[test]
fn single_tcp_flow_completes_slower_than_ndp() {
    let topo = star(4);
    let flows = [FlowSpec {
        src: 0,
        dst: 1,
        size: 256 * 1024,
        start: 0,
    }];
    let rn = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .transport(Transport::ndp_default())
        .workload(&flows)
        .run();
    let rt = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .transport(Transport::tcp_default(TcpVariant::Reno))
        .workload(&flows)
        .run();
    assert_eq!(rt.completion_rate(), 1.0);
    // Slow start costs TCP several RTTs that NDP's line-rate start avoids.
    let f_ndp = rn.flows[0].fct_s().unwrap();
    let f_tcp = rt.flows[0].fct_s().unwrap();
    assert!(f_tcp > f_ndp, "TCP {f_tcp}s not slower than NDP {f_ndp}s");
}

#[test]
fn ndp_incast_trims_but_completes_at_line_rate_aggregate() {
    // 8 senders → 1 receiver on a crossbar: the receiver downlink is the
    // bottleneck; trimming keeps it lossless-for-metadata and fully used.
    let topo = star(16);
    let flows: Vec<FlowSpec> = (1..=8)
        .map(|s| FlowSpec {
            src: s,
            dst: 0,
            size: MIB,
            start: 0,
        })
        .collect();
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .workload(&flows)
        .run();
    assert_eq!(res.completion_rate(), 1.0, "incast must complete");
    assert!(res.trims > 0, "incast should trim payloads");
    // Aggregate goodput ≈ line rate: total bytes / makespan.
    let total: u64 = res.flows.iter().map(|f| f.size).sum();
    let makespan_s = res.makespan().unwrap() as f64 / 1e12;
    let agg = total as f64 / (1024.0 * 1024.0) / makespan_s;
    assert!(agg > 0.75 * LINE_MIB_S, "aggregate {agg} MiB/s");
}

#[test]
fn tcp_incast_drops_but_completes() {
    let topo = star(16);
    let flows: Vec<FlowSpec> = (1..=12)
        .map(|s| FlowSpec {
            src: s,
            dst: 0,
            size: 512 * 1024,
            start: 0,
        })
        .collect();
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .transport(Transport::tcp_default(TcpVariant::Reno))
        .workload(&flows)
        .run();
    assert_eq!(res.completion_rate(), 1.0);
    assert!(
        res.drops > 0,
        "12-way TCP incast should overflow 100-pkt queues"
    );
}

#[test]
fn dctcp_keeps_queues_lower_than_reno() {
    // With ECN at 33 packets, DCTCP should lose far fewer packets than
    // Reno under the same incast.
    let topo = star(16);
    let run = |variant| {
        let flows: Vec<FlowSpec> = (1..=12)
            .map(|s| FlowSpec {
                src: s,
                dst: 0,
                size: 512 * 1024,
                start: 0,
            })
            .collect();
        Scenario::on(&topo)
            .scheme(SchemeSpec::Minimal)
            .transport(Transport::tcp_default(variant))
            .workload(&flows)
            .run()
    };
    let reno = run(TcpVariant::Reno);
    let dctcp = run(TcpVariant::Dctcp);
    assert_eq!(dctcp.completion_rate(), 1.0);
    assert!(
        dctcp.drops < reno.drops,
        "DCTCP drops {} not below Reno {}",
        dctcp.drops,
        reno.drops
    );
}

/// Adversarial aligned traffic on Slim Fly: all p endpoints of a router
/// pair collide on the same almost-unique shortest path (§VII-B2).
fn sf_adversarial_flows(topo: &fatpaths_net::Topology) -> Vec<FlowSpec> {
    let p = topo.concentration[0] as u64;
    let n = topo.num_endpoints() as u64;
    let offset = p * (topo.num_routers() as u64 / 2 + 1);
    (0..n)
        .map(|s| FlowSpec {
            src: s as u32,
            dst: ((s + offset) % n) as u32,
            size: 256 * 1024,
            start: 0,
        })
        .collect()
}

#[test]
fn fatpaths_beats_ecmp_on_slim_fly_adversarial() {
    // The paper's headline (Figs. 11/14): non-minimal multipathing resolves
    // SF's single-shortest-path collisions; ECMP cannot.
    let topo = slim_fly(5, 4).unwrap();
    let flows = sf_adversarial_flows(&topo);
    let r_ecmp = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .workload(&flows)
        .run();
    let r_fp = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 9,
            rho: 0.6,
        })
        .workload(&flows)
        .seed(1)
        .run();
    assert_eq!(r_ecmp.completion_rate(), 1.0);
    assert_eq!(r_fp.completion_rate(), 1.0);
    let mk_ecmp = r_ecmp.makespan().unwrap();
    let mk_fp = r_fp.makespan().unwrap();
    assert!(
        (mk_fp as f64) < 0.9 * mk_ecmp as f64,
        "FatPaths makespan {mk_fp} not clearly below ECMP {mk_ecmp}"
    );
}

#[test]
fn letflow_between_ecmp_and_fatpaths_on_adversarial_sf() {
    // LetFlow re-picks among *minimal* paths only — on SF there is usually
    // just one, so it cannot beat FatPaths (§VII-C: "both are ineffective
    // on SF and DF which have little minimal-path diversity").
    let topo = slim_fly(5, 4).unwrap();
    let flows = sf_adversarial_flows(&topo);
    let r_lf = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .lb(LoadBalancing::LetFlow)
        .workload(&flows)
        .run();
    let r_fp = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 9,
            rho: 0.6,
        })
        .workload(&flows)
        .seed(1)
        .run();
    assert!(r_fp.makespan().unwrap() < r_lf.makespan().unwrap());
}

#[test]
fn runs_are_deterministic() {
    let topo = slim_fly(5, 2).unwrap();
    let flows: Vec<FlowSpec> = (0..40u32)
        .map(|i| FlowSpec {
            src: i,
            dst: (i + 37) % 100,
            size: 128 * 1024,
            start: (i as u64) * 1000,
        })
        .collect();
    let run = || {
        Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .workload(&flows)
            .seed(1)
            .run()
    };
    let a = run();
    let b = run();
    let fa: Vec<_> = a.flows.iter().map(|f| f.finish).collect();
    let fb: Vec<_> = b.flows.iter().map(|f| f.finish).collect();
    assert_eq!(fa, fb);
}

#[test]
fn minimal_layer_set_equals_single_path_routing() {
    // FatPaths with only layer 0 must route like plain minimal routing.
    let topo = slim_fly(5, 2).unwrap();
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredMinimal)
        .workload(&[FlowSpec {
            src: 0,
            dst: 55,
            size: MIB,
            start: 0,
        }])
        .run();
    assert_eq!(res.completion_rate(), 1.0);
    let tp = res.flows[0].throughput_mib_s().unwrap();
    assert!(tp > 0.6 * LINE_MIB_S, "{tp}");
}

#[test]
fn horizon_cuts_off_unfinished_flows() {
    let topo = star(4);
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .horizon(10_000_000) // 10 µs
        .workload(&[FlowSpec {
            src: 0,
            dst: 1,
            size: 64 * MIB,
            start: 0,
        }])
        .run();
    assert_eq!(res.completion_rate(), 0.0);
    assert!(res.flows[0].finish.is_none());
}

#[test]
fn tcp_ecn_reno_reacts_before_loss() {
    let topo = star(8);
    let dm = DistanceMatrix::build(&topo.graph);
    let ms = MinimalScheme::new(&topo.graph, &dm);
    let run = |variant| {
        let mut sim = Simulator::new(&topo, &ms, tcp_cfg(variant, LoadBalancing::EcmpFlow));
        let flows: Vec<FlowSpec> = (1..=6)
            .map(|s| FlowSpec {
                src: s,
                dst: 0,
                size: MIB,
                start: 0,
            })
            .collect();
        sim.add_flows(&flows);
        sim.run()
    };
    let reno = run(TcpVariant::Reno);
    let ecn = run(TcpVariant::EcnReno);
    assert_eq!(ecn.completion_rate(), 1.0);
    assert!(ecn.drops <= reno.drops);
}
