//! Offline shim for the `rand` crate: a deterministic xoshiro256++ PRNG
//! behind the subset of the rand 0.9 API this workspace uses
//! (`StdRng::seed_from_u64`, `random`, `random_range`, `random_bool`,
//! `shuffle`). Values differ from the real `rand` streams; everything in
//! this repository only relies on per-seed determinism and uniformity.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled (`rng.random_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform value of `T` (`u32`/`u64`/`usize`/`bool`/`f64` in `[0,1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension alias kept for source compatibility with `use rand::RngExt`.
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice helpers (`rand`'s `SliceRandom` subset).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly random element (`None` if empty).
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64 — the
    /// shim's stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, RngExt, SeedableRng, SliceRandom};
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(5..=7u32);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
