//! Acceptance pin for the adaptive flowlet sweep: on every topology of
//! the acceptance pair at least one congestion-dominated cell
//! (heavy-hitter or incast, either routing) must show adaptive on-time
//! goodput at or above its oblivious twin, and the adaptive data path
//! must demonstrably engage — some cell's packet-visible counters
//! (trims, FCT) must differ from the oblivious run, proving boundary
//! decisions actually fired rather than the sweep comparing a no-op
//! against itself. The grid is deterministic at any thread and shard
//! count (see `parallel_parity` / `shard_parity`), so these pins are
//! stable across machines.

use fatpaths_experiments::adaptive::adaptive_matrix_on;
use fatpaths_net::topo::slimfly::slim_fly;

/// One parsed CSV row of the adaptive sweep artifact.
struct Row {
    topology: String,
    matrix: String,
    routing: String,
    boundary: String,
    goodput_gbps: f64,
    trims: u64,
    fct_mean_ms: f64,
    fct_p99_ms: f64,
}

fn parse(csv: &str) -> Vec<Row> {
    csv.lines()
        .skip(1)
        .map(|line| {
            // The scheme label (column 5) may itself contain commas —
            // e.g. `layered(n=4,rho=0.6)` — so split the four leading
            // coordinate fields from the front and the eight numeric
            // fields from the back, leaving the label in the middle.
            let head: Vec<&str> = line.splitn(5, ',').collect();
            let tail: Vec<&str> = line.rsplit(',').take(8).collect();
            assert_eq!(head.len(), 5, "malformed row: {line}");
            assert_eq!(tail.len(), 8, "malformed row: {line}");
            Row {
                topology: head[0].into(),
                matrix: head[1].into(),
                routing: head[2].into(),
                boundary: head[3].into(),
                // `tail` is reversed: fct_p99, fct_mean, drops, trims,
                // goodput, on_time, completed, flows.
                goodput_gbps: tail[4].parse().unwrap(),
                trims: tail[3].parse().unwrap(),
                fct_mean_ms: tail[1].parse().unwrap(),
                fct_p99_ms: tail[0].parse().unwrap(),
            }
        })
        .collect()
}

#[test]
fn adaptive_meets_oblivious_on_a_congested_cell_per_topology() {
    rayon::ensure_pool(4);
    let (csv, _summary) = adaptive_matrix_on(
        vec![
            slim_fly(5, 2).unwrap(),
            fatpaths_net::topo::fattree::fat_tree(4, 1),
        ],
        4,
        0.6,
    );
    let rows = parse(&csv);
    for topo in ["SF", "FT3"] {
        let mut met = false;
        let mut engaged = false;
        for obl in rows
            .iter()
            .filter(|r| r.topology == topo && r.boundary == "oblivious")
        {
            let ada = rows
                .iter()
                .find(|r| {
                    r.topology == topo
                        && r.matrix == obl.matrix
                        && r.routing == obl.routing
                        && r.boundary == "adaptive"
                })
                .unwrap_or_else(|| {
                    panic!(
                        "missing adaptive twin for {topo}/{}/{}",
                        obl.matrix, obl.routing
                    )
                });
            // The acceptance cell: a skewed or incast matrix where
            // queue-depth steering holds or beats the oblivious draw.
            if obl.matrix != "worstcase" && ada.goodput_gbps >= obl.goodput_gbps {
                met = true;
            }
            if ada.trims != obl.trims
                || ada.fct_mean_ms != obl.fct_mean_ms
                || ada.fct_p99_ms != obl.fct_p99_ms
            {
                engaged = true;
            }
        }
        assert!(
            met,
            "{topo}: no heavy-hitter/incast cell with adaptive goodput >= oblivious"
        );
        assert!(
            engaged,
            "{topo}: adaptive runs are byte-identical to oblivious — boundary decisions never fired"
        );
    }
}
