//! Simulator configuration (§VII-A6 parameters).

use crate::engine::TimePs;
use fatpaths_telemetry::TelemetryConfig;

/// Transport family. Constants default to §VII-A6: NDP uses 9 KB jumbo
/// frames, an 8-packet window and 8-packet queues; TCP uses 100-packet
/// tail-drop queues with ECN marking at 33, fast retransmit at 3 dup-acks,
/// a 200 µs minimum RTO.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Transport {
    /// The FatPaths "purified" receiver-driven transport (NDP-derived):
    /// line-rate first window, payload trimming, priority queues for
    /// trimmed headers and retransmissions, paced pulls (§III-C).
    Ndp {
        /// Data-queue limit per router port, in packets.
        queue_pkts: u32,
        /// Initial window (packets pushed at line rate).
        initial_window: u32,
        /// Payload bytes per packet (jumbo frame).
        mtu_payload: u32,
    },
    /// TCP family with per-ACK clocking (§VII-C / §VIII-A).
    Tcp {
        /// Congestion-control variant.
        variant: TcpVariant,
        /// Maximum segment size (payload bytes).
        mss: u32,
        /// Tail-drop queue limit per port, in packets.
        queue_pkts: u32,
        /// ECN marking threshold, in packets.
        ecn_threshold: u32,
        /// Lower bound on the retransmission timeout.
        min_rto: TimePs,
    },
}

impl Transport {
    /// Paper-default NDP.
    pub fn ndp_default() -> Transport {
        Transport::Ndp {
            queue_pkts: 8,
            initial_window: 8,
            mtu_payload: 9000,
        }
    }

    /// Paper-default TCP of the given variant.
    pub fn tcp_default(variant: TcpVariant) -> Transport {
        Transport::Tcp {
            variant,
            mss: 1460,
            queue_pkts: 100,
            ecn_threshold: 33,
            min_rto: 200_000_000, // 200 µs
        }
    }

    /// Payload bytes per full packet.
    pub fn payload(&self) -> u32 {
        match *self {
            Transport::Ndp { mtu_payload, .. } => mtu_payload,
            Transport::Tcp { mss, .. } => mss,
        }
    }
}

/// TCP congestion-control variants (§VIII-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpVariant {
    /// Classic Reno (loss-driven).
    Reno,
    /// Reno + ECN echo (RFC 3168): window halves on ECE, once per window.
    EcnReno,
    /// DCTCP: fractional window reduction by the marked fraction α.
    Dctcp,
}

/// Load-balancing / path-selection scheme (§VII-A3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadBalancing {
    /// Flow-hash ECMP over minimal paths (static; the lower-bound
    /// baseline).
    EcmpFlow,
    /// Per-packet spraying over minimal paths (NDP's oblivious LB).
    PacketSpray,
    /// LetFlow: per-flowlet random re-pick over minimal paths.
    LetFlow,
    /// FatPaths: per-flowlet layer selection at the endpoint + NDP
    /// trim-feedback layer change (§V-F).
    FatPathsLayers,
}

/// Flowlet-boundary path selection policy: what a sender consults when
/// a flowlet boundary (gap, RTO, or TCP window reduction) re-picks the
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// Hash-based re-pick, oblivious to congestion (the paper's default
    /// data plane): a new layer (FatPaths) or nonce (LetFlow) is drawn
    /// uniformly from the flowlet counter.
    Oblivious,
    /// CONGA/LetFlow-style local congestion awareness: the sender reads
    /// the **live queue depths of its attachment router's output
    /// ports** — shard-local by construction, endpoints live on their
    /// router's shard — and steers the flowlet to the least-loaded
    /// candidate (layer for FatPaths-family schemes, minimal-path port
    /// for LetFlow/ECMP). Ties break by a deterministic hash of
    /// `(flow, flowlet counter)`, so results stay byte-identical at any
    /// shard and thread count.
    QueueDepth,
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Link rate in Gbit/s (all links homogeneous, §II-A).
    pub link_gbps: f64,
    /// Per-link one-way latency (propagation + the paper's fixed 1 µs).
    pub link_latency: TimePs,
    /// Transport family and constants.
    pub transport: Transport,
    /// Load-balancing scheme.
    pub lb: LoadBalancing,
    /// Flowlet-boundary path selection policy (congestion-oblivious
    /// hashing vs. local queue-depth awareness).
    pub adaptive: AdaptiveMode,
    /// Flowlet gap (§VII-A6: 50 µs).
    pub flowlet_gap: TimePs,
    /// RNG seed (full determinism).
    pub seed: u64,
    /// Stop simulating at this time even if flows remain (0 = run to
    /// completion).
    pub horizon: TimePs,
    /// Fault detection delay: how long after a link-state change the
    /// routing repairs itself (the control plane's reaction time).
    /// `None` (the default) means failures are never detected — routing
    /// stays as built and recovery is purely end-to-end (§V-G), which is
    /// the FatPaths story: preprovisioned layers mask failures without
    /// any control-plane help.
    pub detection_delay: Option<TimePs>,
    /// Mid-flow host-death semantics: when `Some(k)`, a flow whose
    /// source or destination endpoint is dead (its router is down) at
    /// retransmission-timeout time aborts after burning `k` such RTOs —
    /// the connection reset a real stack would surface. `None` (the
    /// default) preserves the old behavior: the flow stalls and, if the
    /// router revives before the horizon, the *same* transfer finishes,
    /// indistinguishable from an undisturbed one. The knob separates
    /// "host came back" from "transfer would have restarted" in
    /// long-churn studies (see `FlowRecord::aborted`).
    pub abort_on_host_death: Option<u32>,
    /// Number of event-loop shards (intra-simulation parallelism):
    /// routers and their endpoints are partitioned into this many
    /// regions, each stepped on its own event queue in conservative-
    /// lookahead windows. `0` (the default) resolves from the
    /// `FATPATHS_SHARDS` environment variable, falling back to 1.
    /// Results are bit-identical for every value — sharding trades
    /// memory and window overhead for wall-clock only.
    pub shards: u32,
    /// In-simulation telemetry (time-series probes + flow spans; see
    /// `fatpaths-telemetry`). Disabled by default — the hot loop then
    /// pays exactly one `Option` check per hook and allocates nothing.
    /// Exported traces are byte-identical across thread counts for a
    /// fixed shard count, same contract as the results themselves.
    pub telemetry: TelemetryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_gbps: 10.0,
            link_latency: 1_000_000, // 1 µs
            transport: Transport::ndp_default(),
            lb: LoadBalancing::FatPathsLayers,
            adaptive: AdaptiveMode::Oblivious,
            flowlet_gap: 50_000_000, // 50 µs
            seed: 1,
            horizon: 0,
            detection_delay: None,
            abort_on_host_death: None,
            shards: 0,
            telemetry: TelemetryConfig::disabled(),
        }
    }
}

impl SimConfig {
    /// Serialization time of `bytes` on a link, in ps.
    #[inline]
    pub fn ser_time(&self, bytes: u32) -> TimePs {
        // 8 bits/byte at link_gbps·1e9 bit/s → bytes·8000/gbps ps.
        (bytes as f64 * 8000.0 / self.link_gbps) as TimePs
    }

    /// Sets the number of event-loop shards (see [`SimConfig::shards`]).
    pub fn shards(mut self, k: u32) -> Self {
        self.shards = k;
        self
    }

    /// The shard count actually used: the explicit setting, else the
    /// `FATPATHS_SHARDS` environment variable, else 1.
    pub(crate) fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards as usize;
        }
        std::env::var("FATPATHS_SHARDS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&k| k > 0)
            .unwrap_or(1)
    }
}

/// Wire header bytes added to every packet (Ethernet + IP + transport).
pub const HDR_BYTES: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_10g() {
        let c = SimConfig::default();
        // 9064 B at 10 Gb/s = 7.2512 µs.
        assert_eq!(c.ser_time(9064), 7_251_200);
    }

    #[test]
    fn defaults_match_paper() {
        match Transport::ndp_default() {
            Transport::Ndp {
                queue_pkts,
                initial_window,
                mtu_payload,
            } => {
                assert_eq!((queue_pkts, initial_window, mtu_payload), (8, 8, 9000));
            }
            _ => panic!(),
        }
        match Transport::tcp_default(TcpVariant::Dctcp) {
            Transport::Tcp {
                queue_pkts,
                ecn_threshold,
                min_rto,
                ..
            } => {
                assert_eq!(queue_pkts, 100);
                assert_eq!(ecn_threshold, 33);
                assert_eq!(min_rto, 200_000_000);
            }
            _ => panic!(),
        }
    }
}
