//! Property-based tests for incremental layered-table repair: under
//! randomly sampled link-failure sets, the repaired tables stay
//! loop-free, never forward onto a down link, keep routing *within* a
//! layer whenever the degraded layer still connects the pair, and fall
//! back to layer 0 (or report unreachable) only when they genuinely
//! must.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::fault::{FaultModel, FaultPlan};
use fatpaths_net::graph::{Graph, UNREACHABLE};
use fatpaths_net::topo::slimfly::slim_fly;
use proptest::prelude::*;

/// Simulator-faithful effective lookup: repaired row first, scheme row
/// otherwise. Returns `None` when the entry marks the pair unreachable.
fn effective_port(
    rt: &RoutingTables,
    rep: &RouteRepair,
    layer: u8,
    at: u32,
    dst: u32,
) -> Option<u16> {
    if let Some(e) = rep.lookup(layer, at, dst) {
        return e.as_slice().first().copied();
    }
    let ports = rt.candidate_ports(layer, at, dst);
    ports.as_slice().first().copied()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn repaired_tables_are_loop_free_and_fall_back_only_when_disconnected(
        n_layers in 3usize..6,
        rho_pct in 50u32..80,
        frac_pct in 5u32..25,
        seed in 0u64..100_000,
    ) {
        let (layer_seed, fault_seed) = (seed, seed ^ 0x9E37_79B9);
        let topo = slim_fly(5, 1).unwrap();
        let g = &topo.graph;
        let nr = g.n() as u32;
        let ls = build_random_layers(g, &LayerConfig::new(n_layers, rho_pct as f64 / 100.0, layer_seed));
        let rt = RoutingTables::build(g, &ls);
        let plan = FaultPlan::sample(
            &topo,
            &FaultModel::UniformFraction { fraction: frac_pct as f64 / 100.0 },
            fault_seed,
        );
        let down = DownLinks::from_links(plan.static_failures());
        let rep = rt.repair(g, &down);

        // Same inputs → same repair (sampled keys).
        let rep2 = rt.repair(g, &down);
        prop_assert_eq!(rep.len(), rep2.len());

        // Degraded views: base and per-layer.
        let degraded_base = g.without_edges(down.as_slice());
        let degraded_layers: Vec<Graph> = (0..n_layers)
            .map(|l| {
                let dead: Vec<(u32, u32)> = down
                    .iter()
                    .filter(|&(u, v)| ls.layer(l).has_edge(u, v))
                    .collect();
                ls.layer(l).without_edges(&dead)
            })
            .collect();

        for l in 0..n_layers as u8 {
            for (s, t) in [(0u32, 41u32), (41, 0), (7, 30), (13, 49), (25, 3), (44, 18)] {
                prop_assert!(s < nr && t < nr);
                let base_dist = degraded_base.bfs(s);
                let base_connected = base_dist[t as usize] != UNREACHABLE;
                let layer_connected =
                    degraded_layers[l as usize].bfs(s)[t as usize] != UNREACHABLE;
                // Walk hop by hop through the repaired tables.
                let mut at = s;
                let mut path = vec![s];
                let reached = loop {
                    if at == t {
                        break true;
                    }
                    let Some(p) = effective_port(&rt, &rep, l, at, t) else {
                        break false;
                    };
                    let next = g.neighbor_at(at, p as u32);
                    // Never forward onto a down link.
                    prop_assert!(
                        !down.contains(at, next),
                        "layer {l} {s}->{t}: crossed down link {at}-{next}"
                    );
                    at = next;
                    path.push(at);
                    // Loop-freedom: a repaired walk never needs more than
                    // one visit per router.
                    prop_assert!(
                        path.len() <= g.n() + 1,
                        "layer {l} {s}->{t}: loop {path:?}"
                    );
                };
                // No router repeats.
                let mut q = path.clone();
                q.sort_unstable();
                q.dedup();
                prop_assert_eq!(q.len(), path.len(), "revisit in {:?}", path);
                // Reach iff the degraded base graph connects the pair:
                // unreachable entries only for genuinely disconnected pairs.
                prop_assert_eq!(
                    reached,
                    base_connected,
                    "layer {} {}->{}: reached={} base_connected={}",
                    l, s, t, reached, base_connected
                );
                // When the degraded *layer* still connects the pair, the
                // repaired route stays entirely within that layer (no
                // premature layer-0 fallback).
                if reached && layer_connected {
                    for w in path.windows(2) {
                        prop_assert!(
                            degraded_layers[l as usize].has_edge(w[0], w[1]),
                            "layer {l} {s}->{t}: left the layer at {}-{} though \
                             the degraded layer connects the pair",
                            w[0], w[1]
                        );
                    }
                }
            }
        }
    }
}
