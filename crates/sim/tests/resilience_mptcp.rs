//! Tests for §V-G fault tolerance (layer-based failover around link
//! failures) and the §VIII-A2 MPTCP integration.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_net::topo::slimfly::slim_fly;
use fatpaths_sim::metrics::mptcp_group_fcts;
use fatpaths_sim::{Scenario, SchemeSpec, TcpVariant, Transport};
use fatpaths_workloads::arrivals::FlowSpec;

/// The unique layer-0 (minimal) path of the 2-hop pair the failure tests
/// break. Layer 0 is the complete edge set, so this is independent of the
/// layer-sampling seed.
fn minimal_path_0_41(topo: &fatpaths_net::Topology) -> Vec<u32> {
    let ls = build_random_layers(&topo.graph, &LayerConfig::new(1, 1.0, 0));
    let rt = RoutingTables::build(&topo.graph, &ls);
    let p0 = rt.path(&topo.graph, 0, 0, 41).unwrap();
    assert_eq!(p0.len(), 3, "expected a 2-hop pair");
    p0
}

#[test]
fn fatpaths_routes_around_failed_link() {
    // SF(q=5): between most router pairs there is exactly ONE shortest
    // path. Fail its middle link: minimal-only routing stalls, FatPaths
    // redirects onto another layer and completes.
    let topo = slim_fly(5, 2).unwrap();
    let p0 = minimal_path_0_41(&topo);
    let flows = [FlowSpec {
        src: 0,
        dst: 82,
        size: 256 * 1024,
        start: 0,
    }];
    let run = |spec: SchemeSpec, fail: bool| {
        let mut sc = Scenario::on(&topo)
            .scheme(spec)
            .workload(&flows)
            .seed(3)
            .horizon(50_000_000_000); // 50 ms
        if fail {
            sc = sc.fail_link(p0[0], p0[1]);
        }
        sc.run()
    };
    let layered = SchemeSpec::LayeredRandom {
        n_layers: 9,
        rho: 0.6,
    };
    // Sanity: with the link up, both complete.
    assert_eq!(run(layered, false).completion_rate(), 1.0);
    // Link down: multi-layer FatPaths completes; the flow recovers through
    // an alternate layer after RTOs.
    let multi = run(layered, true);
    assert_eq!(
        multi.completion_rate(),
        1.0,
        "FatPaths must route around the failure"
    );
    assert!(multi.drops > 0, "the failed link must have eaten packets");
    // Minimal-only routing cannot: the only forwarding path is dead.
    let single = run(SchemeSpec::LayeredMinimal, true);
    assert_eq!(
        single.completion_rate(),
        0.0,
        "single-path routing cannot recover"
    );
}

#[test]
fn failure_recovery_costs_bounded_time() {
    let topo = slim_fly(5, 2).unwrap();
    let p0 = minimal_path_0_41(&topo);
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 9,
            rho: 0.6,
        })
        .workload(&[FlowSpec {
            src: 0,
            dst: 82,
            size: 256 * 1024,
            start: 0,
        }])
        .seed(3)
        .horizon(100_000_000_000)
        .fail_link(p0[0], p0[1])
        .run();
    let fct = res.flows[0].fct_s().expect("must complete");
    // Ideal ≈ 0.21 ms; recovery adds RTOs (2 ms each) but must stay small.
    assert!(fct < 0.05, "recovery took {fct}s");
}

#[test]
fn mptcp_stripes_over_layers_and_completes() {
    let topo = slim_fly(5, 2).unwrap();
    let specs = [
        FlowSpec {
            src: 0,
            dst: 80,
            size: 1 << 20,
            start: 0,
        },
        FlowSpec {
            src: 3,
            dst: 55,
            size: 300_000,
            start: 0,
        },
    ];
    let (res, groups) = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .transport(Transport::tcp_default(TcpVariant::Dctcp))
        .workload(&specs)
        .seed(3)
        .run_mptcp(4);
    assert_eq!(groups.len(), 2);
    assert_eq!(groups[0].len(), 4);
    assert_eq!(res.completion_rate(), 1.0);
    let fcts = mptcp_group_fcts(&res, &groups);
    assert!(fcts.iter().all(|f| f.is_some()));
    // Total bytes conserved across subflows.
    let total: u64 = groups[0]
        .iter()
        .map(|&fid| res.flows[fid as usize].size)
        .sum();
    assert_eq!(total, 1 << 20);
}

#[test]
fn mptcp_survives_failure_of_one_layer_path() {
    // One subflow's pinned layer crosses a failed link; the connection
    // still finishes because that subflow recovers via RTO retransmits on
    // its own layer... unless the layer is fully broken for the pair — in
    // which case the test documents that pinning trades resilience for
    // stability (subflow stalls, connection FCT = None at horizon).
    let topo = slim_fly(5, 2).unwrap();
    let (res, groups) = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .transport(Transport::tcp_default(TcpVariant::Dctcp))
        .workload(&[FlowSpec {
            src: 0,
            dst: 80,
            size: 400_000,
            start: 0,
        }])
        .seed(3)
        .horizon(30_000_000_000)
        .run_mptcp(2);
    let fcts = mptcp_group_fcts(&res, &groups);
    assert_eq!(fcts.len(), 1);
    // No failure injected here: baseline must complete.
    assert!(fcts[0].is_some());
}

#[test]
fn ecmp_minimal_survives_failure_when_alternatives_exist() {
    // On a fat tree, packet spraying has many minimal paths; killing one
    // still leaves the rest. This documents what §V-G contrasts against.
    let topo = fatpaths_net::topo::fattree::fat_tree(4, 1);
    // Fail one edge→agg link not on every path: edge 0 → agg (first).
    let agg = topo.graph.neighbors(0)[0];
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .lb(fatpaths_sim::LoadBalancing::PacketSpray)
        .workload(&[FlowSpec {
            src: 0,
            dst: 10,
            size: 128 * 1024,
            start: 0,
        }])
        .horizon(50_000_000_000)
        .fail_link(0, agg)
        .run();
    assert_eq!(res.completion_rate(), 1.0);
}
