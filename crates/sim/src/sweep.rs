//! Deterministic parallel sweeps over scenario grids.
//!
//! Every experiment in the paper is a grid — topologies × schemes ×
//! workload knobs — whose cells are independent simulations. A
//! [`SweepRunner`] executes such a grid on the shim thread pool while
//! guaranteeing that the output is **bit-identical for any thread
//! count**:
//!
//! * cells are evaluated by a pure(ish) function of the cell value and
//!   its grid index — never of execution order;
//! * results come back in grid order, so CSV rows and summary lines are
//!   assembled serially from an order-stable `Vec`;
//! * randomness must be seeded per cell via [`cell_seed`], a hash of the
//!   cell's *coordinates*, not a shared RNG advanced cell-by-cell.
//!
//! ```
//! use fatpaths_sim::sweep::{cell_seed, SweepRunner};
//!
//! let cells: Vec<(usize, f64)> = vec![(2, 0.5), (2, 0.8), (4, 0.5)];
//! let out = SweepRunner::new("demo", cells).run(|idx, &(n, rho)| {
//!     let seed = cell_seed("demo", &[n as u64, rho.to_bits()]);
//!     format!("cell {idx}: n={n} rho={rho} seed={seed:#x}")
//! });
//! assert_eq!(out.len(), 3);
//! assert!(out[2].starts_with("cell 2: n=4"));
//! ```

use fatpaths_core::fwd::fnv1a;
use rayon::prelude::*;

/// Derives an RNG seed from a sweep cell's coordinates. Seeds depend
/// only on the experiment tag and the coordinate values, so a cell keeps
/// its seed when the grid is reordered, filtered, or run at a different
/// thread count — the seeding discipline every sweep in
/// `fatpaths-experiments` follows.
pub fn cell_seed(experiment: &str, coords: &[u64]) -> u64 {
    let mut h = coord_str(experiment);
    for &c in coords {
        h = fnv1a(h ^ fnv1a(c));
    }
    // Avoid the degenerate all-zero stream for pathological inputs.
    h | 1
}

/// Folds a string into one [`cell_seed`] coordinate. Use this for
/// coordinates that name things (a topology, a scheme) instead of their
/// position in the grid, so a cell's seed survives grid reordering or
/// filtering.
pub fn coord_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs a grid of independent cells in parallel, returning results in
/// grid order. See the module docs for the determinism contract.
pub struct SweepRunner<C> {
    label: &'static str,
    cells: Vec<C>,
}

impl<C: Send + Sync> SweepRunner<C> {
    /// A sweep named `label` over `cells`. The label is the experiment
    /// tag [`run_seeded`](SweepRunner::run_seeded) feeds to
    /// [`cell_seed`], so two sweeps with different labels draw disjoint
    /// seed streams from identical coordinates.
    pub fn new(label: &'static str, cells: Vec<C>) -> Self {
        SweepRunner { label, cells }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Evaluates `f(index, cell)` for every cell on the thread pool and
    /// returns the results in cell order. A panicking cell propagates
    /// after the sweep drains (no deadlock, no partial output).
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &C) -> R + Sync + Send,
    {
        self.cells
            .par_iter()
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect()
    }

    /// Like [`run`](SweepRunner::run), but hands each cell its
    /// coordinate-derived seed (`cell_seed(label, coords(cell))`).
    pub fn run_seeded<R, F, K>(&self, coords: K, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &C, u64) -> R + Sync + Send,
        K: Fn(&C) -> Vec<u64> + Sync + Send,
    {
        let label = self.label;
        self.cells
            .par_iter()
            .enumerate()
            .map(|(i, c)| f(i, c, cell_seed(label, &coords(c))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_grid_order() {
        let cells: Vec<u32> = (0..100).rev().collect();
        let out = SweepRunner::new("order", cells.clone()).run(|i, &c| (i, c * 2));
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(v, cells[i] * 2);
        }
    }

    #[test]
    fn cell_seed_depends_on_coordinates_not_order() {
        let a = cell_seed("exp", &[1, 2, 3]);
        let b = cell_seed("exp", &[1, 2, 3]);
        let c = cell_seed("exp", &[3, 2, 1]);
        let d = cell_seed("other", &[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn parallel_matches_sequential() {
        let runner = SweepRunner::new("parity", (0..64u64).collect());
        let work = |_: usize, &c: &u64| -> u64 { (0..c).map(|x| x * x).sum() };
        let par = runner.run(work);
        let seq = rayon::run_sequential(|| runner.run(work));
        assert_eq!(par, seq);
    }

    #[test]
    fn run_seeded_passes_coordinate_seeds() {
        let runner = SweepRunner::new("seeds", vec![(0u64, 5u64), (1, 5), (0, 7)]);
        let seeds = runner.run_seeded(|&(a, b)| vec![a, b], |_, _, s| s);
        assert_eq!(seeds[0], cell_seed("seeds", &[0, 5]));
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[0], seeds[2]);
        // Stable across grid layout: same coordinates → same seed.
        let wider = SweepRunner::new("seeds", vec![(9u64, 9u64), (0, 5)]);
        let s2 = wider.run_seeded(|&(a, b)| vec![a, b], |_, _, s| s);
        assert_eq!(s2[1], seeds[0]);
    }
}
