//! Unified baseline comparison (Table I § VII made executable): every
//! routing scheme the paper discusses — FatPaths layered routing, ECMP,
//! packet spraying, LetFlow, SPAIN, PAST, k-shortest-paths, and Valiant —
//! packet-simulated under identical transport and workload on multiple
//! topologies. This is the experiment the `RoutingScheme` trait exists
//! for: before it, SPAIN/PAST/KSP/VLB could only be scored by static
//! theory figures (Fig. 9), never run through the event loop.
//!
//! The (topology × scheme) grid runs as a parallel [`SweepRunner`]
//! sweep; [`baselines_matrix`] returns the CSV and summary as strings so
//! the parity suite can assert byte equality between pooled and
//! single-threaded execution.

use crate::common::{f, label, pattern_workload, post_warmup, write_summary, write_text};
use fatpaths_core::past::PastVariant;
use fatpaths_mcf::{throughput_upper_bound, RouterDemand};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::metrics::Summary;
use fatpaths_sim::{LoadBalancing, Scenario, SchemeSpec, SweepRunner};
use fatpaths_te::{achieved_throughput, edge_loads, endpoint_demands};
use fatpaths_workloads::arrivals::FlowSpec;
use fatpaths_workloads::patterns::adversarial_for;
use std::io;

/// The full comparison matrix: (CSV label, spec, LB override).
fn matrix() -> Vec<(&'static str, SchemeSpec, Option<LoadBalancing>)> {
    vec![
        (
            "fatpaths",
            SchemeSpec::LayeredRandom {
                n_layers: 9,
                rho: 0.6,
            },
            None,
        ),
        ("ecmp", SchemeSpec::Minimal, Some(LoadBalancing::EcmpFlow)),
        (
            "spray",
            SchemeSpec::Minimal,
            Some(LoadBalancing::PacketSpray),
        ),
        ("letflow", SchemeSpec::Minimal, Some(LoadBalancing::LetFlow)),
        ("spain", SchemeSpec::Spain { k_paths: 3 }, None),
        (
            "past",
            SchemeSpec::Past {
                variant: PastVariant::Bfs,
            },
            None,
        ),
        ("ksp", SchemeSpec::Ksp { k: 4 }, None),
        ("valiant", SchemeSpec::Valiant { n_layers: 9 }, None),
    ]
}

/// CSV header of the matrix artifact. `mat_ratio` is the scheme's
/// achieved/optimal throughput on the cell's traffic matrix: achieved
/// comes from [`fatpaths_te::edge_loads`] (equal flowlet split, unit
/// capacities), optimal from the [`throughput_upper_bound`] cut bound.
const HEADER: &str = "topology,scheme,layers,completion_rate,fct_mean_ms,fct_p50_ms,fct_p99_ms,\
                      trims,retx_total,mat_ratio";

/// Metrics of one (topology, scheme) cell, ready for ordered assembly.
struct CellResult {
    csv_row: String,
    summary_line_parts: (String, usize, f64, f64),
}

/// Runs the full matrix on the evaluation-size SF/DF/FT3 set at the
/// given injection window; see [`baselines_matrix_on`].
pub fn baselines_matrix(window: f64) -> (String, String) {
    let kinds = [TopoKind::SlimFly, TopoKind::Dragonfly, TopoKind::FatTree];
    let topos = SweepRunner::new("baselines-topos", kinds.to_vec())
        .run(|_, &kind| build(kind, SizeClass::Small, 1));
    baselines_matrix_on(topos, window)
}

/// Runs the full scheme matrix on the given topologies and returns
/// `(csv_text, summary_text)`. Deterministic for any thread count: the
/// grid goes through [`SweepRunner`], and all output is assembled in
/// grid order after the parallel phase. The parity suite calls this with
/// miniature SF/DF/FT3 instances to pin thread-count invariance cheaply.
pub fn baselines_matrix_on(topos: Vec<Topology>, window: f64) -> (String, String) {
    // Per-topology prep (the shared adversarial workload), in parallel.
    let prep_cells: Vec<usize> = (0..topos.len()).collect();
    let prep = SweepRunner::new("baselines-prep", prep_cells).run(|_, &ti| {
        let topo = topos[ti].clone();
        let p = topo.concentration.iter().copied().max().unwrap();
        let pattern = adversarial_for(p, topo.num_routers() as u32);
        let flows = pattern_workload(&topo, &pattern, 150.0, window, false, 23);
        // Router traffic matrix of the workload + its MCF upper bound,
        // the denominator of every scheme's `mat_ratio` on this topology.
        let pairs: Vec<(u32, u32)> = flows.iter().map(|fl| (fl.src, fl.dst)).collect();
        let demands = endpoint_demands(&topo, &pairs);
        let upper = throughput_upper_bound(&topo, &demands);
        (topo, flows, demands, upper)
    });
    let specs = matrix();
    // The (topology × scheme) grid itself.
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for ti in 0..prep.len() {
        for si in 0..specs.len() {
            cells.push((ti, si));
        }
    }
    let results = SweepRunner::new("baselines", cells).run(|_, &(ti, si)| {
        let (topo, flows, demands, upper): &(Topology, Vec<FlowSpec>, Vec<RouterDemand>, f64) =
            &prep[ti];
        let (name, spec, lb) = specs[si];
        let mut sc = Scenario::on(topo).scheme(spec).workload(flows).seed(5);
        if let Some(lb) = lb {
            sc = sc.lb(lb);
        }
        let scheme = sc.build_scheme();
        let layers = fatpaths_sim::RoutingScheme::num_layers(&scheme);
        let mat_ratio = achieved_throughput(&edge_loads(&scheme, &topo.graph, demands)) / upper;
        let res = post_warmup(&sc.run_with(&scheme), window);
        let fct = Summary::of(&res.fcts(None));
        let retx: u64 = res.flows.iter().map(|fl| fl.retx as u64).sum();
        let csv_row = [
            label(topo),
            name.to_string(),
            layers.to_string(),
            f(res.completion_rate()),
            f(fct.mean * 1e3),
            f(fct.p50 * 1e3),
            f(fct.p99 * 1e3),
            res.trims.to_string(),
            retx.to_string(),
            f(mat_ratio),
        ]
        .join(",");
        CellResult {
            csv_row,
            summary_line_parts: (name.to_string(), layers, fct.mean, fct.p99),
        }
    });
    // Ordered assembly: rows in grid order, summaries grouped per topology
    // with the fatpaths cell of that topology as the speedup reference.
    let mut csv = String::from(HEADER);
    csv.push('\n');
    let mut summary =
        String::from("Baselines — every scheme packet-simulated, identical transport/workload\n");
    for (ti, (topo, flows, _, _)) in prep.iter().enumerate() {
        summary.push_str(&format!(
            "-- {} ({} endpoints, {} flows) --\n",
            label(topo),
            topo.num_endpoints(),
            flows.len()
        ));
        let group = &results[ti * specs.len()..(ti + 1) * specs.len()];
        let fat_idx = specs
            .iter()
            .position(|(n, ..)| *n == "fatpaths")
            .expect("matrix must contain the fatpaths reference scheme");
        let fat_mean = group[fat_idx].summary_line_parts.2;
        for cell in group {
            csv.push_str(&cell.csv_row);
            csv.push('\n');
            let (name, layers, fct_mean, fct_p99) = &cell.summary_line_parts;
            summary.push_str(&format!(
                "{:<9} layers={:<4} mean {:>7.3} ms  p99 {:>8.3} ms  ({:.2}x fatpaths)\n",
                name,
                layers,
                fct_mean * 1e3,
                fct_p99 * 1e3,
                fct_mean / fat_mean
            ));
        }
    }
    summary.push_str(
        "Paper (§VII, Fig. 11/14): layered routing leads on the low-diameter networks;\n\
         SPAIN/PAST pay for tree-restricted paths, VLB pays double path length,\n\
         and the minimal-path family only competes where diversity exists (FT3).\n",
    );
    (csv, summary)
}

/// Runs the matrix on the small-class SF, DF, and FT3 under the skewed
/// adversarial workload (the regime where scheme differences are
/// starkest, Fig. 11) with the NDP transport.
pub fn baselines(quick: bool) -> io::Result<()> {
    let window = if quick { 0.003 } else { 0.006 };
    let (csv, summary) = baselines_matrix(window);
    write_text("baselines_matrix.csv", &csv)?;
    write_summary("baselines_matrix", &summary)
}
