//! All-pairs shortest-path statistics (§IV-B1: `lmin` distributions,
//! diameter, average path length).
//!
//! BFS per source, parallelized over sources with Rayon; memory stays
//! `O(n)` per worker thread.

use fatpaths_net::graph::{Graph, RouterId, UNREACHABLE};
use rayon::prelude::*;

/// Aggregate shortest-path statistics of a connected graph.
#[derive(Clone, Debug, PartialEq)]
pub struct PathStats {
    /// Maximum shortest-path length over all pairs.
    pub diameter: u32,
    /// Mean shortest-path length over ordered pairs (`d` in the paper).
    pub avg_path_length: f64,
    /// `lmin_histogram[l]` = number of ordered router pairs at distance `l`
    /// (index 0 counts the `n` self-pairs).
    pub lmin_histogram: Vec<u64>,
}

impl PathStats {
    /// Fraction of ordered pairs (excluding self-pairs) at distance `l` —
    /// the y-axis of Fig. 6 (top).
    pub fn fraction_at(&self, l: usize) -> f64 {
        let total: u64 = self.lmin_histogram.iter().skip(1).sum();
        if total == 0 || l >= self.lmin_histogram.len() {
            return 0.0;
        }
        self.lmin_histogram[l] as f64 / total as f64
    }
}

/// Computes exact all-pairs statistics by running BFS from every source.
///
/// Panics if the graph is disconnected.
pub fn shortest_path_stats(g: &Graph) -> PathStats {
    let n = g.n();
    assert!(n > 0);
    let per_source: Vec<(u32, u64, Vec<u64>)> = (0..n as u32)
        .into_par_iter()
        .map(|src| {
            let dist = g.bfs(src);
            let mut hist = vec![0u64; 2];
            let mut far = 0u32;
            let mut total = 0u64;
            for &d in &dist {
                assert!(d != UNREACHABLE, "graph disconnected");
                if d as usize >= hist.len() {
                    hist.resize(d as usize + 1, 0);
                }
                hist[d as usize] += 1;
                far = far.max(d);
                total += d as u64;
            }
            (far, total, hist)
        })
        .collect();
    merge(n, per_source)
}

/// Sampled variant for large graphs: BFS from `samples` deterministic
/// sources; the histogram is scaled to all-pairs semantics only in its
/// relative shape (fractions remain unbiased for vertex-transitive graphs).
pub fn shortest_path_stats_sampled(g: &Graph, samples: usize) -> PathStats {
    let n = g.n();
    let take = samples.min(n).max(1);
    let stride = (n / take).max(1);
    let per_source: Vec<(u32, u64, Vec<u64>)> = (0..take)
        .into_par_iter()
        .map(|i| {
            let src = ((i * stride) % n) as u32;
            let dist = g.bfs(src);
            let mut hist = vec![0u64; 2];
            let mut far = 0u32;
            let mut total = 0u64;
            for &d in &dist {
                if d == UNREACHABLE {
                    continue;
                }
                if d as usize >= hist.len() {
                    hist.resize(d as usize + 1, 0);
                }
                hist[d as usize] += 1;
                far = far.max(d);
                total += d as u64;
            }
            (far, total, hist)
        })
        .collect();
    merge(take, per_source)
}

fn merge(sources: usize, per_source: Vec<(u32, u64, Vec<u64>)>) -> PathStats {
    let mut diameter = 0u32;
    let mut total = 0u64;
    let mut hist: Vec<u64> = Vec::new();
    let mut reached = 0u64;
    for (far, t, h) in per_source {
        diameter = diameter.max(far);
        total += t;
        if h.len() > hist.len() {
            hist.resize(h.len(), 0);
        }
        for (i, c) in h.into_iter().enumerate() {
            hist[i] += c;
            reached += c;
        }
    }
    let pairs = reached - sources as u64; // exclude self-pairs
    PathStats {
        diameter,
        avg_path_length: total as f64 / pairs.max(1) as f64,
        lmin_histogram: hist,
    }
}

/// Number of *distinct* shortest paths (not necessarily disjoint) from `src`
/// to every router, via the standard BFS counting DP. Saturating at
/// `u64::MAX`. Used to cross-validate the matrix method of Appendix B.
pub fn count_shortest_paths(g: &Graph, src: RouterId) -> Vec<u64> {
    let n = g.n();
    let mut dist = vec![UNREACHABLE; n];
    let mut cnt = vec![0u64; n];
    let mut queue = Vec::with_capacity(n);
    dist[src as usize] = 0;
    cnt[src as usize] = 1;
    queue.push(src);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push(v);
            }
            if dist[v as usize] == du + 1 {
                cnt[v as usize] = cnt[v as usize].saturating_add(cnt[u as usize]);
            }
        }
    }
    cnt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_stats() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let s = shortest_path_stats(&g);
        assert_eq!(s.diameter, 3);
        assert!((s.avg_path_length - 1.8).abs() < 1e-12);
        // Distances over ordered pairs: 12 at d=1, 12 at d=2, 6 at d=3.
        assert_eq!(&s.lmin_histogram[1..], &[12, 12, 6]);
        assert!((s.fraction_at(3) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_counts_on_square() {
        // 4-cycle: opposite corners have 2 shortest paths.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = count_shortest_paths(&g, 0);
        assert_eq!(c, vec![1, 1, 2, 1]);
    }

    #[test]
    fn slim_fly_has_one_minimal_path_mostly() {
        // §IV-C1: in SF, most router pairs have exactly one shortest path.
        let t = fatpaths_net::topo::slimfly::slim_fly(7, 1).unwrap();
        let mut single = 0usize;
        let mut multi = 0usize;
        for s in 0..t.num_routers() as u32 {
            let c = count_shortest_paths(&t.graph, s);
            let dist = t.graph.bfs(s);
            for v in 0..t.num_routers() {
                if dist[v] == 2 {
                    if c[v] == 1 {
                        single += 1;
                    } else {
                        multi += 1;
                    }
                }
            }
        }
        assert!(
            single > multi,
            "SF should be dominated by unique 2-hop paths"
        );
    }

    #[test]
    fn sampled_matches_exact_on_vertex_transitive() {
        let t = fatpaths_net::topo::hyperx::hyperx(2, 5, 1);
        let exact = shortest_path_stats(&t.graph);
        let sampled = shortest_path_stats_sampled(&t.graph, 5);
        assert_eq!(exact.diameter, sampled.diameter);
        assert!((exact.avg_path_length - sampled.avg_path_length).abs() < 1e-9);
    }
}
