//! Route repair: the routing-side response to link failures.
//!
//! When links die, a routing scheme has three options (§V-G and the
//! fault-resiliency literature): do nothing and let end-to-end recovery
//! re-pick layers (the FatPaths default — failures are masked by
//! preprovisioned path diversity), *repair* the affected forwarding rows
//! in place, or rebuild from the degraded topology. This module provides
//! the shared vocabulary for the last two:
//!
//! * [`DownLinks`] — the canonical set of currently-down links, with
//!   O(1) membership and deterministic (sorted) iteration;
//! * [`RouteRepair`] — a sparse overlay of repaired forwarding rows the
//!   simulator consults *before* the scheme's own
//!   [`candidate_ports`](crate::scheme::RoutingScheme::candidate_ports).
//!
//! A repair entry stores the scheme's **final** decision for a
//! `(layer, at_router, dst_router)` key — including any internal
//! fallback (e.g. a sparse layer falling back to layer 0) — so the
//! simulator stays scheme-agnostic: present + non-empty means "use
//! exactly these ports", present + empty means "genuinely unreachable in
//! the degraded network, drop", absent means "the original row is still
//! valid, ask the scheme".

use crate::scheme::PortSet;
use fatpaths_net::graph::{Graph, RouterId};
use rustc_hash::{FxHashMap, FxHashSet};

/// The set of currently-down bidirectional links, canonicalized to
/// `(min, max)` pairs. Iteration order is sorted, so everything derived
/// from a `DownLinks` is deterministic regardless of how the set was
/// accumulated.
#[derive(Clone, Debug, Default)]
pub struct DownLinks {
    sorted: Vec<(RouterId, RouterId)>,
    set: FxHashSet<(RouterId, RouterId)>,
}

impl DownLinks {
    /// Builds the set from links in any orientation (duplicates collapse).
    pub fn from_links(links: &[(RouterId, RouterId)]) -> DownLinks {
        let mut sorted: Vec<(RouterId, RouterId)> =
            links.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let set = sorted.iter().copied().collect();
        DownLinks { sorted, set }
    }

    /// Builds the set from explicitly failed links *plus* whole-router
    /// failures: a dead router loses every incident link at once (the
    /// node-level fault model), so `graph` is consulted to expand each
    /// router in `dead_routers` into its incident links. Schemes stay
    /// router-agnostic — a repair pass over this set routes around the
    /// dead node because no live link reaches it.
    pub fn from_failures(
        graph: &Graph,
        links: &[(RouterId, RouterId)],
        dead_routers: &[RouterId],
    ) -> DownLinks {
        let mut all: Vec<(RouterId, RouterId)> = links.to_vec();
        for &r in dead_routers {
            all.extend(graph.neighbors(r).iter().map(|&nb| (r, nb)));
        }
        DownLinks::from_links(&all)
    }

    /// True iff link `{u, v}` is down (orientation-insensitive).
    #[inline]
    pub fn contains(&self, u: RouterId, v: RouterId) -> bool {
        self.set.contains(&(u.min(v), u.max(v)))
    }

    /// The down links in canonical sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        self.sorted.iter().copied()
    }

    /// The down links as a canonical sorted slice.
    pub fn as_slice(&self) -> &[(RouterId, RouterId)] {
        &self.sorted
    }

    /// Number of down links.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True iff nothing is down.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A sparse overlay of repaired forwarding rows, keyed by
/// `(layer, at_router, dst_router)`.
///
/// Semantics of [`RouteRepair::lookup`]:
/// * `None` — the scheme's original row survived the failures; use
///   [`candidate_ports`](crate::scheme::RoutingScheme::candidate_ports).
/// * `Some(ports)` non-empty — the repaired candidates (already
///   including any scheme-internal fallback).
/// * `Some(ports)` empty — the destination is unreachable from here in
///   the degraded network; the packet cannot be forwarded.
#[derive(Clone, Debug, Default)]
pub struct RouteRepair {
    rows: FxHashMap<(u8, RouterId, RouterId), PortSet>,
    /// Control-plane cost of realizing this overlay in compiled
    /// switch-forwarding state: the number of FIB rows (prefix rules)
    /// that must be installed, rewritten, or deleted across all
    /// switches. Zero for analytic schemes, which carry no FIB; the
    /// FIB-compiled adapter (`fatpaths_fib::CompiledScheme`) fills it
    /// from the range-merged overlay delta.
    pub fib_rows_rewritten: u64,
}

impl RouteRepair {
    /// An overlay with no repaired rows.
    pub fn none() -> RouteRepair {
        RouteRepair::default()
    }

    /// Installs a repaired row (empty `ports` = unreachable).
    pub fn insert(&mut self, layer: u8, at: RouterId, dst: RouterId, ports: PortSet) {
        self.rows.insert((layer, at, dst), ports);
    }

    /// Looks up a repaired row; see the type docs for the semantics.
    #[inline]
    pub fn lookup(&self, layer: u8, at: RouterId, dst: RouterId) -> Option<&PortSet> {
        self.rows.get(&(layer, at, dst))
    }

    /// Number of repaired rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Iterates over the repaired rows as `((layer, at, dst), ports)`,
    /// in unspecified order (sort the keys before deriving anything
    /// order-sensitive).
    pub fn rows(&self) -> impl Iterator<Item = ((u8, RouterId, RouterId), &PortSet)> + '_ {
        self.rows.iter().map(|(&k, v)| (k, v))
    }

    /// True iff the overlay repairs nothing (the fast-path gate for the
    /// simulator's per-hop lookup).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_links_canonicalize_and_sort() {
        let d = DownLinks::from_links(&[(7, 2), (0, 1), (2, 7), (1, 0)]);
        assert_eq!(d.as_slice(), &[(0, 1), (2, 7)]);
        assert_eq!(d.len(), 2);
        assert!(d.contains(7, 2));
        assert!(d.contains(2, 7));
        assert!(!d.contains(0, 2));
        assert!(DownLinks::from_links(&[]).is_empty());
    }

    #[test]
    fn from_failures_expands_dead_routers() {
        // Triangle 0-1-2 plus a pendant 3 on router 1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let d = DownLinks::from_failures(&g, &[(0, 2)], &[1]);
        assert_eq!(d.as_slice(), &[(0, 1), (0, 2), (1, 2), (1, 3)]);
        // Dedup across sources: the explicit link may also be incident.
        let d2 = DownLinks::from_failures(&g, &[(1, 0)], &[1]);
        assert_eq!(d2.as_slice(), &[(0, 1), (1, 2), (1, 3)]);
        // No routers → same as from_links.
        let d3 = DownLinks::from_failures(&g, &[(2, 0)], &[]);
        assert_eq!(d3.as_slice(), DownLinks::from_links(&[(0, 2)]).as_slice());
    }

    #[test]
    fn repair_lookup_semantics() {
        let mut r = RouteRepair::none();
        assert!(r.is_empty());
        r.insert(1, 4, 9, PortSet::single(3));
        r.insert(1, 5, 9, PortSet::new());
        assert_eq!(r.len(), 2);
        assert_eq!(r.lookup(1, 4, 9).unwrap().as_slice(), &[3]);
        assert!(r.lookup(1, 5, 9).unwrap().is_empty());
        assert!(r.lookup(0, 4, 9).is_none());
    }
}
