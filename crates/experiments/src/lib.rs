//! Experiment harnesses behind the `experiments` binary: one module per
//! family of tables/figures from the FatPaths paper. Exposed as a
//! library so integration tests (and benches) can run the same grid
//! computations in-process — the parallel-vs-single-thread parity suite
//! compares byte-for-byte CSV output of [`baselines::baselines_matrix`]
//! under both execution modes.
//!
//! Every experiment sweeps its scenario grid through
//! [`fatpaths_sim::SweepRunner`]: cells evaluate in parallel on the shim
//! thread pool, seeds derive from cell coordinates via
//! [`fatpaths_sim::cell_seed`], and rows/summaries are assembled in grid
//! order — so `experiments <name>` writes bit-identical artifacts
//! whether it runs on 1 thread or 64.

pub mod adaptive;
pub mod baselines;
pub mod churn;
pub mod common;
pub mod diversity_figs;
pub mod large_scale;
pub mod memory;
pub mod perf_ndp;
pub mod perf_tcp;
pub mod resilience;
pub mod te;
pub mod theory_figs;
pub mod trace;
