//! Offline shim for `rayon`: the parallel-iterator API subset this
//! workspace uses, executed on an in-tree work-stealing thread pool
//! (see the internal `pool` module — `std::thread` + shared atomic chunk counters, no
//! external dependencies). Observable semantics match rayon's: `collect`
//! preserves item order, `zip` pairs by position, `map_init` reuses one
//! scratch value per worker *chunk*, and closures need the same
//! `Fn + Sync + Send` bounds — so swapping the real crate back in is a
//! manifest change only.
//!
//! Unlike rayon's lazy combinator trees, each adapter here executes
//! *eagerly*: `map` runs its closure over all items in parallel and
//! materializes the results, so a chain like `par_iter().map(f).collect()`
//! does its heavy lifting inside `map`. For the coarse-grained work in
//! this repository (a BFS, a Yen run, or a whole simulation per item)
//! the extra intermediate `Vec` is noise.
//!
//! Execution is deterministic by construction: results are written at
//! their item's index, reductions fold in item order on the calling
//! thread, and therefore every pipeline yields bit-identical output for
//! 1, 2, or N threads (the experiment parity suite pins this). Thread
//! count comes from `FATPATHS_THREADS` / `RAYON_NUM_THREADS`, or
//! [`ensure_pool`]; the `single-thread` cargo feature (or a
//! [`run_sequential`] scope) forces inline sequential execution for
//! debugging.

mod pool;

pub use pool::{current_num_threads, ensure_pool, join, run_sequential, scope, Scope};

use std::mem::ManuallyDrop;

/// A raw pointer that may cross threads. Used only for disjoint
/// per-index reads/writes inside [`par_map_vec`]-style helpers.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: every use accesses a distinct index from exactly one thread.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i`. Going through a method (rather than the
    /// raw field) makes closures capture the `Sync` wrapper, not the
    /// bare pointer, under edition-2021 disjoint capture.
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: callers only pass indices within the allocation.
        unsafe { self.0.add(i) }
    }
}

/// Moves every element of `items` through `f` in parallel, preserving
/// order. If `f` panics the panic propagates after the operation drains;
/// unprocessed elements and already-produced outputs are then leaked
/// (never double-dropped).
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(dyn Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let mut out: Vec<R> = Vec::with_capacity(n);
    let mut items = ManuallyDrop::new(items);
    let src = SendPtr(items.as_mut_ptr());
    let dst = SendPtr(out.as_mut_ptr());
    pool::run_chunked(n, &move |lo, hi| {
        for i in lo..hi {
            // SAFETY: each index is claimed by exactly one chunk; `read`
            // moves the element out and `write` fills preallocated space.
            unsafe { dst.at(i).write(f(src.at(i).read())) };
        }
    });
    // SAFETY: all n outputs were written above (run_chunked completed).
    unsafe { out.set_len(n) };
    // Free the source buffer without dropping its (moved-out) elements.
    drop(unsafe { Vec::from_raw_parts(items.as_mut_ptr(), 0, items.capacity()) });
    out
}

/// [`par_map_vec`] with one `init()` scratch value per chunk.
fn par_map_init_vec<T: Send, S, R: Send>(
    items: Vec<T>,
    init: &(dyn Fn() -> S + Sync),
    f: &(dyn Fn(&mut S, T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    let mut out: Vec<R> = Vec::with_capacity(n);
    let mut items = ManuallyDrop::new(items);
    let src = SendPtr(items.as_mut_ptr());
    let dst = SendPtr(out.as_mut_ptr());
    pool::run_chunked(n, &move |lo, hi| {
        let mut scratch = init();
        for i in lo..hi {
            // SAFETY: as in `par_map_vec`.
            unsafe { dst.at(i).write(f(&mut scratch, src.at(i).read())) };
        }
    });
    // SAFETY: all n outputs were written above.
    unsafe { out.set_len(n) };
    drop(unsafe { Vec::from_raw_parts(items.as_mut_ptr(), 0, items.capacity()) });
    out
}

/// Consumes every element of `items` through `f` in parallel.
fn par_consume<T: Send>(items: Vec<T>, f: &(dyn Fn(T) + Sync)) {
    let n = items.len();
    let mut items = ManuallyDrop::new(items);
    let src = SendPtr(items.as_mut_ptr());
    pool::run_chunked(n, &move |lo, hi| {
        for i in lo..hi {
            // SAFETY: each index is moved out by exactly one chunk.
            unsafe { f(src.at(i).read()) };
        }
    });
    drop(unsafe { Vec::from_raw_parts(items.as_mut_ptr(), 0, items.capacity()) });
}

/// A parallel iterator over a materialized item list. Adapters with
/// user closures (`map`, `map_init`, `for_each`) execute in parallel on
/// the global pool; structural adapters (`enumerate`, `zip`, `filter`)
/// and reductions are sequential, order-preserving bookkeeping.
pub struct Par<T> {
    items: Vec<T>,
}

impl<T: Send> Par<T> {
    /// Index–item pairs.
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Pairs this iterator with another parallel iterator positionally,
    /// truncating to the shorter side.
    pub fn zip<J: IntoParVec>(self, other: J) -> Par<(T, J::Item)> {
        Par {
            items: self.items.into_iter().zip(other.into_par_vec()).collect(),
        }
    }

    /// Maps each item through `f`, in parallel, preserving order.
    pub fn map<F, R>(self, f: F) -> Par<R>
    where
        F: Fn(T) -> R + Sync + Send,
        R: Send,
    {
        Par {
            items: par_map_vec(self.items, &f),
        }
    }

    /// Maps with per-worker-chunk scratch state: `init` runs once per
    /// contiguous chunk and the scratch value is reused across that
    /// chunk's items (rayon's per-worker reuse, at chunk granularity).
    /// Results must not depend on scratch history across items.
    pub fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> Par<R>
    where
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) -> R + Sync + Send,
        R: Send,
    {
        Par {
            items: par_map_init_vec(self.items, &init, &f),
        }
    }

    /// Keeps items satisfying `f` (sequential; predicates here are cheap
    /// compared to the parallel stages around them).
    pub fn filter<F>(self, f: F) -> Par<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        Par {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    /// Consumes every item through `f`, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        par_consume(self.items, &f);
    }

    /// Collects into any `FromIterator` container, in item order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items, folding in item order (deterministic for floats).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion used by [`Par::zip`] so both `Par<_>` values and plain
/// collections can appear on the right-hand side.
pub trait IntoParVec {
    /// Item type.
    type Item: Send;
    /// Unwraps into the materialized item list.
    fn into_par_vec(self) -> Vec<Self::Item>;
}

impl<T: Send> IntoParVec for Par<T> {
    type Item = T;
    fn into_par_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParVec for Vec<T> {
    type Item = T;
    fn into_par_vec(self) -> Vec<T> {
        self
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> Par<$t> {
                Par { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize, i32);

/// `par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Par<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T> {
        Par {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T> {
        Par {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<&mut [T]> {
        Par {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, Par, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::panic;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// All shim tests share one process-global pool; pin it wide enough
    /// to actually exercise cross-thread execution even on small CI
    /// machines (oversubscription is fine for correctness tests).
    fn wide_pool() -> usize {
        crate::ensure_pool(4)
    }

    #[test]
    fn chunks_zip_enumerate_for_each() {
        wide_pool();
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for x in ca.iter_mut().chain(cb.iter_mut()) {
                    *x = i as u32;
                }
            });
        assert_eq!(a, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(b, a);
    }

    #[test]
    fn map_init_collect_preserves_order() {
        wide_pool();
        let v: Vec<u32> = (0..10u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        let w: Vec<u32> = vec![1u32, 2, 3]
            .par_iter()
            .map_init(|| 10u32, |s, &x| x + *s)
            .collect();
        assert_eq!(w, vec![11, 12, 13]);
    }

    #[test]
    fn large_map_is_order_preserving_and_complete() {
        wide_pool();
        let n = 10_000u64;
        let v: Vec<u64> = (0..n).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v.len(), n as usize);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        wide_pool();
        let work = || -> (Vec<f64>, f64) {
            let v: Vec<f64> = (0..5000u32)
                .into_par_iter()
                .map(|x| (x as f64).sqrt().sin())
                .collect();
            let s: f64 = v.par_iter().map(|&x| x * 1.000001).sum();
            (v, s)
        };
        let par = work();
        let seq = crate::run_sequential(work);
        assert_eq!(par.0, seq.0);
        assert_eq!(par.1.to_bits(), seq.1.to_bits());
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        wide_pool();
        let (a, b) = crate::join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_completes_all_spawns_including_nested() {
        wide_pool();
        let hits = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        wide_pool();
        let totals: Vec<u64> = (0..16u64)
            .into_par_iter()
            .map(|i| (0..200u64).into_par_iter().map(move |j| i * j).sum())
            .collect();
        for (i, &t) in totals.iter().enumerate() {
            assert_eq!(t, (i as u64) * (0..200).sum::<u64>());
        }
    }

    #[test]
    fn poisoned_job_propagates_panic_instead_of_deadlocking() {
        wide_pool();
        let result = panic::catch_unwind(|| {
            let _: Vec<u32> = (0..100u32)
                .into_par_iter()
                .map(|i| {
                    if i == 37 {
                        panic!("poisoned job {i}");
                    }
                    i
                })
                .collect();
        });
        let payload = result.expect_err("panic must propagate to the submitter");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("poisoned job"), "payload lost: {msg:?}");
        // The pool must stay usable after a poisoned op.
        let v: Vec<u32> = (0..50u32).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v[49], 50);
    }

    #[test]
    fn join_propagates_first_panic() {
        wide_pool();
        let result = panic::catch_unwind(|| {
            crate::join(|| panic!("left side"), || 1);
        });
        assert!(result.is_err());
    }

    #[test]
    fn run_sequential_is_scoped_and_reentrant() {
        wide_pool();
        let out = crate::run_sequential(|| {
            crate::run_sequential(|| (0..10u32).into_par_iter().map(|x| x).count())
        });
        assert_eq!(out, 10);
        // Parallel mode restored afterwards (no panic, correct result).
        let v: Vec<u32> = (0..10u32).into_par_iter().map(|x| x).collect();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn filter_and_sum_match_std() {
        wide_pool();
        let s: u64 = (0..1000u64)
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .map(|x| x * 2)
            .sum();
        let expect: u64 = (0..1000u64).filter(|x| x % 3 == 0).map(|x| x * 2).sum();
        assert_eq!(s, expect);
    }
}
