//! The switch-memory model: per-switch forwarding tables of
//! `(layer tag, destination-address range) → ECMP group` entries, plus
//! the capacity/statistics vocabulary built on them.
//!
//! Endpoint ids are dense and router-major (`Topology` attaches the
//! endpoints of router `r` as one contiguous id range), so a
//! "destination prefix" is modeled as a half-open endpoint-id range —
//! the range-rule form TCAMs implement directly, and the shape §V-E's
//! address-bit layering produces. Ranges within one `(switch, layer)`
//! table are disjoint and sorted, so the longest-prefix-match lookup
//! degenerates to a binary search; a lookup miss means the destination
//! has no forwarding state here (unreachable — the packet drops).

use crate::compile::CompileMode;
use fatpaths_core::scheme::PortSet;
use fatpaths_net::graph::RouterId;

/// One forwarding rule: destinations in `lo..hi` (endpoint ids) leave
/// through ECMP group `group` of the owning switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FibEntry {
    /// First endpoint id covered (inclusive).
    pub lo: u32,
    /// One past the last endpoint id covered (exclusive).
    pub hi: u32,
    /// Index into the owning switch's ECMP group table.
    pub group: u32,
}

/// Forwarding state of one switch: per-layer sorted rule vectors plus
/// the deduplicated ECMP group table they point into.
#[derive(Clone, Debug, Default)]
pub struct SwitchFib {
    /// `layers[tag]` = disjoint [`FibEntry`] ranges, ascending by `lo`.
    pub(crate) layers: Vec<Vec<FibEntry>>,
    /// Interned ECMP groups, in first-use order. Shared across layers
    /// and destinations: every rule resolving to the same candidate
    /// port set points at one slot, the ASIC group-table sharing that
    /// keeps ECMP state sublinear in rule count.
    pub(crate) groups: Vec<PortSet>,
}

impl SwitchFib {
    /// The rule covering endpoint `ep` on `layer`, if any.
    #[inline]
    pub fn lookup(&self, layer: usize, ep: u32) -> Option<&PortSet> {
        let rules = self.layers.get(layer)?;
        let i = rules.partition_point(|e| e.hi <= ep);
        let e = rules.get(i)?;
        (e.lo <= ep).then(|| &self.groups[e.group as usize])
    }

    /// Total rule count across all layers.
    pub fn num_entries(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Number of distinct ECMP groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The rules of `layer`, sorted and disjoint.
    pub fn rules(&self, layer: usize) -> &[FibEntry] {
        &self.layers[layer]
    }

    /// The ports of ECMP group `id`.
    pub fn group(&self, id: u32) -> &PortSet {
        &self.groups[id as usize]
    }
}

/// Per-switch hardware capacities the compiled state is judged against.
/// The defaults model a low-end commodity ToR profile — small enough
/// that host-route tables overflow on ≈250-router networks at nine
/// layers while aggregated tables on structured topologies fit, which
/// is exactly the contrast the paper's deployment argument turns on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableBudget {
    /// Prefix-rule (TCAM) capacity per switch.
    pub entries: u32,
    /// ECMP group (SRAM) capacity per switch.
    pub groups: u32,
}

impl Default for TableBudget {
    fn default() -> Self {
        TableBudget {
            entries: 2048,
            groups: 512,
        }
    }
}

/// Aggregate statistics of a [`Fib`], the `memory` experiment's raw
/// material.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FibStats {
    /// Number of switches compiled.
    pub switches: usize,
    /// Rule count before aggregation (one per reachable
    /// `(layer, destination router)` pair — the host-route floor).
    /// Identical across compile modes by construction.
    pub raw_entries: u64,
    /// Rules actually stored, summed over switches.
    pub entries_total: u64,
    /// Mean rules per switch.
    pub entries_mean: f64,
    /// Max rules on any one switch (the overflow-critical figure).
    pub entries_max: usize,
    /// ECMP groups summed over switches.
    pub groups_total: u64,
    /// Mean groups per switch.
    pub groups_mean: f64,
    /// Max groups on any one switch.
    pub groups_max: usize,
    /// `raw_entries / entries_total` (1.0 = no compression).
    pub compression: f64,
    /// Coarse byte estimate of the stored state (see
    /// [`Fib::memory_bytes`] for the model).
    pub bytes_total: u64,
}

/// Compiled forwarding state for every switch of one topology under one
/// routing scheme. Produced by [`compile`](crate::compile::compile).
#[derive(Clone, Debug)]
pub struct Fib {
    pub(crate) switches: Vec<SwitchFib>,
    /// Prefix sums of per-router endpoint counts (length `n + 1`):
    /// router `r` owns endpoint ids `endpoint_offset[r] ..
    /// endpoint_offset[r + 1]`. Copied from the topology at compile
    /// time so lookups need no `Topology` handle.
    pub(crate) endpoint_offset: Vec<u32>,
    pub(crate) tag_space: usize,
    pub(crate) raw_entries: u64,
    pub(crate) mode: CompileMode,
}

/// Modeled bytes per stored rule: an 8-byte range key (or equivalently
/// prefix + mask) plus a 4-byte group pointer.
pub const ENTRY_BYTES: u64 = 12;

/// Modeled bytes per ECMP group: a 4-byte header plus 2 bytes per
/// member port.
pub const GROUP_HDR_BYTES: u64 = 4;

impl Fib {
    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// The compiled state of switch `r`.
    pub fn switch(&self, r: RouterId) -> &SwitchFib {
        &self.switches[r as usize]
    }

    /// The layer-tag span compiled (`RoutingScheme::tag_space`).
    pub fn tag_space(&self) -> usize {
        self.tag_space
    }

    /// Which compile mode produced this state.
    pub fn mode(&self) -> CompileMode {
        self.mode
    }

    /// The candidate ports switch `at` holds for endpoint `ep` on
    /// `layer`, if any rule covers it.
    #[inline]
    pub fn lookup(&self, at: RouterId, layer: usize, ep: u32) -> Option<&PortSet> {
        self.switches[at as usize].lookup(layer, ep)
    }

    /// Router-keyed lookup used by the simulator adapter: resolves
    /// `dst_router` to its first attached endpoint and matches that.
    /// Must only be called for routers that host endpoints (the
    /// simulator only ever routes toward a flow's destination router,
    /// which does by construction).
    #[inline]
    pub fn lookup_router(
        &self,
        at: RouterId,
        layer: usize,
        dst_router: RouterId,
    ) -> Option<&PortSet> {
        let lo = self.endpoint_offset[dst_router as usize];
        debug_assert!(
            lo < self.endpoint_offset[dst_router as usize + 1],
            "router {dst_router} hosts no endpoints — nothing routes toward it"
        );
        self.lookup(at, layer, lo)
    }

    /// Aggregate table statistics.
    pub fn stats(&self) -> FibStats {
        let switches = self.switches.len().max(1);
        let entries_total: u64 = self.switches.iter().map(|s| s.num_entries() as u64).sum();
        let groups_total: u64 = self.switches.iter().map(|s| s.num_groups() as u64).sum();
        let entries_max = self
            .switches
            .iter()
            .map(SwitchFib::num_entries)
            .max()
            .unwrap_or(0);
        let groups_max = self
            .switches
            .iter()
            .map(SwitchFib::num_groups)
            .max()
            .unwrap_or(0);
        FibStats {
            switches: self.switches.len(),
            raw_entries: self.raw_entries,
            entries_total,
            entries_mean: entries_total as f64 / switches as f64,
            entries_max,
            groups_total,
            groups_mean: groups_total as f64 / switches as f64,
            groups_max,
            compression: if entries_total > 0 {
                self.raw_entries as f64 / entries_total as f64
            } else {
                1.0
            },
            bytes_total: self.memory_bytes(),
        }
    }

    /// Coarse byte estimate: [`ENTRY_BYTES`] per rule plus
    /// [`GROUP_HDR_BYTES`]` + 2·ports` per ECMP group.
    pub fn memory_bytes(&self) -> u64 {
        self.switches
            .iter()
            .map(|s| {
                s.num_entries() as u64 * ENTRY_BYTES
                    + s.groups
                        .iter()
                        .map(|g| GROUP_HDR_BYTES + 2 * g.len() as u64)
                        .sum::<u64>()
            })
            .sum()
    }

    /// Number of switches whose rule or group count exceeds `budget` —
    /// the state that would spill out of a real ASIC's tables.
    pub fn overflowing_switches(&self, budget: &TableBudget) -> usize {
        self.switches
            .iter()
            .filter(|s| {
                s.num_entries() > budget.entries as usize || s.num_groups() > budget.groups as usize
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rule_switch() -> SwitchFib {
        let mut g0 = PortSet::new();
        g0.push(1);
        g0.push(3);
        SwitchFib {
            layers: vec![vec![
                FibEntry {
                    lo: 0,
                    hi: 4,
                    group: 0,
                },
                FibEntry {
                    lo: 8,
                    hi: 10,
                    group: 1,
                },
            ]],
            groups: vec![g0, PortSet::single(7)],
        }
    }

    #[test]
    fn lookup_hits_ranges_and_misses_gaps() {
        let s = two_rule_switch();
        assert_eq!(s.lookup(0, 0).unwrap().as_slice(), &[1, 3]);
        assert_eq!(s.lookup(0, 3).unwrap().as_slice(), &[1, 3]);
        assert!(s.lookup(0, 4).is_none(), "gap between rules");
        assert_eq!(s.lookup(0, 9).unwrap().as_slice(), &[7]);
        assert!(s.lookup(0, 10).is_none(), "hi is exclusive");
        assert!(s.lookup(1, 0).is_none(), "no such layer");
        assert_eq!(s.num_entries(), 2);
        assert_eq!(s.num_groups(), 2);
    }

    #[test]
    fn budget_flags_overflow() {
        let fib = Fib {
            switches: vec![two_rule_switch(), SwitchFib::default()],
            endpoint_offset: vec![0, 10, 10],
            tag_space: 1,
            raw_entries: 4,
            mode: CompileMode::Aggregated,
        };
        assert_eq!(
            fib.overflowing_switches(&TableBudget {
                entries: 1,
                groups: 512
            }),
            1
        );
        assert_eq!(
            fib.overflowing_switches(&TableBudget {
                entries: 2048,
                groups: 1
            }),
            1
        );
        assert_eq!(fib.overflowing_switches(&TableBudget::default()), 0);
        let st = fib.stats();
        assert_eq!(st.entries_total, 2);
        assert_eq!(st.raw_entries, 4);
        assert_eq!(st.compression, 2.0);
        assert_eq!(st.entries_max, 2);
        // 2 rules · 12 B + group(2 ports) 8 B + group(1 port) 6 B.
        assert_eq!(st.bytes_total, 24 + 8 + 6);
    }
}
