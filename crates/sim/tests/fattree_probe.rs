//! Focused probe: NDP on a full-bisection fat tree should sustain high
//! per-flow throughput under a random permutation (it is the topology NDP
//! was designed for).

use fatpaths_net::topo::fattree::fat_tree;
use fatpaths_sim::{LoadBalancing, Scenario, SchemeSpec, Transport};
use fatpaths_workloads::arrivals::FlowSpec;
use fatpaths_workloads::patterns::Pattern;
use fatpaths_workloads::MIB;

#[test]
fn ndp_spray_on_fat_tree_permutation() {
    let topo = fat_tree(8, 1); // 128 endpoints, full bisection
    let pairs = Pattern::Permutation.flows(topo.num_endpoints() as u64, 3);
    let flows: Vec<FlowSpec> = pairs
        .iter()
        .filter(|&&(s, d)| topo.endpoint_router(s) != topo.endpoint_router(d))
        .map(|&(s, d)| FlowSpec {
            src: s,
            dst: d,
            size: MIB,
            start: 0,
        })
        .collect();
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .lb(LoadBalancing::PacketSpray)
        .transport(Transport::ndp_default())
        .workload(&flows)
        .run();
    let mean_tp: f64 = res
        .completed()
        .filter_map(|f| f.throughput_mib_s())
        .sum::<f64>()
        / res.flows.len() as f64;
    eprintln!(
        "flows={} trims={} drops={} mean TPF={:.1} MiB/s",
        res.flows.len(),
        res.trims,
        res.drops,
        mean_tp
    );
    assert_eq!(res.completion_rate(), 1.0);
    // A permutation on a non-blocking fat tree should approach line rate.
    assert!(
        mean_tp > 500.0,
        "mean {mean_tp} MiB/s too low for full-bisection FT"
    );
}
