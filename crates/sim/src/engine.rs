//! Discrete-event core: a deterministic time-ordered event queue and a
//! packet slab.
//!
//! Events at equal timestamps are ordered by insertion sequence, so runs
//! are bit-reproducible for a fixed seed regardless of platform.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in picoseconds.
pub type TimePs = u64;

/// Kinds of events the simulator processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvKind {
    /// A flow's start time arrived.
    FlowStart {
        /// Flow index.
        flow: u32,
    },
    /// A port's serializer finished; pop the next queued packet.
    PortPop {
        /// Port index.
        port: u32,
    },
    /// A packet arrives at a router (after link latency).
    ArriveRouter {
        /// Packet slab id.
        pkt: u32,
        /// Router id.
        router: u32,
    },
    /// A packet arrives at an endpoint.
    ArriveEndpoint {
        /// Packet slab id.
        pkt: u32,
        /// Endpoint id.
        ep: u32,
    },
    /// The endpoint may emit its next paced NDP PULL.
    PullTick {
        /// Endpoint id.
        ep: u32,
    },
    /// TCP retransmission timeout.
    RtoTimer {
        /// Flow index.
        flow: u32,
        /// Timer generation (stale timers are ignored).
        gen: u32,
    },
    /// Link `{u, v}` goes down: packets forwarded onto it are lost from
    /// this instant.
    LinkDown {
        /// One endpoint router.
        u: u32,
        /// The other endpoint router.
        v: u32,
    },
    /// Link `{u, v}` comes back up.
    LinkUp {
        /// One endpoint router.
        u: u32,
        /// The other endpoint router.
        v: u32,
    },
    /// Router `router` dies: every incident link goes down atomically
    /// and its attached endpoints stop injecting (flows starting while
    /// it is dead are accounted `host_dead`).
    RouterDown {
        /// The dying router.
        router: u32,
    },
    /// Router `router` comes back up: incident links whose other end is
    /// alive and not independently failed are restored, and its
    /// endpoints may inject again.
    RouterUp {
        /// The reviving router.
        router: u32,
    },
    /// The control plane noticed a link-state change (one detection
    /// delay after it): recompute the route-repair overlay from the
    /// current down-link set.
    RepairTick,
}

/// The deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(TimePs, u64, EvKindOrd)>>,
    seq: u64,
}

/// Wrapper giving `EvKind` a total order for heap storage (the order of
/// equal-time events is by push sequence; the kind order never matters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EvKindOrd(EvKind);

impl PartialOrd for EvKindOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EvKindOrd {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Schedules `kind` at absolute time `at`.
    pub fn push(&mut self, at: TimePs, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, EvKindOrd(kind))));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(TimePs, EvKind)> {
        self.heap.pop().map(|Reverse((t, _, k))| (t, k.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// What a packet is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PktKind {
    /// Payload-carrying data packet.
    Data,
    /// Acknowledgment (TCP cumulative; NDP per-packet).
    Ack,
    /// NDP "payload was trimmed" notification.
    Nack,
    /// NDP receiver-paced credit.
    Pull,
}

/// A packet in flight. Small enough to copy around freely.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Owning flow index.
    pub flow: u32,
    /// Packet index within the flow (data), or the cumulative-ack /
    /// sequence payload for control packets.
    pub seq: u32,
    /// Bytes on the wire (payload + header, or header only).
    pub wire_bytes: u32,
    /// Kind.
    pub kind: PktKind,
    /// Routing layer tag (FatPaths); 0 = minimal layer.
    pub layer: u8,
    /// Payload was trimmed by a congested NDP queue.
    pub trimmed: bool,
    /// ECN congestion-experienced mark.
    pub ecn_ce: bool,
    /// ECE echo on ACKs.
    pub ecn_echo: bool,
    /// Retransmission (NDP prioritizes these).
    pub retx: bool,
    /// Destination router.
    pub dst_router: u32,
    /// Destination endpoint.
    pub dst_ep: u32,
    /// Flowlet nonce (LetFlow router hashing).
    pub nonce: u64,
    /// Unique per-transmission salt (packet spraying).
    pub salt: u64,
    /// Receiver's suggested layer carried on PULL/NACK (0xff = none).
    pub suggest_layer: u8,
}

/// Fixed-capacity-free packet slab with id reuse.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    /// Stores a packet, returning its id.
    pub fn alloc(&mut self, p: Packet) -> u32 {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = p;
            id
        } else {
            self.slots.push(p);
            (self.slots.len() - 1) as u32
        }
    }

    /// Releases a packet id for reuse.
    pub fn release(&mut self, id: u32) {
        self.live -= 1;
        self.free.push(id);
    }

    /// Immutable access.
    pub fn get(&self, id: u32) -> &Packet {
        &self.slots[id as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: u32) -> &mut Packet {
        &mut self.slots[id as usize]
    }

    /// Packets currently allocated.
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::default();
        q.push(30, EvKind::PortPop { port: 3 });
        q.push(10, EvKind::PortPop { port: 1 });
        q.push(20, EvKind::PortPop { port: 2 });
        let order: Vec<TimePs> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::default();
        for i in 0..10u32 {
            q.push(5, EvKind::FlowStart { flow: i });
        }
        let flows: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, k)| match k {
                EvKind::FlowStart { flow } => flow,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn slab_reuses_ids() {
        let mut s = PacketSlab::default();
        let p = Packet {
            flow: 0,
            seq: 0,
            wire_bytes: 64,
            kind: PktKind::Ack,
            layer: 0,
            trimmed: false,
            ecn_ce: false,
            ecn_echo: false,
            retx: false,
            dst_router: 0,
            dst_ep: 0,
            nonce: 0,
            salt: 0,
            suggest_layer: 0xff,
        };
        let a = s.alloc(p);
        let b = s.alloc(p);
        assert_ne!(a, b);
        s.release(a);
        let c = s.alloc(p);
        assert_eq!(c, a);
        assert_eq!(s.live(), 2);
    }
}
