//! Path-diversity report: reproduces the §IV analysis for any topology at
//! small scale — minimal path statistics, CDP at increasing length bounds,
//! path interference, and the TNL bound.
//!
//! ```text
//! cargo run --release --example diversity_report [sf|df|hx|xp|jf|ft]
//! ```

use fatpaths::diversity::apsp::shortest_path_stats;
use fatpaths::diversity::cdp::{cdp, lmin_cmin, EdgeIds};
use fatpaths::diversity::interference::{pi_summary, sample_pi};
use fatpaths::diversity::tnl::tnl_minimal;
use fatpaths::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "sf".into());
    let kind = match which.as_str() {
        "df" => TopoKind::Dragonfly,
        "hx" => TopoKind::HyperX,
        "xp" => TopoKind::Xpander,
        "jf" => TopoKind::Jellyfish,
        "ft" => TopoKind::FatTree,
        _ => TopoKind::SlimFly,
    };
    let topo = build(kind, SizeClass::Small, 1);
    println!("== {} ==", topo.name);
    println!(
        "routers {}   endpoints {}   k' {}   edges {}",
        topo.num_routers(),
        topo.num_endpoints(),
        topo.network_radix(),
        topo.graph.m()
    );

    let stats = shortest_path_stats(&topo.graph);
    println!(
        "diameter {}   avg path length {:.3}",
        stats.diameter, stats.avg_path_length
    );
    for l in 1..=stats.diameter as usize {
        println!(
            "  distance {l}: {:>5.1}% of pairs",
            100.0 * stats.fraction_at(l)
        );
    }

    // Minimal-path diversity over sampled pairs (§IV-C1).
    let eids = EdgeIds::new(&topo.graph);
    let mut rng = StdRng::seed_from_u64(3);
    let nr = topo.num_routers() as u32;
    let pairs: Vec<(u32, u32)> = (0..200)
        .map(|_| loop {
            let a = rng.random_range(0..nr);
            let b = rng.random_range(0..nr);
            if a != b {
                break (a, b);
            }
        })
        .collect();
    let mut unique = 0;
    let mut three_plus_at_lmin1 = 0;
    for &(a, b) in &pairs {
        let (lm, cm) = lmin_cmin(&topo.graph, &eids, a, b);
        if cm <= 1 {
            unique += 1;
        }
        if cdp(&topo.graph, &eids, &[a], &[b], lm + 1) >= 3 {
            three_plus_at_lmin1 += 1;
        }
    }
    println!(
        "minimal paths: {:>4.0}% of pairs have exactly one (shortest paths fall short)",
        100.0 * unique as f64 / pairs.len() as f64
    );
    println!(
        "almost-minimal: {:>4.0}% of pairs have ≥3 disjoint paths at lmin+1 (the FatPaths resource)",
        100.0 * three_plus_at_lmin1 as f64 / pairs.len() as f64
    );

    // Path interference at d' = lmin+1 (§IV-C3).
    let dprime = stats.diameter + 1;
    let samples = sample_pi(&topo.graph, &eids, dprime, 200, 9);
    let (mean_pi, tail_pi) = pi_summary(&samples, 99.9);
    println!(
        "path interference at l={dprime}: mean {:.2} ({:.0}% of k'), 99.9% tail {}",
        mean_pi,
        100.0 * mean_pi / topo.network_radix() as f64,
        tail_pi
    );

    // Total network load bound (§IV-B3).
    let tnl = tnl_minimal(&topo, 3000);
    println!(
        "TNL bound: ≤ {:.0} concurrent conflict-free flows ({:.1} per endpoint)",
        tnl,
        tnl / topo.num_endpoints() as f64
    );
}
