//! Traffic patterns (§II-C).
//!
//! A pattern maps source endpoints to destination endpoints. The paper's
//! selection covers irregular workloads (random uniform, random
//! permutation), collectives (off-diagonals, shuffle), HPC stencils
//! (4-point off-diagonal combinations), and stress patterns (skewed
//! adversarial off-diagonal; the per-topology worst case lives in
//! `fatpaths-mcf::worstcase`).

use rand::prelude::*;
use rand::rngs::StdRng;

/// A traffic pattern over `N` endpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// `t(s)` uniform at random (fresh draw per source).
    Uniform,
    /// `t(s) = π(s)` for a u.a.r. permutation π.
    Permutation,
    /// `t(s) = (s + c) mod N`.
    OffDiagonal {
        /// The diagonal offset `c`.
        offset: u64,
    },
    /// `t(s) = rotl_i(s) mod N` — bitwise left rotation on `i` bits where
    /// `2^i < N ≤ 2^(i+1)` (MPI all-to-all-style shuffle).
    Shuffle,
    /// Multiple off-diagonals at fixed offsets (2D stencils use
    /// `{±1, ±42}`; large runs `{±1, ±1337}`), 4× oversubscribed.
    Stencil {
        /// Signed diagonal offsets, one flow per source per offset.
        offsets: Vec<i64>,
    },
    /// `k` independent random permutations in parallel (k× oversubscribed).
    MultiPermutation {
        /// Number of parallel permutations.
        k: usize,
    },
    /// Skewed off-diagonal with a large offset that is a multiple of the
    /// concentration `p`, so all `p` endpoints of a router collide on the
    /// same destination router (§VII-B2: "the traffic causes p-way
    /// collisions").
    AdversarialOffDiagonal {
        /// Concentration of the target topology.
        p: u64,
        /// Router-level offset multiplier.
        router_offset: u64,
    },
}

impl Pattern {
    /// Short label used in result files.
    pub fn label(&self) -> String {
        match self {
            Pattern::Uniform => "uniform".into(),
            Pattern::Permutation => "permutation".into(),
            Pattern::OffDiagonal { offset } => format!("offdiag{offset}"),
            Pattern::Shuffle => "shuffle".into(),
            Pattern::Stencil { offsets } => format!("stencil{}", offsets.len()),
            Pattern::MultiPermutation { k } => format!("{k}perms"),
            Pattern::AdversarialOffDiagonal { .. } => "adversarial".into(),
        }
    }

    /// The canonical 2D stencil of the paper: offsets `{±1, ±42}`.
    pub fn stencil_small() -> Pattern {
        Pattern::Stencil {
            offsets: vec![1, -1, 42, -42],
        }
    }

    /// Stencil for `N > 10,000` (offsets `{±1, ±1337}`, §II-C).
    pub fn stencil_large() -> Pattern {
        Pattern::Stencil {
            offsets: vec![1, -1, 1337, -1337],
        }
    }

    /// Generates the flow pair list `(src, dst)` over `n` endpoints.
    /// Self-flows are skipped. Deterministic in `seed`.
    pub fn flows(&self, n: u64, seed: u64) -> Vec<(u32, u32)> {
        assert!(n >= 2 && n <= u32::MAX as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        match self {
            Pattern::Uniform => {
                for s in 0..n {
                    let t = loop {
                        let t = rng.random_range(0..n);
                        if t != s {
                            break t;
                        }
                    };
                    out.push((s as u32, t as u32));
                }
            }
            Pattern::Permutation => {
                out = one_permutation(n, &mut rng);
            }
            Pattern::MultiPermutation { k } => {
                for _ in 0..*k {
                    out.extend(one_permutation(n, &mut rng));
                }
            }
            Pattern::OffDiagonal { offset } => {
                let c = offset % n;
                if c != 0 {
                    for s in 0..n {
                        out.push((s as u32, ((s + c) % n) as u32));
                    }
                }
            }
            Pattern::Shuffle => {
                let bits = (64 - (n - 1).leading_zeros() as u64 - 1).max(1); // 2^i < n
                for s in 0..n {
                    let t = rotl(s, bits as u32) % n;
                    if t != s {
                        out.push((s as u32, t as u32));
                    }
                }
            }
            Pattern::Stencil { offsets } => {
                for &c in offsets {
                    let c = c.rem_euclid(n as i64) as u64;
                    if c == 0 {
                        continue;
                    }
                    for s in 0..n {
                        out.push((s as u32, ((s + c) % n) as u32));
                    }
                }
            }
            Pattern::AdversarialOffDiagonal { p, router_offset } => {
                let c = (p * router_offset) % n;
                if c != 0 {
                    for s in 0..n {
                        out.push((s as u32, ((s + c) % n) as u32));
                    }
                }
            }
        }
        out
    }
}

/// Default adversarial pattern for a topology with `nr` routers and
/// concentration `p`: router-level offset ≈ `nr/2 + 1` (large, skewed).
pub fn adversarial_for(p: u32, nr: u32) -> Pattern {
    Pattern::AdversarialOffDiagonal {
        p: p as u64,
        router_offset: (nr / 2 + 1) as u64,
    }
}

fn one_permutation(n: u64, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    (0..n as u32).zip(perm).filter(|&(s, t)| s != t).collect()
}

/// Rotate the low `bits`+1 bits of `s` left by one position — the paper's
/// `rotl_i` shuffle on the smallest power of two ≥ N... here per-value.
fn rotl(s: u64, bits: u32) -> u64 {
    let width = bits + 1;
    let mask = (1u64 << width) - 1;
    let x = s & mask;
    let rotated = ((x << 1) | (x >> (width - 1))) & mask;
    (s & !mask) | rotated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijection() {
        let flows = Pattern::Permutation.flows(100, 3);
        let mut dsts: Vec<u32> = flows.iter().map(|&(_, t)| t).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), flows.len());
        assert!(flows.len() >= 94); // only a handful of fixed points removed
        assert!(flows.iter().all(|&(s, t)| s != t));
    }

    #[test]
    fn off_diagonal_wraps() {
        let flows = Pattern::OffDiagonal { offset: 3 }.flows(10, 0);
        assert_eq!(flows.len(), 10);
        assert_eq!(flows[9], (9, 2));
    }

    #[test]
    fn stencil_is_4x_oversubscribed() {
        let flows = Pattern::stencil_small().flows(1000, 1);
        assert_eq!(flows.len(), 4000);
    }

    #[test]
    fn adversarial_aligns_routers() {
        // With p=4 and router_offset=7, endpoints of router r all hit
        // router (r+7): p-way collisions on every router pair.
        let p = 4u64;
        let flows = Pattern::AdversarialOffDiagonal {
            p,
            router_offset: 7,
        }
        .flows(400, 0);
        for &(s, t) in &flows {
            assert_eq!((t as u64 / p + 100 - s as u64 / p) % 100, 7);
        }
    }

    #[test]
    fn shuffle_is_deterministic_and_nontrivial() {
        let a = Pattern::Shuffle.flows(100, 1);
        let b = Pattern::Shuffle.flows(100, 2);
        assert_eq!(a, b); // seed-independent by construction
        assert!(!a.is_empty());
        assert!(a.iter().all(|&(s, t)| s != t));
    }

    #[test]
    fn uniform_deterministic_in_seed() {
        let a = Pattern::Uniform.flows(50, 9);
        let b = Pattern::Uniform.flows(50, 9);
        let c = Pattern::Uniform.flows(50, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn multi_permutation_count() {
        let flows = Pattern::MultiPermutation { k: 4 }.flows(64, 5);
        assert!(flows.len() >= 4 * 62 && flows.len() <= 4 * 64);
    }
}
