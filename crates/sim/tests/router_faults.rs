//! Whole-router failures through the public scenario API: a dead router
//! atomically loses all incident links, its endpoints drop out of the
//! workload (`host_dead`, distinct from `unroutable`), and timed
//! `RouterDown`/`RouterUp` events model reboots that strand in-flight
//! flows only until the router returns.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_net::fault::FaultPlan;
use fatpaths_net::topo::slimfly::slim_fly;
use fatpaths_net::topo::Topology;
use fatpaths_sim::{Scenario, SchemeSpec, SimConfig, Simulator};
use fatpaths_workloads::arrivals::FlowSpec;

fn permutation(topo: &Topology, offset: u64, start: u64) -> Vec<FlowSpec> {
    let n = topo.num_endpoints() as u64;
    (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size: 64 * 1024,
            start,
        })
        .filter(|f| f.src != f.dst)
        .collect()
}

/// Statically dead router: all incident links down, hosts dead.
#[test]
fn static_router_down_kills_links_and_hosts() {
    let topo = slim_fly(5, 2).unwrap();
    let ls = build_random_layers(&topo.graph, &LayerConfig::new(4, 0.6, 3));
    let rt = RoutingTables::build(&topo.graph, &ls);
    let mut sim = Simulator::new(&topo, &rt, SimConfig::default());
    sim.apply_fault_plan(&FaultPlan::none().fail_router(11));
    assert!(sim.router_is_dead(11));
    assert!(!sim.router_is_dead(10));
    for &nb in topo.graph.neighbors(11) {
        assert!(sim.link_is_down(11, nb));
    }
}

/// Flows whose endpoint sits behind a statically dead router are
/// `host_dead`; every flow between live hosts still completes (the
/// degraded SF stays connected, and detection + repair reroutes).
#[test]
fn host_dead_accounting_excludes_dead_hosts_only() {
    let topo = slim_fly(5, 2).unwrap();
    let dead = 11u32;
    let flows = permutation(&topo, 21, 0);
    let dead_eps: Vec<u32> = topo.router_endpoints(dead).collect();
    let expect_dead = flows
        .iter()
        .filter(|f| dead_eps.contains(&f.src) || dead_eps.contains(&f.dst))
        .count();
    assert!(expect_dead > 0, "the dead router must host endpoints");
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .workload(&flows)
        .seed(2)
        .detection_delay(50_000_000)
        .fault_plan(FaultPlan::none().fail_router(dead))
        .run();
    assert_eq!(res.host_dead(), expect_dead);
    assert_eq!(res.eligible().count(), flows.len() - expect_dead);
    // Router-dead vs links-dead separability: every eligible flow
    // completes, so nothing host-dead leaked into "stranded" and
    // nothing stranded leaked into "host_dead".
    assert_eq!(
        res.completed().count(),
        flows.len() - expect_dead,
        "an eligible flow was stranded"
    );
    assert_eq!(res.completion_rate(), 1.0);
    // host_dead flows have no finish time.
    assert!(res
        .flows
        .iter()
        .filter(|f| f.host_dead)
        .all(|f| f.finish.is_none()));
}

/// A rebooting router strands its hosts' in-flight flows only until it
/// returns: flows started before the reboot finish after the `RouterUp`,
/// and flows started mid-downtime are `host_dead`.
#[test]
fn reboot_strands_flows_until_revival() {
    let topo = slim_fly(5, 2).unwrap();
    let reboot = 11u32;
    let ep = topo.router_endpoints(reboot).start;
    let other = topo.router_endpoints(30).start;
    let peer = topo.router_endpoints(31).start;
    // The 256 KiB flow needs ≈ 240 µs healthy; cut it at 100 µs and
    // revive the router at 600 µs.
    let down_at = 100_000_000u64; // 100 µs in ps
    let up_at = 600_000_000u64; // 600 µs in ps
    let flows = [
        // Starts healthy, gets cut mid-flight, resumes after revival.
        FlowSpec {
            src: ep,
            dst: other,
            size: 256 * 1024,
            start: 0,
        },
        // Starts while its source router is dead: host_dead.
        FlowSpec {
            src: ep,
            dst: peer,
            size: 64 * 1024,
            start: down_at + 1_000_000,
        },
        // Between live hosts throughout: completes normally.
        FlowSpec {
            src: other,
            dst: peer,
            size: 64 * 1024,
            start: down_at + 1_000_000,
        },
    ];
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .workload(&flows)
        .seed(2)
        .fault_plan(
            FaultPlan::none()
                .router_down_at(down_at, reboot)
                .router_up_at(up_at, reboot),
        )
        .run();
    assert_eq!(res.host_dead(), 1);
    assert!(res.flows[1].host_dead);
    // The cut flow completed, but only after the router came back.
    let finish = res.flows[0].finish.expect("cut flow must finish");
    assert!(
        finish > up_at,
        "flow through the rebooting router finished at {finish} before the revival at {up_at}"
    );
    // The live-host flow was oblivious to the reboot.
    assert!(res.flows[2].finish.is_some());
    assert!(!res.flows[2].host_dead);
}
