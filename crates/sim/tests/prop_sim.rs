//! Property-based tests for the simulators: determinism, physical lower
//! bounds, and fluid-model conservation.

use fatpaths_core::ecmp::DistanceMatrix;
use fatpaths_core::scheme::MinimalScheme;
use fatpaths_net::topo::star::star;
use fatpaths_sim::fluid::max_min_rates;
use fatpaths_sim::{LoadBalancing, SimConfig, Simulator, Transport};
use fatpaths_workloads::arrivals::FlowSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fct_never_beats_physics(size in 10_000u64..2_000_000, ndp in any::<bool>()) {
        let topo = star(4);
        let dm = DistanceMatrix::build(&topo.graph);
        let ms = MinimalScheme::new(&topo.graph, &dm);
        let cfg = SimConfig {
            transport: if ndp {
                Transport::ndp_default()
            } else {
                Transport::tcp_default(fatpaths_sim::TcpVariant::Reno)
            },
            lb: LoadBalancing::EcmpFlow,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topo, &ms, cfg);
        sim.add_flows(&[FlowSpec { src: 0, dst: 1, size, start: 0 }]);
        let res = sim.run();
        prop_assert_eq!(res.completion_rate(), 1.0);
        let fct = res.flows[0].fct_s().unwrap();
        // Lower bound: payload serialization at 10 Gb/s.
        let ideal = size as f64 * 8.0 / 10e9;
        prop_assert!(fct >= ideal, "fct {fct} < physical bound {ideal}");
        // Sanity upper bound for a lone flow: 40x the ideal time + 1 ms.
        prop_assert!(fct <= ideal * 40.0 + 1e-3, "lone flow too slow: {fct}");
    }

    #[test]
    fn simulation_deterministic(nflows in 2u32..20, size in 50_000u64..500_000) {
        let topo = star(32);
        let dm = DistanceMatrix::build(&topo.graph);
        let ms = MinimalScheme::new(&topo.graph, &dm);
        let flows: Vec<FlowSpec> = (0..nflows)
            .map(|i| FlowSpec { src: i, dst: (i + 13) % 32, size, start: i as u64 * 777 })
            .collect();
        let run = || {
            let mut sim = Simulator::new(
                &topo,
                &ms,
                SimConfig { lb: LoadBalancing::EcmpFlow, ..SimConfig::default() },
            );
            sim.add_flows(&flows);
            sim.run()
        };
        let (a, b) = (run(), run());
        for (x, y) in a.flows.iter().zip(&b.flows) {
            prop_assert_eq!(x.finish, y.finish);
        }
    }

    #[test]
    fn max_min_never_oversubscribes(
        paths in prop::collection::vec(prop::collection::vec(0u32..12, 1..4), 1..30)
    ) {
        let rates = max_min_rates(&paths, 12, 5.0);
        let mut per_link = [0.0f64; 12];
        for (p, &r) in paths.iter().zip(&rates) {
            prop_assert!(r > 0.0, "starved flow");
            let mut seen = std::collections::HashSet::new();
            for &l in p {
                if seen.insert(l) {
                    per_link[l as usize] += r;
                }
            }
        }
        // NOTE: duplicate links within one path count once above because a
        // flow cannot use the same link twice in a simple path model.
        for (l, &u) in per_link.iter().enumerate() {
            prop_assert!(u <= 5.0 * (1.0 + 1e-6), "link {l} oversubscribed: {u}");
        }
    }
}
