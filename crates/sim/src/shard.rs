//! The sharded execution core: per-region event queues, packet arenas,
//! and network state, synchronized by conservative lookahead.
//!
//! The topology's routers (and their endpoints) are partitioned into K
//! shards ([`partition_routers`]: whole `Topology::domains` where they
//! cover the network, a BFS-balanced split otherwise). Each [`Shard`]
//! owns the output ports, flow halves, and event queue for its region
//! and runs windows of `[t0, t0 + L)` where the lookahead `L` is the
//! minimum cross-shard link latency (links are homogeneous, so `L =
//! SimConfig::link_latency`): every packet handoff takes at least
//! serialization + latency ≥ L, so events a shard processes inside a
//! window cannot be affected by any other shard's events in the same
//! window. Cross-shard packets go through per-shard-pair mailboxes
//! ([`deliver_mailboxes`]) merged deterministically by `(time,
//! src_shard, seq)` — never by arrival order — and the queues order
//! equal-time events by canonical content keys (see `crate::engine`),
//! so results are bit-identical at any shard and thread count.
//!
//! Flow state is split by side so no hot-path read ever crosses a
//! shard: [`FlowMeta`] (immutable) is shared read-only, [`TxFlow`]
//! lives on the sender's shard, [`RxFlow`] on the receiver's. Fault
//! state (down links, dead routers, repair overlay) is *replicated*:
//! every fault event derives statically from the `FaultPlan`, so each
//! shard plays the identical event sequence against its own replica
//! and recomputes the identical repair overlay — K× control-plane
//! work, zero synchronization.

use crate::config::{LoadBalancing, SimConfig, Transport, HDR_BYTES};
use crate::engine::{EvKind, EventQueue, Packet, PacketSlab, PktKind, TimePs};
use crate::metrics::RepairTickRecord;
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::topo::Topology;
use fatpaths_workloads::arrivals::FlowSpec;
use std::collections::VecDeque;

/// An output port: serializer + queues, owned by exactly one shard.
pub(crate) struct Port {
    pub to_is_router: bool,
    pub to: u32,
    pub busy: bool,
    pub data_q: VecDeque<u32>,
    pub prio_q: VecDeque<u32>,
}

impl Port {
    pub(crate) fn new(to_is_router: bool, to: u32) -> Self {
        Port {
            to_is_router,
            to,
            busy: false,
            data_q: VecDeque::new(),
            prio_q: VecDeque::new(),
        }
    }
}

/// Where a sharded object lives: which shard, and at which local index.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SlotRef {
    pub shard: u32,
    pub idx: u32,
}

/// Immutable per-flow facts, shared read-only by every shard.
pub(crate) struct FlowMeta {
    pub src_ep: u32,
    pub dst_ep: u32,
    pub src_router: u32,
    pub dst_router: u32,
    pub size: u64,
    pub start: TimePs,
    pub num_pkts: u32,
    /// MPTCP subflow: layer is pinned, never re-picked.
    pub pinned_layer: Option<u8>,
    /// Congestion-avoidance increase factor (LIA coupling: 1/k).
    pub ca_scale: f64,
    pub init_nonce: u64,
    pub init_layer: u8,
}

impl FlowMeta {
    pub(crate) fn new(
        spec: &FlowSpec,
        topo: &Topology,
        payload: u32,
        init_nonce: u64,
        init_layer: u8,
        pinned_layer: Option<u8>,
        ca_scale: f64,
    ) -> Self {
        FlowMeta {
            src_ep: spec.src,
            dst_ep: spec.dst,
            src_router: topo.endpoint_router(spec.src),
            dst_router: topo.endpoint_router(spec.dst),
            size: spec.size,
            start: spec.start,
            num_pkts: spec.size.div_ceil(payload as u64).max(1) as u32,
            pinned_layer,
            ca_scale,
            init_nonce,
            init_layer,
        }
    }

    pub(crate) fn payload_of(&self, seq: u32, payload: u32) -> u32 {
        if seq + 1 == self.num_pkts {
            (self.size - (self.num_pkts as u64 - 1) * payload as u64) as u32
        } else {
            payload
        }
    }
}

/// Sender-side flow state, owned by the source router's shard.
pub(crate) struct TxFlow {
    pub started: bool,
    pub next_new: u32,
    pub retxq: VecDeque<u32>,
    pub cum_ack: u32,
    /// Per-sequence ack bitmap (NDP): the sender's own view of what the
    /// receiver holds — replaces the pre-shard read of the receiver's
    /// `received` bitmap, which may live on another shard.
    pub acked: Vec<u64>,
    pub acked_count: u32,
    pub inflight: u32,
    // load balancing
    pub layer: u8,
    pub nonce: u64,
    pub last_tx: TimePs,
    pub flowlet_ctr: u32,
    /// Transmission counter feeding the packet uid (`Packet::salt`).
    pub uid_ctr: u32,
    // counters
    pub retx_count: u32,
    pub rto_gen: u32,
    pub backoff: u32,
    // TCP congestion state (unused in NDP mode)
    pub cwnd: f64,
    pub ssthresh: f64,
    pub dup_acks: u32,
    pub in_recovery: bool,
    pub recovery_until: u32,
    pub srtt: f64,
    pub rttvar: f64,
    pub timed: Option<(u32, TimePs)>,
    // ECN / DCTCP
    pub ce_marked: u32,
    pub ce_total: u32,
    pub alpha: f64,
    pub window_end: u32,
    pub cwr: bool,
    /// A window reduction requested a path switch; applied once the
    /// pipe is nearly empty (reorder-safe) or at a flowlet gap.
    pub want_switch: bool,
    /// The flow was never injected: its source or destination host sat
    /// behind a dead router at start time.
    pub host_dead: bool,
    /// RTOs burned while an endpoint was dead (only tracked when
    /// `SimConfig::abort_on_host_death` is set).
    pub dead_rtos: u32,
    /// Aborted mid-transfer (dead-RTO budget exhausted): terminal.
    pub aborted: bool,
}

impl TxFlow {
    pub(crate) fn new(m: &FlowMeta) -> Self {
        TxFlow {
            started: false,
            next_new: 0,
            retxq: VecDeque::new(),
            cum_ack: 0,
            acked: vec![0u64; m.num_pkts.div_ceil(64) as usize],
            acked_count: 0,
            inflight: 0,
            layer: m.init_layer,
            nonce: m.init_nonce,
            last_tx: 0,
            flowlet_ctr: 0,
            uid_ctr: 0,
            retx_count: 0,
            rto_gen: 0,
            backoff: 0,
            cwnd: 4.0,
            ssthresh: 1e9,
            dup_acks: 0,
            in_recovery: false,
            recovery_until: 0,
            srtt: 0.0,
            rttvar: 0.0,
            timed: None,
            ce_marked: 0,
            ce_total: 0,
            alpha: 0.0,
            window_end: 0,
            cwr: false,
            want_switch: false,
            host_dead: false,
            dead_rtos: 0,
            aborted: false,
        }
    }

    /// Records a per-sequence ack; returns whether it was new.
    pub(crate) fn mark_acked(&mut self, seq: u32) -> bool {
        let (w, b) = ((seq / 64) as usize, seq % 64);
        if self.acked[w] >> b & 1 == 1 {
            return false;
        }
        self.acked[w] |= 1 << b;
        self.acked_count += 1;
        true
    }

    pub(crate) fn is_acked(&self, seq: u32) -> bool {
        self.acked[(seq / 64) as usize] >> (seq % 64) & 1 == 1
    }
}

/// Receiver-side flow state, owned by the destination router's shard.
pub(crate) struct RxFlow {
    pub received: Vec<u64>,
    pub rcv_count: u32,
    pub rcv_next: u32,
    pub finished: Option<TimePs>,
    pub trims: u32,
    pub rx_suggest: u8,
    /// Layer the receiver last saw data on; control packets ride it
    /// back (a layer the forward direction proved alive).
    pub rx_last_layer: u8,
    /// Nonce of the last data packet seen: control packets echo it so
    /// LetFlow hashing of the reverse path tracks the sender's flowlet
    /// without a cross-shard read of the live sender nonce.
    pub last_nonce: u64,
    /// Receiver-side transmission counter feeding control-packet uids.
    pub uid_ctr: u32,
}

impl RxFlow {
    pub(crate) fn new(m: &FlowMeta) -> Self {
        RxFlow {
            received: vec![0u64; m.num_pkts.div_ceil(64) as usize],
            rcv_count: 0,
            rcv_next: 0,
            finished: None,
            trims: 0,
            rx_suggest: 0xff,
            rx_last_layer: 0,
            last_nonce: m.init_nonce,
            uid_ctr: 0,
        }
    }

    pub(crate) fn mark_received(&mut self, seq: u32) -> bool {
        let (w, b) = ((seq / 64) as usize, seq % 64);
        if self.received[w] >> b & 1 == 1 {
            return false;
        }
        self.received[w] |= 1 << b;
        self.rcv_count += 1;
        while self.rcv_next < (self.received.len() * 64) as u32
            && self.received[(self.rcv_next / 64) as usize] >> (self.rcv_next % 64) & 1 == 1
        {
            self.rcv_next += 1;
        }
        true
    }
}

/// A boundary packet in a per-shard-pair mailbox.
pub(crate) struct OutMsg {
    pub at: TimePs,
    pub to: u32,
    pub to_is_router: bool,
    pub pkt: Packet,
}

/// Read-only context shared by every shard during a run: topology,
/// scheme, config, flow metadata, and the global→local index maps.
/// `Sync` by construction (all shared references; `RoutingScheme`
/// requires `Sync`), so one `&Ctx` is captured by all shard workers.
pub(crate) struct Ctx<'a, R: ?Sized> {
    pub topo: &'a Topology,
    pub scheme: &'a R,
    pub cfg: SimConfig,
    pub meta: &'a [FlowMeta],
    pub tx_home: &'a [SlotRef],
    pub rx_home: &'a [SlotRef],
    /// Global first-port id of each router's net ports.
    pub net_base: &'a [u32],
    /// Global first-port id of each router's endpoint down-ports.
    pub down_base: &'a [u32],
    /// Global first-port id of the endpoint NIC up-ports.
    pub up_base: u32,
    /// Global port id → owning shard + local index.
    pub port_home: &'a [SlotRef],
    /// Endpoint id → owning shard + local pull-queue index.
    pub ep_home: &'a [SlotRef],
    /// Router id → owning shard.
    pub router_shard: &'a [u32],
    /// Cached `scheme.num_layers()`.
    pub n_layers: usize,
}

impl<R: ?Sized> Ctx<'_, R> {
    #[inline]
    pub(crate) fn meta(&self, flow: u32) -> &FlowMeta {
        &self.meta[flow as usize]
    }

    #[inline]
    pub(crate) fn tx_idx(&self, flow: u32) -> usize {
        self.tx_home[flow as usize].idx as usize
    }

    #[inline]
    pub(crate) fn rx_idx(&self, flow: u32) -> usize {
        self.rx_home[flow as usize].idx as usize
    }

    #[inline]
    pub(crate) fn port_idx(&self, port: u32) -> usize {
        self.port_home[port as usize].idx as usize
    }

    #[inline]
    pub(crate) fn ep_idx(&self, ep: u32) -> usize {
        self.ep_home[ep as usize].idx as usize
    }
}

/// One region's simulation state: event queue, packet arena, ports,
/// flow halves, and a full replica of the fault/repair state.
pub(crate) struct Shard {
    pub id: u32,
    pub now: TimePs,
    /// Time of the last event this shard processed (for `end_time`).
    pub last_t: TimePs,
    pub events: EventQueue,
    pub packets: PacketSlab,
    /// This shard's output ports, in global-id order.
    pub ports: Vec<Port>,
    /// Sender-side flow halves owned here.
    pub tx: Vec<TxFlow>,
    /// Receiver-side flow halves owned here.
    pub rx: Vec<RxFlow>,
    // NDP receiver pull pacing, for endpoints owned here.
    pub pullq: Vec<VecDeque<u32>>,
    pub pull_ready: Vec<TimePs>,
    // counters
    pub drops: u64,
    pub trim_count: u64,
    pub unroutable: u64,
    pub host_dead: u64,
    /// Flows resolved this window (completed, aborted, or host-dead);
    /// drained by the driver into its global termination bitset.
    pub resolved: Vec<u32>,
    /// Outgoing boundary packets, one mailbox per destination shard.
    pub outbox: Vec<Vec<OutMsg>>,
    // ---- replicated fault state (identical across shards) ----
    /// Down-state bitmask, one bit per *global* output port.
    pub port_down: Vec<u64>,
    pub down_count: u32,
    /// Currently-down links in canonical form (feeds route repair):
    /// links failed in their own right plus links incident to a dead
    /// router.
    pub down_links: Vec<(u32, u32)>,
    /// Links failed in their own right, kept apart from `down_links` so
    /// a reviving router does not resurrect an independently cut link.
    pub link_failed: rustc_hash::FxHashSet<(u32, u32)>,
    pub router_dead: Vec<bool>,
    pub dead_router_count: u32,
    /// Time of the currently scheduled repair pass, if any (burst
    /// coalescing: one `RepairTick` per event batch).
    pub repair_at: Option<TimePs>,
    /// Scheme-computed repaired rows (empty until a detection fires).
    pub repair: RouteRepair,
    /// One record per executed repair pass; identical on every shard.
    pub repair_log: Vec<RepairTickRecord>,
}

impl Shard {
    pub(crate) fn new(id: u32, n_shards: usize, n_ports_total: usize, n_routers: usize) -> Self {
        Shard {
            id,
            now: 0,
            last_t: 0,
            events: EventQueue::default(),
            packets: PacketSlab::default(),
            ports: Vec::new(),
            tx: Vec::new(),
            rx: Vec::new(),
            pullq: Vec::new(),
            pull_ready: Vec::new(),
            drops: 0,
            trim_count: 0,
            unroutable: 0,
            host_dead: 0,
            resolved: Vec::new(),
            outbox: (0..n_shards).map(|_| Vec::new()).collect(),
            port_down: vec![0u64; n_ports_total.div_ceil(64)],
            down_count: 0,
            down_links: Vec::new(),
            link_failed: rustc_hash::FxHashSet::default(),
            router_dead: vec![false; n_routers],
            dead_router_count: 0,
            repair_at: None,
            repair: RouteRepair::none(),
            repair_log: Vec::new(),
        }
    }

    /// Runs this shard's events in `[peek, w_end)`, stopping at the
    /// horizon. Window boundaries are exclusive so every shard agrees on
    /// which events belong to which window.
    pub(crate) fn run_window<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        w_end: TimePs,
        horizon: TimePs,
    ) {
        while let Some(t) = self.events.peek_time() {
            if t >= w_end || (horizon > 0 && t > horizon) {
                return;
            }
            let (t, ev) = self.events.pop().expect("peeked");
            self.now = t;
            self.last_t = t;
            self.dispatch(cx, ev);
        }
    }

    pub(crate) fn dispatch<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, ev: EvKind) {
        match ev {
            EvKind::FlowStart { flow } => self.on_flow_start(cx, flow),
            EvKind::PortPop { port } => {
                debug_assert_eq!(cx.port_home[port as usize].shard, self.id);
                self.ports[cx.port_idx(port)].busy = false;
                self.port_try_start(cx, port);
            }
            EvKind::ArriveRouter { pkt, router } => self.on_router_arrive(cx, router, pkt),
            EvKind::ArriveEndpoint { pkt, ep } => self.on_endpoint_arrive(cx, ep, pkt),
            EvKind::PullTick { ep } => self.ndp_pull_tick(cx, ep),
            EvKind::RtoTimer { flow, gen } => self.on_rto(cx, flow, gen),
            EvKind::LinkDown { u, v } => {
                self.fail_link_now(cx.topo, cx.net_base, u, v);
                self.schedule_repair(cx.cfg.detection_delay);
            }
            EvKind::LinkUp { u, v } => {
                self.restore_link_now(cx.topo, cx.net_base, u, v);
                self.schedule_repair(cx.cfg.detection_delay);
            }
            EvKind::RouterDown { router } => {
                self.set_router_state(cx.topo, cx.net_base, router, false);
                self.schedule_repair(cx.cfg.detection_delay);
            }
            EvKind::RouterUp { router } => {
                self.set_router_state(cx.topo, cx.net_base, router, true);
                self.schedule_repair(cx.cfg.detection_delay);
            }
            EvKind::RepairTick => {
                if self.repair_at == Some(self.now) {
                    self.repair_at = None;
                }
                self.recompute_repair(cx);
                self.repair_log.push(RepairTickRecord {
                    at: self.now,
                    rows: self.repair.len() as u64,
                    fib_rows: self.repair.fib_rows_rewritten,
                });
            }
        }
    }

    fn on_flow_start<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        if self.dead_router_count != 0 {
            let m = cx.meta(flow);
            if self.router_dead[m.src_router as usize] || self.router_dead[m.dst_router as usize] {
                // Workload filtering for whole-node failures: a flow
                // whose host is dead at start time is excluded and
                // accounted `host_dead` — it is not the network's
                // failure to deliver (`unroutable`), the host itself is
                // gone.
                self.tx[cx.tx_idx(flow)].host_dead = true;
                self.host_dead += 1;
                self.resolved.push(flow);
                return;
            }
        }
        self.tx[cx.tx_idx(flow)].started = true;
        match cx.cfg.transport {
            Transport::Ndp { initial_window, .. } => self.ndp_start(cx, flow, initial_window),
            Transport::Tcp { .. } => self.tcp_start(cx, flow),
        }
    }

    // ---- link layer -----------------------------------------------------

    /// Enqueues a packet at a router output port, applying the queue
    /// policy (trim / drop / mark). `port` is a global id owned here.
    pub(crate) fn router_enqueue<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        port: u32,
        pid: u32,
    ) {
        match cx.cfg.transport {
            Transport::Ndp { queue_pkts, .. } => {
                let (is_data, is_retx) = {
                    let p = self.packets.get(pid);
                    (p.kind == PktKind::Data && !p.trimmed, p.retx)
                };
                let li = cx.port_idx(port);
                if is_data {
                    if (self.ports[li].data_q.len() as u32) < queue_pkts {
                        // Retransmissions jump the data queue (they unblock
                        // stalled receivers, §III-C) but still count against
                        // the shallow limit — a payload is a payload.
                        if is_retx {
                            self.ports[li].data_q.push_front(pid);
                        } else {
                            self.ports[li].data_q.push_back(pid);
                        }
                    } else {
                        // Trim: drop payload, keep the header, prioritize.
                        let p = self.packets.get_mut(pid);
                        p.trimmed = true;
                        p.wire_bytes = HDR_BYTES;
                        self.trim_count += 1;
                        self.push_prio_bounded(li, pid);
                    }
                } else {
                    self.push_prio_bounded(li, pid);
                }
            }
            Transport::Tcp {
                queue_pkts,
                ecn_threshold,
                ..
            } => {
                let li = cx.port_idx(port);
                let depth = self.ports[li].data_q.len() as u32;
                if depth >= queue_pkts {
                    self.drops += 1;
                    self.packets.release(pid);
                    return;
                }
                if depth >= ecn_threshold {
                    self.packets.get_mut(pid).ecn_ce = true;
                }
                self.ports[li].data_q.push_back(pid);
            }
        }
        self.port_try_start(cx, port);
    }

    fn push_prio_bounded(&mut self, local_port: usize, pid: u32) {
        let q = &mut self.ports[local_port];
        if q.prio_q.len() >= 1024 {
            self.drops += 1;
            self.packets.release(pid);
        } else {
            q.prio_q.push_back(pid);
        }
    }

    /// Enqueues onto an endpoint NIC (no drops: window-bounded).
    pub(crate) fn nic_enqueue<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        ep: u32,
        pid: u32,
    ) {
        let port = cx.up_base + ep;
        debug_assert_eq!(cx.port_home[port as usize].shard, self.id);
        let is_control = self.packets.get(pid).kind != PktKind::Data;
        let q = &mut self.ports[cx.port_idx(port)];
        if is_control {
            q.prio_q.push_back(pid);
        } else {
            q.data_q.push_back(pid);
        }
        self.port_try_start(cx, port);
    }

    /// Starts the serializer on `port` if idle. The arrival is pushed
    /// locally when the far end is on this shard, otherwise the packet
    /// is copied into the destination shard's mailbox (its local slab
    /// slot is released — slab ids are shard-private).
    fn port_try_start<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, port: u32) {
        let (pid, to_is_router, to) = {
            let q = &mut self.ports[cx.port_idx(port)];
            if q.busy {
                return;
            }
            let Some(pid) = q.prio_q.pop_front().or_else(|| q.data_q.pop_front()) else {
                return;
            };
            q.busy = true;
            (pid, q.to_is_router, q.to)
        };
        let bytes = self.packets.get(pid).wire_bytes;
        let ser = cx.cfg.ser_time(bytes);
        self.events.push(self.now + ser, EvKind::PortPop { port });
        let arrive = self.now + ser + cx.cfg.link_latency;
        let tshard = if to_is_router {
            cx.router_shard[to as usize]
        } else {
            cx.ep_home[to as usize].shard
        };
        if tshard == self.id {
            let uid = self.packets.get(pid).salt;
            let kind = if to_is_router {
                EvKind::ArriveRouter {
                    pkt: pid,
                    router: to,
                }
            } else {
                EvKind::ArriveEndpoint { pkt: pid, ep: to }
            };
            self.events.push_arrival(arrive, kind, uid);
        } else {
            let pkt = *self.packets.get(pid);
            self.packets.release(pid);
            self.outbox[tshard as usize].push(OutMsg {
                at: arrive,
                to,
                to_is_router,
                pkt,
            });
        }
    }

    // ---- routing ---------------------------------------------------------

    fn on_router_arrive<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, r: u32, pid: u32) {
        debug_assert_eq!(cx.router_shard[r as usize], self.id);
        if self.dead_router_count != 0 && self.router_dead[r as usize] {
            // The router died while this packet was in flight toward it
            // (or a local endpoint is still draining its NIC): a dead
            // router forwards nothing.
            self.drops += 1;
            self.packets.release(pid);
            return;
        }
        let (dst_router, dst_ep, layer) = {
            let p = self.packets.get(pid);
            (p.dst_router, p.dst_ep, p.layer)
        };
        // Per-hop layer rewrite (Valiant phase switch; identity for
        // single-phase schemes).
        if dst_router != r {
            let nl = cx.scheme.update_layer(layer, r, dst_router);
            if nl != layer {
                self.packets.get_mut(pid).layer = nl;
            }
        }
        let port = if dst_router == r {
            let first = cx.topo.router_endpoints(r).start;
            cx.down_base[r as usize] + (dst_ep - first)
        } else {
            let Some(sel) = self.select_port(cx, r, pid) else {
                // No live candidate port: the destination is unreachable
                // from here in the degraded network.
                self.unroutable += 1;
                self.packets.release(pid);
                return;
            };
            let port = cx.net_base[r as usize] + sel as u32;
            if self.down_count != 0 && self.is_port_down(port) {
                // Link down (not yet repaired, or the scheme cannot
                // repair): the packet is lost; end-to-end recovery
                // redirects the flow to another layer (§V-G).
                self.drops += 1;
                self.packets.release(pid);
                return;
            }
            port
        };
        self.router_enqueue(cx, port, pid);
    }

    fn select_port<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        r: u32,
        pid: u32,
    ) -> Option<u16> {
        let p = *self.packets.get(pid);
        // Repaired rows (installed one detection delay after link-state
        // changes) shadow the scheme's original tables.
        let repaired_row = if self.repair.is_empty() {
            None
        } else {
            self.repair.lookup(p.layer, r, p.dst_router)
        };
        let scheme_row;
        let cands: &[u16] = match repaired_row {
            Some(e) => e.as_slice(),
            None => {
                scheme_row = cx.scheme.candidate_ports(p.layer, r, p.dst_router);
                scheme_row.as_slice()
            }
        };
        debug_assert!(
            !cands.is_empty() || self.down_count != 0 || !self.repair.is_empty(),
            "destination unreachable on a healthy network"
        );
        if cands.is_empty() {
            return None;
        }
        if cands.len() == 1 {
            // Single-path layer (FatPaths tables, SPAIN, PAST, …): load
            // balancing happens across layers, not candidates.
            return Some(cands[0]);
        }
        let len = cands.len() as u64;
        Some(match cx.cfg.lb {
            // NDP's spraying cycles each flow round-robin over the
            // candidate ports (per hop, offset by a flow/router hash):
            // smooth arrivals keep 8-packet queues stable at ρ→1,
            // where random spraying would trim persistently.
            // Retransmissions re-roll on their salt so a packet
            // never re-walks into a failed or congested port.
            LoadBalancing::PacketSpray => {
                if p.retx {
                    cands[(fnv1a(p.salt ^ r as u64) % len) as usize]
                } else {
                    let off = fnv1a(((p.flow as u64) << 32) ^ r as u64);
                    cands[((p.seq as u64 + off) % len) as usize]
                }
            }
            _ => cands[(fnv1a(p.nonce ^ ((r as u64) << 20)) % len) as usize],
        })
    }

    // ---- shared endpoint helpers ------------------------------------------

    /// Applies source-side flowlet logic before a data transmission:
    /// after a gap > `flowlet_gap`, re-pick the layer (FatPaths) or the
    /// nonce (LetFlow). ECMP keeps everything static; spraying ignores it.
    ///
    /// A ≥ gap pause implies the pipe has drained (the gap exceeds the
    /// RTT), so switching paths at a gap cannot reorder — LetFlow's core
    /// argument, which also protects the TCP modes from spurious
    /// dup-ACK retransmissions after a layer change.
    pub(crate) fn flowlet_update<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let gap = cx.cfg.flowlet_gap;
        let n_layers = cx.n_layers;
        let lb = cx.cfg.lb;
        let now = self.now;
        let pinned = cx.meta(flow).pinned_layer.is_some();
        let f = &mut self.tx[cx.tx_idx(flow)];
        if pinned {
            f.last_tx = now;
            return;
        }
        if f.last_tx != 0 && now.saturating_sub(f.last_tx) > gap {
            f.flowlet_ctr += 1;
            match lb {
                LoadBalancing::FatPathsLayers => {
                    f.layer = (fnv1a(((flow as u64) << 20) ^ f.flowlet_ctr as u64)
                        % n_layers as u64) as u8;
                }
                LoadBalancing::LetFlow => {
                    f.nonce = fnv1a(((flow as u64) << 21) ^ f.flowlet_ctr as u64);
                }
                _ => {}
            }
        }
        f.last_tx = now;
    }

    /// Crafts and sends one data packet of `flow` with sequence `seq`
    /// (sender side — `flow`'s TxFlow lives on this shard).
    pub(crate) fn send_data<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        seq: u32,
        retx: bool,
    ) {
        self.flowlet_update(cx, flow);
        let payload = cx.cfg.transport.payload();
        let m = cx.meta(flow);
        let f = &mut self.tx[cx.tx_idx(flow)];
        f.uid_ctr += 1;
        // Canonical transmission id: (flow, per-sender counter, dir=0).
        let salt = ((flow as u64) << 33) | ((f.uid_ctr as u64) << 1);
        let pkt = Packet {
            flow,
            seq,
            wire_bytes: m.payload_of(seq, payload) + HDR_BYTES,
            kind: PktKind::Data,
            layer: f.layer,
            trimmed: false,
            ecn_ce: false,
            ecn_echo: false,
            retx,
            dst_router: m.dst_router,
            dst_ep: m.dst_ep,
            nonce: f.nonce,
            salt,
            suggest_layer: 0xff,
        };
        let pid = self.packets.alloc(pkt);
        self.nic_enqueue(cx, m.src_ep, pid);
    }

    /// Crafts and sends a control packet from the receiver side toward
    /// the sender (`Ack`, `Nack`, `Pull` — control is always
    /// receiver-originated). Rides the layer the data last arrived on
    /// (proven alive in the forward direction) and echoes the last data
    /// nonce so reverse-path LetFlow hashing tracks the sender's
    /// flowlet without a cross-shard read.
    pub(crate) fn send_control<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        kind: PktKind,
        seq: u32,
        ecn_echo: bool,
        suggest: u8,
    ) {
        let m = cx.meta(flow);
        let f = &mut self.rx[cx.rx_idx(flow)];
        f.uid_ctr += 1;
        // Canonical transmission id: (flow, per-receiver counter, dir=1).
        let salt = ((flow as u64) << 33) | ((f.uid_ctr as u64) << 1) | 1;
        let pkt = Packet {
            flow,
            seq,
            wire_bytes: HDR_BYTES,
            kind,
            layer: f.rx_last_layer,
            trimmed: false,
            ecn_ce: false,
            ecn_echo,
            retx: false,
            dst_router: m.src_router,
            dst_ep: m.src_ep,
            nonce: f.last_nonce,
            salt,
            suggest_layer: suggest,
        };
        let pid = self.packets.alloc(pkt);
        self.nic_enqueue(cx, m.dst_ep, pid);
    }

    /// Marks a flow complete (receiver got every byte) and reports it
    /// to the driver's termination set.
    pub(crate) fn complete_flow<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let f = &mut self.rx[cx.rx_idx(flow)];
        if f.finished.is_none() {
            f.finished = Some(self.now);
            self.resolved.push(flow);
        }
    }

    /// True when the sender has proof the transfer is done (every
    /// sequence acked for NDP, cumulative ack at the end for TCP) —
    /// the sender-side stand-in for the receiver's `finished`, which
    /// may live on another shard.
    pub(crate) fn tx_done<R: RoutingScheme + ?Sized>(&self, cx: &Ctx<R>, flow: u32) -> bool {
        let f = &self.tx[cx.tx_idx(flow)];
        match cx.cfg.transport {
            Transport::Ndp { .. } => f.acked_count >= cx.meta(flow).num_pkts,
            Transport::Tcp { .. } => f.cum_ack >= cx.meta(flow).num_pkts,
        }
    }

    fn on_endpoint_arrive<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, ep: u32, pid: u32) {
        match cx.cfg.transport {
            Transport::Ndp { .. } => self.ndp_on_arrive(cx, ep, pid),
            Transport::Tcp { .. } => self.tcp_on_arrive(cx, ep, pid),
        }
    }

    fn on_rto<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32, gen: u32) {
        if self.abort_if_host_dead(cx, flow, gen) {
            return;
        }
        match cx.cfg.transport {
            Transport::Ndp { .. } => self.ndp_on_rto(cx, flow, gen),
            Transport::Tcp { .. } => self.tcp_on_rto(cx, flow, gen),
        }
    }

    /// Mid-flow host-death semantics
    /// ([`SimConfig::abort_on_host_death`]): when an endpoint of an
    /// in-flight flow is dead at RTO time, the timeout counts against
    /// the flow's dead-RTO budget; exhausting it aborts the transfer (a
    /// connection reset — the real-stack outcome, instead of silently
    /// outwaiting the reboot). Returns `true` when the flow was aborted
    /// (the timer must not be re-armed or the transport consulted).
    fn abort_if_host_dead<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        gen: u32,
    ) -> bool {
        let Some(budget) = cx.cfg.abort_on_host_death else {
            return false;
        };
        let m = cx.meta(flow);
        let ti = cx.tx_idx(flow);
        {
            let f = &self.tx[ti];
            if f.aborted || !f.started || gen != f.rto_gen || self.tx_done(cx, flow) {
                return self.tx[ti].aborted;
            }
        }
        let endpoint_dead = self.dead_router_count != 0
            && (self.router_dead[m.src_router as usize] || self.router_dead[m.dst_router as usize]);
        let f = &mut self.tx[ti];
        if !endpoint_dead {
            // The budget counts *consecutive* RTOs against a dead
            // endpoint (one outage), so a timeout with both hosts alive
            // clears it — separate survivable outages must not sum to
            // an abort (`reset_dead_rtos` clears it on receiver-side
            // evidence too).
            f.dead_rtos = 0;
            return false;
        }
        f.dead_rtos += 1;
        if f.dead_rtos < budget.max(1) {
            return false; // keep retrying: the transport re-arms the timer
        }
        f.aborted = true;
        self.resolved.push(flow);
        true
    }

    /// Clears the consecutive-dead-RTO budget on proof of life: any
    /// receiver-originated packet reaching the sender means the
    /// endpoint is (back) up, so a later outage starts a fresh count.
    #[inline]
    pub(crate) fn reset_dead_rtos<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        if cx.cfg.abort_on_host_death.is_some() {
            self.tx[cx.tx_idx(flow)].dead_rtos = 0;
        }
    }

    // ---- replicated fault-state machine -----------------------------------

    /// Fails link `{u, v}` in its own right (static failure or a
    /// `LinkDown` event): recorded in `link_failed` so a later router
    /// revival does not resurrect it.
    pub(crate) fn fail_link_now(&mut self, topo: &Topology, net_base: &[u32], u: u32, v: u32) {
        self.link_failed.insert((u.min(v), u.max(v)));
        self.set_link_state(topo, net_base, u, v, false);
    }

    /// Clears link `{u, v}`'s own failure; the link comes back only if
    /// neither endpoint router is dead.
    pub(crate) fn restore_link_now(&mut self, topo: &Topology, net_base: &[u32], u: u32, v: u32) {
        self.link_failed.remove(&(u.min(v), u.max(v)));
        if !self.router_dead[u as usize] && !self.router_dead[v as usize] {
            self.set_link_state(topo, net_base, u, v, true);
        }
    }

    /// Flips router `r`'s state. Death atomically fails every incident
    /// link; revival restores exactly the incident links whose other end
    /// is alive and not independently failed. Idempotent.
    pub(crate) fn set_router_state(&mut self, topo: &Topology, net_base: &[u32], r: u32, up: bool) {
        if self.router_dead[r as usize] != up {
            return; // already in that state (dead == !up)
        }
        if up {
            self.router_dead[r as usize] = false;
            self.dead_router_count -= 1;
            for &nb in topo.graph.neighbors(r) {
                if !self.router_dead[nb as usize]
                    && !self.link_failed.contains(&(r.min(nb), r.max(nb)))
                {
                    self.set_link_state(topo, net_base, r, nb, true);
                }
            }
        } else {
            self.router_dead[r as usize] = true;
            self.dead_router_count += 1;
            for &nb in topo.graph.neighbors(r) {
                self.set_link_state(topo, net_base, r, nb, false);
            }
        }
    }

    /// Flips the state of link `{u, v}` (both directions). Idempotent.
    pub(crate) fn set_link_state(
        &mut self,
        topo: &Topology,
        net_base: &[u32],
        u: u32,
        v: u32,
        up: bool,
    ) {
        assert!(topo.graph.has_edge(u, v), "no such link");
        let key = (u.min(v), u.max(v));
        let was_down = self.down_links.contains(&key);
        if up == was_down {
            // State actually changes.
            if up {
                self.down_links.retain(|&k| k != key);
                self.down_count -= 1;
            } else {
                self.down_links.push(key);
                self.down_count += 1;
            }
            for (a, b) in [(u, v), (v, u)] {
                let port =
                    net_base[a as usize] + topo.graph.port_of(a, b).expect("checked has_edge");
                let (w, bit) = (port as usize / 64, port % 64);
                if up {
                    self.port_down[w] &= !(1u64 << bit);
                } else {
                    self.port_down[w] |= 1u64 << bit;
                }
            }
        }
    }

    #[inline]
    pub(crate) fn is_port_down(&self, port: u32) -> bool {
        self.port_down[port as usize / 64] >> (port % 64) & 1 == 1
    }

    /// Schedules the control plane's reaction to a link-state change, if
    /// detection is enabled. A burst of simultaneous changes (a router
    /// death fails its whole radix at once; a maintenance window kills
    /// several routers in one timestamp) coalesces into a single
    /// `RepairTick`: the repair pass runs once per event batch, over the
    /// full down set, not once per changed link. Every shard schedules
    /// its own tick from the same replicated event sequence, so the
    /// replicas stay in lockstep.
    pub(crate) fn schedule_repair(&mut self, delay: Option<TimePs>) {
        if let Some(delay) = delay {
            let at = self.now + delay;
            if self.repair_at != Some(at) {
                self.events.push(at, EvKind::RepairTick);
                self.repair_at = Some(at);
            }
        }
    }

    /// Recomputes the route-repair overlay from the current down set via
    /// the scheme's [`RoutingScheme::repair_routes`] hook. Dead routers
    /// need no special plumbing here: their incident links are all in
    /// the down set, so the repaired tables route around them.
    fn recompute_repair<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>) {
        let down = DownLinks::from_links(&self.down_links);
        self.repair = cx.scheme.repair_routes(&cx.topo.graph, &down);
    }
}

/// Drains every shard's outboxes into the destination shards' queues in
/// the canonical merge order `(time, src_shard, seq)`: destination
/// shards iterate sources in ascending shard id, each source's messages
/// stable-sorted by time (the stable sort preserves send order — the
/// `seq` component — within equal times). The packet is re-allocated in
/// the destination's arena and its arrival keyed by the canonical
/// transmission id, so where a packet was buffered never shows in the
/// event order.
pub(crate) fn deliver_mailboxes(shards: &mut [Shard]) {
    let k = shards.len();
    for d in 0..k {
        for s in 0..k {
            if s == d || shards[s].outbox[d].is_empty() {
                continue;
            }
            let mut msgs = std::mem::take(&mut shards[s].outbox[d]);
            msgs.sort_by_key(|m| m.at);
            let dst = &mut shards[d];
            dst.packets.reserve(msgs.len());
            dst.events.reserve(msgs.len());
            for m in msgs.drain(..) {
                let uid = m.pkt.salt;
                let pid = dst.packets.alloc(m.pkt);
                let kind = if m.to_is_router {
                    EvKind::ArriveRouter {
                        pkt: pid,
                        router: m.to,
                    }
                } else {
                    EvKind::ArriveEndpoint { pkt: pid, ep: m.to }
                };
                dst.events.push_arrival(m.at, kind, uid);
            }
            // Hand the emptied buffer back so its capacity is reused.
            shards[s].outbox[d] = msgs;
        }
    }
}

/// Assigns every router to one of `k` shards (clamped to the router
/// count). Topologies that publish `Topology::domains` (pods, dragonfly
/// groups) keep whole domains together — routers outside every domain
/// (e.g. a fat tree's core) become singleton groups — and the groups
/// are walked in router-id order and cut into `k` balanced chunks.
/// Without domains, a BFS order from router 0 is cut into `k` balanced
/// contiguous chunks, which keeps each shard a connected region on any
/// topology the BFS can reach.
pub(crate) fn partition_routers(topo: &Topology, k: usize) -> Vec<u32> {
    let nr = topo.num_routers();
    let k = k.clamp(1, nr.max(1));
    let mut assign = vec![0u32; nr];
    if k <= 1 {
        return assign;
    }
    let mut in_domain = vec![false; nr];
    for d in &topo.domains {
        for r in d.clone() {
            in_domain[r as usize] = true;
        }
    }
    let mut groups: Vec<(u32, u32)> = topo.domains.iter().map(|d| (d.start, d.end)).collect();
    for r in 0..nr as u32 {
        if !in_domain[r as usize] {
            groups.push((r, r + 1));
        }
    }
    groups.sort_unstable_by_key(|g| g.0);
    if !topo.domains.is_empty() && groups.len() >= k {
        let mut idx = 0usize;
        for (s, e) in groups {
            let shard = (idx * k / nr) as u32;
            for r in s..e {
                assign[r as usize] = shard;
            }
            idx += (e - s) as usize;
        }
    } else {
        let order = bfs_order(topo);
        for (i, &r) in order.iter().enumerate() {
            assign[r as usize] = (i * k / nr) as u32;
        }
    }
    assign
}

/// Deterministic BFS visit order over the router graph, restarting from
/// the lowest unvisited id for disconnected components.
fn bfs_order(topo: &Topology) -> Vec<u32> {
    let nr = topo.num_routers();
    let mut seen = vec![false; nr];
    let mut order = Vec::with_capacity(nr);
    let mut q = VecDeque::new();
    for seed in 0..nr as u32 {
        if seen[seed as usize] {
            continue;
        }
        seen[seed as usize] = true;
        q.push_back(seed);
        while let Some(r) = q.pop_front() {
            order.push(r);
            for &nb in topo.graph.neighbors(r) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    q.push_back(nb);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::fattree::fat_tree;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn partition_covers_and_balances_on_bfs_topologies() {
        // Slim fly publishes no domains, so the BFS path is exercised.
        let topo = slim_fly(5, 1).unwrap();
        assert!(topo.domains.is_empty());
        let k = 4;
        let assign = partition_routers(&topo, k);
        assert_eq!(assign.len(), topo.num_routers());
        let mut counts = vec![0usize; k];
        for &s in &assign {
            assert!((s as usize) < k);
            counts[s as usize] += 1;
        }
        let (lo, hi) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(hi - lo <= 1, "BFS chunks must balance: {counts:?}");
    }

    #[test]
    fn partition_keeps_domains_whole() {
        // Fat trees publish per-pod domains.
        let topo = fat_tree(8, 1);
        assert!(!topo.domains.is_empty());
        let assign = partition_routers(&topo, 4);
        for d in &topo.domains {
            let first = assign[d.start as usize];
            for r in d.clone() {
                assert_eq!(assign[r as usize], first, "domain {d:?} split");
            }
        }
    }

    #[test]
    fn partition_clamps_to_router_count() {
        let topo = slim_fly(5, 1).unwrap();
        let nr = topo.num_routers();
        let assign = partition_routers(&topo, nr + 100);
        let used = assign.iter().map(|&s| s as usize + 1).max().unwrap();
        assert!(used <= nr);
        assert_eq!(partition_routers(&topo, 1), vec![0u32; nr]);
    }

    #[test]
    fn mailbox_merge_orders_by_time_src_shard_seq() {
        // Two source shards post into shard 0's mailbox with interleaved
        // times; the merged queue must order by (time, src_shard, seq),
        // realized through the canonical per-packet uids.
        let mut shards: Vec<Shard> = (0..3).map(|i| Shard::new(i, 3, 64, 4)).collect();
        let mk = |salt: u64| Packet {
            flow: 0,
            seq: 0,
            wire_bytes: 64,
            kind: PktKind::Ack,
            layer: 0,
            trimmed: false,
            ecn_ce: false,
            ecn_echo: false,
            retx: false,
            dst_router: 0,
            dst_ep: 0,
            nonce: 0,
            salt,
            suggest_layer: 0xff,
        };
        // src shard 2 posts first (push order must not matter), with a
        // message earlier in time than src shard 1's first.
        for (src, at, salt) in [(2u32, 10u64, 7u64), (2, 30, 5), (1, 20, 9), (1, 30, 3)] {
            shards[src as usize].outbox[0].push(OutMsg {
                at,
                to: 0,
                to_is_router: false,
                pkt: mk(salt),
            });
        }
        deliver_mailboxes(&mut shards);
        assert!(shards[1].outbox[0].is_empty() && shards[2].outbox[0].is_empty());
        let mut got = Vec::new();
        while let Some((t, ev)) = shards[0].events.pop() {
            let EvKind::ArriveEndpoint { pkt, .. } = ev else {
                panic!("unexpected event {ev:?}");
            };
            got.push((t, shards[0].packets.get(pkt).salt));
        }
        // Time dominates; at t=30 the uid (content key) decides, and the
        // uids were assigned in (src_shard, seq) send order upstream.
        assert_eq!(got, vec![(10, 7), (20, 9), (30, 3), (30, 5)]);
    }
}
