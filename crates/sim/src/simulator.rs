//! The packet-level simulator: public facade over the sharded execution
//! core (`crate::shard`). Endpoint transport logic lives in the
//! crate-internal `ndp` and `tcp` modules.
//!
//! Model (matching htsim's structure, §VII-A6): every link is an output
//! port with a serializer and a queue; packets are store-and-forward;
//! each link adds a fixed latency. Endpoints hang off dedicated access
//! links of the same rate. NDP mode uses shallow data queues with payload
//! trimming and a priority queue for control/trimmed/retransmitted
//! packets; TCP mode uses 100-packet tail-drop queues with ECN marking.
//!
//! Execution: routers and endpoints are partitioned into K shards
//! ([`SimConfig::shards`] / `FATPATHS_SHARDS`), each with its own event
//! queue and packet arena, stepped in conservative-lookahead windows on
//! the in-tree rayon pool and exchanging boundary packets through
//! deterministically merged mailboxes. Fault state is shared, not
//! replicated: a single `crate::faults::FaultWriter` replays the fault
//! plan once at run start and publishes copy-on-write epoch snapshots
//! the shards read through their epoch cursors. Results are
//! **bit-identical for every K and every thread count** — see
//! `crate::shard` for the ordering contract. K = 1 (the default) runs
//! the same windowed loop on a single queue.

use crate::config::{SimConfig, Transport};
use crate::engine::{EvKind, TimePs};
use crate::faults::{FaultTimeline, FaultWriter};
use crate::metrics::{peak_rss_kb, reset_peak_rss, FlowRecord, RunProfile, SimResult};
use crate::shard::{
    deliver_mailboxes, partition_routers, Ctx, FlowMeta, Port, RxFlow, Shard, SlotRef, TcpState,
    TxFlow,
};
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::fault::FaultPlan;
use fatpaths_net::topo::Topology;
use fatpaths_telemetry::{MailboxSample, RepairSample, ShardTelemetry, Trace, TraceMeta};
use fatpaths_workloads::arrivals::FlowSpec;
use rayon::prelude::*;

/// The packet-level simulator. Construct with [`Simulator::new`], inject
/// flows, and [`Simulator::run`].
///
/// Generic over the routing scheme: the default type parameter is a trait
/// object (`&dyn RoutingScheme`), so `Simulator<'_>` works with any scheme
/// behind dynamic dispatch; naming a concrete scheme type
/// (`Simulator<'_, RoutingTables>`) monomorphizes the per-packet routing
/// call instead (see `crates/bench/benches/simulator.rs` for the measured
/// difference).
pub struct Simulator<'a, R: RoutingScheme + ?Sized = dyn RoutingScheme + 'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) scheme: &'a R,
    pub(crate) cfg: SimConfig,
    /// Immutable per-flow facts, indexed by flow id.
    meta: Vec<FlowMeta>,
    /// Flow id → sender-half home (shard of the source router).
    tx_home: Vec<SlotRef>,
    /// Flow id → receiver-half home (shard of the destination router).
    rx_home: Vec<SlotRef>,
    net_base: Vec<u32>,
    down_base: Vec<u32>,
    up_base: u32,
    /// Global port id → owning shard + local index.
    port_home: Vec<SlotRef>,
    /// Endpoint id → owning shard + local pull-queue index.
    ep_home: Vec<SlotRef>,
    /// Endpoint id → attached router (flat per-hop routing lookup; see
    /// `Ctx::ep_router`).
    ep_router: Vec<u32>,
    /// Router id → owning shard.
    router_shard: Vec<u32>,
    /// The single owner of the fault state (one copy for all shards).
    faults: FaultWriter,
    pub(crate) shards: Vec<Shard>,
}

impl<'a, R: RoutingScheme + ?Sized> Simulator<'a, R> {
    /// Builds the network state for `topo` routed by `scheme`,
    /// partitioned into [`SimConfig::shards`] regions (resolved against
    /// the `FATPATHS_SHARDS` environment variable when 0, clamped to
    /// the router count).
    pub fn new(topo: &'a Topology, scheme: &'a R, cfg: SimConfig) -> Self {
        assert!(
            scheme.num_layers() >= 1,
            "scheme must expose at least one layer"
        );
        let nr = topo.num_routers();
        let ne = topo.num_endpoints();
        let router_shard = partition_routers(topo, cfg.resolved_shards());
        // Shard count = highest shard actually used: a coarse domain
        // walk may occupy fewer shards than requested.
        let k = router_shard
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(1);

        // Global port layout (identical to the pre-shard simulator): per
        // router its net ports in graph-neighbor order then its endpoint
        // down-ports, then all endpoint NIC up-ports. Each port is owned
        // by its router's (resp. endpoint's router's) shard.
        let n_ports_total = {
            let mut n = 0usize;
            for r in 0..nr as u32 {
                n += topo.graph.neighbors(r).len() + topo.router_endpoints(r).len();
            }
            n + ne
        };
        let mut shards: Vec<Shard> = (0..k as u32).map(|i| Shard::new(i, k)).collect();
        // Pre-size each shard's port and pull-queue arrays from local
        // counts: one allocation each instead of doubling growth (at
        // fat-tree scale the port array is the largest static vector).
        {
            let mut nports = vec![0usize; k];
            let mut neps = vec![0usize; k];
            for r in 0..nr as u32 {
                let s = router_shard[r as usize] as usize;
                nports[s] += topo.graph.neighbors(r).len() + topo.router_endpoints(r).len();
            }
            for e in 0..ne as u32 {
                let s = router_shard[topo.endpoint_router(e) as usize] as usize;
                nports[s] += 1;
                neps[s] += 1;
            }
            for (i, sh) in shards.iter_mut().enumerate() {
                sh.ports.reserve_exact(nports[i]);
                sh.pull_head.reserve_exact(neps[i]);
                sh.pull_tail.reserve_exact(neps[i]);
                sh.pull_ready.reserve_exact(neps[i]);
            }
        }
        let mut port_home = Vec::with_capacity(n_ports_total);
        let mut net_base = Vec::with_capacity(nr);
        let mut down_base = Vec::with_capacity(nr);
        fn push_port(shards: &mut [Shard], port_home: &mut Vec<SlotRef>, shard: u32, p: Port) {
            let sh = &mut shards[shard as usize];
            port_home.push(SlotRef::new(shard, sh.ports.len() as u32));
            sh.ports.push(p);
        }
        for r in 0..nr as u32 {
            let shard = router_shard[r as usize];
            net_base.push(port_home.len() as u32);
            for &nb in topo.graph.neighbors(r) {
                push_port(&mut shards, &mut port_home, shard, Port::new(true, nb));
            }
            down_base.push(port_home.len() as u32);
            for e in topo.router_endpoints(r) {
                push_port(&mut shards, &mut port_home, shard, Port::new(false, e));
            }
        }
        let up_base = port_home.len() as u32;
        let mut ep_home = Vec::with_capacity(ne);
        let mut ep_router = Vec::with_capacity(ne);
        for e in 0..ne as u32 {
            let r = topo.endpoint_router(e);
            ep_router.push(r);
            let shard = router_shard[r as usize];
            push_port(&mut shards, &mut port_home, shard, Port::new(true, r));
            let sh = &mut shards[shard as usize];
            ep_home.push(SlotRef::new(shard, sh.pull_head.len() as u32));
            sh.pull_head.push(crate::engine::NO_PKT);
            sh.pull_tail.push(crate::engine::NO_PKT);
            sh.pull_ready.push(0);
        }
        Simulator {
            topo,
            scheme,
            cfg,
            meta: Vec::new(),
            tx_home: Vec::new(),
            rx_home: Vec::new(),
            net_base,
            down_base,
            up_base,
            port_home,
            ep_home,
            ep_router,
            router_shard,
            faults: FaultWriter::new(n_ports_total, nr),
            shards,
        }
    }

    /// Builds the shared read-only context and hands it to `f` together
    /// with the shards — the split-borrow point every execution path
    /// goes through.
    pub(crate) fn with_parts<T>(
        &mut self,
        faults: &FaultTimeline,
        f: impl FnOnce(&Ctx<'_, R>, &mut [Shard]) -> T,
    ) -> T {
        let cx = Ctx {
            topo: self.topo,
            scheme: self.scheme,
            cfg: self.cfg,
            meta: &self.meta,
            tx_home: &self.tx_home,
            rx_home: &self.rx_home,
            net_base: &self.net_base,
            down_base: &self.down_base,
            up_base: self.up_base,
            port_home: &self.port_home,
            ep_home: &self.ep_home,
            ep_router: &self.ep_router,
            router_shard: &self.router_shard,
            n_layers: self.scheme.num_layers(),
            faults,
        };
        f(&cx, &mut self.shards)
    }

    /// Fails the bidirectional link `{u, v}` from `t = 0` (§V-G): packets
    /// forwarded onto it are lost, and — unless a
    /// [detection delay](SimConfig::detection_delay) is configured —
    /// recovery happens end-to-end: senders re-pick a layer on
    /// retransmission timeout, so preprovisioned alternate layers carry
    /// the affected flows around the failure.
    ///
    /// Thin wrapper over the [`FaultPlan`] path (see
    /// [`Simulator::apply_fault_plan`]), kept for single-link ergonomics.
    pub fn fail_link(&mut self, u: u32, v: u32) {
        self.apply_fault_plan(&FaultPlan::none().fail(u, v));
    }

    /// Applies a [`FaultPlan`]: static link and router failures take
    /// effect immediately, timed events are scheduled, and — when
    /// [`SimConfig::detection_delay`] is set — a repair of the routing
    /// state is scheduled one delay after each change (batched: any
    /// number of simultaneous changes trigger exactly one repair pass).
    ///
    /// The fault *state* lives once, in the writer; the timed events are
    /// still replicated into every shard's queue, where they serve
    /// purely as epoch-cursor advances (each is a few bytes on the
    /// queue, not a copy of the network state — see `crate::faults`).
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let delay = self.cfg.detection_delay;
        self.faults.apply_plan(self.topo, &self.net_base, plan);
        let statics = plan.num_static() + plan.num_static_routers() > 0;
        if statics {
            self.faults.schedule_repair(delay);
        }
        for sh in &mut self.shards {
            if statics {
                sh.schedule_repair(delay);
            }
            for ev in plan.events() {
                let kind = if ev.up {
                    EvKind::LinkUp { u: ev.u, v: ev.v }
                } else {
                    EvKind::LinkDown { u: ev.u, v: ev.v }
                };
                sh.events.push(ev.at, kind);
            }
            for ev in plan.router_events() {
                let kind = if ev.up {
                    EvKind::RouterUp { router: ev.router }
                } else {
                    EvKind::RouterDown { router: ev.router }
                };
                sh.events.push(ev.at, kind);
            }
        }
    }

    /// Packets dropped because routing had no live candidate port
    /// (destination unreachable in the degraded network). Summed over
    /// shards in shard order.
    pub fn unroutable_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.unroutable).sum()
    }

    /// Flows never injected because their source or destination host
    /// sat behind a dead router at start time.
    pub fn host_dead_flows(&self) -> u64 {
        self.shards.iter().map(|s| s.host_dead).sum()
    }

    /// True iff router `r` is currently dead in the writer's working
    /// state (statics applied immediately; timed events at run start).
    pub fn router_is_dead(&self, r: u32) -> bool {
        self.faults.router_is_dead(r)
    }

    /// True iff link `{u, v}` is currently down — failed in its own
    /// right or incident to a dead router.
    pub fn link_is_down(&self, u: u32, v: u32) -> bool {
        self.faults.link_is_down(u, v)
    }

    /// Registers a flow's halves on their home shards and schedules its
    /// start event on the sender's shard.
    fn push_flow(&mut self, m: FlowMeta, start: TimePs) -> u32 {
        let id = self.meta.len() as u32;
        let ts = self.router_shard[self.ep_router[m.src_ep as usize] as usize];
        let rs = self.router_shard[self.ep_router[m.dst_ep as usize] as usize];
        let tsh = &mut self.shards[ts as usize];
        self.tx_home.push(SlotRef::new(ts, tsh.tx.len() as u32));
        tsh.tx.push(TxFlow::new(&m));
        if matches!(self.cfg.transport, Transport::Tcp { .. }) {
            tsh.tcp.push(TcpState::new());
        }
        tsh.events.push(start, EvKind::FlowStart { flow: id });
        let rsh = &mut self.shards[rs as usize];
        self.rx_home.push(SlotRef::new(rs, rsh.rx.len() as u32));
        rsh.rx.push(RxFlow::new(&m));
        self.meta.push(m);
        id
    }

    /// Pre-sizes each shard's flow, event, and packet arenas from the
    /// incoming spec counts (one allocation instead of doubling growth
    /// through the hot loop). Packet arenas are sized per spec — a
    /// flow's in-flight data is bounded by `min(num_pkts, window)`, so
    /// short flows (the scale workloads) reserve a couple of slots, not
    /// a full window each.
    fn reserve_for(&mut self, specs: &[FlowSpec]) {
        let k = self.shards.len();
        let payload = self.cfg.transport.payload() as u64;
        let win_cap = match self.cfg.transport {
            Transport::Ndp { initial_window, .. } => initial_window.min(16) as u64,
            Transport::Tcp { .. } => 4,
        };
        let mut ntx = vec![0usize; k];
        let mut nrx = vec![0usize; k];
        let mut npkt = vec![0usize; k];
        for spec in specs {
            let ts = self.router_shard[self.topo.endpoint_router(spec.src) as usize];
            let rs = self.router_shard[self.topo.endpoint_router(spec.dst) as usize];
            ntx[ts as usize] += 1;
            nrx[rs as usize] += 1;
            let num_pkts = spec.size.div_ceil(payload).max(1);
            npkt[ts as usize] += num_pkts.min(win_cap) as usize;
        }
        let tcp = matches!(self.cfg.transport, Transport::Tcp { .. });
        for (i, sh) in self.shards.iter_mut().enumerate() {
            sh.tx.reserve(ntx[i]);
            if tcp {
                sh.tcp.reserve(ntx[i]);
            }
            sh.rx.reserve(nrx[i]);
            // Event-heap baseline: the start-burst census of an
            // endpoint-owning shard — a start event and an armed (lazy)
            // RTO timer per sender plus an arrival or serializer event
            // per windowed packet. Transit-heavy shards (no local
            // flows) start empty and grow in bounded exact steps
            // (`EventQueue` never doubles) toward their own high-water
            // mark; sizing the flow-owning shards exactly matters
            // because their burst coincides with the process-wide
            // memory peak, where a growth realloc would briefly hold
            // two copies of a multi-MB heap.
            sh.events.reserve(ntx[i].saturating_mul(2) + npkt[i]);
            // Sender-side slabs hold roughly half the windowed packets
            // at once (the rest are in flight on transit shards or
            // already acked) plus the control packets local receivers
            // originate. Transit-heavy shards grow in bounded exact
            // steps instead — their peaks depend on routing, not on
            // flow ownership.
            sh.packets.reserve(npkt[i] / 2 + nrx[i]);
        }
        self.meta.reserve(specs.len());
        self.tx_home.reserve(specs.len());
        self.rx_home.reserve(specs.len());
    }

    /// Registers flows (any order); they start at their spec times.
    pub fn add_flows(&mut self, specs: &[FlowSpec]) {
        let payload = self.cfg.transport.payload();
        self.reserve_for(specs);
        for spec in specs {
            assert_ne!(spec.src, spec.dst, "self-flow");
            let id = self.meta.len() as u32;
            // Initial layer / nonce: deterministic per flow.
            let m = FlowMeta::new(spec, payload, fnv1a(0x5151 ^ id as u64), 0, None, 1.0);
            self.push_flow(m, spec.start);
        }
    }

    /// Registers MPTCP connections (§VIII-A2, reduced form): each spec is
    /// striped over `subflows` TCP subflows, one pinned to each routing
    /// layer, with LIA-style coupled congestion avoidance (each subflow's
    /// additive increase is scaled by `1/subflows`). Returns, per spec, the
    /// flow-id group; the connection's FCT is the max over its group (see
    /// [`mptcp_group_fcts`](crate::metrics::mptcp_group_fcts)).
    pub fn add_mptcp_flows(&mut self, specs: &[FlowSpec], subflows: u32) -> Vec<Vec<u32>> {
        assert!(
            matches!(self.cfg.transport, Transport::Tcp { .. }),
            "MPTCP runs on the TCP transport"
        );
        let subflows = subflows.clamp(1, self.scheme.num_layers() as u32);
        let payload = self.cfg.transport.payload();
        let mut groups = Vec::with_capacity(specs.len());
        for spec in specs {
            assert_ne!(spec.src, spec.dst, "self-flow");
            let mut group = Vec::with_capacity(subflows as usize);
            let per = spec.size / subflows as u64;
            let mut assigned = 0u64;
            for k in 0..subflows {
                let size = if k + 1 == subflows {
                    spec.size - assigned
                } else {
                    per
                };
                assigned += size;
                if size == 0 {
                    continue;
                }
                let sub = FlowSpec { size, ..*spec };
                let id = self.meta.len() as u32;
                let m = FlowMeta::new(
                    &sub,
                    payload,
                    fnv1a(0x3333 ^ id as u64),
                    k as u8,
                    Some(k as u8),
                    1.0 / subflows as f64,
                );
                self.push_flow(m, sub.start);
                group.push(id);
            }
            groups.push(group);
        }
        groups
    }

    /// Runs to completion (or the horizon) and returns per-flow records.
    ///
    /// The driver loop: finalize the fault timeline (the writer replays
    /// the fault events once and publishes the epoch snapshots), then
    /// find the earliest pending event across shards, step every shard
    /// through the window `[t0, t0 + L)` (in parallel for K > 1 —
    /// lookahead `L` = link latency guarantees window independence),
    /// then deliver the cross-shard mailboxes in canonical `(time,
    /// src_shard, seq)` order. Terminates when every flow is resolved
    /// (completed, aborted, or host-dead), the queues drain, or the
    /// horizon passes.
    pub fn run(self) -> SimResult {
        self.run_traced().0
    }

    /// [`run`](Simulator::run), additionally returning the telemetry
    /// [`Trace`] when [`SimConfig::telemetry`] is enabled (`None`
    /// otherwise — the disabled path adds one `Option` check per wire
    /// start and nothing else to the hot loop).
    ///
    /// Collection is strictly shard-local: each shard accumulates into
    /// its own [`ShardTelemetry`], and the driver flushes interval rows
    /// *between* windows, where execution is serial and the interval
    /// boundary (`t0 / interval_ps`) is globally agreed. The merged
    /// trace is therefore byte-identical for every thread count at a
    /// fixed shard count. Events inside a window are attributed to the
    /// window's start interval, so the effective resolution is
    /// `max(interval_ps, lookahead)`.
    pub fn run_traced(mut self) -> (SimResult, Option<Trace>) {
        reset_peak_rss();
        let total = self.meta.len();
        let timeline = self
            .faults
            .finalize(self.topo, &self.net_base, self.scheme, &self.cfg);
        let mut profile = RunProfile {
            shards: self.shards.len() as u32,
            epochs_published: timeline.epochs.len() as u64,
            ..RunProfile::default()
        };
        let tcfg = self.cfg.telemetry;
        if tcfg.enabled {
            // Local index → global port id, per shard: `push_port`
            // appends in ascending global order, so each table comes
            // out sorted by construction.
            let mut owned: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
            for (g, slot) in self.port_home.iter().enumerate() {
                owned[slot.shard() as usize].push(g as u32);
            }
            let nl = self.scheme.num_layers();
            for (sh, ports) in self.shards.iter_mut().zip(owned) {
                sh.tel = Some(Box::new(ShardTelemetry::new(tcfg, sh.id, ports, nl)));
            }
        }
        let mut mailbox_rows: Vec<MailboxSample> = Vec::new();
        self.with_parts(&timeline, |cx, shards| {
            let horizon = cx.cfg.horizon;
            let lookahead = cx.cfg.link_latency.max(1);
            let k = shards.len();
            let mut resolved_bits = vec![0u64; total.div_ceil(64)];
            let mut resolved = 0usize;
            // Telemetry interval bookkeeping — driven entirely from the
            // serial between-window section, never read across shards
            // mid-window.
            let interval = tcfg.interval_ps.max(1);
            let mut cur_iv: u64 = 0;
            let mut mb_msgs: u64 = 0;
            let mut mb_bytes: u64 = 0;
            loop {
                for sh in shards.iter_mut() {
                    for f in sh.resolved.drain(..) {
                        let (w, b) = ((f / 64) as usize, f % 64);
                        if resolved_bits[w] >> b & 1 == 0 {
                            resolved_bits[w] |= 1 << b;
                            resolved += 1;
                        }
                    }
                }
                if total > 0 && resolved >= total {
                    break;
                }
                if k > 1 {
                    let (msgs, bytes) = deliver_mailboxes(shards);
                    profile.mailbox_msgs += msgs;
                    profile.mailbox_bytes += bytes;
                    mb_msgs += msgs;
                    mb_bytes += bytes;
                }
                let Some(t0) = shards.iter().filter_map(|s| s.events.peek_time()).min() else {
                    break;
                };
                if horizon > 0 && t0 > horizon {
                    break;
                }
                if tcfg.enabled {
                    let iv = t0 / interval;
                    if iv > cur_iv {
                        flush_telemetry(shards, cur_iv);
                        if mb_msgs != 0 {
                            mailbox_rows.push(MailboxSample {
                                iv: cur_iv,
                                msgs: mb_msgs,
                                bytes: mb_bytes,
                            });
                            mb_msgs = 0;
                            mb_bytes = 0;
                        }
                        cur_iv = iv;
                    }
                }
                profile.windows += 1;
                let w_end = t0.saturating_add(lookahead);
                for sh in shards.iter_mut() {
                    sh.window_base = t0;
                }
                if k == 1 {
                    shards[0].run_window(cx, w_end, horizon);
                } else {
                    shards
                        .par_chunks_mut(1)
                        .for_each(|c| c[0].run_window(cx, w_end, horizon));
                }
                for sh in shards.iter_mut() {
                    sh.events.shrink_excess();
                }
            }
            if tcfg.enabled {
                flush_telemetry(shards, cur_iv);
                if mb_msgs != 0 {
                    mailbox_rows.push(MailboxSample {
                        iv: cur_iv,
                        msgs: mb_msgs,
                        bytes: mb_bytes,
                    });
                }
            }
        });
        // Harvest the collectors before the arenas are torn down.
        let collectors: Vec<ShardTelemetry> = self
            .shards
            .iter_mut()
            .filter_map(|sh| sh.tel.take().map(|b| *b))
            .collect();
        // Free the run-time arenas before assembling records: the
        // record vector must not stack on top of dead heap capacity.
        for sh in &mut self.shards {
            sh.release_arenas();
        }
        // Deterministic shard-merged assembly: per-flow records in flow-id
        // order, counters summed in shard order, repair log truncated to
        // the prefix of the shared timeline the run actually reached
        // (identical on every shard — window boundaries are global, so
        // every shard pops the same fault events; debug-asserted).
        let flows = (0..total)
            .map(|i| {
                let m = &self.meta[i];
                let th = self.tx_home[i];
                let rh = self.rx_home[i];
                let tx = &self.shards[th.shard() as usize].tx[th.idx() as usize];
                let rx = &self.shards[rh.shard() as usize].rx[rh.idx() as usize];
                FlowRecord {
                    size: m.size,
                    start: m.start,
                    finish: rx.finish_time(),
                    retx: tx.retx_count,
                    trims: rx.trims,
                    host_dead: tx.host_dead,
                    // Completion wins over a post-delivery abort: if every
                    // byte arrived, the transfer succeeded.
                    aborted: tx.aborted && !rx.is_finished(),
                }
            })
            .collect();
        let end_time = self.shards.iter().map(|s| s.last_t).max().unwrap_or(0);
        debug_assert!(
            self.shards.iter().all(|s| {
                s.repair_seen == self.shards[0].repair_seen
                    && s.fault_epoch == self.shards[0].fault_epoch
            }),
            "fault-epoch cursors diverged across shards"
        );
        let seen = self.shards[0].repair_seen as usize;
        profile.repair_ticks = seen as u64;
        profile.peak_rss_kb = peak_rss_kb();
        let trace = tcfg.enabled.then(|| {
            let repairs = timeline.log[..seen]
                .iter()
                .map(|r| RepairSample {
                    at: r.at,
                    rows: r.rows,
                    fib_rows: r.fib_rows,
                })
                .collect();
            Trace::assemble(
                TraceMeta {
                    shards: self.shards.len() as u32,
                    interval_ps: tcfg.interval_ps.max(1),
                    span_every: tcfg.span_every,
                    seed: tcfg.seed,
                    end_time,
                    n_layers: self.scheme.num_layers() as u32,
                },
                collectors,
                mailbox_rows,
                repairs,
            )
        });
        let result = SimResult {
            flows,
            drops: self.shards.iter().map(|s| s.drops).sum(),
            trims: self.shards.iter().map(|s| s.trim_count).sum(),
            unroutable: self.shards.iter().map(|s| s.unroutable).sum(),
            end_time,
            repair_log: timeline.log[..seen].to_vec(),
            profile,
        };
        (result, trace)
    }
}

/// Closes telemetry interval `iv` on every shard: each collector samples
/// its own queue-depth histogram, event-queue length, and packet-slab
/// occupancy, and drains its per-link byte accumulators into rows. Runs
/// only in the serial between-window section of the driver loop.
fn flush_telemetry(shards: &mut [Shard], iv: u64) {
    for sh in shards.iter_mut() {
        if let Some(mut tel) = sh.tel.take() {
            let ports = &sh.ports;
            tel.flush(
                iv,
                |l| {
                    let p = &ports[l as usize];
                    p.data_len as u32 + p.prio_len as u32
                },
                sh.events.len() as u64,
                sh.packets.live() as u64,
                sh.packets.capacity() as u64,
            );
            sh.tel = Some(tel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_core::fwd::RoutingTables;
    use fatpaths_core::layers::LayerSet;
    use fatpaths_net::topo::slimfly::slim_fly;
    use std::sync::Arc;

    fn fixture() -> (Topology, RoutingTables) {
        let topo = slim_fly(5, 1).unwrap();
        let rt = RoutingTables::build(&topo.graph, &LayerSet::minimal_only(&topo.graph));
        (topo, rt)
    }

    /// Router death fails every incident link atomically; revival
    /// restores exactly the links whose other end is alive and that were
    /// not failed in their own right. (Driven directly on the fault
    /// writer — the single owner of this state machine.)
    #[test]
    fn router_death_and_revival_state_machine() {
        let (topo, rt) = fixture();
        let mut sim = Simulator::new(&topo, &rt, SimConfig::default().shards(1));
        let r = 7u32;
        let nbs = topo.graph.neighbors(r);
        let (cut, other_dead) = (nbs[0], nbs[1]);
        // An independent link failure on one incident link, plus a
        // second dead router adjacent to `r`.
        sim.faults.fail_link_now(&topo, &sim.net_base, r, cut);
        sim.faults
            .set_router_state(&topo, &sim.net_base, other_dead, false);
        sim.faults.set_router_state(&topo, &sim.net_base, r, false);
        assert!(sim.router_is_dead(r));
        for &nb in nbs {
            assert!(sim.link_is_down(r, nb), "incident link {r}-{nb} must die");
        }
        assert_eq!(
            sim.faults.down_count() as usize,
            sim.faults.down_links().len()
        );
        // Idempotent.
        let n_down = sim.faults.down_count();
        sim.faults.set_router_state(&topo, &sim.net_base, r, false);
        assert_eq!(sim.faults.down_count(), n_down);
        // Revival: every incident link returns except the independently
        // cut one and the one into the still-dead neighbor.
        sim.faults.set_router_state(&topo, &sim.net_base, r, true);
        assert!(!sim.router_is_dead(r));
        for &nb in nbs {
            let expect_down = nb == cut || nb == other_dead;
            assert_eq!(
                sim.link_is_down(r, nb),
                expect_down,
                "link {r}-{nb} after revival"
            );
        }
        // The independently cut link returns only via LinkUp.
        sim.faults.restore_link_now(&topo, &sim.net_base, r, cut);
        assert!(!sim.link_is_down(r, cut));
    }

    /// A burst of simultaneous link-state changes coalesces into one
    /// scheduled repair pass (one `RepairTick` per event batch) — on the
    /// shard side, where fault events are pure epoch-cursor advances but
    /// the tick scheduling must still mirror the writer's.
    #[test]
    fn repair_ticks_coalesce_per_batch() {
        let (topo, rt) = fixture();
        let cfg = SimConfig {
            detection_delay: Some(1_000_000),
            ..SimConfig::default()
        }
        .shards(1);
        let mut sim = Simulator::new(&topo, &rt, cfg);
        let tl = FaultTimeline::default();
        sim.with_parts(&tl, |cx, shards| {
            let sh = &mut shards[0];
            sh.now = 5_000;
            // A maintenance-window-sized burst: three routers die in the
            // same instant.
            for r in [3u32, 9, 14] {
                sh.dispatch(cx, EvKind::RouterDown { router: r });
            }
            assert_eq!(
                sh.events.len(),
                1,
                "simultaneous changes must schedule exactly one RepairTick"
            );
            assert_eq!(sh.fault_epoch, 3, "each fault event advances the cursor");
            // A later batch gets its own tick.
            sh.now = 9_000;
            sh.dispatch(cx, EvKind::RouterUp { router: 3 });
            sh.dispatch(cx, EvKind::RouterUp { router: 9 });
            assert_eq!(sh.events.len(), 2);
        });
    }

    /// Static whole-router failures coalesce with static link failures
    /// into a single repair pass at `t = 0` — scheduled identically in
    /// the writer's replay queue and every shard's event queue.
    #[test]
    fn static_plan_schedules_one_repair() {
        let (topo, rt) = fixture();
        let cfg = SimConfig {
            detection_delay: Some(1_000_000),
            ..SimConfig::default()
        }
        .shards(1);
        let mut sim = Simulator::new(&topo, &rt, cfg);
        let e = topo.graph.edge_vec()[0];
        let plan = FaultPlan::none()
            .fail(e.0, e.1)
            .fail_router(20)
            .fail_router(31);
        sim.apply_fault_plan(&plan);
        assert_eq!(
            sim.shards[0].events.len(),
            1,
            "one RepairTick for the static batch"
        );
        assert_eq!(
            sim.faults.pending_events(),
            1,
            "the writer queues the same single RepairTick"
        );
        assert!(sim.router_is_dead(20) && sim.router_is_dead(31));
        assert!(sim.link_is_down(e.0, e.1));
    }

    /// Finalizing the writer publishes one epoch per fault event, and
    /// the epochs are copy-on-write: components an event did not touch
    /// re-share the previous epoch's allocation.
    #[test]
    fn timeline_publishes_cow_epochs() {
        let (topo, rt) = fixture();
        let cfg = SimConfig {
            detection_delay: Some(1_000),
            ..SimConfig::default()
        }
        .shards(2);
        let mut sim = Simulator::new(&topo, &rt, cfg);
        let e = topo.graph.edge_vec()[3];
        let plan = FaultPlan::none()
            .link_down_at(5_000, e.0, e.1)
            .router_down_at(9_000, 5);
        sim.apply_fault_plan(&plan);
        let tl = sim
            .faults
            .finalize(sim.topo, &sim.net_base, sim.scheme, &sim.cfg);
        // Epochs: 0 post-static, 1 LinkDown, 2 RepairTick, 3 RouterDown,
        // 4 RepairTick. Two repair records.
        assert_eq!(tl.epochs.len(), 5);
        assert_eq!(tl.log.len(), 2);
        assert_eq!((tl.log[0].at, tl.log[1].at), (6_000, 10_000));
        let ep = &tl.epochs;
        assert_eq!(ep[0].down_count, 0);
        assert_eq!(ep[1].down_count, 1);
        // LinkDown touches links, not routers.
        assert!(Arc::ptr_eq(&ep[0].router_dead, &ep[1].router_dead));
        assert!(!Arc::ptr_eq(&ep[0].port_down, &ep[1].port_down));
        // RepairTick touches neither bitmask, only the overlay.
        assert!(Arc::ptr_eq(&ep[1].port_down, &ep[2].port_down));
        assert!(Arc::ptr_eq(&ep[1].router_dead, &ep[2].router_dead));
        assert!(!Arc::ptr_eq(&ep[1].repair, &ep[2].repair));
        // RouterDown touches both (its incident links go down with it).
        assert_eq!(ep[3].dead_router_count, 1);
        assert!(!Arc::ptr_eq(&ep[2].router_dead, &ep[3].router_dead));
        assert!(!Arc::ptr_eq(&ep[2].port_down, &ep[3].port_down));
        assert!(Arc::ptr_eq(&ep[3].port_down, &ep[4].port_down));
    }
}
