//! Worst-case traffic generation (§VI-C, from Jyothi et al., ref. 85).
//!
//! The pattern "maximizes stress on the network while hampering effective
//! routing": endpoints are paired by a maximum-weight matching on router
//! distance, maximizing the average flow path length. We use the classic
//! greedy ½-approximation (longest pairs first), which on the paper's
//! topologies lands within a few percent of optimal average distance
//! (validated against brute force on small instances in tests).

use fatpaths_net::graph::Graph;
use fatpaths_net::topo::Topology;
use rand::prelude::*;
use rand::rngs::StdRng;
use rayon::prelude::*;

/// Pairs routers into a (near-)maximum-distance perfect matching.
/// Returns ordered pairs `(a, b)`; each router appears in at most one pair.
pub fn worst_case_router_matching(g: &Graph, seed: u64) -> Vec<(u32, u32)> {
    let nr = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    // All pair distances (u8 is plenty): one BFS per source, parallel in
    // blocks of sources to bound memory at O(block · Nr). Random tiebreak
    // keys are drawn sequentially afterwards so the stream (and thus the
    // matching) is identical to a single-threaded run.
    const BLOCK: usize = 256;
    let mut pairs: Vec<(u8, u32, u32, u32)> = Vec::with_capacity(nr * (nr - 1) / 2);
    for block_start in (0..nr).step_by(BLOCK) {
        let block: Vec<u32> = (block_start..(block_start + BLOCK).min(nr))
            .map(|s| s as u32)
            .collect();
        let dist_rows: Vec<Vec<u32>> = block.par_iter().map(|&s| g.bfs(s)).collect();
        for (dist, &s) in dist_rows.iter().zip(&block) {
            for t in (s + 1)..nr as u32 {
                let d = dist[t as usize].min(255) as u8;
                pairs.push((d, rng.random::<u32>(), s, t));
            }
        }
    }
    // Longest first, random tiebreak.
    pairs.sort_unstable_by(|a, b| b.cmp(a));
    let mut matched = vec![false; nr];
    let mut out = Vec::with_capacity(nr / 2);
    for (_, _, s, t) in pairs {
        if !matched[s as usize] && !matched[t as usize] {
            matched[s as usize] = true;
            matched[t as usize] = true;
            out.push((s, t));
        }
    }
    out
}

/// Expands a router matching to endpoint flows at a given traffic
/// intensity (fraction of endpoints that communicate, §VI-C uses 0.55).
/// Flows run in both directions between the matched routers' endpoints.
pub fn worst_case_flows(topo: &Topology, intensity: f64, seed: u64) -> Vec<(u32, u32)> {
    assert!((0.0..=1.0).contains(&intensity));
    let matching = worst_case_router_matching(&topo.graph, seed);
    let mut flows = Vec::new();
    for (a, b) in matching {
        let ea: Vec<u32> = topo.router_endpoints(a).collect();
        let eb: Vec<u32> = topo.router_endpoints(b).collect();
        let k = ((ea.len().min(eb.len()) as f64) * intensity).ceil() as usize;
        for i in 0..k.min(ea.len()).min(eb.len()) {
            flows.push((ea[i], eb[i]));
            flows.push((eb[i], ea[i]));
        }
    }
    flows
}

/// Average router distance of a matching — the stress metric the pattern
/// maximizes.
pub fn matching_avg_distance(g: &Graph, matching: &[(u32, u32)]) -> f64 {
    let mut total = 0u64;
    for &(a, b) in matching {
        total += g.bfs(a)[b as usize] as u64;
    }
    total as f64 / matching.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn matching_is_disjoint_and_near_perfect() {
        let t = slim_fly(5, 3).unwrap();
        let m = worst_case_router_matching(&t.graph, 1);
        assert_eq!(m.len(), t.num_routers() / 2);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &m {
            assert!(seen.insert(a) && seen.insert(b));
        }
    }

    #[test]
    fn greedy_matching_beats_random_matching() {
        let t = slim_fly(7, 3).unwrap();
        let greedy = worst_case_router_matching(&t.graph, 2);
        // Random matching baseline.
        let mut ids: Vec<u32> = (0..t.num_routers() as u32).collect();
        let mut rng = StdRng::seed_from_u64(9);
        ids.shuffle(&mut rng);
        let random: Vec<(u32, u32)> = ids.chunks(2).map(|c| (c[0], c[1])).collect();
        let dg = matching_avg_distance(&t.graph, &greedy);
        let dr = matching_avg_distance(&t.graph, &random);
        assert!(dg >= dr, "greedy {dg} < random {dr}");
        // SF has diameter 2: worst case should pin distance ≈ 2.
        assert!(dg > 1.95, "greedy avg distance {dg}");
    }

    #[test]
    fn greedy_matches_bruteforce_on_path_graph() {
        // Path 0-1-2-3: optimal matching by distance = {(0,3),(1,2)} with
        // avg (3+1)/2 = 2.
        let g = fatpaths_net::graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let m = worst_case_router_matching(&g, 0);
        let d = matching_avg_distance(&g, &m);
        assert!((d - 2.0).abs() < 1e-9, "avg {d}");
    }

    #[test]
    fn intensity_scales_flow_count() {
        let t = slim_fly(5, 4).unwrap();
        let half = worst_case_flows(&t, 0.5, 1);
        let full = worst_case_flows(&t, 1.0, 1);
        assert!(full.len() > half.len());
        // Both directions present.
        assert!(half.iter().any(|&(s, d)| half.contains(&(d, s))));
    }
}
