//! Experiment harness: one subcommand per table/figure of the FatPaths
//! paper. Results land in `results/` (CSV + text summary).
//!
//! ```text
//! experiments <name> [--quick]       run one experiment
//! experiments all [--quick]          run the full battery
//! experiments list                   show available experiments
//! ```

use fatpaths_experiments::{
    adaptive, baselines, churn, common, diversity_figs, large_scale, memory, perf_ndp, perf_tcp,
    resilience, te, theory_figs, trace,
};

type Runner = fn(bool) -> std::io::Result<()>;

/// Registry: experiment name → (runner, description).
fn registry() -> Vec<(&'static str, Runner, &'static str)> {
    vec![
        (
            "table1",
            theory_figs::table1 as Runner,
            "Table I: routing-scheme feature matrix",
        ),
        (
            "table4",
            diversity_figs::table4,
            "Table IV: CDP and PI at distance d'",
        ),
        (
            "table5",
            theory_figs::table5,
            "Table V: topology parameters",
        ),
        (
            "baselines",
            baselines::baselines,
            "All schemes packet-simulated via RoutingScheme (SF/DF/FT3)",
        ),
        (
            "resilience",
            resilience::resilience,
            "Link-failure sweep: completions + FCT slowdown vs failure fraction",
        ),
        (
            "churn",
            churn::churn,
            "Rolling-reboot churn: completed-flow goodput vs reboot fraction × stagger",
        ),
        (
            "memory",
            memory::memory,
            "FIB table state: entries/switch, ECMP groups, compression, budget overflow",
        ),
        (
            "te",
            te::te,
            "Negotiated-congestion TE vs static layers, ECMP, and the MCF bound",
        ),
        (
            "adaptive",
            adaptive::adaptive,
            "Adaptive (queue-depth) vs oblivious flowlet re-picks, static and TE tables",
        ),
        (
            "trace",
            trace::trace,
            "Telemetry trace export: NDJSON trace + time-series CSV for fatpaths-trace",
        ),
        (
            "fig2",
            perf_ndp::fig2,
            "Fig. 2: throughput/flow, randomized workload (NDP)",
        ),
        ("fig4", diversity_figs::fig4, "Fig. 4: collision histograms"),
        (
            "fig6",
            diversity_figs::fig6,
            "Fig. 6: minimal path lengths/counts",
        ),
        (
            "fig7",
            diversity_figs::fig7,
            "Fig. 7: non-minimal disjoint paths",
        ),
        (
            "fig8",
            diversity_figs::fig8,
            "Fig. 8: path interference distributions",
        ),
        (
            "fig9",
            theory_figs::fig9,
            "Fig. 9: MAT per routing scheme (worst-case traffic)",
        ),
        ("fig10", theory_figs::fig10, "Fig. 10: cost model"),
        (
            "fig11",
            perf_ndp::fig11,
            "Fig. 11: skewed adversarial traffic (NDP)",
        ),
        (
            "fig12",
            perf_ndp::fig12,
            "Fig. 12: layer count × rho sweep (NDP)",
        ),
        (
            "fig13packet",
            large_scale::fig13_packet,
            "Fig. 13: large-scale packet-level",
        ),
        (
            "fig13fluid",
            large_scale::fig13_fluid,
            "Fig. 13: 1M-endpoint fluid FCT histograms",
        ),
        (
            "fig14",
            perf_tcp::fig14,
            "Fig. 14: TCP speedups vs ECMP/LetFlow",
        ),
        (
            "fig15",
            perf_tcp::fig15,
            "Fig. 15: SF FCT distribution vs queueing model (TCP)",
        ),
        ("fig16", perf_tcp::fig16, "Fig. 16: rho sweep (TCP)"),
        (
            "fig17",
            perf_tcp::fig17,
            "Fig. 17: stencil + barrier completion",
        ),
        (
            "fig19",
            theory_figs::fig19,
            "Fig. 19: edge density and radix scaling",
        ),
        (
            "fig20",
            perf_tcp::fig20,
            "Fig. 20: TCP crossbar lambda sweep",
        ),
        (
            "fig21",
            perf_ndp::fig21,
            "Fig. 21: NDP lambda sweep, fat tree vs star",
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = common::is_quick(&args);
    let name = args.iter().find(|a| !a.starts_with("--")).cloned();
    let reg = registry();
    let run_checked = |n: &str, run: Runner| {
        if let Err(e) = run(quick) {
            eprintln!("experiment '{n}' failed: {e}");
            std::process::exit(1);
        }
    };
    match name.as_deref() {
        None | Some("list") => {
            println!("Available experiments (add --quick for reduced scale):");
            for (n, _, d) in &reg {
                println!("  {n:<12} {d}");
            }
        }
        Some("all") => {
            for (n, run, _) in &reg {
                println!("=== {n} ===");
                let t0 = std::time::Instant::now();
                run_checked(n, *run);
                println!("[{n} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
        }
        Some(n) => match reg.iter().find(|(name, ..)| *name == n) {
            Some((_, run, _)) => run_checked(n, *run),
            None => {
                eprintln!("unknown experiment '{n}'; try `experiments list`");
                std::process::exit(2);
            }
        },
    }
}
