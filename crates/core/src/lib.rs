//! # fatpaths-core
//!
//! The FatPaths paper's primary contribution — **layered routing** (§V) —
//! plus every comparison routing scheme of §VI:
//!
//! * [`layers`] — layer abstraction + random uniform edge sampling
//!   (Listing 1);
//! * [`interference_min`] — the path-interference-minimizing construction
//!   (Listing 2);
//! * [`fwd`] — per-layer destination-based forwarding tables σᵢ
//!   (Listing 3), `O(Nr)` entries per destination;
//! * [`ecmp`] — minimal multipath port sets, ECMP flow hashing, packet
//!   spraying;
//! * [`spain`], [`past`], [`ksp`] — the SPAIN, PAST and k-shortest-paths
//!   baselines (Appendix C);
//! * [`schemes`] — Table I's feature matrix as data.

pub mod ecmp;
pub mod fwd;
pub mod interference_min;
pub mod ksp;
pub mod layers;
pub mod past;
pub mod schemes;
pub mod spain;

pub use ecmp::DistanceMatrix;
pub use fwd::{fnv1a, RoutingTables, NO_PORT};
pub use interference_min::{build_interference_min_layers, ImConfig};
pub use ksp::k_shortest_paths;
pub use layers::{build_random_layers, LayerConfig, LayerSet};
pub use past::{PastTrees, PastVariant};
pub use spain::{build_spain_layers, SpainConfig, SpainLayers};
