//! Topology zoo of the FatPaths paper (§II-B, Appendix A, Table V).
//!
//! Every generator returns a [`Topology`]: the router graph, the number of
//! endpoints attached to each router (*concentration* `p`), a cable class
//! per link for the cost model, and structural metadata.

pub mod complete;
pub mod dragonfly;
pub mod fattree;
pub mod hyperx;
pub mod jellyfish;
pub mod slimfly;
pub mod star;
pub mod xpander;

use crate::graph::{Graph, RouterId};

/// Which family a topology instance belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopoKind {
    /// Slim Fly MMS graphs, diameter 2 (Besta & Hoefler, SC'14).
    SlimFly,
    /// Balanced Dragonfly, diameter 3 (Kim et al., ISCA'08).
    Dragonfly,
    /// Random regular graph (Singla et al., NSDI'12).
    Jellyfish,
    /// Lifted complete graph (Valadarsky et al., HotNets'15).
    Xpander,
    /// Hamming graph / generalized Flattened Butterfly (Ahn et al., SC'09).
    HyperX,
    /// Three-stage fat tree (Leiserson / Al-Fares et al.).
    FatTree,
    /// Fully connected router graph, diameter 1.
    Complete,
    /// Single crossbar switch with endpoints (baseline validation, App. D).
    Star,
}

impl TopoKind {
    /// Short display name used in result tables (matches the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            TopoKind::SlimFly => "SF",
            TopoKind::Dragonfly => "DF",
            TopoKind::Jellyfish => "JF",
            TopoKind::Xpander => "XP",
            TopoKind::HyperX => "HX",
            TopoKind::FatTree => "FT3",
            TopoKind::Complete => "CG",
            TopoKind::Star => "ST",
        }
    }
}

/// Cable class for the cost model (§VII-A2): copper for short links
/// (endpoint and intra-group), fiber for long inter-group/global runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Short electrical cable (intra-group / intra-pod).
    Short,
    /// Long optical cable (inter-group / global / core-level).
    Long,
}

/// A concrete network instance: router graph + endpoint attachment + cable
/// classes + structural metadata.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Topology family.
    pub kind: TopoKind,
    /// Human-readable instance name, e.g. `"SF(q=19)"`.
    pub name: String,
    /// Router-to-router graph.
    pub graph: Graph,
    /// Endpoints attached to each router (the paper's concentration `p`;
    /// zero for non-edge routers of a fat tree).
    pub concentration: Vec<u32>,
    /// Cable class per canonical edge (same order as [`Graph::edges`]).
    pub link_classes: Vec<LinkClass>,
    /// Structural diameter `D` of the router graph.
    pub diameter: u32,
    /// Maintenance / failure domains: router-id ranges that share fate
    /// under correlated maintenance — a fat-tree pod's aggregation
    /// layer, a Dragonfly group, a HyperX dimension-0 row. Generators
    /// of structured topologies fill this after
    /// [`Topology::assemble`]; irregular families (Slim Fly, Jellyfish,
    /// Xpander) leave it empty, and domain-aware samplers
    /// ([`FaultPlan::rolling_domain_reboot`]) then degrade to
    /// per-router domains.
    ///
    /// [`FaultPlan::rolling_domain_reboot`]: crate::fault::FaultPlan::rolling_domain_reboot
    pub domains: Vec<std::ops::Range<RouterId>>,
    /// Prefix sums over `concentration`, length `n+1`; endpoint ids are
    /// dense in `0..num_endpoints()`.
    endpoint_offset: Vec<u32>,
}

impl Topology {
    /// Assembles a topology, building the graph from a classed edge list and
    /// aligning `link_classes` with the canonical edge order.
    pub fn assemble(
        kind: TopoKind,
        name: String,
        n: usize,
        edges: Vec<(RouterId, RouterId, LinkClass)>,
        concentration: Vec<u32>,
        diameter: u32,
    ) -> Self {
        assert_eq!(concentration.len(), n);
        let plain: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let graph = Graph::from_edges(n, &plain);
        // Re-derive classes in canonical order (duplicates collapse to the
        // first class seen).
        let mut class_map = rustc_hash::FxHashMap::default();
        for &(u, v, c) in &edges {
            let key = (u.min(v), u.max(v));
            class_map.entry(key).or_insert(c);
        }
        let link_classes: Vec<LinkClass> = graph.edges().map(|e| class_map[&e]).collect();
        let mut endpoint_offset = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        endpoint_offset.push(0);
        for &c in &concentration {
            acc += c;
            endpoint_offset.push(acc);
        }
        Topology {
            kind,
            name,
            graph,
            concentration,
            link_classes,
            diameter,
            domains: Vec::new(),
            endpoint_offset,
        }
    }

    /// Number of routers `Nr`.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.graph.n()
    }

    /// Number of endpoints `N`.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        *self.endpoint_offset.last().unwrap() as usize
    }

    /// Router hosting endpoint `e`.
    #[inline]
    pub fn endpoint_router(&self, e: u32) -> RouterId {
        debug_assert!((e as usize) < self.num_endpoints());
        // partition_point returns the first offset > e; subtract one router.
        (self.endpoint_offset.partition_point(|&o| o <= e) - 1) as RouterId
    }

    /// Endpoint id range attached to router `r`.
    #[inline]
    pub fn router_endpoints(&self, r: RouterId) -> std::ops::Range<u32> {
        self.endpoint_offset[r as usize]..self.endpoint_offset[r as usize + 1]
    }

    /// Network radix `k'` (max router-to-router degree).
    pub fn network_radix(&self) -> usize {
        self.graph.max_degree()
    }

    /// Full router radix `k = k' + p` (max over routers).
    pub fn router_radix(&self) -> usize {
        (0..self.num_routers())
            .map(|r| self.graph.degree(r as u32) + self.concentration[r] as usize)
            .max()
            .unwrap_or(0)
    }

    /// Edge density `(m + N) / N` — cables (including endpoint links) per
    /// endpoint, as plotted in Fig. 19.
    pub fn edge_density(&self) -> f64 {
        let n = self.num_endpoints() as f64;
        (self.graph.m() as f64 + n) / n
    }

    /// Uniform-concentration helper: `p` endpoints on every router.
    pub fn uniform_concentration(n: usize, p: u32) -> Vec<u32> {
        vec![p; n]
    }

    /// Degraded view of this topology with the given links removed:
    /// same routers, endpoints and concentration, the surviving links
    /// keeping their cable classes. Structural `diameter` is preserved
    /// from the healthy instance (it describes the design, not the
    /// degraded state). Port numbering shifts — see
    /// [`Graph::without_edges`] for the caveat.
    pub fn degraded(&self, removed: &[(RouterId, RouterId)]) -> Topology {
        let dead: rustc_hash::FxHashSet<(RouterId, RouterId)> =
            removed.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let edges: Vec<(RouterId, RouterId, LinkClass)> = self
            .graph
            .edges()
            .zip(self.link_classes.iter())
            .filter(|&((u, v), _)| !dead.contains(&(u, v)))
            .map(|((u, v), &c)| (u, v, c))
            .collect();
        let mut degraded = Topology::assemble(
            self.kind,
            format!("{}-degraded", self.name),
            self.num_routers(),
            edges,
            self.concentration.clone(),
            self.diameter,
        );
        degraded.domains = self.domains.clone();
        degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        Topology::assemble(
            TopoKind::Complete,
            "tiny".into(),
            3,
            vec![
                (0, 1, LinkClass::Short),
                (1, 2, LinkClass::Long),
                (0, 2, LinkClass::Long),
            ],
            vec![2, 0, 3],
            1,
        )
    }

    #[test]
    fn endpoint_mapping_roundtrip() {
        let t = tiny();
        assert_eq!(t.num_endpoints(), 5);
        assert_eq!(t.endpoint_router(0), 0);
        assert_eq!(t.endpoint_router(1), 0);
        assert_eq!(t.endpoint_router(2), 2);
        assert_eq!(t.endpoint_router(4), 2);
        assert_eq!(t.router_endpoints(0), 0..2);
        assert_eq!(t.router_endpoints(1), 2..2);
        assert_eq!(t.router_endpoints(2), 2..5);
    }

    #[test]
    fn link_classes_align_with_canonical_edges() {
        let t = tiny();
        let edges = t.graph.edge_vec();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(
            t.link_classes,
            vec![LinkClass::Short, LinkClass::Long, LinkClass::Long]
        );
    }

    #[test]
    fn radix_accounts_for_endpoints() {
        let t = tiny();
        assert_eq!(t.network_radix(), 2);
        assert_eq!(t.router_radix(), 2 + 3);
    }
}
