//! The packet-level simulator: network state (ports, queues, links),
//! routing/load-balancing decisions, and the event loop. Endpoint
//! transport logic lives in the crate-internal `ndp` and `tcp` modules.
//!
//! Model (matching htsim's structure, §VII-A6): every link is an output
//! port with a serializer and a queue; packets are store-and-forward;
//! each link adds a fixed latency. Endpoints hang off dedicated access
//! links of the same rate. NDP mode uses shallow data queues with payload
//! trimming and a priority queue for control/trimmed/retransmitted
//! packets; TCP mode uses 100-packet tail-drop queues with ECN marking.

use crate::config::{LoadBalancing, SimConfig, Transport, HDR_BYTES};
use crate::engine::{EvKind, EventQueue, Packet, PacketSlab, PktKind, TimePs};
use crate::metrics::{FlowRecord, SimResult};
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::fault::FaultPlan;
use fatpaths_net::topo::Topology;
use fatpaths_workloads::arrivals::FlowSpec;
use std::collections::VecDeque;

pub(crate) struct Port {
    pub to_is_router: bool,
    pub to: u32,
    pub busy: bool,
    pub data_q: VecDeque<u32>,
    pub prio_q: VecDeque<u32>,
}

impl Port {
    fn new(to_is_router: bool, to: u32) -> Self {
        Port {
            to_is_router,
            to,
            busy: false,
            data_q: VecDeque::new(),
            prio_q: VecDeque::new(),
        }
    }
}

/// Per-flow simulation state shared by both transports.
pub(crate) struct FlowState {
    pub src_ep: u32,
    pub dst_ep: u32,
    pub src_router: u32,
    pub dst_router: u32,
    pub size: u64,
    pub start: TimePs,
    pub num_pkts: u32,
    // receiver progress
    pub received: Vec<u64>,
    pub rcv_count: u32,
    pub rcv_next: u32,
    pub finished: Option<TimePs>,
    pub started: bool,
    // sender progress
    pub next_new: u32,
    pub retxq: VecDeque<u32>,
    pub cum_ack: u32,
    pub inflight: u32,
    // load balancing
    pub layer: u8,
    pub nonce: u64,
    pub last_tx: TimePs,
    pub flowlet_ctr: u32,
    pub rx_suggest: u8,
    // counters
    pub retx_count: u32,
    pub trims: u32,
    // TCP congestion state (unused in NDP mode)
    pub cwnd: f64,
    pub ssthresh: f64,
    pub dup_acks: u32,
    pub in_recovery: bool,
    pub recovery_until: u32,
    pub srtt: f64,
    pub rttvar: f64,
    pub timed: Option<(u32, TimePs)>,
    pub rto_gen: u32,
    pub backoff: u32,
    // ECN / DCTCP
    pub ce_marked: u32,
    pub ce_total: u32,
    pub alpha: f64,
    pub window_end: u32,
    pub cwr: bool,
    /// A window reduction requested a path switch; applied once the pipe
    /// is nearly empty (reorder-safe) or at a flowlet gap.
    pub want_switch: bool,
    /// Layer the receiver last saw data on; control packets ride it back
    /// (a layer the forward direction proved alive).
    pub rx_last_layer: u8,
    /// MPTCP subflow: layer is pinned, never re-picked.
    pub pinned_layer: Option<u8>,
    /// The flow was never injected: its source or destination host sat
    /// behind a dead router at start time (distinct from `unroutable`,
    /// which is a property of the network between live hosts).
    pub host_dead: bool,
    /// RTOs this flow has burned while one of its endpoints was dead
    /// (only tracked when `SimConfig::abort_on_host_death` is set).
    pub dead_rtos: u32,
    /// The flow was aborted mid-transfer (endpoint died post-injection
    /// and the RTO budget ran out): terminal — arrivals and timers are
    /// ignored from then on, like a connection reset.
    pub aborted: bool,
    /// Congestion-avoidance increase factor (LIA-style coupling gives each
    /// of k subflows 1/k aggressiveness; plain TCP uses 1.0).
    pub ca_scale: f64,
}

impl FlowState {
    fn new(spec: &FlowSpec, topo: &Topology, payload: u32) -> Self {
        let num_pkts = spec.size.div_ceil(payload as u64).max(1) as u32;
        FlowState {
            src_ep: spec.src,
            dst_ep: spec.dst,
            src_router: topo.endpoint_router(spec.src),
            dst_router: topo.endpoint_router(spec.dst),
            size: spec.size,
            start: spec.start,
            num_pkts,
            received: vec![0u64; num_pkts.div_ceil(64) as usize],
            rcv_count: 0,
            rcv_next: 0,
            finished: None,
            started: false,
            next_new: 0,
            retxq: VecDeque::new(),
            cum_ack: 0,
            inflight: 0,
            layer: 0,
            nonce: 0,
            last_tx: 0,
            flowlet_ctr: 0,
            rx_suggest: 0xff,
            retx_count: 0,
            trims: 0,
            cwnd: 4.0,
            ssthresh: 1e9,
            dup_acks: 0,
            in_recovery: false,
            recovery_until: 0,
            srtt: 0.0,
            rttvar: 0.0,
            timed: None,
            rto_gen: 0,
            backoff: 0,
            ce_marked: 0,
            ce_total: 0,
            alpha: 0.0,
            window_end: 0,
            cwr: false,
            want_switch: false,
            rx_last_layer: 0,
            pinned_layer: None,
            host_dead: false,
            dead_rtos: 0,
            aborted: false,
            ca_scale: 1.0,
        }
    }

    pub(crate) fn mark_received(&mut self, seq: u32) -> bool {
        let (w, b) = ((seq / 64) as usize, seq % 64);
        if self.received[w] >> b & 1 == 1 {
            return false;
        }
        self.received[w] |= 1 << b;
        self.rcv_count += 1;
        while self.rcv_next < self.num_pkts
            && self.received[(self.rcv_next / 64) as usize] >> (self.rcv_next % 64) & 1 == 1
        {
            self.rcv_next += 1;
        }
        true
    }

    pub(crate) fn has_received(&self, seq: u32) -> bool {
        self.received[(seq / 64) as usize] >> (seq % 64) & 1 == 1
    }

    pub(crate) fn payload_of(&self, seq: u32, payload: u32) -> u32 {
        if seq + 1 == self.num_pkts {
            (self.size - (self.num_pkts as u64 - 1) * payload as u64) as u32
        } else {
            payload
        }
    }
}

/// The packet-level simulator. Construct with [`Simulator::new`], inject
/// flows, and [`Simulator::run`].
///
/// Generic over the routing scheme: the default type parameter is a trait
/// object (`&dyn RoutingScheme`), so `Simulator<'_>` works with any scheme
/// behind dynamic dispatch; naming a concrete scheme type
/// (`Simulator<'_, RoutingTables>`) monomorphizes the per-packet routing
/// call instead (see `crates/bench/benches/simulator.rs` for the measured
/// difference).
pub struct Simulator<'a, R: RoutingScheme + ?Sized = dyn RoutingScheme + 'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) scheme: &'a R,
    pub(crate) cfg: SimConfig,
    pub(crate) now: TimePs,
    pub(crate) events: EventQueue,
    pub(crate) packets: PacketSlab,
    pub(crate) flows: Vec<FlowState>,
    pub(crate) ports: Vec<Port>,
    net_base: Vec<u32>,
    down_base: Vec<u32>,
    up_base: u32,
    // NDP receiver pull pacing, per endpoint.
    pub(crate) pullq: Vec<VecDeque<u32>>,
    pub(crate) pull_ready: Vec<TimePs>,
    pub(crate) salt_ctr: u64,
    pub(crate) drops: u64,
    pub(crate) trim_count: u64,
    pub(crate) unroutable: u64,
    pub(crate) finished_flows: usize,
    /// Down-state bitmask, one bit per output port (router net ports
    /// only ever get set). Replaces the old per-packet hash-set lookup:
    /// the hot path tests one bit, gated on `down_count != 0`.
    port_down: Vec<u64>,
    /// Number of currently-down links (gates the whole failure branch).
    down_count: u32,
    /// Currently-down links in canonical form (feeds route repair).
    /// This is the *effective* set: links failed in their own right
    /// plus links incident to a dead router.
    down_links: Vec<(u32, u32)>,
    /// Links failed in their own right (static failures + `LinkDown`
    /// events). Kept apart from `down_links` so a reviving router does
    /// not resurrect a link that was independently cut.
    link_failed: rustc_hash::FxHashSet<(u32, u32)>,
    /// Per-router dead flag (whole-node failures).
    router_dead: Vec<bool>,
    /// Number of currently-dead routers (gates the dead-router branch
    /// on the packet arrival path).
    dead_router_count: u32,
    /// Flows never injected because an endpoint was behind a dead
    /// router at start time.
    host_dead: u64,
    /// Time of the currently scheduled repair pass, if any: a burst of
    /// simultaneous link-state changes (a router death, a maintenance
    /// window) coalesces into *one* `RepairTick` — one repair pass per
    /// event batch, not one per link.
    repair_at: Option<TimePs>,
    /// Scheme-computed repaired rows, installed one detection delay
    /// after each link-state change (empty until then).
    repair: RouteRepair,
    /// One record per executed repair pass (time, overlay rows, FIB
    /// rows) — the control-plane work log surfaced in `SimResult`.
    repair_log: Vec<crate::metrics::RepairTickRecord>,
}

impl<'a, R: RoutingScheme + ?Sized> Simulator<'a, R> {
    /// Builds the network state for `topo` routed by `scheme`.
    pub fn new(topo: &'a Topology, scheme: &'a R, cfg: SimConfig) -> Self {
        assert!(
            scheme.num_layers() >= 1,
            "scheme must expose at least one layer"
        );
        let nr = topo.num_routers();
        let ne = topo.num_endpoints();
        let mut ports = Vec::new();
        let mut net_base = Vec::with_capacity(nr);
        let mut down_base = Vec::with_capacity(nr);
        for r in 0..nr as u32 {
            net_base.push(ports.len() as u32);
            for &nb in topo.graph.neighbors(r) {
                ports.push(Port::new(true, nb));
            }
            down_base.push(ports.len() as u32);
            for e in topo.router_endpoints(r) {
                ports.push(Port::new(false, e));
            }
        }
        let up_base = ports.len() as u32;
        for e in 0..ne as u32 {
            ports.push(Port::new(true, topo.endpoint_router(e)));
        }
        let down_words = ports.len().div_ceil(64);
        Simulator {
            topo,
            scheme,
            cfg,
            now: 0,
            events: EventQueue::default(),
            packets: PacketSlab::default(),
            flows: Vec::new(),
            ports,
            net_base,
            down_base,
            up_base,
            pullq: vec![VecDeque::new(); ne],
            pull_ready: vec![0; ne],
            salt_ctr: 0,
            drops: 0,
            trim_count: 0,
            unroutable: 0,
            finished_flows: 0,
            port_down: vec![0u64; down_words],
            down_count: 0,
            down_links: Vec::new(),
            link_failed: rustc_hash::FxHashSet::default(),
            router_dead: vec![false; nr],
            dead_router_count: 0,
            host_dead: 0,
            repair_at: None,
            repair: RouteRepair::none(),
            repair_log: Vec::new(),
        }
    }

    /// Fails the bidirectional link `{u, v}` from `t = 0` (§V-G): packets
    /// forwarded onto it are lost, and — unless a
    /// [detection delay](SimConfig::detection_delay) is configured —
    /// recovery happens end-to-end: senders re-pick a layer on
    /// retransmission timeout, so preprovisioned alternate layers carry
    /// the affected flows around the failure.
    ///
    /// Thin wrapper over the [`FaultPlan`] path (see
    /// [`Simulator::apply_fault_plan`]), kept for single-link ergonomics.
    pub fn fail_link(&mut self, u: u32, v: u32) {
        self.apply_fault_plan(&FaultPlan::none().fail(u, v));
    }

    /// Applies a [`FaultPlan`]: static link and router failures take
    /// effect immediately, timed events are scheduled, and — when
    /// [`SimConfig::detection_delay`] is set — a repair of the routing
    /// state is scheduled one delay after each change (batched: any
    /// number of simultaneous changes trigger exactly one repair pass).
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for &(u, v) in plan.static_failures() {
            self.fail_link_now(u, v);
        }
        for &r in plan.static_router_failures() {
            self.set_router_state(r, false);
        }
        if plan.num_static() + plan.num_static_routers() > 0 {
            self.schedule_repair();
        }
        for ev in plan.events() {
            let kind = if ev.up {
                EvKind::LinkUp { u: ev.u, v: ev.v }
            } else {
                EvKind::LinkDown { u: ev.u, v: ev.v }
            };
            self.events.push(ev.at, kind);
        }
        for ev in plan.router_events() {
            let kind = if ev.up {
                EvKind::RouterUp { router: ev.router }
            } else {
                EvKind::RouterDown { router: ev.router }
            };
            self.events.push(ev.at, kind);
        }
    }

    /// Fails link `{u, v}` in its own right (static failure or a
    /// `LinkDown` event): recorded in `link_failed` so a later router
    /// revival does not resurrect it.
    fn fail_link_now(&mut self, u: u32, v: u32) {
        self.link_failed.insert((u.min(v), u.max(v)));
        self.set_link_state(u, v, false);
    }

    /// Clears link `{u, v}`'s own failure; the link comes back only if
    /// neither endpoint router is dead.
    fn restore_link_now(&mut self, u: u32, v: u32) {
        self.link_failed.remove(&(u.min(v), u.max(v)));
        if !self.router_dead[u as usize] && !self.router_dead[v as usize] {
            self.set_link_state(u, v, true);
        }
    }

    /// Flips router `r`'s state. Death atomically fails every incident
    /// link; revival restores exactly the incident links whose other end
    /// is alive and not independently failed. Idempotent.
    fn set_router_state(&mut self, r: u32, up: bool) {
        if self.router_dead[r as usize] != up {
            return; // already in that state (dead == !up)
        }
        let topo = self.topo;
        if up {
            self.router_dead[r as usize] = false;
            self.dead_router_count -= 1;
            for &nb in topo.graph.neighbors(r) {
                if !self.router_dead[nb as usize]
                    && !self.link_failed.contains(&(r.min(nb), r.max(nb)))
                {
                    self.set_link_state(r, nb, true);
                }
            }
        } else {
            self.router_dead[r as usize] = true;
            self.dead_router_count += 1;
            for &nb in topo.graph.neighbors(r) {
                self.set_link_state(r, nb, false);
            }
        }
    }

    /// Flips the state of link `{u, v}` (both directions). Idempotent.
    fn set_link_state(&mut self, u: u32, v: u32, up: bool) {
        assert!(self.topo.graph.has_edge(u, v), "no such link");
        let key = (u.min(v), u.max(v));
        let was_down = self.down_links.contains(&key);
        if up == was_down {
            // State actually changes.
            if up {
                self.down_links.retain(|&k| k != key);
                self.down_count -= 1;
            } else {
                self.down_links.push(key);
                self.down_count += 1;
            }
            for (a, b) in [(u, v), (v, u)] {
                let port = self.net_base[a as usize]
                    + self.topo.graph.port_of(a, b).expect("checked has_edge");
                let (w, bit) = (port as usize / 64, port % 64);
                if up {
                    self.port_down[w] &= !(1u64 << bit);
                } else {
                    self.port_down[w] |= 1u64 << bit;
                }
            }
        }
    }

    #[inline]
    fn is_port_down(&self, port: u32) -> bool {
        self.port_down[port as usize / 64] >> (port % 64) & 1 == 1
    }

    /// Schedules the control plane's reaction to a link-state change, if
    /// detection is enabled. A burst of simultaneous changes (a router
    /// death fails its whole radix at once; a maintenance window kills
    /// several routers in one timestamp) coalesces into a single
    /// `RepairTick`: the repair pass runs once per event batch, over the
    /// full down set, not once per changed link.
    fn schedule_repair(&mut self) {
        if let Some(delay) = self.cfg.detection_delay {
            let at = self.now + delay;
            if self.repair_at != Some(at) {
                self.events.push(at, EvKind::RepairTick);
                self.repair_at = Some(at);
            }
        }
    }

    /// Recomputes the route-repair overlay from the current down set via
    /// the scheme's [`RoutingScheme::repair_routes`] hook. Dead routers
    /// need no special plumbing here: their incident links are all in
    /// the down set, so the repaired tables route around them.
    fn recompute_repair(&mut self) {
        let down = DownLinks::from_links(&self.down_links);
        self.repair = self.scheme.repair_routes(&self.topo.graph, &down);
    }

    /// Packets dropped because routing had no live candidate port
    /// (destination unreachable in the degraded network).
    pub fn unroutable_drops(&self) -> u64 {
        self.unroutable
    }

    /// Flows never injected because their source or destination host
    /// sat behind a dead router at start time.
    pub fn host_dead_flows(&self) -> u64 {
        self.host_dead
    }

    /// True iff router `r` is currently dead.
    pub fn router_is_dead(&self, r: u32) -> bool {
        self.router_dead[r as usize]
    }

    /// True iff link `{u, v}` is currently down — failed in its own
    /// right or incident to a dead router.
    pub fn link_is_down(&self, u: u32, v: u32) -> bool {
        self.down_links.contains(&(u.min(v), u.max(v)))
    }

    /// Registers flows (any order); they start at their spec times.
    pub fn add_flows(&mut self, specs: &[FlowSpec]) {
        let payload = self.cfg.transport.payload();
        for spec in specs {
            assert_ne!(spec.src, spec.dst, "self-flow");
            let id = self.flows.len() as u32;
            let mut fs = FlowState::new(spec, self.topo, payload);
            // Initial layer / nonce: deterministic per flow.
            fs.nonce = fnv1a(0x5151 ^ id as u64);
            fs.layer = 0;
            self.flows.push(fs);
            self.events.push(spec.start, EvKind::FlowStart { flow: id });
        }
    }

    /// Registers MPTCP connections (§VIII-A2, reduced form): each spec is
    /// striped over `subflows` TCP subflows, one pinned to each routing
    /// layer, with LIA-style coupled congestion avoidance (each subflow's
    /// additive increase is scaled by `1/subflows`). Returns, per spec, the
    /// flow-id group; the connection's FCT is the max over its group (see
    /// [`mptcp_group_fcts`](crate::metrics::mptcp_group_fcts)).
    pub fn add_mptcp_flows(&mut self, specs: &[FlowSpec], subflows: u32) -> Vec<Vec<u32>> {
        assert!(
            matches!(self.cfg.transport, Transport::Tcp { .. }),
            "MPTCP runs on the TCP transport"
        );
        let subflows = subflows.clamp(1, self.n_layers() as u32);
        let payload = self.cfg.transport.payload();
        let mut groups = Vec::with_capacity(specs.len());
        for spec in specs {
            assert_ne!(spec.src, spec.dst, "self-flow");
            let mut group = Vec::with_capacity(subflows as usize);
            let per = spec.size / subflows as u64;
            let mut assigned = 0u64;
            for k in 0..subflows {
                let size = if k + 1 == subflows {
                    spec.size - assigned
                } else {
                    per
                };
                assigned += size;
                if size == 0 {
                    continue;
                }
                let sub = FlowSpec { size, ..*spec };
                let id = self.flows.len() as u32;
                let mut fs = FlowState::new(&sub, self.topo, payload);
                fs.nonce = fnv1a(0x3333 ^ id as u64);
                fs.layer = k as u8;
                fs.pinned_layer = Some(k as u8);
                fs.ca_scale = 1.0 / subflows as f64;
                self.flows.push(fs);
                self.events.push(sub.start, EvKind::FlowStart { flow: id });
                group.push(id);
            }
            groups.push(group);
        }
        groups
    }

    /// Runs to completion (or the horizon) and returns per-flow records.
    pub fn run(mut self) -> SimResult {
        let total = self.flows.len();
        while let Some((t, ev)) = self.events.pop() {
            if self.cfg.horizon > 0 && t > self.cfg.horizon {
                break;
            }
            self.now = t;
            self.dispatch(ev);
            if self.finished_flows == total {
                break;
            }
        }
        let end_time = self.now;
        let flows = self
            .flows
            .iter()
            .map(|f| FlowRecord {
                size: f.size,
                start: f.start,
                finish: f.finished,
                retx: f.retx_count,
                trims: f.trims,
                host_dead: f.host_dead,
                aborted: f.aborted,
            })
            .collect();
        SimResult {
            flows,
            drops: self.drops,
            trims: self.trim_count,
            unroutable: self.unroutable,
            end_time,
            repair_log: self.repair_log,
        }
    }

    fn dispatch(&mut self, ev: EvKind) {
        match ev {
            EvKind::FlowStart { flow } => self.on_flow_start(flow),
            EvKind::PortPop { port } => {
                self.ports[port as usize].busy = false;
                self.port_try_start(port);
            }
            EvKind::ArriveRouter { pkt, router } => self.on_router_arrive(router, pkt),
            EvKind::ArriveEndpoint { pkt, ep } => self.on_endpoint_arrive(ep, pkt),
            EvKind::PullTick { ep } => self.on_pull_tick(ep),
            EvKind::RtoTimer { flow, gen } => self.on_rto(flow, gen),
            EvKind::LinkDown { u, v } => {
                self.fail_link_now(u, v);
                self.schedule_repair();
            }
            EvKind::LinkUp { u, v } => {
                self.restore_link_now(u, v);
                self.schedule_repair();
            }
            EvKind::RouterDown { router } => {
                self.set_router_state(router, false);
                self.schedule_repair();
            }
            EvKind::RouterUp { router } => {
                self.set_router_state(router, true);
                self.schedule_repair();
            }
            EvKind::RepairTick => {
                if self.repair_at == Some(self.now) {
                    self.repair_at = None;
                }
                self.recompute_repair();
                self.repair_log.push(crate::metrics::RepairTickRecord {
                    at: self.now,
                    rows: self.repair.len() as u64,
                    fib_rows: self.repair.fib_rows_rewritten,
                });
            }
        }
    }

    fn on_flow_start(&mut self, flow: u32) {
        if self.dead_router_count != 0 {
            let f = &self.flows[flow as usize];
            if self.router_dead[f.src_router as usize] || self.router_dead[f.dst_router as usize] {
                // Workload filtering for whole-node failures: a flow
                // whose host is dead at start time is excluded and
                // accounted `host_dead` — it is not the network's
                // failure to deliver (`unroutable`), the host itself is
                // gone.
                self.flows[flow as usize].host_dead = true;
                self.host_dead += 1;
                self.finished_flows += 1;
                return;
            }
        }
        self.flows[flow as usize].started = true;
        match self.cfg.transport {
            Transport::Ndp { initial_window, .. } => self.ndp_start(flow, initial_window),
            Transport::Tcp { .. } => self.tcp_start(flow),
        }
    }

    // ---- link layer -----------------------------------------------------

    /// Enqueues a packet at a router output port, applying the queue
    /// policy (trim / drop / mark).
    pub(crate) fn router_enqueue(&mut self, port: u32, pid: u32) {
        match self.cfg.transport {
            Transport::Ndp { queue_pkts, .. } => {
                let (is_data, is_retx) = {
                    let p = self.packets.get(pid);
                    (p.kind == PktKind::Data && !p.trimmed, p.retx)
                };
                let q = &mut self.ports[port as usize];
                if is_data {
                    if (q.data_q.len() as u32) < queue_pkts {
                        // Retransmissions jump the data queue (they unblock
                        // stalled receivers, §III-C) but still count against
                        // the shallow limit — a payload is a payload.
                        if is_retx {
                            q.data_q.push_front(pid);
                        } else {
                            q.data_q.push_back(pid);
                        }
                    } else {
                        // Trim: drop payload, keep the header, prioritize.
                        let p = self.packets.get_mut(pid);
                        p.trimmed = true;
                        p.wire_bytes = HDR_BYTES;
                        self.trim_count += 1;
                        self.push_prio_bounded(port, pid);
                    }
                } else {
                    self.push_prio_bounded(port, pid);
                }
            }
            Transport::Tcp {
                queue_pkts,
                ecn_threshold,
                ..
            } => {
                let q = &mut self.ports[port as usize];
                let depth = q.data_q.len() as u32;
                if depth >= queue_pkts {
                    self.drops += 1;
                    self.packets.release(pid);
                    return;
                }
                if depth >= ecn_threshold {
                    self.packets.get_mut(pid).ecn_ce = true;
                }
                self.ports[port as usize].data_q.push_back(pid);
            }
        }
        self.port_try_start(port);
    }

    fn push_prio_bounded(&mut self, port: u32, pid: u32) {
        let q = &mut self.ports[port as usize];
        if q.prio_q.len() >= 1024 {
            self.drops += 1;
            self.packets.release(pid);
        } else {
            q.prio_q.push_back(pid);
        }
    }

    /// Enqueues onto an endpoint NIC (no drops: window-bounded).
    pub(crate) fn nic_enqueue(&mut self, ep: u32, pid: u32) {
        let port = self.up_base + ep;
        let is_control = self.packets.get(pid).kind != PktKind::Data;
        let q = &mut self.ports[port as usize];
        if is_control {
            q.prio_q.push_back(pid);
        } else {
            q.data_q.push_back(pid);
        }
        self.port_try_start(port);
    }

    fn port_try_start(&mut self, port: u32) {
        let (pid, to_is_router, to) = {
            let q = &mut self.ports[port as usize];
            if q.busy {
                return;
            }
            let Some(pid) = q.prio_q.pop_front().or_else(|| q.data_q.pop_front()) else {
                return;
            };
            q.busy = true;
            (pid, q.to_is_router, q.to)
        };
        let bytes = self.packets.get(pid).wire_bytes;
        let ser = self.cfg.ser_time(bytes);
        self.events.push(self.now + ser, EvKind::PortPop { port });
        let arrive = self.now + ser + self.cfg.link_latency;
        if to_is_router {
            self.events.push(
                arrive,
                EvKind::ArriveRouter {
                    pkt: pid,
                    router: to,
                },
            );
        } else {
            self.events
                .push(arrive, EvKind::ArriveEndpoint { pkt: pid, ep: to });
        }
    }

    // ---- routing ---------------------------------------------------------

    fn on_router_arrive(&mut self, r: u32, pid: u32) {
        if self.dead_router_count != 0 && self.router_dead[r as usize] {
            // The router died while this packet was in flight toward it
            // (or a local endpoint is still draining its NIC): a dead
            // router forwards nothing.
            self.drops += 1;
            self.packets.release(pid);
            return;
        }
        let (dst_router, dst_ep, layer) = {
            let p = self.packets.get(pid);
            (p.dst_router, p.dst_ep, p.layer)
        };
        // Per-hop layer rewrite (Valiant phase switch; identity for
        // single-phase schemes).
        if dst_router != r {
            let nl = self.scheme.update_layer(layer, r, dst_router);
            if nl != layer {
                self.packets.get_mut(pid).layer = nl;
            }
        }
        let port = if dst_router == r {
            let first = self.topo.router_endpoints(r).start;
            self.down_base[r as usize] + (dst_ep - first)
        } else {
            let Some(sel) = self.select_port(r, pid) else {
                // No live candidate port: the destination is unreachable
                // from here in the degraded network.
                self.unroutable += 1;
                self.packets.release(pid);
                return;
            };
            let port = self.net_base[r as usize] + sel as u32;
            if self.down_count != 0 && self.is_port_down(port) {
                // Link down (not yet repaired, or the scheme cannot
                // repair): the packet is lost; end-to-end recovery
                // redirects the flow to another layer (§V-G).
                self.drops += 1;
                self.packets.release(pid);
                return;
            }
            port
        };
        self.router_enqueue(port, pid);
    }

    fn select_port(&mut self, r: u32, pid: u32) -> Option<u16> {
        let p = *self.packets.get(pid);
        // Repaired rows (installed one detection delay after link-state
        // changes) shadow the scheme's original tables.
        let repaired_row = if self.repair.is_empty() {
            None
        } else {
            self.repair.lookup(p.layer, r, p.dst_router)
        };
        let scheme_row;
        let cands: &[u16] = match repaired_row {
            Some(e) => e.as_slice(),
            None => {
                scheme_row = self.scheme.candidate_ports(p.layer, r, p.dst_router);
                scheme_row.as_slice()
            }
        };
        debug_assert!(
            !cands.is_empty() || self.down_count != 0 || !self.repair.is_empty(),
            "destination unreachable on a healthy network"
        );
        if cands.is_empty() {
            return None;
        }
        if cands.len() == 1 {
            // Single-path layer (FatPaths tables, SPAIN, PAST, …): load
            // balancing happens across layers, not candidates.
            return Some(cands[0]);
        }
        let len = cands.len() as u64;
        Some(match self.cfg.lb {
            // NDP's spraying cycles each flow round-robin over the
            // candidate ports (per hop, offset by a flow/router hash):
            // smooth arrivals keep 8-packet queues stable at ρ→1,
            // where random spraying would trim persistently.
            // Retransmissions re-roll on their salt so a packet
            // never re-walks into a failed or congested port.
            LoadBalancing::PacketSpray => {
                if p.retx {
                    cands[(fnv1a(p.salt ^ r as u64) % len) as usize]
                } else {
                    let off = fnv1a(((p.flow as u64) << 32) ^ r as u64);
                    cands[((p.seq as u64 + off) % len) as usize]
                }
            }
            _ => cands[(fnv1a(p.nonce ^ ((r as u64) << 20)) % len) as usize],
        })
    }

    // ---- shared endpoint helpers ------------------------------------------

    /// Number of endpoint-selectable routing layers (1 when minimal-only).
    pub(crate) fn n_layers(&self) -> usize {
        self.scheme.num_layers()
    }

    /// Applies source-side flowlet logic before a data transmission:
    /// after a gap > `flowlet_gap`, re-pick the layer (FatPaths) or the
    /// nonce (LetFlow). ECMP keeps everything static; spraying ignores it.
    ///
    /// A ≥ gap pause implies the pipe has drained (the gap exceeds the
    /// RTT), so switching paths at a gap cannot reorder — LetFlow's core
    /// argument, which also protects the TCP modes from spurious
    /// dup-ACK retransmissions after a layer change.
    pub(crate) fn flowlet_update(&mut self, flow: u32) {
        let gap = self.cfg.flowlet_gap;
        let n_layers = self.n_layers();
        let lb = self.cfg.lb;
        let now = self.now;
        let f = &mut self.flows[flow as usize];
        if f.pinned_layer.is_some() {
            f.last_tx = now;
            return;
        }
        if f.last_tx != 0 && now.saturating_sub(f.last_tx) > gap {
            f.flowlet_ctr += 1;
            match lb {
                LoadBalancing::FatPathsLayers => {
                    f.layer = (fnv1a(((flow as u64) << 20) ^ f.flowlet_ctr as u64)
                        % n_layers as u64) as u8;
                }
                LoadBalancing::LetFlow => {
                    f.nonce = fnv1a(((flow as u64) << 21) ^ f.flowlet_ctr as u64);
                }
                _ => {}
            }
        }
        f.last_tx = now;
    }

    /// Crafts and sends one data packet of `flow` with sequence `seq`.
    pub(crate) fn send_data(&mut self, flow: u32, seq: u32, retx: bool) {
        self.flowlet_update(flow);
        let payload = self.cfg.transport.payload();
        self.salt_ctr += 1;
        let salt = self.salt_ctr;
        let f = &self.flows[flow as usize];
        let pkt = Packet {
            flow,
            seq,
            wire_bytes: f.payload_of(seq, payload) + HDR_BYTES,
            kind: PktKind::Data,
            layer: f.layer,
            trimmed: false,
            ecn_ce: false,
            ecn_echo: false,
            retx,
            dst_router: f.dst_router,
            dst_ep: f.dst_ep,
            nonce: f.nonce,
            salt,
            suggest_layer: 0xff,
        };
        let src = f.src_ep;
        let pid = self.packets.alloc(pkt);
        self.nic_enqueue(src, pid);
    }

    /// Crafts and sends a control packet from the receiver side (`Ack`,
    /// `Nack`) or sender side — destination chosen by `to_sender`.
    pub(crate) fn send_control(
        &mut self,
        flow: u32,
        kind: PktKind,
        seq: u32,
        to_sender: bool,
        ecn_echo: bool,
        suggest: u8,
    ) {
        self.salt_ctr += 1;
        let salt = self.salt_ctr;
        let f = &self.flows[flow as usize];
        let (dst_router, dst_ep, src) = if to_sender {
            (f.src_router, f.src_ep, f.dst_ep)
        } else {
            (f.dst_router, f.dst_ep, f.src_ep)
        };
        let pkt = Packet {
            flow,
            seq,
            wire_bytes: HDR_BYTES,
            kind,
            // Receiver→sender control rides the layer the data came in on
            // (proven alive in the forward direction); sender→receiver
            // control uses the flow's current layer.
            layer: if to_sender { f.rx_last_layer } else { f.layer },
            trimmed: false,
            ecn_ce: false,
            ecn_echo,
            retx: false,
            dst_router,
            dst_ep,
            nonce: f.nonce,
            salt,
            suggest_layer: suggest,
        };
        let pid = self.packets.alloc(pkt);
        self.nic_enqueue(src, pid);
    }

    /// Marks a flow complete (receiver got every byte). Aborted flows
    /// stay aborted: late packets delivered after a host revival cannot
    /// resurrect a reset connection.
    pub(crate) fn complete_flow(&mut self, flow: u32) {
        let f = &mut self.flows[flow as usize];
        if f.finished.is_none() && !f.aborted {
            f.finished = Some(self.now);
            self.finished_flows += 1;
        }
    }

    fn on_endpoint_arrive(&mut self, ep: u32, pid: u32) {
        match self.cfg.transport {
            Transport::Ndp { .. } => self.ndp_on_arrive(ep, pid),
            Transport::Tcp { .. } => self.tcp_on_arrive(ep, pid),
        }
    }

    fn on_pull_tick(&mut self, ep: u32) {
        self.ndp_pull_tick(ep);
    }

    fn on_rto(&mut self, flow: u32, gen: u32) {
        if self.abort_if_host_dead(flow, gen) {
            return;
        }
        match self.cfg.transport {
            Transport::Ndp { .. } => self.ndp_on_rto(flow, gen),
            Transport::Tcp { .. } => self.tcp_on_rto(flow, gen),
        }
    }

    /// Mid-flow host-death semantics
    /// ([`SimConfig::abort_on_host_death`]): when an endpoint of an
    /// in-flight flow is dead at RTO time, the timeout counts against
    /// the flow's dead-RTO budget; exhausting it aborts the transfer (a
    /// connection reset — the real-stack outcome, instead of silently
    /// outwaiting the reboot). Returns `true` when the flow was aborted
    /// (the timer must not be re-armed or the transport consulted).
    fn abort_if_host_dead(&mut self, flow: u32, gen: u32) -> bool {
        let Some(budget) = self.cfg.abort_on_host_death else {
            return false;
        };
        let f = &self.flows[flow as usize];
        if f.finished.is_some() || f.aborted || !f.started || gen != f.rto_gen {
            return f.aborted;
        }
        let endpoint_dead = self.dead_router_count != 0
            && (self.router_dead[f.src_router as usize] || self.router_dead[f.dst_router as usize]);
        let f = &mut self.flows[flow as usize];
        if !endpoint_dead {
            // The budget counts *consecutive* RTOs against a dead
            // endpoint (one outage), so a timeout with both hosts alive
            // clears it — separate survivable outages must not sum to
            // an abort (`reset_dead_rtos` clears it on receiver-side
            // evidence too).
            f.dead_rtos = 0;
            return false;
        }
        f.dead_rtos += 1;
        if f.dead_rtos < budget.max(1) {
            return false; // keep retrying: the transport re-arms the timer
        }
        f.aborted = true;
        self.finished_flows += 1;
        true
    }

    /// Clears the consecutive-dead-RTO budget on proof of life: any
    /// receiver-originated packet reaching the sender means the
    /// endpoint is (back) up, so a later outage starts a fresh count.
    #[inline]
    pub(crate) fn reset_dead_rtos(&mut self, flow: u32) {
        if self.cfg.abort_on_host_death.is_some() {
            self.flows[flow as usize].dead_rtos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_core::fwd::RoutingTables;
    use fatpaths_core::layers::LayerSet;
    use fatpaths_net::topo::slimfly::slim_fly;

    fn fixture() -> (Topology, RoutingTables) {
        let topo = slim_fly(5, 1).unwrap();
        let rt = RoutingTables::build(&topo.graph, &LayerSet::minimal_only(&topo.graph));
        (topo, rt)
    }

    /// Router death fails every incident link atomically; revival
    /// restores exactly the links whose other end is alive and that were
    /// not failed in their own right.
    #[test]
    fn router_death_and_revival_state_machine() {
        let (topo, rt) = fixture();
        let mut sim = Simulator::new(&topo, &rt, SimConfig::default());
        let r = 7u32;
        let nbs: Vec<u32> = topo.graph.neighbors(r).to_vec();
        let (cut, other_dead) = (nbs[0], nbs[1]);
        // An independent link failure on one incident link, plus a
        // second dead router adjacent to `r`.
        sim.fail_link_now(r, cut);
        sim.set_router_state(other_dead, false);
        sim.set_router_state(r, false);
        assert!(sim.router_is_dead(r));
        for &nb in &nbs {
            assert!(sim.link_is_down(r, nb), "incident link {r}-{nb} must die");
        }
        assert_eq!(sim.down_count as usize, sim.down_links.len());
        // Idempotent.
        let n_down = sim.down_count;
        sim.set_router_state(r, false);
        assert_eq!(sim.down_count, n_down);
        // Revival: every incident link returns except the independently
        // cut one and the one into the still-dead neighbor.
        sim.set_router_state(r, true);
        assert!(!sim.router_is_dead(r));
        for &nb in &nbs {
            let expect_down = nb == cut || nb == other_dead;
            assert_eq!(
                sim.link_is_down(r, nb),
                expect_down,
                "link {r}-{nb} after revival"
            );
        }
        // The independently cut link returns only via LinkUp.
        sim.restore_link_now(r, cut);
        assert!(!sim.link_is_down(r, cut));
    }

    /// A burst of simultaneous link-state changes coalesces into one
    /// scheduled repair pass (one `RepairTick` per event batch).
    #[test]
    fn repair_ticks_coalesce_per_batch() {
        let (topo, rt) = fixture();
        let cfg = SimConfig {
            detection_delay: Some(1_000_000),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topo, &rt, cfg);
        sim.now = 5_000;
        // A maintenance-window-sized burst: three routers die in the
        // same instant.
        for r in [3u32, 9, 14] {
            sim.dispatch(EvKind::RouterDown { router: r });
        }
        assert_eq!(
            sim.events.len(),
            1,
            "simultaneous changes must schedule exactly one RepairTick"
        );
        // A later batch gets its own tick.
        sim.now = 9_000;
        sim.dispatch(EvKind::RouterUp { router: 3 });
        sim.dispatch(EvKind::RouterUp { router: 9 });
        assert_eq!(sim.events.len(), 2);
    }

    /// Static whole-router failures coalesce with static link failures
    /// into a single repair pass at `t = 0`.
    #[test]
    fn static_plan_schedules_one_repair() {
        let (topo, rt) = fixture();
        let cfg = SimConfig {
            detection_delay: Some(1_000_000),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topo, &rt, cfg);
        let e = topo.graph.edge_vec()[0];
        let plan = FaultPlan::none()
            .fail(e.0, e.1)
            .fail_router(20)
            .fail_router(31);
        sim.apply_fault_plan(&plan);
        assert_eq!(sim.events.len(), 1, "one RepairTick for the static batch");
        assert!(sim.router_is_dead(20) && sim.router_is_dead(31));
        assert!(sim.link_is_down(e.0, e.1));
    }
}
