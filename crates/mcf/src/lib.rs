//! # fatpaths-mcf
//!
//! Maximum-Achievable-Throughput (MAT) analysis of §VI: a Garg–Könemann
//! max-concurrent-flow solver over per-scheme candidate path sets, the
//! worst-case traffic generator, and the glue that reproduces Fig. 9.

pub mod gk;
pub mod mat;
pub mod worstcase;

pub use gk::{max_concurrent_flow, Commodity, McfResult};
pub use mat::{
    mat, router_demands, throughput_upper_bound, KspPaths, LayeredPaths, PastPaths, PathProvider,
    RouterDemand,
};
pub use worstcase::{worst_case_flows, worst_case_router_matching};
