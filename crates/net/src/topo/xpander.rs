//! Xpander topology (Valadarsky, Dinitz, Schapira — HotNets'15).
//!
//! An Xpander is built by applying an `ℓ`-lift to the complete graph
//! `K_{k'+1}`: every base vertex becomes a *metanode* of `ℓ` routers, and
//! every base edge `(u, v)` is replaced by a random perfect matching between
//! the copies of `u` and the copies of `v`. The result is `k'`-regular with
//! `Nr = ℓ·(k' + 1)` routers and expander-grade path diversity. The paper
//! restricts to `ℓ = k'`, `D ≈ 2–3`, `p = ⌈k'/2⌉` (Appendix A).

use super::{LinkClass, TopoKind, Topology};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Builds an Xpander as a single `lift`-lift of `K_{kprime+1}` with `p`
/// endpoints per router. Deterministic in `seed`. Retries lifts until the
/// sampled instance is connected (failures are astronomically rare for the
/// paper's parameters).
pub fn xpander(kprime: u32, lift: u32, p: u32, seed: u64) -> Topology {
    assert!(kprime >= 2 && lift >= 1);
    let base = kprime + 1;
    let nr = (lift * base) as usize;
    let rid = |meta: u32, copy: u32| -> u32 { meta * lift + copy };
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..64 {
        let mut edges = Vec::with_capacity((nr * kprime as usize) / 2);
        let mut perm: Vec<u32> = (0..lift).collect();
        for u in 0..base {
            for v in (u + 1)..base {
                perm.shuffle(&mut rng);
                for i in 0..lift {
                    edges.push((rid(u, i), rid(v, perm[i as usize]), LinkClass::Long));
                }
            }
        }
        let topo = Topology::assemble(
            TopoKind::Xpander,
            format!("XP(k'={kprime},l={lift},p={p})"),
            nr,
            edges,
            Topology::uniform_concentration(nr, p),
            3,
        );
        if topo.graph.is_connected() {
            return topo;
        }
    }
    panic!("failed to sample a connected Xpander (k'={kprime}, lift={lift})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_counts_and_regularity() {
        let t = xpander(8, 8, 4, 1);
        assert_eq!(t.num_routers(), 8 * 9);
        assert!(t.graph.is_regular());
        assert_eq!(t.network_radix(), 8);
        assert!(t.graph.is_connected());
    }

    #[test]
    fn no_intra_metanode_edges() {
        let t = xpander(6, 6, 3, 2);
        let lift = 6u32;
        for (u, v) in t.graph.edges() {
            assert_ne!(u / lift, v / lift, "edge inside a metanode");
        }
    }

    #[test]
    fn paper_config_k32() {
        // Table IV: XP with k'=32, Nr=1056, N=16896 (p=16).
        let t = xpander(32, 32, 16, 3);
        assert_eq!(t.num_routers(), 1056);
        assert_eq!(t.network_radix(), 32);
        assert_eq!(t.num_endpoints(), 16896);
        let (d, _) = t.graph.diameter_apl();
        assert!(d <= 3, "diameter {d}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = xpander(6, 6, 3, 9);
        let b = xpander(6, 6, 3, 9);
        assert_eq!(a.graph, b.graph);
    }
}
