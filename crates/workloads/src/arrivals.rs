//! Flow arrival process (§VII-A4): Poisson arrivals at rate λ flows per
//! endpoint per second, over a fixed window; the first half of the window
//! is warm-up and dropped at analysis time (§VII-A8).

use crate::sizes::FlowSizeDist;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Time unit used throughout the simulator: picoseconds.
pub type TimePs = u64;

/// One second in picoseconds.
pub const SEC_PS: TimePs = 1_000_000_000_000;

/// A flow to inject into the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source endpoint id.
    pub src: u32,
    /// Destination endpoint id.
    pub dst: u32,
    /// Payload bytes.
    pub size: u64,
    /// Start time (ps).
    pub start: TimePs,
}

/// Generates Poisson flow arrivals: every `(src, dst)` pair from the
/// pattern receives an independent Poisson process such that each *source
/// endpoint* sees `lambda` flows/s in total (split across its pairs when a
/// pattern is oversubscribed). Flows are sorted by start time.
pub fn poisson_flows(
    pairs: &[(u32, u32)],
    lambda_per_endpoint: f64,
    window_s: f64,
    dist: &FlowSizeDist,
    seed: u64,
) -> Vec<FlowSpec> {
    assert!(lambda_per_endpoint > 0.0 && window_s > 0.0);
    // Pairs per source, to split λ.
    let mut per_src: rustc_hash::FxHashMap<u32, u32> = rustc_hash::FxHashMap::default();
    for &(s, _) in pairs {
        *per_src.entry(s).or_insert(0) += 1;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::new();
    for &(s, d) in pairs {
        let rate = lambda_per_endpoint / per_src[&s] as f64; // flows per second
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / rate;
            if t >= window_s {
                break;
            }
            flows.push(FlowSpec {
                src: s,
                dst: d,
                size: dist.sample(&mut rng),
                start: (t * SEC_PS as f64) as TimePs,
            });
        }
    }
    flows.sort_by_key(|f| (f.start, f.src, f.dst));
    flows
}

/// Generates exactly one flow per pair, all starting at `start` with fixed
/// `size` — the bulk-synchronous phase used by the stencil workload and by
/// the fixed-size sweeps.
pub fn bulk_flows(pairs: &[(u32, u32)], size: u64, start: TimePs) -> Vec<FlowSpec> {
    pairs
        .iter()
        .map(|&(src, dst)| FlowSpec {
            src,
            dst,
            size,
            start,
        })
        .collect()
}

/// Drops flows that start in the first half of the window (warm-up,
/// §VII-A8) given the window length in seconds.
pub fn drop_warmup(flows: &[FlowSpec], window_s: f64) -> Vec<FlowSpec> {
    let cutoff = (window_s * 0.5 * SEC_PS as f64) as TimePs;
    flows
        .iter()
        .copied()
        .filter(|f| f.start >= cutoff)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::MIB;

    #[test]
    fn poisson_rate_is_respected() {
        let pairs: Vec<(u32, u32)> = (0..100u32).map(|s| (s, (s + 1) % 100)).collect();
        let d = FlowSizeDist::fixed(MIB);
        let flows = poisson_flows(&pairs, 200.0, 0.1, &d, 3);
        // Expected: 100 endpoints × 200 flows/s × 0.1 s = 2000 ± noise.
        assert!((1700..2300).contains(&flows.len()), "{}", flows.len());
        // Sorted by time.
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn oversubscribed_pattern_keeps_per_endpoint_rate() {
        // 4 destinations per source: λ split 4 ways.
        let mut pairs = Vec::new();
        for s in 0..50u32 {
            for k in 1..=4u32 {
                pairs.push((s, (s + k) % 50));
            }
        }
        let d = FlowSizeDist::fixed(MIB);
        let flows = poisson_flows(&pairs, 100.0, 0.2, &d, 4);
        // 50 endpoints × 100 flows/s × 0.2s = 1000 expected.
        assert!((800..1200).contains(&flows.len()), "{}", flows.len());
    }

    #[test]
    fn warmup_drops_first_half() {
        let pairs = [(0u32, 1u32)];
        let d = FlowSizeDist::fixed(1000);
        let flows = poisson_flows(&pairs, 10_000.0, 0.01, &d, 5);
        let kept = drop_warmup(&flows, 0.01);
        assert!(kept.len() < flows.len());
        assert!(kept
            .iter()
            .all(|f| f.start >= (0.005 * SEC_PS as f64) as u64));
    }

    #[test]
    fn bulk_flows_are_uniform() {
        let flows = bulk_flows(&[(0, 1), (1, 2)], 4096, 77);
        assert_eq!(flows.len(), 2);
        assert!(flows.iter().all(|f| f.size == 4096 && f.start == 77));
    }
}
