//! Maximum Achievable Throughput (MAT) evaluation per routing scheme —
//! the machinery behind Fig. 9 (§VI-C).
//!
//! For a topology, a routing scheme, and a traffic pattern, MAT is the
//! largest `T` such that every commodity can ship `T · demand`
//! concurrently. Commodity candidate paths come from the scheme:
//!
//! * **FatPaths layered routing** — one destination-based path per layer;
//! * **SPAIN** — the path within each (forest) layer that connects the
//!   pair, where one exists;
//! * **PAST** — the single tree path of the destination's spanning tree;
//! * **k-shortest paths** — Yen's paths.

use crate::gk::{max_concurrent_flow, Commodity, McfResult};
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::ksp::k_shortest_paths;
use fatpaths_core::past::PastTrees;
use fatpaths_net::graph::{Graph, RouterId};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// A demand between two routers.
#[derive(Clone, Copy, Debug)]
pub struct RouterDemand {
    /// Source router.
    pub src: RouterId,
    /// Destination router.
    pub dst: RouterId,
    /// Requested flow.
    pub demand: f64,
}

/// Provides candidate router-paths for (src, dst) pairs.
pub trait PathProvider {
    /// Candidate paths as router sequences (`src ..= dst`).
    fn paths(&self, src: RouterId, dst: RouterId) -> Vec<Vec<RouterId>>;
    /// Number of "layers" (hardware resource cost, §VI-B).
    fn layer_cost(&self) -> usize;
}

/// FatPaths / SPAIN style: one path per layer from forwarding tables.
pub struct LayeredPaths<'a> {
    /// Base graph the tables were built on.
    pub base: &'a Graph,
    /// The per-layer forwarding tables.
    pub tables: &'a RoutingTables,
}

impl PathProvider for LayeredPaths<'_> {
    fn paths(&self, src: RouterId, dst: RouterId) -> Vec<Vec<RouterId>> {
        let mut out: Vec<Vec<u32>> = Vec::new();
        for layer in 0..self.tables.n_layers() {
            if let Some(p) = self.tables.path(self.base, layer, src, dst) {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    fn layer_cost(&self) -> usize {
        self.tables.n_layers()
    }
}

/// PAST: the unique per-destination tree path.
pub struct PastPaths<'a> {
    /// The per-destination spanning trees.
    pub trees: &'a PastTrees,
}

impl PathProvider for PastPaths<'_> {
    fn paths(&self, src: RouterId, dst: RouterId) -> Vec<Vec<RouterId>> {
        self.trees.path(src, dst).into_iter().collect()
    }

    fn layer_cost(&self) -> usize {
        self.trees.num_trees()
    }
}

/// Yen's k shortest paths.
pub struct KspPaths<'a> {
    /// The graph.
    pub graph: &'a Graph,
    /// Paths per pair.
    pub k: usize,
}

impl PathProvider for KspPaths<'_> {
    fn paths(&self, src: RouterId, dst: RouterId) -> Vec<Vec<RouterId>> {
        k_shortest_paths(self.graph, src, dst, self.k)
    }

    fn layer_cost(&self) -> usize {
        self.k
    }
}

/// Computes MAT: assembles commodities (router paths → edge-id paths) and
/// runs the Garg–Könemann solver with unit edge capacities.
///
/// Commodity assembly — the table walks / Yen runs behind
/// [`PathProvider::paths`] — is embarrassingly parallel and dominates
/// wall-clock for large demand sets, so it fans out per demand (hence
/// the `Sync` bound on providers); the GK iterations themselves are
/// data-dependent and stay sequential (see [`crate::gk`]).
pub fn mat<P: PathProvider + Sync>(
    g: &Graph,
    demands: &[RouterDemand],
    provider: &P,
    eps: f64,
) -> McfResult {
    let edge_index: FxHashMap<(u32, u32), u32> = g.edge_index_map();
    let commodities: Vec<Commodity> = demands
        .par_iter()
        .map(|d| {
            let paths = provider
                .paths(d.src, d.dst)
                .into_iter()
                .map(|p| {
                    p.windows(2)
                        .map(|w| edge_index[&(w[0].min(w[1]), w[0].max(w[1]))])
                        .collect::<Vec<u32>>()
                })
                .filter(|p| !p.is_empty())
                .collect();
            Commodity {
                demand: d.demand,
                paths,
            }
        })
        .collect();
    let capacities = vec![1.0f64; g.m()];
    max_concurrent_flow(&capacities, &commodities, eps)
}

/// Throughput upper bound for a traffic matrix on a topology, with unit
/// link capacities: the minimum of the router egress/ingress cut bounds
/// (`T · demand_out(r) ≤ degree(r)`, same for ingress) and the
/// volumetric bound (every unit of a commodity consumes at least
/// `dist(src, dst)` capacity units, so `T · Σ dᵢ·distᵢ ≤ m`). This is
/// the denominator of the achieved/optimal ratio the `baselines` and
/// `te` sweeps report.
///
/// These are *true* upper bounds on any routing — minimal or
/// non-minimal, layered or not — so achieved/optimal is always ≤ 1
/// (unlike a k-shortest-path MCF restriction, which grossly
/// under-counts on fat trees where minimal path counts are quadratic in
/// the radix). They are not tight on every instance: a ratio well
/// below 1 can mean headroom *or* a loose cut.
pub fn throughput_upper_bound(
    topo: &fatpaths_net::topo::Topology,
    demands: &[RouterDemand],
) -> f64 {
    let g = &topo.graph;
    let nr = g.n();
    let mut out = vec![0.0f64; nr];
    let mut inn = vec![0.0f64; nr];
    for d in demands {
        if d.src != d.dst {
            out[d.src as usize] += d.demand;
            inn[d.dst as usize] += d.demand;
        }
    }
    let mut bound = f64::INFINITY;
    for r in 0..nr {
        let deg = g.neighbors(r as u32).len() as f64;
        if out[r] > 0.0 {
            bound = bound.min(deg / out[r]);
        }
        if inn[r] > 0.0 {
            bound = bound.min(deg / inn[r]);
        }
    }
    // Volumetric: one BFS per distinct source. Demands are summed in
    // (src, dst) order so the f64 accumulation — and therefore the bound
    // — is independent of the caller's demand ordering.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by_key(|&i| (demands[i].src, demands[i].dst));
    let mut volume = 0.0f64;
    let mut dist: Vec<u32> = Vec::new();
    let mut dist_src = u32::MAX;
    for &i in &order {
        let d = &demands[i];
        if d.src == d.dst {
            continue;
        }
        if d.src != dist_src {
            dist = g.bfs(d.src);
            dist_src = d.src;
        }
        volume += d.demand * dist[d.dst as usize] as f64;
    }
    if volume > 0.0 {
        bound = bound.min(g.m() as f64 / volume);
    }
    bound
}

/// Aggregates endpoint flows into router demands (flows between endpoints
/// of the same router pair merge; intra-router flows are dropped).
pub fn router_demands(
    flows: &[(u32, u32)],
    endpoint_router: impl Fn(u32) -> RouterId,
) -> Vec<RouterDemand> {
    let mut map: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    for &(s, t) in flows {
        let (rs, rt) = (endpoint_router(s), endpoint_router(t));
        if rs != rt {
            *map.entry((rs, rt)).or_insert(0.0) += 1.0;
        }
    }
    map.into_iter()
        .map(|((src, dst), demand)| RouterDemand { src, dst, demand })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worstcase::worst_case_flows;
    use fatpaths_core::layers::{build_random_layers, LayerConfig, LayerSet};
    use fatpaths_core::past::PastVariant;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn layered_beats_past_on_slim_fly_worst_case() {
        // The Fig. 9 headline: FatPaths layered routing outperforms PAST on
        // low-diameter topologies under worst-case traffic.
        let t = slim_fly(5, 3).unwrap();
        let flows = worst_case_flows(&t, 0.55, 1);
        let demands = router_demands(&flows, |e| t.endpoint_router(e));
        let ls = build_random_layers(&t.graph, &LayerConfig::new(6, 0.6, 2));
        let rt = RoutingTables::build(&t.graph, &ls);
        let fat = mat(
            &t.graph,
            &demands,
            &LayeredPaths {
                base: &t.graph,
                tables: &rt,
            },
            0.08,
        );
        let trees = PastTrees::build(&t.graph, PastVariant::Bfs, 3);
        let past = mat(&t.graph, &demands, &PastPaths { trees: &trees }, 0.08);
        assert!(
            fat.throughput > past.throughput,
            "FatPaths {} ≤ PAST {}",
            fat.throughput,
            past.throughput
        );
    }

    #[test]
    fn more_layers_do_not_hurt() {
        let t = slim_fly(5, 3).unwrap();
        let flows = worst_case_flows(&t, 0.55, 4);
        let demands = router_demands(&flows, |e| t.endpoint_router(e));
        let l1 = LayerSet::minimal_only(&t.graph);
        let rt1 = RoutingTables::build(&t.graph, &l1);
        let single = mat(
            &t.graph,
            &demands,
            &LayeredPaths {
                base: &t.graph,
                tables: &rt1,
            },
            0.08,
        );
        let l6 = build_random_layers(&t.graph, &LayerConfig::new(6, 0.6, 5));
        let rt6 = RoutingTables::build(&t.graph, &l6);
        let six = mat(
            &t.graph,
            &demands,
            &LayeredPaths {
                base: &t.graph,
                tables: &rt6,
            },
            0.08,
        );
        assert!(
            six.throughput >= single.throughput * 0.95,
            "{} vs {}",
            six.throughput,
            single.throughput
        );
    }

    #[test]
    fn router_demand_merging() {
        let demands = router_demands(&[(0, 4), (1, 5), (2, 2)], |e| e / 2);
        // (0,4)→routers (0,2); (1,5)→(0,2); (2,2)→(1,1) dropped.
        assert_eq!(demands.len(), 1);
        assert_eq!(demands[0].demand, 2.0);
    }

    #[test]
    fn ksp_provider_paths_are_valid() {
        let t = slim_fly(5, 1).unwrap();
        let p = KspPaths {
            graph: &t.graph,
            k: 4,
        };
        let paths = p.paths(0, 33);
        assert_eq!(paths.len(), 4);
        for path in paths {
            for w in path.windows(2) {
                assert!(t.graph.has_edge(w[0], w[1]));
            }
        }
    }
}
