//! Fully connected router graph (diameter 1).
//!
//! Used by the paper as a corner case and lower bound (Appendix A-G) and to
//! study collision multiplicity on Dragonfly's global-link structure
//! (Fig. 4, Fig. 12): the group-level graph of a balanced Dragonfly is a
//! complete graph.

use super::{LinkClass, TopoKind, Topology};

/// Builds a complete graph over `kprime + 1` routers with `p` endpoints per
/// router (the paper uses `p = k'`).
pub fn complete(kprime: u32, p: u32) -> Topology {
    let nr = (kprime + 1) as usize;
    let mut edges = Vec::with_capacity(nr * (nr - 1) / 2);
    for u in 0..nr as u32 {
        for v in (u + 1)..nr as u32 {
            edges.push((u, v, LinkClass::Short));
        }
    }
    Topology::assemble(
        TopoKind::Complete,
        format!("CG(k'={kprime},p={p})"),
        nr,
        edges,
        Topology::uniform_concentration(nr, p),
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_diameter() {
        let t = complete(10, 10);
        assert_eq!(t.num_routers(), 11);
        assert_eq!(t.network_radix(), 10);
        assert_eq!(t.num_endpoints(), 110);
        let (d, apl) = t.graph.diameter_apl();
        assert_eq!(d, 1);
        assert!((apl - 1.0).abs() < 1e-12);
    }
}
