//! The sharded execution core: per-region event queues, packet arenas,
//! and network state, synchronized by conservative lookahead.
//!
//! The topology's routers (and their endpoints) are partitioned into K
//! shards ([`partition_routers`]: whole `Topology::domains` where they
//! cover the network, a BFS-balanced split otherwise). Each [`Shard`]
//! owns the output ports, flow halves, and event queue for its region
//! and runs windows of `[t0, t0 + L)` where the lookahead `L` is the
//! minimum cross-shard link latency (links are homogeneous, so `L =
//! SimConfig::link_latency`): every packet handoff takes at least
//! serialization + latency ≥ L, so events a shard processes inside a
//! window cannot be affected by any other shard's events in the same
//! window. Cross-shard packets go through per-shard-pair mailboxes
//! ([`deliver_mailboxes`]) merged deterministically by `(time,
//! src_shard, seq)` — never by arrival order — and the queues order
//! equal-time events by canonical content keys (see `crate::engine`),
//! so results are bit-identical at any shard and thread count.
//!
//! Flow state is split by side so no hot-path read ever crosses a
//! shard: [`FlowMeta`] (immutable) is shared read-only, [`TxFlow`]
//! lives on the sender's shard, [`RxFlow`] on the receiver's. Fault
//! state (down links, dead routers, repair overlay) is *shared, not
//! replicated*: every fault event derives statically from the
//! `FaultPlan`, so a single writer (`crate::faults::FaultWriter`)
//! replays the sequence once before the run and publishes one
//! immutable [`FaultEpoch`] per fault event. Shards keep the fault
//! events in their queues purely as epoch-cursor advances — popping
//! one bumps `Shard::fault_epoch`, and every hot-path read goes
//! through the shared snapshot `cx.faults.epochs[fault_epoch]`. One
//! copy of the fault state regardless of K, zero synchronization.

use crate::config::{AdaptiveMode, LoadBalancing, SimConfig, Transport, HDR_BYTES};
use crate::engine::{
    least_loaded, EvKind, EventQueue, Packet, PacketSlab, PktKind, TimePs, NO_PKT,
};
use crate::faults::{FaultEpoch, FaultTimeline};
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::topo::Topology;
use fatpaths_telemetry::{ShardTelemetry, SpanKind};
use fatpaths_workloads::arrivals::FlowSpec;
use std::collections::VecDeque;

/// An output port: serializer + queues, owned by exactly one shard.
///
/// The queues are intrusive chains through the owning shard's
/// [`PacketSlab`] (`head`/`tail` slot ids linked by `PacketSlab::next`),
/// not heap-allocated deques: at fat-tree scale the port array is
/// hundreds of thousands of entries, and per-port deque buffers were
/// the single largest static *and* transient allocation of a run.
pub(crate) struct Port {
    /// Far-end id (bits 0..30), `to_is_router` (bit 30) and `busy`
    /// (bit 31) — packed because the port array is the largest static
    /// allocation and ids stay far below 2³⁰.
    to_flags: u32,
    pub data_head: u32,
    pub data_tail: u32,
    pub prio_head: u32,
    pub prio_tail: u32,
    /// Queue depths. `u16` is ample: data queues are policy-capped at
    /// the transport's `queue_pkts` (≤ 100), priority queues at 1024
    /// (`push_prio_bounded`), and NIC queue depth is never consulted.
    pub data_len: u16,
    pub prio_len: u16,
}

const PORT_TO_ROUTER: u32 = 1 << 30;
const PORT_BUSY: u32 = 1 << 31;

impl Port {
    pub(crate) fn new(to_is_router: bool, to: u32) -> Self {
        debug_assert!(to < PORT_TO_ROUTER);
        Port {
            to_flags: to | if to_is_router { PORT_TO_ROUTER } else { 0 },
            data_head: NO_PKT,
            data_tail: NO_PKT,
            prio_head: NO_PKT,
            prio_tail: NO_PKT,
            data_len: 0,
            prio_len: 0,
        }
    }

    /// Far-end id.
    #[inline]
    pub(crate) fn to(&self) -> u32 {
        self.to_flags & (PORT_TO_ROUTER - 1)
    }

    /// Whether the far end is a router (vs. an endpoint NIC).
    #[inline]
    pub(crate) fn to_is_router(&self) -> bool {
        self.to_flags & PORT_TO_ROUTER != 0
    }

    /// Whether the serializer is running.
    #[inline]
    pub(crate) fn busy(&self) -> bool {
        self.to_flags & PORT_BUSY != 0
    }

    #[inline]
    pub(crate) fn set_busy(&mut self, busy: bool) {
        if busy {
            self.to_flags |= PORT_BUSY;
        } else {
            self.to_flags &= !PORT_BUSY;
        }
    }

    #[inline]
    fn queue(&mut self, data: bool) -> (&mut u32, &mut u32, &mut u16) {
        if data {
            (&mut self.data_head, &mut self.data_tail, &mut self.data_len)
        } else {
            (&mut self.prio_head, &mut self.prio_tail, &mut self.prio_len)
        }
    }

    /// Appends `pid` to the data (`data = true`) or priority queue.
    pub(crate) fn push_back(&mut self, slab: &mut PacketSlab, data: bool, pid: u32) {
        slab.set_next(pid, NO_PKT);
        let (head, tail, len) = self.queue(data);
        if *tail == NO_PKT {
            *head = pid;
        } else {
            slab.set_next(*tail, pid);
        }
        *tail = pid;
        *len += 1;
    }

    /// Head-inserts `pid` (retransmissions jump the data queue).
    pub(crate) fn push_front(&mut self, slab: &mut PacketSlab, data: bool, pid: u32) {
        let (head, tail, len) = self.queue(data);
        slab.set_next(pid, *head);
        if *tail == NO_PKT {
            *tail = pid;
        }
        *head = pid;
        *len += 1;
    }

    /// Pops the queue head, if any.
    pub(crate) fn pop_front(&mut self, slab: &PacketSlab, data: bool) -> Option<u32> {
        let (head, tail, len) = self.queue(data);
        let pid = *head;
        if pid == NO_PKT {
            return None;
        }
        *head = slab.next_of(pid);
        if *head == NO_PKT {
            *tail = NO_PKT;
        }
        *len -= 1;
        Some(pid)
    }
}

/// Where a sharded object lives: which shard (high byte) and at which
/// local index (low 24 bits). Four of these maps cover every flow and
/// every port, so the packing matters: 8 → 4 bytes halves several MB of
/// always-resident lookup tables at the 119k-endpoint scale.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SlotRef(u32);

impl SlotRef {
    const IDX_BITS: u32 = 24;

    pub fn new(shard: u32, idx: u32) -> Self {
        assert!(shard < 1 << (32 - Self::IDX_BITS) && idx < 1 << Self::IDX_BITS);
        SlotRef(shard << Self::IDX_BITS | idx)
    }

    #[inline]
    pub fn shard(self) -> u32 {
        self.0 >> Self::IDX_BITS
    }

    #[inline]
    pub fn idx(self) -> u32 {
        self.0 & ((1 << Self::IDX_BITS) - 1)
    }
}

/// Immutable per-flow facts, shared read-only by every shard. The
/// attachment routers are *not* stored — `Ctx::ep_router` derives them
/// from the endpoint ids on the rare paths that need them — because
/// this table is resident for the whole run at one entry per flow.
pub(crate) struct FlowMeta {
    pub src_ep: u32,
    pub dst_ep: u32,
    pub size: u64,
    pub start: TimePs,
    pub num_pkts: u32,
    /// MPTCP subflow: layer is pinned, never re-picked.
    pub pinned_layer: Option<u8>,
    /// Congestion-avoidance increase factor (LIA coupling: 1/k).
    pub ca_scale: f64,
    pub init_nonce: u64,
    pub init_layer: u8,
}

impl FlowMeta {
    pub(crate) fn new(
        spec: &FlowSpec,
        payload: u32,
        init_nonce: u64,
        init_layer: u8,
        pinned_layer: Option<u8>,
        ca_scale: f64,
    ) -> Self {
        FlowMeta {
            src_ep: spec.src,
            dst_ep: spec.dst,
            size: spec.size,
            start: spec.start,
            num_pkts: spec.size.div_ceil(payload as u64).max(1) as u32,
            pinned_layer,
            ca_scale,
            init_nonce,
            init_layer,
        }
    }

    pub(crate) fn payload_of(&self, seq: u32, payload: u32) -> u32 {
        if seq + 1 == self.num_pkts {
            (self.size - (self.num_pkts as u64 - 1) * payload as u64) as u32
        } else {
            payload
        }
    }
}

/// A per-sequence bitmap that stays allocation-free for flows of ≤ 64
/// packets — the common case at scale, where a 16 KiB flow is a
/// handful of MTUs — spilling to the heap only for larger transfers.
#[derive(Debug, Default)]
pub(crate) struct SeqBits {
    inline: u64,
    /// Boxed, not a `Vec`: the word count is fixed at flow creation, so
    /// the slice never grows and the thinner header is worth 8 bytes on
    /// every flow half.
    spill: Box<[u64]>,
}

impl SeqBits {
    pub(crate) fn new(bits: u32) -> Self {
        SeqBits {
            inline: 0,
            spill: if bits <= 64 {
                Box::default()
            } else {
                vec![0u64; bits.div_ceil(64) as usize].into_boxed_slice()
            },
        }
    }

    #[inline]
    pub(crate) fn test(&self, i: u32) -> bool {
        if self.spill.is_empty() {
            debug_assert!(i < 64);
            self.inline >> i & 1 == 1
        } else {
            self.spill[(i / 64) as usize] >> (i % 64) & 1 == 1
        }
    }

    /// Sets bit `i`; returns whether it was previously clear.
    #[inline]
    pub(crate) fn set(&mut self, i: u32) -> bool {
        let w = if self.spill.is_empty() {
            debug_assert!(i < 64);
            &mut self.inline
        } else {
            &mut self.spill[(i / 64) as usize]
        };
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            return false;
        }
        *w |= bit;
        true
    }

    /// Capacity in bits (an upper bound on valid indices).
    #[inline]
    pub(crate) fn bits(&self) -> u32 {
        if self.spill.is_empty() {
            64
        } else {
            (self.spill.len() * 64) as u32
        }
    }
}

/// Sender-side flow state, owned by the source router's shard.
///
/// TCP congestion state lives in the parallel [`TcpState`] array
/// (`Shard::tcp`), populated only when the run's transport is TCP, so
/// NDP runs at endpoint scale do not carry ~100 bytes of dead
/// congestion fields per flow.
pub(crate) struct TxFlow {
    pub started: bool,
    pub next_new: u32,
    /// Pending retransmissions, FIFO (head at index 0: the queue is
    /// almost always empty or a handful of entries, so a `Vec` beats a
    /// `VecDeque` header per flow).
    pub retxq: Vec<u32>,
    pub cum_ack: u32,
    /// Per-sequence ack bitmap (NDP): the sender's own view of what the
    /// receiver holds — replaces the pre-shard read of the receiver's
    /// `received` bitmap, which may live on another shard.
    pub acked: SeqBits,
    pub acked_count: u32,
    // load balancing
    pub layer: u8,
    pub nonce: u64,
    pub last_tx: TimePs,
    pub flowlet_ctr: u32,
    /// Transmission counter feeding the packet uid (`Packet::salt`).
    pub uid_ctr: u32,
    // counters
    pub retx_count: u32,
    pub rto_gen: u32,
    /// Lazy NDP retransmission timer: progress moves this deadline
    /// forward without touching the event queue; a timer event firing
    /// before it simply re-arms at the deadline. Keeps at most one live
    /// `RtoTimer` event per flow instead of one per ack — at 100k+
    /// flows the difference is tens of MB of event-heap high-water.
    pub rto_deadline: TimePs,
    /// Whether an `RtoTimer` event for this flow is in the queue.
    pub rto_armed: bool,
    /// The flow was never injected: its source or destination host sat
    /// behind a dead router at start time.
    pub host_dead: bool,
    /// RTOs burned while an endpoint was dead (only tracked when
    /// `SimConfig::abort_on_host_death` is set).
    pub dead_rtos: u32,
    /// Aborted mid-transfer (dead-RTO budget exhausted): terminal.
    pub aborted: bool,
}

impl TxFlow {
    pub(crate) fn new(m: &FlowMeta) -> Self {
        TxFlow {
            started: false,
            next_new: 0,
            retxq: Vec::new(),
            cum_ack: 0,
            acked: SeqBits::new(m.num_pkts),
            acked_count: 0,
            layer: m.init_layer,
            nonce: m.init_nonce,
            last_tx: 0,
            flowlet_ctr: 0,
            uid_ctr: 0,
            retx_count: 0,
            rto_gen: 0,
            rto_deadline: 0,
            rto_armed: false,
            host_dead: false,
            dead_rtos: 0,
            aborted: false,
        }
    }

    /// Records a per-sequence ack; returns whether it was new.
    pub(crate) fn mark_acked(&mut self, seq: u32) -> bool {
        if !self.acked.set(seq) {
            return false;
        }
        self.acked_count += 1;
        true
    }

    pub(crate) fn is_acked(&self, seq: u32) -> bool {
        self.acked.test(seq)
    }
}

/// TCP congestion/RTT state, parallel to [`TxFlow`] by local index.
/// Allocated only for TCP transports — NDP's receiver-driven pull loop
/// uses none of it.
pub(crate) struct TcpState {
    pub cwnd: f64,
    pub ssthresh: f64,
    pub srtt: f64,
    pub rttvar: f64,
    pub inflight: u32,
    pub dup_acks: u32,
    pub in_recovery: bool,
    pub recovery_until: u32,
    pub timed: Option<(u32, TimePs)>,
    pub backoff: u32,
    // ECN / DCTCP
    pub ce_marked: u32,
    pub ce_total: u32,
    pub alpha: f64,
    pub window_end: u32,
    pub cwr: bool,
    /// A window reduction requested a path switch; applied once the
    /// pipe is nearly empty (reorder-safe) or at a flowlet gap.
    pub want_switch: bool,
}

impl TcpState {
    pub(crate) fn new() -> Self {
        TcpState {
            cwnd: 4.0,
            ssthresh: 1e9,
            srtt: 0.0,
            rttvar: 0.0,
            inflight: 0,
            dup_acks: 0,
            in_recovery: false,
            recovery_until: 0,
            timed: None,
            backoff: 0,
            ce_marked: 0,
            ce_total: 0,
            alpha: 0.0,
            window_end: 0,
            cwr: false,
            want_switch: false,
        }
    }
}

/// Receiver-side flow state, owned by the destination router's shard.
pub(crate) struct RxFlow {
    pub received: SeqBits,
    pub rcv_count: u32,
    pub rcv_next: u32,
    /// Completion time, `TimePs::MAX` while in flight (a packed
    /// `Option`: no transfer can complete at the end of time, and the
    /// niche-less `Option<u64>` doubled the field).
    finished: TimePs,
    pub trims: u32,
    pub rx_suggest: u8,
    /// Layer the receiver last saw data on; control packets ride it
    /// back (a layer the forward direction proved alive).
    pub rx_last_layer: u8,
    /// Nonce of the last data packet seen: control packets echo it so
    /// LetFlow hashing of the reverse path tracks the sender's flowlet
    /// without a cross-shard read of the live sender nonce.
    pub last_nonce: u64,
    /// Receiver-side transmission counter feeding control-packet uids.
    pub uid_ctr: u32,
}

impl RxFlow {
    #[inline]
    pub(crate) fn is_finished(&self) -> bool {
        self.finished != TimePs::MAX
    }

    /// Completion time as the `Option` the public records expose.
    #[inline]
    pub(crate) fn finish_time(&self) -> Option<TimePs> {
        self.is_finished().then_some(self.finished)
    }

    pub(crate) fn new(m: &FlowMeta) -> Self {
        RxFlow {
            received: SeqBits::new(m.num_pkts),
            rcv_count: 0,
            rcv_next: 0,
            finished: TimePs::MAX,
            trims: 0,
            rx_suggest: 0xff,
            rx_last_layer: 0,
            last_nonce: m.init_nonce,
            uid_ctr: 0,
        }
    }

    pub(crate) fn mark_received(&mut self, seq: u32) -> bool {
        if !self.received.set(seq) {
            return false;
        }
        self.rcv_count += 1;
        while self.rcv_next < self.received.bits() && self.received.test(self.rcv_next) {
            self.rcv_next += 1;
        }
        true
    }
}

/// Pops the front of a small FIFO `Vec` (see `TxFlow::retxq`): the
/// `O(len)` shift is cheaper than a `VecDeque` header per flow for
/// queues that are empty in the common case.
pub(crate) fn pop_front(q: &mut Vec<u32>) -> Option<u32> {
    if q.is_empty() {
        None
    } else {
        Some(q.remove(0))
    }
}

/// A boundary packet in a per-shard-pair mailbox: 40 bytes, not 48 —
/// the arrival time is a `u32` offset from the sender's window base
/// (a boundary hop is at most serialization + latency past the window,
/// microseconds even for jumbo frames, so picosecond deltas fit with
/// room to spare) and the router/endpoint discriminator rides the high
/// bit of the far-end id.
pub(crate) struct OutMsg {
    dt: u32,
    to_flags: u32,
    pub pkt: Packet,
}

impl OutMsg {
    pub(crate) fn new(at: TimePs, base: TimePs, to: u32, to_is_router: bool, pkt: Packet) -> Self {
        debug_assert!(at >= base && at - base <= u32::MAX as u64);
        debug_assert!(to < PORT_TO_ROUTER);
        OutMsg {
            dt: (at - base) as u32,
            to_flags: to | if to_is_router { PORT_TO_ROUTER } else { 0 },
            pkt,
        }
    }

    #[inline]
    pub(crate) fn at(&self, base: TimePs) -> TimePs {
        base + self.dt as TimePs
    }

    #[inline]
    pub(crate) fn to(&self) -> u32 {
        self.to_flags & (PORT_TO_ROUTER - 1)
    }

    #[inline]
    pub(crate) fn to_is_router(&self) -> bool {
        self.to_flags & PORT_TO_ROUTER != 0
    }
}

/// Read-only context shared by every shard during a run: topology,
/// scheme, config, flow metadata, the global→local index maps, and the
/// pre-computed fault timeline. `Sync` by construction (all shared
/// references; `RoutingScheme` requires `Sync`), so one `&Ctx` is
/// captured by all shard workers.
pub(crate) struct Ctx<'a, R: ?Sized> {
    pub topo: &'a Topology,
    pub scheme: &'a R,
    pub cfg: SimConfig,
    pub meta: &'a [FlowMeta],
    pub tx_home: &'a [SlotRef],
    pub rx_home: &'a [SlotRef],
    /// Global first-port id of each router's net ports.
    pub net_base: &'a [u32],
    /// Global first-port id of each router's endpoint down-ports.
    pub down_base: &'a [u32],
    /// Global first-port id of the endpoint NIC up-ports.
    pub up_base: u32,
    /// Global port id → owning shard + local index.
    pub port_home: &'a [SlotRef],
    /// Endpoint id → owning shard + local pull-queue index.
    pub ep_home: &'a [SlotRef],
    /// Endpoint id → attached router: the packet no longer carries its
    /// destination router (32-byte packing), so routing derives it from
    /// `dst_ep` through this flat map (the topology's own lookup is a
    /// binary search — too slow for a per-hop read).
    pub ep_router: &'a [u32],
    /// Router id → owning shard.
    pub router_shard: &'a [u32],
    /// Cached `scheme.num_layers()`.
    pub n_layers: usize,
    /// The shared fault timeline: one immutable epoch per fault event,
    /// indexed by each shard's `fault_epoch` cursor.
    pub faults: &'a FaultTimeline,
}

impl<R: ?Sized> Ctx<'_, R> {
    #[inline]
    pub(crate) fn meta(&self, flow: u32) -> &FlowMeta {
        &self.meta[flow as usize]
    }

    #[inline]
    pub(crate) fn tx_idx(&self, flow: u32) -> usize {
        self.tx_home[flow as usize].idx() as usize
    }

    #[inline]
    pub(crate) fn rx_idx(&self, flow: u32) -> usize {
        self.rx_home[flow as usize].idx() as usize
    }

    #[inline]
    pub(crate) fn port_idx(&self, port: u32) -> usize {
        self.port_home[port as usize].idx() as usize
    }

    #[inline]
    pub(crate) fn ep_idx(&self, ep: u32) -> usize {
        self.ep_home[ep as usize].idx() as usize
    }

    /// The router a packet is headed for (derived, see
    /// [`Ctx::ep_router`]).
    #[inline]
    pub(crate) fn dst_router_of(&self, p: &Packet) -> u32 {
        self.ep_router[p.dst_ep as usize]
    }
}

/// One region's simulation state: event queue, packet arena, ports,
/// flow halves, and an epoch cursor into the shared fault timeline.
pub(crate) struct Shard {
    pub id: u32,
    pub now: TimePs,
    /// Start of the window currently executing: the base outgoing
    /// mailbox messages encode their arrival-time deltas against.
    pub window_base: TimePs,
    /// Time of the last event this shard processed (for `end_time`).
    pub last_t: TimePs,
    pub events: EventQueue,
    pub packets: PacketSlab,
    /// This shard's output ports, in global-id order.
    pub ports: Vec<Port>,
    /// Sender-side flow halves owned here.
    pub tx: Vec<TxFlow>,
    /// TCP congestion state, parallel to `tx` (empty for NDP runs).
    pub tcp: Vec<TcpState>,
    /// Receiver-side flow halves owned here.
    pub rx: Vec<RxFlow>,
    // NDP receiver pull pacing, for endpoints owned here. The credit
    // queues are intrusive FIFO chains through a shared node pool (one
    // node per outstanding credit, free-listed) instead of a `VecDeque`
    // per endpoint — at fat-tree scale the deque headers and their
    // minimum heap buffers dominated the queues' actual content.
    pub pull_head: Vec<u32>,
    pub pull_tail: Vec<u32>,
    /// Credit nodes: `(flow, next)`; `next` chains both live queues and
    /// the free list.
    pull_pool: Vec<(u32, u32)>,
    pull_free: u32,
    pub pull_ready: Vec<TimePs>,
    // counters
    pub drops: u64,
    pub trim_count: u64,
    pub unroutable: u64,
    pub host_dead: u64,
    /// Flows resolved this window (completed, aborted, or host-dead);
    /// drained by the driver into its global termination bitset.
    pub resolved: Vec<u32>,
    /// Outgoing boundary packets, one mailbox per destination shard.
    pub outbox: Vec<Vec<OutMsg>>,
    /// Reusable scratch indices (RTO missing-sequence collection).
    pub scratch: Vec<u32>,
    /// Reusable scratch queue-depth snapshot for adaptive flowlet
    /// decisions. Separate from `scratch`: an NDP RTO holds `scratch`
    /// across its `send_data` calls, and the first of those can itself
    /// hit a flowlet boundary.
    pub depth_scratch: Vec<u32>,
    // ---- shared-fault-state cursor ----
    /// Index into `Ctx::faults.epochs`: the number of fault events this
    /// shard has popped so far. Every shard pops the identical global
    /// fault-event sequence, so equal cursors mean identical views.
    pub fault_epoch: u32,
    /// Repair passes popped so far (prefix length of the shared
    /// `FaultTimeline::log` this shard has reached).
    pub repair_seen: u32,
    /// Time of the currently scheduled repair pass, if any (burst
    /// coalescing: one `RepairTick` per event batch). Mirrors the
    /// writer's pre-run dedup decisions exactly.
    pub repair_at: Option<TimePs>,
    /// Shard-local telemetry collector (`None` when telemetry is off —
    /// every hook is then a single pointer-null check). Installed by the
    /// driver before the run, flushed at interval boundaries in the
    /// serial driver section, harvested after the loop. Writes are
    /// strictly shard-local, so the determinism contract extends to the
    /// collected series.
    pub tel: Option<Box<ShardTelemetry>>,
}

impl Shard {
    pub(crate) fn new(id: u32, n_shards: usize) -> Self {
        Shard {
            id,
            now: 0,
            window_base: 0,
            last_t: 0,
            events: EventQueue::default(),
            packets: PacketSlab::default(),
            ports: Vec::new(),
            tx: Vec::new(),
            tcp: Vec::new(),
            rx: Vec::new(),
            pull_head: Vec::new(),
            pull_tail: Vec::new(),
            pull_pool: Vec::new(),
            pull_free: NO_PKT,
            pull_ready: Vec::new(),
            drops: 0,
            trim_count: 0,
            unroutable: 0,
            host_dead: 0,
            resolved: Vec::new(),
            outbox: (0..n_shards).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
            depth_scratch: Vec::new(),
            fault_epoch: 0,
            repair_seen: 0,
            repair_at: None,
            tel: None,
        }
    }

    /// Records a span event for `flow` if telemetry is on and the flow
    /// is sampled — the one-branch disabled path every span site shares.
    #[inline]
    pub(crate) fn span(&mut self, flow: u32, kind: SpanKind, a: u32, b: u32) {
        if let Some(tel) = self.tel.as_deref_mut() {
            if tel.flow_sampled(flow) {
                tel.span(flow, self.now, kind, a, b);
            }
        }
    }

    /// Like [`Shard::span`] but deduplicated per `(flow, kind)` — the
    /// "first data / first trim / first retx" events.
    #[inline]
    pub(crate) fn span_once(&mut self, flow: u32, kind: SpanKind, a: u32, b: u32) {
        if let Some(tel) = self.tel.as_deref_mut() {
            if tel.flow_sampled(flow) {
                tel.span_once(flow, self.now, kind, a, b);
            }
        }
    }

    /// Drops the run-time arenas — event heap, packet slab, ports,
    /// mailboxes, pull queues — while keeping the flow halves and
    /// counters the driver reads during result assembly. Called once
    /// the event loop finishes so the per-flow record vector is not
    /// stacked on top of tens of MB of dead arena capacity (the
    /// process high-water mark would record the sum).
    pub(crate) fn release_arenas(&mut self) {
        self.events = EventQueue::default();
        self.packets = PacketSlab::default();
        self.ports = Vec::new();
        self.tcp = Vec::new();
        self.pull_head = Vec::new();
        self.pull_tail = Vec::new();
        self.pull_pool = Vec::new();
        self.pull_ready = Vec::new();
        self.resolved = Vec::new();
        self.outbox = Vec::new();
        self.scratch = Vec::new();
        self.depth_scratch = Vec::new();
    }

    /// Appends a pull credit for `flow` to endpoint slot `li`'s FIFO.
    /// Returns whether the queue was empty (the caller schedules the
    /// first tick).
    pub(crate) fn pull_push(&mut self, li: usize, flow: u32) -> bool {
        let node = if self.pull_free != NO_PKT {
            let n = self.pull_free;
            self.pull_free = self.pull_pool[n as usize].1;
            self.pull_pool[n as usize] = (flow, NO_PKT);
            n
        } else {
            self.pull_pool.push((flow, NO_PKT));
            (self.pull_pool.len() - 1) as u32
        };
        let was_empty = self.pull_head[li] == NO_PKT;
        if was_empty {
            self.pull_head[li] = node;
        } else {
            self.pull_pool[self.pull_tail[li] as usize].1 = node;
        }
        self.pull_tail[li] = node;
        was_empty
    }

    /// Pops the head credit of endpoint slot `li`'s FIFO, if any.
    pub(crate) fn pull_pop(&mut self, li: usize) -> Option<u32> {
        let node = self.pull_head[li];
        if node == NO_PKT {
            return None;
        }
        let (flow, next) = self.pull_pool[node as usize];
        self.pull_head[li] = next;
        if next == NO_PKT {
            self.pull_tail[li] = NO_PKT;
        }
        self.pull_pool[node as usize].1 = self.pull_free;
        self.pull_free = node;
        Some(flow)
    }

    #[inline]
    pub(crate) fn pull_pending(&self, li: usize) -> bool {
        self.pull_head[li] != NO_PKT
    }

    /// The fault snapshot this shard currently sees: immutable, shared
    /// by every shard at the same cursor position.
    #[inline]
    pub(crate) fn faults<'c, R: ?Sized>(&self, cx: &Ctx<'c, R>) -> &'c FaultEpoch {
        &cx.faults.epochs[self.fault_epoch as usize]
    }

    /// Runs this shard's events in `[peek, w_end)`, stopping at the
    /// horizon. Window boundaries are exclusive so every shard agrees on
    /// which events belong to which window.
    pub(crate) fn run_window<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        w_end: TimePs,
        horizon: TimePs,
    ) {
        while let Some(t) = self.events.peek_time() {
            if t >= w_end || (horizon > 0 && t > horizon) {
                return;
            }
            let (t, ev) = self.events.pop().expect("peeked");
            self.now = t;
            self.last_t = t;
            self.dispatch(cx, ev);
        }
    }

    pub(crate) fn dispatch<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, ev: EvKind) {
        match ev {
            EvKind::FlowStart { flow } => self.on_flow_start(cx, flow),
            EvKind::PortPop { port } => {
                debug_assert_eq!(cx.port_home[port as usize].shard(), self.id);
                self.ports[cx.port_idx(port)].set_busy(false);
                self.port_try_start(cx, port);
            }
            EvKind::ArriveRouter { pkt, router } => self.on_router_arrive(cx, router, pkt),
            EvKind::ArriveEndpoint { pkt, ep } => self.on_endpoint_arrive(cx, ep, pkt),
            EvKind::PullTick { ep } => self.ndp_pull_tick(cx, ep),
            EvKind::RtoTimer { flow, gen } => self.on_rto(cx, flow, gen),
            // Fault events are pre-applied by the writer; in the shards
            // they only advance the epoch cursor (and mirror the
            // writer's RepairTick scheduling so the cursors stay in
            // lockstep with the published timeline).
            EvKind::LinkDown { .. }
            | EvKind::LinkUp { .. }
            | EvKind::RouterDown { .. }
            | EvKind::RouterUp { .. } => {
                self.fault_epoch += 1;
                self.schedule_repair(cx.cfg.detection_delay);
            }
            EvKind::RepairTick => {
                if self.repair_at == Some(self.now) {
                    self.repair_at = None;
                }
                self.fault_epoch += 1;
                self.repair_seen += 1;
            }
        }
    }

    fn on_flow_start<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let fe = self.faults(cx);
        if fe.dead_router_count != 0 {
            let m = cx.meta(flow);
            if fe.router_is_dead(cx.ep_router[m.src_ep as usize])
                || fe.router_is_dead(cx.ep_router[m.dst_ep as usize])
            {
                // Workload filtering for whole-node failures: a flow
                // whose host is dead at start time is excluded and
                // accounted `host_dead` — it is not the network's
                // failure to deliver (`unroutable`), the host itself is
                // gone.
                self.tx[cx.tx_idx(flow)].host_dead = true;
                self.host_dead += 1;
                self.resolved.push(flow);
                self.span(flow, SpanKind::Abort, 0, 0);
                return;
            }
        }
        self.tx[cx.tx_idx(flow)].started = true;
        self.span(flow, SpanKind::Inject, 0, 0);
        match cx.cfg.transport {
            Transport::Ndp { initial_window, .. } => self.ndp_start(cx, flow, initial_window),
            Transport::Tcp { .. } => self.tcp_start(cx, flow),
        }
    }

    // ---- link layer -----------------------------------------------------

    /// Enqueues a packet at a router output port, applying the queue
    /// policy (trim / drop / mark). `port` is a global id owned here.
    pub(crate) fn router_enqueue<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        port: u32,
        pid: u32,
    ) {
        match cx.cfg.transport {
            Transport::Ndp { queue_pkts, .. } => {
                let (is_data, is_retx) = {
                    let p = self.packets.get(pid);
                    (p.kind() == PktKind::Data && !p.trimmed(), p.retx())
                };
                let li = cx.port_idx(port);
                if is_data {
                    if (self.ports[li].data_len as u32) < queue_pkts {
                        // Retransmissions jump the data queue (they unblock
                        // stalled receivers, §III-C) but still count against
                        // the shallow limit — a payload is a payload.
                        if is_retx {
                            self.ports[li].push_front(&mut self.packets, true, pid);
                        } else {
                            self.ports[li].push_back(&mut self.packets, true, pid);
                        }
                    } else {
                        // Trim: drop payload, keep the header, prioritize.
                        let p = self.packets.get_mut(pid);
                        p.set_trimmed();
                        p.wire_bytes = HDR_BYTES;
                        self.trim_count += 1;
                        self.push_prio_bounded(li, pid);
                    }
                } else {
                    self.push_prio_bounded(li, pid);
                }
            }
            Transport::Tcp {
                queue_pkts,
                ecn_threshold,
                ..
            } => {
                let li = cx.port_idx(port);
                let depth = self.ports[li].data_len as u32;
                if depth >= queue_pkts {
                    self.drops += 1;
                    self.packets.release(pid);
                    return;
                }
                if depth >= ecn_threshold {
                    self.packets.get_mut(pid).set_ecn_ce();
                }
                self.ports[li].push_back(&mut self.packets, true, pid);
            }
        }
        self.port_try_start(cx, port);
    }

    fn push_prio_bounded(&mut self, local_port: usize, pid: u32) {
        if self.ports[local_port].prio_len >= 1024 {
            self.drops += 1;
            self.packets.release(pid);
        } else {
            self.ports[local_port].push_back(&mut self.packets, false, pid);
        }
    }

    /// Enqueues onto an endpoint NIC (no drops: window-bounded).
    pub(crate) fn nic_enqueue<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        ep: u32,
        pid: u32,
    ) {
        let port = cx.up_base + ep;
        debug_assert_eq!(cx.port_home[port as usize].shard(), self.id);
        let is_control = self.packets.get(pid).kind() != PktKind::Data;
        let li = cx.port_idx(port);
        self.ports[li].push_back(&mut self.packets, !is_control, pid);
        self.port_try_start(cx, port);
    }

    /// Starts the serializer on `port` if idle. The arrival is pushed
    /// locally when the far end is on this shard, otherwise the packet
    /// is copied into the destination shard's mailbox (its local slab
    /// slot is released — slab ids are shard-private).
    fn port_try_start<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, port: u32) {
        let (pid, to_is_router, to) = {
            let li = cx.port_idx(port);
            if self.ports[li].busy() {
                return;
            }
            let mut popped = self.ports[li].pop_front(&self.packets, false);
            if popped.is_none() {
                popped = self.ports[li].pop_front(&self.packets, true);
            }
            let Some(pid) = popped else {
                return;
            };
            let q = &mut self.ports[li];
            q.set_busy(true);
            (pid, q.to_is_router(), q.to())
        };
        let (bytes, layer) = {
            let p = self.packets.get(pid);
            (p.wire_bytes, p.layer)
        };
        if let Some(tel) = self.tel.as_deref_mut() {
            tel.on_wire(cx.port_idx(port) as u32, layer, bytes);
        }
        let ser = cx.cfg.ser_time(bytes);
        self.events.push(self.now + ser, EvKind::PortPop { port });
        let arrive = self.now + ser + cx.cfg.link_latency;
        let tshard = if to_is_router {
            cx.router_shard[to as usize]
        } else {
            cx.ep_home[to as usize].shard()
        };
        if tshard == self.id {
            let uid = self.packets.get(pid).salt;
            let kind = if to_is_router {
                EvKind::ArriveRouter {
                    pkt: pid,
                    router: to,
                }
            } else {
                EvKind::ArriveEndpoint { pkt: pid, ep: to }
            };
            self.events.push_arrival(arrive, kind, uid);
        } else {
            let pkt = *self.packets.get(pid);
            self.packets.release(pid);
            let ob = &mut self.outbox[tshard as usize];
            // Bounded exact growth — a doubling push on a mailbox that
            // already holds a window's worth of boundary packets would
            // permanently raise the high-water mark.
            if ob.len() == ob.capacity() {
                ob.reserve_exact((ob.capacity() / 8).max(256));
            }
            ob.push(OutMsg::new(arrive, self.window_base, to, to_is_router, pkt));
        }
    }

    // ---- routing ---------------------------------------------------------

    fn on_router_arrive<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, r: u32, pid: u32) {
        debug_assert_eq!(cx.router_shard[r as usize], self.id);
        let fe = self.faults(cx);
        if fe.dead_router_count != 0 && fe.router_is_dead(r) {
            // The router died while this packet was in flight toward it
            // (or a local endpoint is still draining its NIC): a dead
            // router forwards nothing.
            self.drops += 1;
            self.packets.release(pid);
            return;
        }
        let (dst_router, dst_ep, layer) = {
            let p = self.packets.get(pid);
            (cx.dst_router_of(p), p.dst_ep, p.layer)
        };
        // Per-hop layer rewrite (Valiant phase switch; identity for
        // single-phase schemes).
        if dst_router != r {
            let nl = cx.scheme.update_layer(layer, r, dst_router);
            if nl != layer {
                self.packets.get_mut(pid).layer = nl;
            }
        }
        let port = if dst_router == r {
            let first = cx.topo.router_endpoints(r).start;
            cx.down_base[r as usize] + (dst_ep - first)
        } else {
            let Some(sel) = self.select_port(cx, r, pid) else {
                // No live candidate port: the destination is unreachable
                // from here in the degraded network.
                self.unroutable += 1;
                self.packets.release(pid);
                return;
            };
            let port = cx.net_base[r as usize] + sel as u32;
            if fe.down_count != 0 && fe.is_port_down(port) {
                // Link down (not yet repaired, or the scheme cannot
                // repair): the packet is lost; end-to-end recovery
                // redirects the flow to another layer (§V-G).
                self.drops += 1;
                self.packets.release(pid);
                return;
            }
            port
        };
        self.router_enqueue(cx, port, pid);
    }

    fn select_port<R: RoutingScheme + ?Sized>(&self, cx: &Ctx<R>, r: u32, pid: u32) -> Option<u16> {
        let p = *self.packets.get(pid);
        let dst_router = cx.dst_router_of(&p);
        let fe = self.faults(cx);
        // Repaired rows (installed one detection delay after link-state
        // changes) shadow the scheme's original tables.
        let repaired_row = if fe.repair.is_empty() {
            None
        } else {
            fe.repair.lookup(p.layer, r, dst_router)
        };
        let scheme_row;
        let cands: &[u16] = match repaired_row {
            Some(e) => e.as_slice(),
            None => {
                scheme_row = cx.scheme.candidate_ports(p.layer, r, dst_router);
                scheme_row.as_slice()
            }
        };
        debug_assert!(
            !cands.is_empty() || fe.down_count != 0 || !fe.repair.is_empty(),
            "destination unreachable on a healthy network"
        );
        if cands.is_empty() {
            return None;
        }
        if cands.len() == 1 {
            // Single-path layer (FatPaths tables, SPAIN, PAST, …): load
            // balancing happens across layers, not candidates.
            return Some(cands[0]);
        }
        let len = cands.len() as u64;
        Some(match cx.cfg.lb {
            // NDP's spraying cycles each flow round-robin over the
            // candidate ports (per hop, offset by a flow/router hash):
            // smooth arrivals keep 8-packet queues stable at ρ→1,
            // where random spraying would trim persistently.
            // Retransmissions re-roll on their salt so a packet
            // never re-walks into a failed or congested port.
            LoadBalancing::PacketSpray => {
                if p.retx() {
                    cands[(fnv1a(p.salt ^ r as u64) % len) as usize]
                } else {
                    let off = fnv1a(((p.flow() as u64) << 32) ^ r as u64);
                    cands[((p.seq as u64 + off) % len) as usize]
                }
            }
            _ => cands[(fnv1a(p.nonce ^ ((r as u64) << 20)) % len) as usize],
        })
    }

    /// Congestion-aware flowlet-boundary decision
    /// ([`AdaptiveMode::QueueDepth`]): consult the live queue depths of
    /// the flow's attachment router and steer the new flowlet to the
    /// least-loaded candidate — the layer for FatPaths-family schemes,
    /// the minimal-path port for LetFlow/ECMP (CONGA/LetFlow-style local
    /// adaptivity). Reads are shard-local by construction: the sender's
    /// `TxFlow` lives on the source router's shard, and so do that
    /// router's output ports — no cross-shard state is touched, which
    /// (together with the canonical event order making the port state
    /// identical at the decision instant for every K) keeps adaptive
    /// runs byte-identical at any shard and thread count.
    ///
    /// Returns `true` when a decision was applied; `false` defers to the
    /// caller's oblivious hash (spraying, pinned MPTCP subflows,
    /// same-router pairs, single-candidate rows, or every candidate
    /// down). Cost is O(candidates) per boundary with no allocation
    /// (`depth_scratch` is reused across decisions).
    pub(crate) fn adaptive_repick<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
    ) -> bool {
        let m = cx.meta(flow);
        if m.pinned_layer.is_some() {
            return false;
        }
        let r = cx.ep_router[m.src_ep as usize];
        let dst_router = cx.ep_router[m.dst_ep as usize];
        if r == dst_router {
            return false; // no network hop: nothing to steer
        }
        debug_assert_eq!(cx.router_shard[r as usize], self.id);
        let ti = cx.tx_idx(flow);
        let ctr = self.tx[ti].flowlet_ctr;
        match cx.cfg.lb {
            LoadBalancing::FatPathsLayers => {
                if cx.n_layers <= 1 {
                    return false;
                }
                let nonce = self.tx[ti].nonce;
                let mut depths = std::mem::take(&mut self.depth_scratch);
                depths.clear();
                for l in 0..cx.n_layers {
                    depths.push(self.first_hop_depth(cx, r, dst_router, l as u8, nonce));
                }
                let pick = least_loaded(&depths, flow, ctr);
                self.depth_scratch = depths;
                match pick {
                    Some(l) => {
                        self.tx[ti].layer = l as u8;
                        true
                    }
                    None => false,
                }
            }
            LoadBalancing::LetFlow | LoadBalancing::EcmpFlow => {
                let layer = cx.scheme.update_layer(self.tx[ti].layer, r, dst_router);
                let fe = self.faults(cx);
                let repaired_row = if fe.repair.is_empty() {
                    None
                } else {
                    fe.repair.lookup(layer, r, dst_router)
                };
                let scheme_row;
                let cands: &[u16] = match repaired_row {
                    Some(e) => e.as_slice(),
                    None => {
                        scheme_row = cx.scheme.candidate_ports(layer, r, dst_router);
                        scheme_row.as_slice()
                    }
                };
                if cands.len() <= 1 {
                    return false; // port selection has no choice to make
                }
                let mut depths = std::mem::take(&mut self.depth_scratch);
                depths.clear();
                for &sel in cands {
                    let port = cx.net_base[r as usize] + sel as u32;
                    depths.push(if fe.down_count != 0 && fe.is_port_down(port) {
                        // A dead port's empty queue must not attract
                        // flowlets.
                        u32::MAX
                    } else {
                        let p = &self.ports[cx.port_idx(port)];
                        p.data_len as u32 + p.prio_len as u32
                    });
                }
                let pick = least_loaded(&depths, flow, ctr);
                self.depth_scratch = depths;
                let Some(j) = pick else { return false };
                // Routers hash the flow nonce per hop (`select_port`),
                // so the sender steers by *searching* for a nonce that
                // lands on the chosen port at this first hop: a bounded
                // deterministic trial sequence — 8·len draws hit a 1/len
                // target with probability 1 − (1−1/len)^(8·len) ≈
                // 1 − e⁻⁸. On the rare exhaustion the first draw stands:
                // an oblivious re-pick, never a stale path.
                let len = cands.len() as u64;
                let base = ((flow as u64) << 21) ^ 0xC0A6 ^ ((ctr as u64) << 8);
                let mut nonce = fnv1a(base);
                for t in 0..(8 * len).max(16) {
                    let cand = fnv1a(base ^ t);
                    if (fnv1a(cand ^ ((r as u64) << 20)) % len) as usize == j {
                        nonce = cand;
                        break;
                    }
                }
                self.tx[ti].nonce = nonce;
                true
            }
            // Spraying re-balances per packet already; there is no
            // flowlet decision to make.
            _ => false,
        }
    }

    /// Queue depth (data + priority packets) of the first-hop port a
    /// packet of this flow tagged `layer` would leave router `r` on,
    /// mirroring the forwarding path exactly: per-hop layer rewrite,
    /// repair-overlay shadow, then the nonce-hash candidate pick of
    /// `select_port`. `u32::MAX` marks unusable candidates (unreachable
    /// rows, down ports) so `least_loaded` never steers into them.
    fn first_hop_depth<R: RoutingScheme + ?Sized>(
        &self,
        cx: &Ctx<R>,
        r: u32,
        dst_router: u32,
        layer: u8,
        nonce: u64,
    ) -> u32 {
        let layer = cx.scheme.update_layer(layer, r, dst_router);
        let fe = self.faults(cx);
        let repaired_row = if fe.repair.is_empty() {
            None
        } else {
            fe.repair.lookup(layer, r, dst_router)
        };
        let scheme_row;
        let cands: &[u16] = match repaired_row {
            Some(e) => e.as_slice(),
            None => {
                scheme_row = cx.scheme.candidate_ports(layer, r, dst_router);
                scheme_row.as_slice()
            }
        };
        let sel = match *cands {
            [] => return u32::MAX,
            [only] => only,
            _ => cands[(fnv1a(nonce ^ ((r as u64) << 20)) % cands.len() as u64) as usize],
        };
        let port = cx.net_base[r as usize] + sel as u32;
        if fe.down_count != 0 && fe.is_port_down(port) {
            return u32::MAX;
        }
        debug_assert_eq!(cx.port_home[port as usize].shard(), self.id);
        let p = &self.ports[cx.port_idx(port)];
        p.data_len as u32 + p.prio_len as u32
    }

    // ---- shared endpoint helpers ------------------------------------------

    /// Applies source-side flowlet logic before a data transmission:
    /// after a gap > `flowlet_gap`, re-pick the layer (FatPaths) or the
    /// nonce (LetFlow). ECMP keeps everything static; spraying ignores it.
    ///
    /// A ≥ gap pause implies the pipe has drained (the gap exceeds the
    /// RTT), so switching paths at a gap cannot reorder — LetFlow's core
    /// argument, which also protects the TCP modes from spurious
    /// dup-ACK retransmissions after a layer change.
    pub(crate) fn flowlet_update<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let gap = cx.cfg.flowlet_gap;
        let n_layers = cx.n_layers;
        let lb = cx.cfg.lb;
        let now = self.now;
        let ti = cx.tx_idx(flow);
        if cx.meta(flow).pinned_layer.is_some() {
            self.tx[ti].last_tx = now;
            return;
        }
        let f = &mut self.tx[ti];
        if f.last_tx != 0 && now.saturating_sub(f.last_tx) > gap {
            let old_layer = f.layer;
            f.flowlet_ctr += 1;
            let adapted =
                cx.cfg.adaptive == AdaptiveMode::QueueDepth && self.adaptive_repick(cx, flow);
            if !adapted {
                let f = &mut self.tx[ti];
                match lb {
                    LoadBalancing::FatPathsLayers => {
                        f.layer = (fnv1a(((flow as u64) << 20) ^ f.flowlet_ctr as u64)
                            % n_layers as u64) as u8;
                    }
                    LoadBalancing::LetFlow => {
                        f.nonce = fnv1a(((flow as u64) << 21) ^ f.flowlet_ctr as u64);
                    }
                    _ => {}
                }
            }
            let new_layer = self.tx[ti].layer;
            if new_layer != old_layer {
                self.span(
                    flow,
                    SpanKind::LayerSwitch,
                    old_layer as u32,
                    new_layer as u32,
                );
            }
        }
        self.tx[ti].last_tx = now;
    }

    /// Crafts and sends one data packet of `flow` with sequence `seq`
    /// (sender side — `flow`'s TxFlow lives on this shard).
    pub(crate) fn send_data<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        seq: u32,
        retx: bool,
    ) {
        self.flowlet_update(cx, flow);
        if self.tel.is_some() {
            let kind = if retx {
                SpanKind::FirstRetx
            } else {
                SpanKind::FirstData
            };
            self.span_once(flow, kind, seq, 0);
        }
        let payload = cx.cfg.transport.payload();
        let m = cx.meta(flow);
        let f = &mut self.tx[cx.tx_idx(flow)];
        f.uid_ctr += 1;
        // Canonical transmission id: (flow, per-sender counter, dir=0).
        let salt = ((flow as u64) << 33) | ((f.uid_ctr as u64) << 1);
        let pkt = Packet::new(
            PktKind::Data,
            seq,
            m.payload_of(seq, payload) + HDR_BYTES,
            f.layer,
            m.dst_ep,
            f.nonce,
            salt,
            0xff,
        )
        .with_retx(retx);
        let pid = self.packets.alloc(pkt);
        self.nic_enqueue(cx, m.src_ep, pid);
    }

    /// Crafts and sends a control packet from the receiver side toward
    /// the sender (`Ack`, `Nack`, `Pull` — control is always
    /// receiver-originated). Rides the layer the data last arrived on
    /// (proven alive in the forward direction) and echoes the last data
    /// nonce so reverse-path LetFlow hashing tracks the sender's
    /// flowlet without a cross-shard read.
    pub(crate) fn send_control<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        kind: PktKind,
        seq: u32,
        ecn_echo: bool,
        suggest: u8,
    ) {
        let m = cx.meta(flow);
        let f = &mut self.rx[cx.rx_idx(flow)];
        f.uid_ctr += 1;
        // Canonical transmission id: (flow, per-receiver counter, dir=1).
        let salt = ((flow as u64) << 33) | ((f.uid_ctr as u64) << 1) | 1;
        let pkt = Packet::new(
            kind,
            seq,
            HDR_BYTES,
            f.rx_last_layer,
            m.src_ep,
            f.last_nonce,
            salt,
            suggest,
        )
        .with_ecn_echo(ecn_echo);
        let pid = self.packets.alloc(pkt);
        self.nic_enqueue(cx, m.dst_ep, pid);
    }

    /// Marks a flow complete (receiver got every byte) and reports it
    /// to the driver's termination set.
    pub(crate) fn complete_flow<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let f = &mut self.rx[cx.rx_idx(flow)];
        if !f.is_finished() {
            f.finished = self.now;
            let (rcv, trims) = (f.rcv_count, f.trims);
            self.resolved.push(flow);
            self.span(flow, SpanKind::Finish, rcv, trims);
        }
    }

    /// True when the sender has proof the transfer is done (every
    /// sequence acked for NDP, cumulative ack at the end for TCP) —
    /// the sender-side stand-in for the receiver's `finished`, which
    /// may live on another shard.
    pub(crate) fn tx_done<R: RoutingScheme + ?Sized>(&self, cx: &Ctx<R>, flow: u32) -> bool {
        let f = &self.tx[cx.tx_idx(flow)];
        match cx.cfg.transport {
            Transport::Ndp { .. } => f.acked_count >= cx.meta(flow).num_pkts,
            Transport::Tcp { .. } => f.cum_ack >= cx.meta(flow).num_pkts,
        }
    }

    fn on_endpoint_arrive<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, ep: u32, pid: u32) {
        match cx.cfg.transport {
            Transport::Ndp { .. } => self.ndp_on_arrive(cx, ep, pid),
            Transport::Tcp { .. } => self.tcp_on_arrive(cx, ep, pid),
        }
    }

    fn on_rto<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32, gen: u32) {
        if matches!(cx.cfg.transport, Transport::Ndp { .. }) {
            // Lazy timer discipline: acks extend `rto_deadline` without
            // queueing anything, so a firing before the (extended)
            // deadline is a deferral — push the single timer event out
            // to the deadline and do nothing else. Only a firing at the
            // deadline is a real timeout. The effective timeout instant
            // (last progress + RTO) is identical to the eager
            // one-event-per-ack scheme, so results are unchanged.
            let ti = cx.tx_idx(flow);
            self.tx[ti].rto_armed = false;
            if self.now < self.tx[ti].rto_deadline {
                if !self.tx[ti].aborted && !self.tx_done(cx, flow) {
                    let at = self.tx[ti].rto_deadline;
                    self.tx[ti].rto_armed = true;
                    self.events.push(at, EvKind::RtoTimer { flow, gen });
                }
                return;
            }
        }
        if self.abort_if_host_dead(cx, flow, gen) {
            return;
        }
        match cx.cfg.transport {
            Transport::Ndp { .. } => self.ndp_on_rto(cx, flow, gen),
            Transport::Tcp { .. } => self.tcp_on_rto(cx, flow, gen),
        }
    }

    /// Mid-flow host-death semantics
    /// ([`SimConfig::abort_on_host_death`]): when an endpoint of an
    /// in-flight flow is dead at RTO time, the timeout counts against
    /// the flow's dead-RTO budget; exhausting it aborts the transfer (a
    /// connection reset — the real-stack outcome, instead of silently
    /// outwaiting the reboot). Returns `true` when the flow was aborted
    /// (the timer must not be re-armed or the transport consulted).
    fn abort_if_host_dead<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        gen: u32,
    ) -> bool {
        let Some(budget) = cx.cfg.abort_on_host_death else {
            return false;
        };
        let m = cx.meta(flow);
        let ti = cx.tx_idx(flow);
        {
            let f = &self.tx[ti];
            if f.aborted || !f.started || gen != f.rto_gen || self.tx_done(cx, flow) {
                return self.tx[ti].aborted;
            }
        }
        let fe = self.faults(cx);
        let endpoint_dead = fe.dead_router_count != 0
            && (fe.router_is_dead(cx.ep_router[m.src_ep as usize])
                || fe.router_is_dead(cx.ep_router[m.dst_ep as usize]));
        let f = &mut self.tx[ti];
        if !endpoint_dead {
            // The budget counts *consecutive* RTOs against a dead
            // endpoint (one outage), so a timeout with both hosts alive
            // clears it — separate survivable outages must not sum to
            // an abort (`reset_dead_rtos` clears it on receiver-side
            // evidence too).
            f.dead_rtos = 0;
            return false;
        }
        f.dead_rtos += 1;
        if f.dead_rtos < budget.max(1) {
            return false; // keep retrying: the transport re-arms the timer
        }
        f.aborted = true;
        self.resolved.push(flow);
        self.span(flow, SpanKind::Abort, 0, 0);
        true
    }

    /// Clears the consecutive-dead-RTO budget on proof of life: any
    /// receiver-originated packet reaching the sender means the
    /// endpoint is (back) up, so a later outage starts a fresh count.
    #[inline]
    pub(crate) fn reset_dead_rtos<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        if cx.cfg.abort_on_host_death.is_some() {
            self.tx[cx.tx_idx(flow)].dead_rtos = 0;
        }
    }

    /// Mirrors the writer's repair scheduling, purely to keep this
    /// shard's event queue (and thus its epoch cursor) aligned with the
    /// published timeline. A burst of simultaneous changes (a router
    /// death fails its whole radix at once; a maintenance window kills
    /// several routers in one timestamp) coalesces into a single
    /// `RepairTick` — the same dedup the writer applies, so shard
    /// queues and writer replay stay in lockstep.
    pub(crate) fn schedule_repair(&mut self, delay: Option<TimePs>) {
        if let Some(delay) = delay {
            let at = self.now + delay;
            if self.repair_at != Some(at) {
                self.events.push(at, EvKind::RepairTick);
                self.repair_at = Some(at);
            }
        }
    }
}

/// Drains every shard's outboxes into the destination shards' queues in
/// the canonical merge order `(time, src_shard, seq)`: destination
/// shards iterate sources in ascending shard id, each source's messages
/// sorted by time. The sort need not be stable: the event queue orders
/// equal-time arrivals by the canonical transmission id regardless of
/// push order (pinned by `order_is_push_sequence_independent`), so an
/// unstable sort — which avoids merge sort's temporary buffer — changes
/// nothing observable. The packet is re-allocated in the destination's
/// arena and its arrival keyed by the canonical transmission id, so
/// where a packet was buffered never shows in the event order.
///
/// Returns `(messages, wire_bytes)` crossed, for the run profile.
pub(crate) fn deliver_mailboxes(shards: &mut [Shard]) -> (u64, u64) {
    let k = shards.len();
    let (mut n_msgs, mut n_bytes) = (0u64, 0u64);
    for d in 0..k {
        for s in 0..k {
            if s == d || shards[s].outbox[d].is_empty() {
                continue;
            }
            // All of a mailbox's messages were posted during the same
            // window, so the sender's window base rebases their time
            // deltas (and ordering by delta is ordering by time).
            let base = shards[s].window_base;
            let mut msgs = std::mem::take(&mut shards[s].outbox[d]);
            let before = n_msgs as usize;
            msgs.sort_unstable_by_key(|m| m.dt);
            let dst = &mut shards[d];
            dst.packets.reserve(msgs.len());
            dst.events.reserve(msgs.len());
            for m in msgs.drain(..) {
                n_msgs += 1;
                n_bytes += m.pkt.wire_bytes as u64;
                let uid = m.pkt.salt;
                let (at, to, to_is_router) = (m.at(base), m.to(), m.to_is_router());
                let pid = dst.packets.alloc(m.pkt);
                let kind = if to_is_router {
                    EvKind::ArriveRouter {
                        pkt: pid,
                        router: to,
                    }
                } else {
                    EvKind::ArriveEndpoint { pkt: pid, ep: to }
                };
                dst.events.push_arrival(at, kind, uid);
            }
            // Hand the emptied buffer back so its capacity is reused —
            // trimmed toward this window's demand (the buffer is empty,
            // so shrinking is a free realloc, no copy): boundary
            // traffic peaks in a handful of windows, and a mailbox
            // sized for its all-time busiest window otherwise holds
            // that peak for the rest of the run.
            let used = n_msgs as usize - before;
            if msgs.capacity() > 1024 && msgs.capacity() / 2 > used {
                msgs.shrink_to((used + used / 2).max(1024));
            }
            shards[s].outbox[d] = msgs;
        }
    }
    (n_msgs, n_bytes)
}

/// Assigns every router to one of `k` shards (clamped to the router
/// count). Topologies that publish `Topology::domains` (pods, dragonfly
/// groups) keep whole domains together — routers outside every domain
/// (e.g. a fat tree's core) become singleton groups — and the groups
/// are walked in router-id order and cut into `k` balanced chunks.
/// Without domains, a BFS order from router 0 is cut into `k` balanced
/// contiguous chunks, which keeps each shard a connected region on any
/// topology the BFS can reach.
///
/// Deterministic: repeated calls with the same inputs produce the same
/// assignment (the simulator's bit-reproducibility depends on it).
pub fn partition_routers(topo: &Topology, k: usize) -> Vec<u32> {
    let nr = topo.num_routers();
    let k = k.clamp(1, nr.max(1));
    let mut assign = vec![0u32; nr];
    if k <= 1 {
        return assign;
    }
    let mut in_domain = vec![false; nr];
    for d in &topo.domains {
        for r in d.start..d.end {
            in_domain[r as usize] = true;
        }
    }
    let mut groups: Vec<(u32, u32)> = topo.domains.iter().map(|d| (d.start, d.end)).collect();
    for r in 0..nr as u32 {
        if !in_domain[r as usize] {
            groups.push((r, r + 1));
        }
    }
    groups.sort_unstable_by_key(|g| g.0);
    if !topo.domains.is_empty() && groups.len() >= k {
        let mut idx = 0usize;
        for (s, e) in groups {
            let shard = (idx * k / nr) as u32;
            for r in s..e {
                assign[r as usize] = shard;
            }
            idx += (e - s) as usize;
        }
    } else {
        let order = bfs_order(topo);
        for (i, &r) in order.iter().enumerate() {
            assign[r as usize] = (i * k / nr) as u32;
        }
    }
    assign
}

/// Deterministic BFS visit order over the router graph, restarting from
/// the lowest unvisited id for disconnected components.
fn bfs_order(topo: &Topology) -> Vec<u32> {
    let nr = topo.num_routers();
    let mut seen = vec![false; nr];
    let mut order = Vec::with_capacity(nr);
    let mut q = VecDeque::new();
    for seed in 0..nr as u32 {
        if seen[seed as usize] {
            continue;
        }
        seen[seed as usize] = true;
        q.push_back(seed);
        while let Some(r) = q.pop_front() {
            order.push(r);
            for &nb in topo.graph.neighbors(r) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    q.push_back(nb);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::fattree::fat_tree;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn partition_covers_and_balances_on_bfs_topologies() {
        // Slim fly publishes no domains, so the BFS path is exercised.
        let topo = slim_fly(5, 1).unwrap();
        assert!(topo.domains.is_empty());
        let k = 4;
        let assign = partition_routers(&topo, k);
        assert_eq!(assign.len(), topo.num_routers());
        let mut counts = vec![0usize; k];
        for &s in &assign {
            assert!((s as usize) < k);
            counts[s as usize] += 1;
        }
        let (lo, hi) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(hi - lo <= 1, "BFS chunks must balance: {counts:?}");
    }

    #[test]
    fn partition_keeps_domains_whole() {
        // Fat trees publish per-pod domains.
        let topo = fat_tree(8, 1);
        assert!(!topo.domains.is_empty());
        let assign = partition_routers(&topo, 4);
        for d in &topo.domains {
            let first = assign[d.start as usize];
            for r in d.start..d.end {
                assert_eq!(assign[r as usize], first, "domain {d:?} split");
            }
        }
    }

    #[test]
    fn partition_clamps_to_router_count() {
        let topo = slim_fly(5, 1).unwrap();
        let nr = topo.num_routers();
        let assign = partition_routers(&topo, nr + 100);
        let used = assign.iter().map(|&s| s as usize + 1).max().unwrap();
        assert!(used <= nr);
        assert_eq!(partition_routers(&topo, 1), vec![0u32; nr]);
    }

    #[test]
    fn seqbits_inline_and_spilled_agree() {
        // ≤ 64 packets stays allocation-free; > 64 spills. Both must
        // behave identically at the seam.
        let mut small = SeqBits::new(64);
        assert_eq!(small.bits(), 64);
        assert!(small.set(0) && small.set(63));
        assert!(!small.set(63), "double-set must report already-set");
        assert!(small.test(0) && small.test(63) && !small.test(1));

        let mut big = SeqBits::new(65);
        assert_eq!(big.bits(), 128);
        assert!(big.set(64) && big.set(7));
        assert!(!big.set(64));
        assert!(big.test(64) && big.test(7) && !big.test(63));
    }

    #[test]
    fn intrusive_port_queues_are_fifo_with_head_insert() {
        let mut slab = PacketSlab::default();
        let mut port = Port::new(true, 0);
        let mk = |slab: &mut PacketSlab, salt: u64| {
            slab.alloc(Packet::new(PktKind::Data, 0, 64, 0, 0, 0, salt, 0xff))
        };
        let (a, b, c) = (mk(&mut slab, 1), mk(&mut slab, 2), mk(&mut slab, 3));
        port.push_back(&mut slab, true, a);
        port.push_back(&mut slab, true, b);
        port.push_front(&mut slab, true, c); // retx jumps the queue
        assert_eq!(port.data_len, 3);
        assert_eq!(port.pop_front(&slab, true), Some(c));
        assert_eq!(port.pop_front(&slab, true), Some(a));
        assert_eq!(port.pop_front(&slab, true), Some(b));
        assert_eq!(port.pop_front(&slab, true), None);
        assert_eq!(port.data_len, 0);
        // The two queues chain through the same slab independently.
        let d = mk(&mut slab, 4);
        port.push_back(&mut slab, false, d);
        assert_eq!(port.pop_front(&slab, true), None);
        assert_eq!(port.pop_front(&slab, false), Some(d));
    }

    #[test]
    fn mailbox_merge_orders_by_time_src_shard_seq() {
        // Two source shards post into shard 0's mailbox with interleaved
        // times; the merged queue must order by (time, src_shard, seq),
        // realized through the canonical per-packet uids.
        let mut shards: Vec<Shard> = (0..3).map(|i| Shard::new(i, 3)).collect();
        let mk = |salt: u64| Packet::new(PktKind::Ack, 0, 64, 0, 0, 0, salt, 0xff);
        // src shard 2 posts first (push order must not matter), with a
        // message earlier in time than src shard 1's first.
        for (src, at, salt) in [(2u32, 10u64, 7u64), (2, 30, 5), (1, 20, 9), (1, 30, 3)] {
            shards[src as usize].outbox[0].push(OutMsg::new(at, 0, 0, false, mk(salt)));
        }
        let (n, bytes) = deliver_mailboxes(&mut shards);
        assert_eq!((n, bytes), (4, 4 * 64));
        assert!(shards[1].outbox[0].is_empty() && shards[2].outbox[0].is_empty());
        let mut got = Vec::new();
        while let Some((t, ev)) = shards[0].events.pop() {
            let EvKind::ArriveEndpoint { pkt, .. } = ev else {
                panic!("unexpected event {ev:?}");
            };
            got.push((t, shards[0].packets.get(pkt).salt));
        }
        // Time dominates; at t=30 the uid (content key) decides, and the
        // uids were assigned in (src_shard, seq) send order upstream.
        assert_eq!(got, vec![(10, 7), (20, 9), (30, 3), (30, 5)]);
    }
}
