//! Controller repair semantics: repaired routes avoid dead links and
//! stay loop-free, the incremental (cached) controller matches a
//! from-scratch repair bit for bit, and the demand blast radius is sane.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::graph::Graph;
use fatpaths_net::topo::Topology;
use fatpaths_te::{endpoint_demands, TeConfig, TeController, TeScheme};
use fatpaths_workloads::matrices::{matrix_flows, MatrixSpec};

fn negotiated(topo: &Topology) -> TeScheme {
    let ls = build_random_layers(&topo.graph, &LayerConfig::new(4, 0.6, 11));
    let rt = RoutingTables::build(&topo.graph, &ls);
    let flows = matrix_flows(topo, &MatrixSpec::WorstCase { intensity: 0.6 }, 5);
    let demands = endpoint_demands(topo, &flows);
    TeScheme::negotiate(&topo.graph, &rt, &demands, &TeConfig::default())
}

/// Simulator lookup order: overlay first, then `candidate_ports`.
fn walk_repaired(
    g: &Graph,
    te: &TeScheme,
    rep: &RouteRepair,
    layer: usize,
    src: u32,
    dst: u32,
) -> Option<Vec<u32>> {
    let mut at = src;
    let mut path = vec![src];
    while at != dst {
        let port = match rep.lookup(layer as u8, at, dst) {
            Some(e) if e.is_empty() => return None,
            Some(e) => e.as_slice()[0],
            None => te.candidate_ports(layer as u8, at, dst).as_slice()[0],
        };
        at = g.neighbor_at(at, port as u32);
        path.push(at);
        assert!(path.len() <= g.n() + 1, "loop: {path:?}");
    }
    Some(path)
}

fn overlays_equal(a: &RouteRepair, b: &RouteRepair, nl: usize, nr: u32) -> bool {
    for l in 0..nl as u8 {
        for dst in 0..nr {
            for src in 0..nr {
                let (ea, eb) = (a.lookup(l, src, dst), b.lookup(l, src, dst));
                match (ea, eb) {
                    (None, None) => {}
                    (Some(x), Some(y)) if x.as_slice() == y.as_slice() => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

#[test]
fn repaired_routes_avoid_dead_links_and_stay_loop_free() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let g = &topo.graph;
    let te = negotiated(&topo);
    // Fail the first hop of a negotiated layer-0 route.
    let p0 = te.path(g, 0, 0, 41).unwrap();
    let down = DownLinks::from_links(&[(p0[0], p0[1])]);
    let rep = te.repair_routes(g, &down);
    assert!(!rep.is_empty());
    for layer in 0..RoutingScheme::num_layers(&te) {
        for (s, t) in [(0u32, 41u32), (41, 0), (7, 30), (3, 44)] {
            let p = walk_repaired(g, &te, &rep, layer, s, t)
                .expect("one dead link cannot disconnect SF");
            for w in p.windows(2) {
                assert!(
                    !down.contains(w[0], w[1]),
                    "layer {layer} {s}->{t} crossed the dead link: {p:?}"
                );
            }
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), p.len(), "repeated router in {p:?}");
        }
    }
}

#[test]
fn incremental_controller_matches_from_scratch_repair() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let g = &topo.graph;
    let te = negotiated(&topo);
    let nl = RoutingScheme::num_layers(&te);
    let nr = g.n() as u32;
    let p0 = te.path(g, 0, 0, 41).unwrap();
    let p1 = te.path(g, 1, 7, 30).unwrap();
    let first = DownLinks::from_links(&[(p0[0], p0[1])]);
    let both = DownLinks::from_links(&[(p0[0], p0[1]), (p1[0], p1[1])]);

    // Stateful controller across two ticks: layers whose down signature
    // is unchanged on tick 2 reuse cached rebuilds.
    let mut ctrl = TeController::new(&te);
    let _ = ctrl.repair(g, &first);
    let rebuilt_after_first = ctrl.rebuilt_trees();
    let incremental = ctrl.repair(g, &both);
    assert_eq!(ctrl.ticks(), 2);

    let fresh = te.repair_routes(g, &both);
    assert!(
        overlays_equal(&incremental, &fresh, nl, nr),
        "cached repair diverged from from-scratch repair"
    );
    // The second tick rebuilt strictly fewer trees than a cold start.
    let mut cold = TeController::new(&te);
    let _ = cold.repair(g, &both);
    assert!(
        ctrl.rebuilt_trees() - rebuilt_after_first <= cold.rebuilt_trees(),
        "incremental tick rebuilt more than a cold repair"
    );
}

#[test]
fn empty_down_set_repairs_nothing_and_blast_radius_is_sane() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let g = &topo.graph;
    let te = negotiated(&topo);
    assert!(te.repair_routes(g, &DownLinks::from_links(&[])).is_empty());
    let ctrl = TeController::new(&te);
    assert_eq!(ctrl.affected_demands(g, &DownLinks::from_links(&[])), 0);
    let p0 = te.path(g, 0, 0, 41).unwrap();
    let down = DownLinks::from_links(&[(p0[0], p0[1])]);
    let hit = ctrl.affected_demands(g, &down);
    assert!(hit <= te.demands().len());
    // The dead link lay on at least router 0's own route if 0 sends.
    if te.demands().iter().any(|d| d.src == 0 && d.dst == 41) {
        assert!(hit > 0);
    }
}
