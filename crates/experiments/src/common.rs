//! Shared plumbing for the experiment harnesses: CSV output, topology
//! sets, and workload generation. Simulation itself goes through the
//! [`Scenario`](fatpaths_sim::Scenario) builder — harnesses declare a
//! [`SchemeSpec`](fatpaths_sim::SchemeSpec) instead of hand-wiring
//! tables and configs.

use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::SimResult;
use fatpaths_workloads::arrivals::{poisson_flows, FlowSpec};
use fatpaths_workloads::mapping::{apply_mapping, random_mapping};
use fatpaths_workloads::patterns::Pattern;
use fatpaths_workloads::sizes::FlowSizeDist;
use std::fmt::Display;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;

/// Output directory for all experiment artifacts.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = std::env::var("FATPATHS_RESULTS").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir)?;
    Ok(PathBuf::from(dir))
}

/// Minimal CSV writer.
pub struct Csv {
    w: BufWriter<File>,
    path: PathBuf,
}

impl Csv {
    /// Creates `results/<name>.csv` with a header row.
    pub fn new(name: &str, header: &[&str]) -> io::Result<Csv> {
        let path = results_dir()?.join(format!("{name}.csv"));
        let mut w = BufWriter::new(File::create(&path)?);
        writeln!(w, "{}", header.join(","))?;
        Ok(Csv { w, path })
    }

    /// Appends one row; cells are anything `Display` (uniform slices like
    /// `&[String]` or `&[&dyn Display]` for mixed types).
    pub fn row<C: Display>(&mut self, cells: &[C]) -> io::Result<()> {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                write!(self.w, ",")?;
            }
            write!(self.w, "{c}")?;
        }
        writeln!(self.w)
    }

    /// Flushes and reports the path.
    pub fn finish(mut self) -> io::Result<PathBuf> {
        self.w.flush()?;
        Ok(self.path)
    }
}

/// Formats a float with fixed precision for CSV cells.
pub fn f(x: f64) -> String {
    format!("{x:.6}")
}

/// The evaluation topology set at a class: SF, DF, HX, XP, SF-JF, FT3.
pub fn topo_set(class: SizeClass, seed: u64) -> Vec<Topology> {
    fatpaths_net::classes::evaluated_kinds()
        .iter()
        .map(|&k| build(k, class, seed))
        .collect()
}

/// Poisson workload from a pattern with web-search sizes, optionally with
/// randomized endpoint mapping (§III-D).
pub fn pattern_workload(
    topo: &Topology,
    pattern: &Pattern,
    lambda: f64,
    window_s: f64,
    randomize: bool,
    seed: u64,
) -> Vec<FlowSpec> {
    let n = topo.num_endpoints() as u64;
    let mut pairs = pattern.flows(n, seed);
    if randomize {
        let m = random_mapping(n as u32, seed ^ 0xA11CE);
        pairs = apply_mapping(&m, &pairs);
    }
    pairs.retain(|&(s, d)| s != d);
    let dist = FlowSizeDist::web_search();
    poisson_flows(&pairs, lambda, window_s, &dist, seed ^ 0xF10)
}

/// Filters out flows recorded before the warmup cutoff (first half of the
/// injection window), per §VII-A8.
pub fn post_warmup(result: &SimResult, window_s: f64) -> SimResult {
    let cutoff = (window_s * 0.5 * 1e12) as u64;
    SimResult {
        flows: result
            .flows
            .iter()
            .copied()
            .filter(|fl| fl.start >= cutoff)
            .collect(),
        drops: result.drops,
        trims: result.trims,
        unroutable: result.unroutable,
        end_time: result.end_time,
        repair_log: result.repair_log.clone(),
        profile: result.profile,
    }
}

/// Writes a fully assembled artifact (e.g. the CSV text a parallel
/// sweep produced in memory) under `results/<name>`.
pub fn write_text(name: &str, text: &str) -> io::Result<PathBuf> {
    let path = results_dir()?.join(name);
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Writes a short text summary next to the CSVs.
pub fn write_summary(name: &str, text: &str) -> io::Result<()> {
    let path = results_dir()?.join(format!("{name}.txt"));
    std::fs::write(&path, text)?;
    println!("{text}");
    println!("→ {}", path.display());
    Ok(())
}

/// True if the harness runs in reduced-scale mode.
pub fn is_quick(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
}

/// True when `FATPATHS_SMOKE` is set (and not `0`): the CI smoke gate's
/// even-further-reduced scale. Smoke runs exist to prove every
/// experiment binary still executes end-to-end and emits a non-empty
/// artifact — numbers only need to be produced, not be meaningful — so
/// experiments may shrink grids and size classes beyond `--quick`.
pub fn is_smoke() -> bool {
    std::env::var("FATPATHS_SMOKE").is_ok_and(|v| v != "0")
}

/// Per-topology label for CSV rows.
pub fn label(topo: &Topology) -> String {
    match topo.kind {
        TopoKind::Jellyfish => topo.name.split('(').next().unwrap_or("JF").to_string(),
        _ => topo.kind.label().to_string(),
    }
}
