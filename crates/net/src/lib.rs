//! # fatpaths-net
//!
//! Network model and topology generators for the FatPaths reproduction
//! (Besta et al., "FatPaths: Routing in Supercomputers and Data Centers when
//! Shortest Paths Fall Short", SC'20).
//!
//! This crate provides:
//!
//! * [`graph::Graph`] — a compact CSR undirected graph with port numbering;
//! * [`topo`] — generators for every topology the paper evaluates
//!   (Slim Fly, Dragonfly, Jellyfish, Xpander, HyperX, fat tree, complete
//!   graph, star), each returning a [`topo::Topology`];
//! * [`classes`] — the paper's comparable-cost size classes (≈1k…≈1M
//!   endpoints) with the Table IV configurations;
//! * [`cost`] — the router/cable cost model behind Fig. 10;
//! * [`fault`] — deterministic link-failure plans
//!   ([`fault::FaultPlan`]): seeded samplers (uniform fraction, router
//!   bursts, cable-class targeted) and timed up/down events, plus the
//!   degraded views [`Graph::without_edges`](graph::Graph::without_edges)
//!   / [`Topology::degraded`](topo::Topology::degraded).

pub mod classes;
pub mod cost;
pub mod fault;
pub mod graph;
pub mod topo;

pub use classes::{build, SizeClass};
pub use fault::{FaultModel, FaultPlan, LinkEvent};
pub use graph::{Graph, RouterId, UNREACHABLE};
pub use topo::{LinkClass, TopoKind, Topology};
