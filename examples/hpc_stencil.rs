//! HPC scenario (Fig. 17): a bulk-synchronous 2D stencil with barriers on
//! a Slim Fly vs a comparable-cost fat tree, with and without randomized
//! workload mapping (§III-D).
//!
//! ```text
//! cargo run --release --example hpc_stencil
//! ```

use fatpaths::prelude::*;
use fatpaths::workloads::StencilWorkload;

fn run_phase(topo: &Topology, flows: &[FlowSpec]) -> f64 {
    let sc = Scenario::on(topo).workload(flows).seed(3);
    let result = if topo.kind == TopoKind::FatTree {
        // The fat tree runs its native NDP packet spraying.
        sc.scheme(SchemeSpec::Minimal)
            .lb(LoadBalancing::PacketSpray)
            .run()
    } else {
        sc.scheme(SchemeSpec::LayeredRandom {
            n_layers: 9,
            rho: 0.6,
        })
        .run()
    };
    assert_eq!(result.completion_rate(), 1.0, "stencil phase must complete");
    result.makespan().unwrap() as f64 / 1e9 // ms
}

fn main() {
    let sf = build(TopoKind::SlimFly, SizeClass::Small, 1);
    let ft = build(TopoKind::FatTree, SizeClass::Small, 1);
    let n = sf.num_endpoints().min(ft.num_endpoints()) as u32;
    let stencil = StencilWorkload::new(n, 200_000, 10);
    println!(
        "2D stencil: {} processes, 4 × 200 KB halo exchanges per iteration, 10 iterations\n",
        n
    );
    for topo in [&sf, &ft] {
        for (mapping_name, mapping) in [
            ("linear mapping ", None),
            (
                "random mapping ",
                Some(fatpaths::workloads::random_mapping(n, 7)),
            ),
        ] {
            let flows: Vec<FlowSpec> = stencil
                .phase_flows(mapping.as_deref(), 0)
                .into_iter()
                .filter(|f| topo.endpoint_router(f.src) != topo.endpoint_router(f.dst))
                .collect();
            let phase_ms = run_phase(topo, &flows);
            let total = stencil.total_completion((phase_ms * 1e9) as u64) as f64 / 1e9;
            println!(
                "{:<22} {} phase {:>7.2} ms   total ({} iters) {:>8.1} ms",
                topo.name, mapping_name, phase_ms, stencil.iterations, total
            );
        }
    }
    println!(
        "\nRandomized mapping spreads the stencil's off-diagonals over the\n\
         rich inter-group diversity (§III-D); on the low-diameter SF the\n\
         effect compounds with FatPaths' non-minimal multipathing."
    );
}
