//! Sharded-execution parity: the flagship guarantee of the sharded
//! event engine. Running a scenario on K event-loop shards — each with
//! its own queue and packet arena, stepped in conservative-lookahead
//! windows on the thread pool — must produce **byte-identical** results
//! to the single-shard run, for every routing scheme of the baselines
//! grid, healthy and under fault/churn/TE/compiled-FIB configurations,
//! at any shard and thread count. Any divergence means event order
//! leaked through the cross-shard merge, which is ordered by
//! `(time, src_shard, seq)` and never by arrival order.

use fatpaths_core::past::PastVariant;
use fatpaths_net::fault::{FaultModel, FaultPlan};
use fatpaths_net::topo::Topology;
use fatpaths_sim::{
    AdaptiveMode, CompileMode, LoadBalancing, Scenario, SchemeSpec, SimResult, TelemetryConfig,
    Trace,
};
use fatpaths_workloads::arrivals::FlowSpec;
use proptest::prelude::*;

/// The full baselines scheme matrix (same specs as the `baselines`
/// experiment).
fn matrix() -> Vec<(SchemeSpec, Option<LoadBalancing>)> {
    vec![
        (
            SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            },
            None,
        ),
        (SchemeSpec::Minimal, Some(LoadBalancing::EcmpFlow)),
        (SchemeSpec::Minimal, Some(LoadBalancing::PacketSpray)),
        (SchemeSpec::Minimal, Some(LoadBalancing::LetFlow)),
        (SchemeSpec::Spain { k_paths: 2 }, None),
        (
            SchemeSpec::Past {
                variant: PastVariant::Bfs,
            },
            None,
        ),
        (SchemeSpec::Ksp { k: 3 }, None),
        (SchemeSpec::Valiant { n_layers: 4 }, None),
    ]
}

/// SF exercises the BFS partition (no domains), FT3 the domain walk.
fn mini_topos() -> Vec<Topology> {
    vec![
        fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(),
        fatpaths_net::topo::fattree::fat_tree(4, 1),
    ]
}

fn permutation(topo: &Topology, offset: u64) -> Vec<FlowSpec> {
    let n = topo.num_endpoints() as u64;
    (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size: 48 * 1024,
            start: 0,
        })
        .filter(|f| f.src != f.dst)
        .collect()
}

/// Serializes everything a result CSV could ever derive — per-flow
/// records, global counters, and the repair log — so equality here is
/// equality of any downstream artifact.
fn fingerprint(r: &SimResult) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "end={} drops={} trims={} unroutable={}\n",
        r.end_time, r.drops, r.trims, r.unroutable
    );
    for f in &r.flows {
        let _ = writeln!(
            s,
            "{},{},{:?},{},{},{},{}",
            f.size, f.start, f.finish, f.retx, f.trims, f.host_dead, f.aborted
        );
    }
    for t in &r.repair_log {
        let _ = writeln!(s, "tick {} rows={} fib={}", t.at, t.rows, t.fib_rows);
    }
    s
}

/// Healthy-network parity: all eight baselines, two topology families,
/// shard counts from degenerate to finer than the domain structure.
#[test]
fn sharded_runs_are_byte_identical_to_single_shard() {
    rayon::ensure_pool(4);
    for topo in mini_topos() {
        let flows = permutation(&topo, 17);
        for (spec, lb) in matrix() {
            let run = |k: u32| {
                let mut sc = Scenario::on(&topo)
                    .scheme(spec)
                    .workload(&flows)
                    .seed(3)
                    .shards(k);
                if let Some(lb) = lb {
                    sc = sc.lb(lb);
                }
                sc.run()
            };
            let single = fingerprint(&run(1));
            for k in [2, 3, 4, 9] {
                let sharded = fingerprint(&run(k));
                assert!(
                    single == sharded,
                    "{} diverged at {k} shards on {} (lb {:?})",
                    spec.label(),
                    topo.name,
                    lb
                );
            }
        }
    }
}

/// Fault parity: static failures plus mid-run router churn with
/// detection-driven repair. Fault state is replicated per shard, so the
/// repair log — assembled from shard 0's replica — must match the
/// single-shard run tick for tick (the `SimResult` deterministic-merge
/// guarantee), and so must every packet-visible outcome.
#[test]
fn sharded_fault_churn_repair_runs_match_single_shard() {
    rayon::ensure_pool(4);
    for topo in mini_topos() {
        let flows = permutation(&topo, 21);
        let plan = FaultPlan::sample(&topo, &FaultModel::UniformFraction { fraction: 0.06 }, 11)
            .router_down_at(2_000_000_000, 7)
            .router_up_at(6_000_000_000, 7);
        let run = |k: u32| {
            Scenario::on(&topo)
                .scheme(SchemeSpec::LayeredRandom {
                    n_layers: 4,
                    rho: 0.6,
                })
                .workload(&flows)
                .seed(3)
                .horizon(40_000_000_000)
                .fault_plan(plan.clone())
                .detection_delay(50_000_000)
                .abort_on_host_death(3)
                .shards(k)
                .run()
        };
        let single = run(1);
        assert!(
            single.repair_ticks() >= 2,
            "churn must trigger repairs on {}",
            topo.name
        );
        for k in [2, 4] {
            let sharded = run(k);
            assert_eq!(
                single.repair_log, sharded.repair_log,
                "repair log diverged at {k} shards on {}",
                topo.name
            );
            assert!(
                fingerprint(&single) == fingerprint(&sharded),
                "fault run diverged at {k} shards on {}",
                topo.name
            );
        }
    }
}

/// Adaptive flowlet steering reads live queue depths at the sender's
/// attachment router — state that is shard-local by construction — so
/// every boundary decision sees the same snapshot at the same canonical
/// event time regardless of how routers are sharded. Pins both
/// adaptive-capable load balancers (layered FatPaths re-picks the
/// least-loaded layer, LetFlow the least-loaded minimal port) across
/// shard counts AND both thread configurations.
#[test]
fn sharded_adaptive_runs_match_single_shard() {
    rayon::ensure_pool(4);
    for topo in mini_topos() {
        let flows = permutation(&topo, 17);
        for (spec, lb) in [
            (
                SchemeSpec::LayeredRandom {
                    n_layers: 4,
                    rho: 0.6,
                },
                None,
            ),
            (SchemeSpec::Minimal, Some(LoadBalancing::LetFlow)),
        ] {
            let run = |k: u32| {
                let mut sc = Scenario::on(&topo)
                    .scheme(spec)
                    .adaptive(AdaptiveMode::QueueDepth)
                    .workload(&flows)
                    .seed(3)
                    .shards(k);
                if let Some(lb) = lb {
                    sc = sc.lb(lb);
                }
                sc.run()
            };
            let single = fingerprint(&run(1));
            for k in [2, 4] {
                assert!(
                    single == fingerprint(&run(k)),
                    "adaptive {} diverged at {k} shards on {} (lb {:?})",
                    spec.label(),
                    topo.name,
                    lb
                );
            }
            let sequential = fingerprint(&rayon::run_sequential(|| run(4)));
            assert!(
                single == sequential,
                "adaptive {} differs between pooled and single-threaded execution on {}",
                spec.label(),
                topo.name
            );
        }
    }
}

/// Adaptive steering under static faults plus mid-run churn: down
/// candidates are excluded from the depth snapshot (scored `u32::MAX`),
/// and repaired rows replace the scheme's candidate set — both paths
/// must stay byte-identical across shard counts, repair log included.
#[test]
fn sharded_adaptive_fault_churn_runs_match_single_shard() {
    rayon::ensure_pool(4);
    for topo in mini_topos() {
        let flows = permutation(&topo, 21);
        let plan = FaultPlan::sample(&topo, &FaultModel::UniformFraction { fraction: 0.06 }, 11)
            .router_down_at(2_000_000_000, 7)
            .router_up_at(6_000_000_000, 7);
        let run = |k: u32| {
            Scenario::on(&topo)
                .scheme(SchemeSpec::LayeredRandom {
                    n_layers: 4,
                    rho: 0.6,
                })
                .adaptive(AdaptiveMode::QueueDepth)
                .workload(&flows)
                .seed(3)
                .horizon(40_000_000_000)
                .fault_plan(plan.clone())
                .detection_delay(50_000_000)
                .abort_on_host_death(3)
                .shards(k)
                .run()
        };
        let single = run(1);
        assert!(
            single.repair_ticks() >= 2,
            "churn must trigger repairs on {}",
            topo.name
        );
        for k in [2, 4] {
            let sharded = run(k);
            assert_eq!(
                single.repair_log, sharded.repair_log,
                "adaptive repair log diverged at {k} shards on {}",
                topo.name
            );
            assert!(
                fingerprint(&single) == fingerprint(&sharded),
                "adaptive fault run diverged at {k} shards on {}",
                topo.name
            );
        }
    }
}

/// TE-negotiated tables and compiled FIBs ride the same sharded engine:
/// both must stay byte-identical to their single-shard runs.
#[test]
fn sharded_te_and_compiled_runs_match_single_shard() {
    rayon::ensure_pool(4);
    let topo = fatpaths_net::topo::fattree::fat_tree(4, 1);
    let flows = permutation(&topo, 13);
    for (te, compiled) in [(true, None), (false, Some(CompileMode::Aggregated))] {
        let run = |k: u32| {
            let mut sc = Scenario::on(&topo)
                .scheme(SchemeSpec::LayeredRandom {
                    n_layers: 4,
                    rho: 0.6,
                })
                .workload(&flows)
                .seed(5)
                .shards(k);
            if te {
                sc = sc.traffic_engineered(fatpaths_sim::TeConfig::default());
            }
            if let Some(mode) = compiled {
                sc = sc.compiled(mode);
            }
            sc.run()
        };
        let single = fingerprint(&run(1));
        let sharded = fingerprint(&run(4));
        assert!(
            single == sharded,
            "te={te} compiled={compiled:?} diverged at 4 shards"
        );
    }
}

/// Thread count is orthogonal to shard count: a 4-shard run on the
/// 4-thread pool and the same 4-shard run forced onto one thread via
/// `rayon::run_sequential` are byte-identical — window execution order
/// across shards must never matter.
#[test]
fn sharded_runs_match_across_thread_counts() {
    rayon::ensure_pool(4);
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let flows = permutation(&topo, 7);
    let run = || {
        Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .workload(&flows)
            .seed(9)
            .shards(4)
            .run()
    };
    let pooled = fingerprint(&run());
    let sequential = fingerprint(&rayon::run_sequential(run));
    assert!(
        pooled == sequential,
        "4-shard run differs between pooled and single-threaded execution"
    );
}

/// Telemetry determinism contract: for a fixed shard count, the exported
/// NDJSON trace and time-series CSV are byte-identical whether the
/// 4-shard windows run on the 4-thread pool or inline on one thread —
/// collection is shard-local and the merge runs in canonical shard
/// order, so thread scheduling must never show in an artifact. Also pins
/// the NDJSON round trip (parse → re-export is the identity) and that
/// observation is pure: the traced run's `SimResult` fingerprints equal
/// the untraced run's.
#[test]
fn telemetry_exports_are_byte_identical_across_thread_counts() {
    rayon::ensure_pool(4);
    for topo in mini_topos() {
        let flows = permutation(&topo, 17);
        let run = || {
            Scenario::on(&topo)
                .scheme(SchemeSpec::LayeredRandom {
                    n_layers: 4,
                    rho: 0.6,
                })
                .workload(&flows)
                .seed(3)
                .shards(4)
                .telemetry(TelemetryConfig {
                    span_every: 1,
                    seed: 3,
                    ..TelemetryConfig::on()
                })
                .run_traced()
        };
        let (res_pool, tr_pool) = run();
        let (res_seq, tr_seq) = rayon::run_sequential(run);
        assert!(
            fingerprint(&res_pool) == fingerprint(&res_seq),
            "traced results diverged across thread counts on {}",
            topo.name
        );
        let ndjson = tr_pool.to_ndjson();
        assert!(
            ndjson == tr_seq.to_ndjson(),
            "NDJSON trace differs between pooled and single-threaded runs on {}",
            topo.name
        );
        assert!(
            tr_pool.to_timeseries_csv() == tr_seq.to_timeseries_csv(),
            "time-series CSV differs between pooled and single-threaded runs on {}",
            topo.name
        );
        // The artifact is real, not an empty stub.
        assert!(!tr_pool.link_rows.is_empty() && !tr_pool.spans.is_empty());
        // Round trip: parse → re-export is the identity.
        let parsed = Trace::parse_ndjson(&ndjson).expect("own NDJSON must parse");
        assert!(parsed.to_ndjson() == ndjson, "NDJSON round trip diverged");
        // Observation is pure: the untraced run is bit-identical.
        let untraced = Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .workload(&flows)
            .seed(3)
            .shards(4)
            .run();
        assert!(
            fingerprint(&untraced) == fingerprint(&res_pool),
            "telemetry perturbed the simulation on {}",
            topo.name
        );
    }
}

/// Telemetry parity across *shard* counts is a non-goal (interval rows
/// are per shard by design), but the disabled path is a hard contract:
/// no collectors are installed, `run_traced` returns no trace, and the
/// run costs exactly one `Option` check per wire start.
#[test]
fn disabled_telemetry_emits_nothing() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
    let flows = permutation(&topo, 5);
    let sc = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 3,
            rho: 0.6,
        })
        .workload(&flows)
        .seed(2);
    let scheme = sc.build_scheme();
    let mut sim = fatpaths_sim::Simulator::new(&topo, &scheme, sc.sim_config());
    sim.add_flows(&flows);
    let (res, trace) = sim.run_traced();
    assert!(trace.is_none(), "disabled telemetry must yield no trace");
    assert_eq!(res.completion_rate(), 1.0);
}

/// MPTCP subflow groups (pinned layers, coupled congestion avoidance)
/// survive sharding bit-for-bit, including the group structure.
#[test]
fn sharded_mptcp_runs_match_single_shard() {
    rayon::ensure_pool(4);
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let flows = permutation(&topo, 11);
    let run = |k: u32| {
        Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .transport(fatpaths_sim::Transport::tcp_default(
                fatpaths_sim::TcpVariant::Dctcp,
            ))
            .workload(&flows)
            .seed(3)
            .shards(k)
            .run_mptcp(3)
    };
    let (res1, groups1) = run(1);
    let (res4, groups4) = run(4);
    assert_eq!(groups1, groups4);
    assert!(fingerprint(&res1) == fingerprint(&res4));
}

/// Strategy for the cross-shard merge key. The engine realizes this
/// order through canonical per-transmission uids; the model here is the
/// contract the docs state: time first, then source shard, then send
/// sequence. Small ranges force plenty of per-component ties.
fn merge_key() -> impl Strategy<Value = (u64, u32, u64)> {
    (0u64..16, 0u32..4, 0u64..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // `(time, src_shard, seq)` is a total order: antisymmetric,
    // transitive, total — so a merge keyed on it admits exactly one
    // result, independent of mailbox arrival order.
    #[test]
    fn merge_key_is_a_total_order(
        a in merge_key(),
        b in merge_key(),
        c in merge_key(),
    ) {
        use std::cmp::Ordering;
        // Totality + antisymmetry: exactly one relation holds.
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == Ordering::Equal, a == b);
        // Transitivity over the sampled triple.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert!(a.cmp(&c) != Ordering::Greater);
        }
    }

    // Sorting any permutation of a key multiset yields the same
    // sequence: the merge result cannot depend on arrival order.
    #[test]
    fn merge_order_is_arrival_order_independent(
        mut keys in prop::collection::vec(merge_key(), 0..40),
        rot in 0usize..40,
    ) {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let r = rot % keys.len().max(1);
        keys.rotate_left(r);
        keys.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }

    // `partition_routers` contract: deterministic across repeated
    // calls, shard ids in range, sizes within 2x of perfectly
    // balanced, and failure domains (fat-tree pods) never straddle a
    // shard boundary while there are at least as many domain groups
    // as shards. Covers both assignment paths — whole-domain chunking
    // (small k) and the BFS fallback (k exceeds the group count).
    #[test]
    fn partition_routers_is_balanced_domain_whole_and_deterministic(
        half_k in 2u32..5,
        k in 1usize..12,
    ) {
        let topo = fatpaths_net::topo::fattree::fat_tree(2 * half_k, 1);
        let nr = topo.num_routers();
        let a = fatpaths_sim::partition_routers(&topo, k);
        prop_assert_eq!(&a, &fatpaths_sim::partition_routers(&topo, k));
        prop_assert_eq!(a.len(), nr);
        let kk = k.clamp(1, nr);
        prop_assert!(a.iter().all(|&s| (s as usize) < kk));
        let mut sizes = vec![0usize; kk];
        for &s in &a {
            sizes[s as usize] += 1;
        }
        let balanced = nr.div_ceil(kk);
        for &sz in &sizes {
            prop_assert!(sz <= 2 * balanced, "shard size {} > 2x balanced {}", sz, balanced);
        }
        if kk <= topo.domains.len() {
            for d in &topo.domains {
                let s0 = a[d.start as usize];
                prop_assert!((d.start..d.end).all(|r| a[r as usize] == s0));
            }
        }
    }

    // The adaptive flowlet boundary decision is a pure function of its
    // three inputs — (local queue-depth snapshot, flow id, flowlet
    // counter) — and nothing else: deterministic across calls, always
    // an index of minimum depth, never a dead (`u32::MAX`-scored)
    // candidate, and `None` exactly when no live candidate exists.
    // This is the property that makes adaptivity shard- and
    // thread-count invariant: no clocks, no RNG state, no global load.
    #[test]
    fn adaptive_boundary_decision_is_a_pure_minimum_pick(
        raw in prop::collection::vec(0u32..10, 0..12),
        flow in 0u32..1_000_000,
        ctr in 0u32..64,
    ) {
        // Draws of 8..10 model dead candidates (down ports / empty
        // rows), which the snapshot scores `u32::MAX`.
        let depths: Vec<u32> = raw
            .into_iter()
            .map(|d| if d >= 8 { u32::MAX } else { d })
            .collect();
        let pick = fatpaths_sim::least_loaded(&depths, flow, ctr);
        prop_assert_eq!(pick, fatpaths_sim::least_loaded(&depths, flow, ctr));
        let min = depths.iter().copied().min();
        match pick {
            Some(i) => {
                prop_assert!(i < depths.len());
                prop_assert!(depths[i] != u32::MAX);
                prop_assert_eq!(Some(depths[i]), min);
            }
            None => prop_assert!(min.is_none() || min == Some(u32::MAX)),
        }
    }

    // End-to-end sharded parity over randomized workloads: arbitrary
    // flow sets (sizes, starts, pairs) on the layered scheme stay
    // byte-identical between one and three shards.
    #[test]
    fn random_workloads_are_shard_count_invariant(
        picks in prop::collection::vec((0u32..50, 0u32..50, 1u64..200_000, 0u64..4), 1..12),
    ) {
        let topo = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
        let n = topo.num_endpoints() as u32;
        let flows: Vec<FlowSpec> = picks
            .iter()
            .map(|&(s, d, size, start)| FlowSpec {
                src: s % n,
                dst: d % n,
                size,
                start: start * 1_000_000,
            })
            .filter(|f| f.src != f.dst)
            .collect();
        prop_assume!(!flows.is_empty());
        let run = |k: u32| {
            Scenario::on(&topo)
                .scheme(SchemeSpec::LayeredRandom { n_layers: 3, rho: 0.7 })
                .workload(&flows)
                .seed(2)
                .shards(k)
                .run()
        };
        prop_assert_eq!(fingerprint(&run(1)), fingerprint(&run(3)));
    }
}

/// All-to-all permutation (`e → e + n/2 mod n`) of 16 KiB NDP flows on
/// `fat_tree(k, 2)`, run through the raw simulator API so the spec
/// vector can be dropped before the run (the simulator owns its own
/// flow state; keeping a redundant multi-MB spec copy alive would
/// land in the measured high-water mark).
fn permutation_run(k: u32, shards: u32) -> fatpaths_sim::SimResult {
    let topo = fatpaths_net::topo::fattree::fat_tree(k, 2);
    let n = topo.num_endpoints() as u64;
    let flows: Vec<FlowSpec> = (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + n / 2) % n) as u32,
            size: 16 * 1024,
            start: 0,
        })
        .filter(|f| f.src != f.dst)
        .collect();
    let dm = fatpaths_core::ecmp::DistanceMatrix::build(&topo.graph);
    let scheme = fatpaths_core::scheme::MinimalScheme::new(&topo.graph, &dm);
    let cfg = fatpaths_sim::SimConfig {
        lb: LoadBalancing::PacketSpray,
        ..Default::default()
    }
    .shards(shards);
    let mut sim = fatpaths_sim::Simulator::new(&topo, &scheme, cfg);
    sim.add_flows(&flows);
    drop(flows);
    sim.run()
}

/// Scale acceptance: a full FT3 at ≥100k endpoints completes on the
/// sharded engine within a fixed memory budget. `fat_tree(62, 2)` is
/// 4805 routers / 119,164 endpoints; minimal routing + packet spray
/// keeps scheme construction tractable while every packet still
/// crosses the sharded fabric. The peak-RSS ceiling is half the
/// pre-optimization figure for this exact run (221,760 kB) — the gate
/// that keeps the allocation-lean hot loop lean.
///
/// Gated, not `#[ignore]`d: runs when `FATPATHS_SCALE=1` (set by the
/// CI scale-smoke step; the run takes minutes in release and must be
/// the only test in the process for a clean high-water mark):
/// `FATPATHS_SCALE=1 cargo test --release -p fatpaths-sim --test
/// shard_parity --  --exact hundred_k_endpoint_fat_tree_completes_within_rss_budget`.
#[test]
fn hundred_k_endpoint_fat_tree_completes_within_rss_budget() {
    if std::env::var_os("FATPATHS_SCALE").is_none() {
        eprintln!("skipped: set FATPATHS_SCALE=1 to run the 119k-endpoint sweep");
        return;
    }
    rayon::ensure_pool(4);
    let res = permutation_run(62, 8);
    assert_eq!(res.completion_rate(), 1.0);
    const RSS_BUDGET_KB: u64 = 110_880; // 221,760 kB baseline / 2
    assert!(
        res.profile.peak_rss_kb <= RSS_BUDGET_KB,
        "peak RSS {} kB exceeds the {} kB budget",
        res.profile.peak_rss_kb,
        RSS_BUDGET_KB
    );
}

/// Million-endpoint acceptance: `fat_tree(126, 2)` is 19,845 routers /
/// 1,000,188 endpoints. Completion is the only criterion — the run
/// takes tens of minutes in release.
/// Run manually: `cargo test --release -- --ignored million`.
#[test]
#[ignore = "million-endpoint run; takes tens of minutes, exercised manually"]
fn million_endpoint_fat_tree_completes() {
    rayon::ensure_pool(4);
    let res = permutation_run(126, 8);
    assert_eq!(res.completion_rate(), 1.0);
}
