//! Cross-crate integration tests: the paper's pipeline end to end, from
//! topology generation through layered routing to simulation and analysis.

use fatpaths::diversity::apsp::shortest_path_stats;
use fatpaths::diversity::cdp::{cdp, EdgeIds};
use fatpaths::mcf::mat::{mat, router_demands, LayeredPaths, PastPaths};
use fatpaths::mcf::worstcase::worst_case_flows;
use fatpaths::net::cost::cost_per_endpoint;
use fatpaths::prelude::*;
use fatpaths::sim::metrics::mean;
use fatpaths::workloads::{apply_mapping, poisson_flows, random_mapping};

/// The paper's §IV headline on the canonical SF instance: one shortest
/// path for most pairs, but ≥3 disjoint almost-minimal paths.
#[test]
fn shortest_paths_fall_short_but_almost_shortest_do_not() {
    let topo = fatpaths::net::topo::slimfly::slim_fly(11, 8).unwrap();
    let eids = EdgeIds::new(&topo.graph);
    let stats = shortest_path_stats(&topo.graph);
    assert_eq!(stats.diameter, 2);
    let mut unique = 0usize;
    let mut enough_nonminimal = 0usize;
    let mut total = 0usize;
    for s in (0..topo.num_routers() as u32).step_by(17) {
        let dist = topo.graph.bfs(s);
        for t in (1..topo.num_routers() as u32).step_by(13) {
            if s == t {
                continue;
            }
            total += 1;
            if cdp(&topo.graph, &eids, &[s], &[t], dist[t as usize]) == 1 {
                unique += 1;
            }
            if cdp(&topo.graph, &eids, &[s], &[t], dist[t as usize] + 1) >= 3 {
                enough_nonminimal += 1;
            }
        }
    }
    assert!(
        unique * 2 > total,
        "most pairs should have a unique shortest path"
    );
    assert!(
        enough_nonminimal * 10 >= total * 9,
        "almost all pairs should have ≥3 disjoint almost-minimal paths"
    );
}

/// End-to-end Fig. 11-style comparison at miniature scale: FatPaths beats
/// minimal-path routing on SF under aligned adversarial traffic, with the
/// full pipeline (topology → layers → tables → NDP sim → stats).
#[test]
fn adversarial_pipeline_fatpaths_wins() {
    let topo = build(TopoKind::SlimFly, SizeClass::Small, 1);
    let n = topo.num_endpoints() as u64;
    let p = topo.concentration[0] as u64;
    let offset = p * (topo.num_routers() as u64 / 2 + 1);
    let flows: Vec<FlowSpec> = (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size: 128 * 1024,
            start: (e * 50_000),
        })
        .collect();
    let run = |spec: SchemeSpec| {
        Scenario::on(&topo)
            .scheme(spec)
            .workload(&flows)
            .seed(1)
            .run()
    };
    let minimal = run(SchemeSpec::LayeredMinimal);
    let layered = run(SchemeSpec::LayeredRandom {
        n_layers: 9,
        rho: 0.6,
    });
    assert_eq!(minimal.completion_rate(), 1.0);
    assert_eq!(layered.completion_rate(), 1.0);
    let (m_min, m_fat) = (mean(&minimal.fcts(None)), mean(&layered.fcts(None)));
    assert!(
        m_fat < m_min * 0.8,
        "FatPaths mean FCT {m_fat} not clearly below minimal {m_min}"
    );
}

/// Randomized workload mapping (§III-D) reduces adversarial congestion on
/// its own, even with minimal routing.
#[test]
fn workload_randomization_helps() {
    let topo = build(TopoKind::SlimFly, SizeClass::Small, 1);
    let n = topo.num_endpoints() as u32;
    let p = topo.concentration[0] as u64;
    let offset = (p * (topo.num_routers() as u64 / 2 + 1)) as u32;
    let pairs: Vec<(u32, u32)> = (0..n).map(|e| (e, (e + offset) % n)).collect();
    let mapped = apply_mapping(&random_mapping(n, 5), &pairs);
    let run = |pairs: &[(u32, u32)]| {
        let flows: Vec<FlowSpec> = pairs
            .iter()
            .filter(|(s, d)| topo.endpoint_router(*s) != topo.endpoint_router(*d))
            .map(|&(s, d)| FlowSpec {
                src: s,
                dst: d,
                size: 128 * 1024,
                start: 0,
            })
            .collect();
        Scenario::on(&topo)
            .scheme(SchemeSpec::Minimal)
            .lb(LoadBalancing::EcmpFlow)
            .workload(&flows)
            .run()
    };
    let aligned = run(&pairs);
    let randomized = run(&mapped);
    let (fa, fr) = (mean(&aligned.fcts(None)), mean(&randomized.fcts(None)));
    assert!(
        fr < fa,
        "randomized mapping {fr} not faster than aligned {fa}"
    );
}

/// §VI: layered FatPaths routing achieves higher MAT than PAST under
/// worst-case traffic, with comparable layer budgets.
#[test]
fn mat_pipeline_fatpaths_beats_past() {
    let topo = fatpaths::net::topo::slimfly::slim_fly(7, 5).unwrap();
    let flows = worst_case_flows(&topo, 0.55, 2);
    let demands = router_demands(&flows, |e| topo.endpoint_router(e));
    let layers = build_interference_min_layers(
        &topo.graph,
        &ImConfig {
            n_layers: 6,
            seed: 4,
            ..ImConfig::default()
        },
    );
    let tables = RoutingTables::build(&topo.graph, &layers);
    let fat = mat(
        &topo.graph,
        &demands,
        &LayeredPaths {
            base: &topo.graph,
            tables: &tables,
        },
        0.08,
    );
    let trees = fatpaths::core::past::PastTrees::build(
        &topo.graph,
        fatpaths::core::past::PastVariant::Bfs,
        5,
    );
    let past = mat(&topo.graph, &demands, &PastPaths { trees: &trees }, 0.08);
    assert!(fat.throughput > past.throughput);
}

/// The comparable-cost premise of §VII-A2 holds for the instances every
/// performance figure uses.
#[test]
fn evaluation_topologies_have_comparable_cost() {
    let costs: Vec<f64> = fatpaths::net::classes::evaluated_kinds()
        .iter()
        .map(|&k| cost_per_endpoint(&build(k, SizeClass::Small, 1)))
        .collect();
    let lo = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = costs.iter().cloned().fold(0.0f64, f64::max);
    assert!(hi / lo < 2.5, "cost spread too wide: {lo}..{hi}");
}

/// TCP and NDP transports both complete a mixed Poisson workload on every
/// evaluation topology (cross-topology smoke of the full stack).
#[test]
fn all_topologies_run_both_transports() {
    for kind in [TopoKind::SlimFly, TopoKind::Dragonfly, TopoKind::HyperX] {
        let topo = build(kind, SizeClass::Small, 2);
        let pairs = Pattern::Permutation.flows(topo.num_endpoints() as u64, 3);
        let pairs: Vec<(u32, u32)> = pairs
            .into_iter()
            .filter(|&(s, d)| topo.endpoint_router(s) != topo.endpoint_router(d))
            .take(200)
            .collect();
        let dist = FlowSizeDist::web_search();
        let flows = poisson_flows(&pairs, 100.0, 0.002, &dist, 7);
        let sc = Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.7,
            })
            .workload(&flows)
            .seed(5);
        let scheme = sc.build_scheme();
        for transport in [
            Transport::ndp_default(),
            Transport::tcp_default(TcpVariant::Dctcp),
        ] {
            let res = sc.clone().transport(transport).run_with(&scheme);
            assert_eq!(res.completion_rate(), 1.0, "{kind:?} {transport:?}");
        }
    }
}

/// The facade prelude exposes a working end-to-end workflow (doc parity).
#[test]
fn prelude_quickstart_compiles_and_runs() {
    let topo = fatpaths::net::topo::slimfly::slim_fly(5, 3).unwrap();
    let flows: Vec<FlowSpec> = (0..topo.num_endpoints() as u32 / 2)
        .map(|e| FlowSpec {
            src: e,
            dst: e + 75,
            size: 64 * 1024,
            start: 0,
        })
        .collect();
    let result = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 6,
            rho: 0.6,
        })
        .transport(Transport::ndp_default())
        .workload(&flows)
        .seed(1)
        .run();
    assert_eq!(result.completion_rate(), 1.0);
}

/// Every §VII baseline — including the four previously theory-only ones —
/// runs through the same simulator on the same workload (the tentpole
/// promise of the `RoutingScheme` redesign, exercised from the facade).
#[test]
fn all_baselines_simulate_through_one_api() {
    let topo = fatpaths::net::topo::slimfly::slim_fly(5, 2).unwrap();
    let n = topo.num_endpoints() as u64;
    let flows: Vec<FlowSpec> = (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + 31) % n) as u32,
            size: 48 * 1024,
            start: 0,
        })
        .filter(|f| topo.endpoint_router(f.src) != topo.endpoint_router(f.dst))
        .collect();
    for spec in [
        SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        },
        SchemeSpec::Minimal,
        SchemeSpec::Spain { k_paths: 2 },
        SchemeSpec::Past {
            variant: PastVariant::Bfs,
        },
        SchemeSpec::Ksp { k: 3 },
        SchemeSpec::Valiant { n_layers: 4 },
    ] {
        let res = Scenario::on(&topo)
            .scheme(spec)
            .workload(&flows)
            .seed(4)
            .run();
        assert_eq!(res.completion_rate(), 1.0, "{} failed", spec.label());
    }
}
