//! Star / single-crossbar baseline (Appendix D-A).
//!
//! One switch with `n` endpoints and no inter-router links. The paper uses
//! it to characterize pure transport-protocol effects (TCP slow start, flow
//! control) absent any topological contention — an upper bound on per-flow
//! performance (Figs. 20–21).

use super::{TopoKind, Topology};

/// Builds a single-switch crossbar with `n` endpoints.
pub fn star(n: u32) -> Topology {
    Topology::assemble(
        TopoKind::Star,
        format!("ST(N={n})"),
        1,
        Vec::new(),
        vec![n],
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_router_no_links() {
        let t = star(60);
        assert_eq!(t.num_routers(), 1);
        assert_eq!(t.num_endpoints(), 60);
        assert_eq!(t.graph.m(), 0);
        assert_eq!(t.endpoint_router(59), 0);
    }
}
