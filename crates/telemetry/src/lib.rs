//! Deterministic in-simulation telemetry: time-series probes, flow
//! spans, and trace export.
//!
//! The simulator (`fatpaths-sim`) collects telemetry **shard-locally**
//! during window execution — per-link and per-layer wire bytes, queue
//! depths, arena occupancy — plus optional per-flow event timelines
//! ("spans"), and merges everything into a [`Trace`] in canonical shard
//! order after the run. The determinism contract of the sharded engine
//! extends to every exported artifact: for a fixed shard count, the
//! NDJSON trace and the CSV time series are **byte-identical at any
//! thread count**. Three rules make that hold:
//!
//! * collectors are written only by the shard that owns the state, at
//!   canonical event times — never across shards mid-run;
//! * sampling intervals close in the serial driver section between
//!   windows, where the global clock (`t0`) is already deterministic;
//! * every exported quantity is an integer (bytes, counts, picoseconds)
//!   and every merge sorts by a canonical key — no float reductions, no
//!   hash-map iteration order.
//!
//! Span sampling is seeded, not random: a flow is sampled iff a hash of
//! `(flow, seed)` lands in the `1 / span_every` bucket, so the sampled
//! set is a pure function of the config — identical at any shard and
//! thread count.
//!
//! The `fatpaths-trace` binary in this crate parses an NDJSON trace and
//! prints top-loaded links, the per-layer utilization timeline, span
//! waterfalls, and the repair convergence timeline.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Number of queue-depth histogram bins: `[0, 1, 2, ≤4, ≤8, ≤16, ≤32, >32]`.
pub const QBINS: usize = 8;

/// Bin index for a queue depth (packets).
#[inline]
pub fn qbin(depth: u32) -> usize {
    match depth {
        0 => 0,
        1 => 1,
        2 => 2,
        3..=4 => 3,
        5..=8 => 4,
        9..=16 => 5,
        17..=32 => 6,
        _ => 7,
    }
}

/// Telemetry knobs, embedded by value in the simulator's `SimConfig`.
///
/// `Copy` and allocation-free by design: the disabled path must cost the
/// hot loop exactly one pointer-null check (the shard holds
/// `Option<Box<ShardTelemetry>>`, `None` when disabled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. When false, no collector is allocated and no hook
    /// does any work.
    pub enabled: bool,
    /// Sampling-interval length in picoseconds. Intervals close at
    /// window boundaries in the serial driver, so the effective
    /// resolution is `max(interval_ps, window length)`.
    pub interval_ps: u64,
    /// Span sampling rate: flows are sampled 1-in-`span_every` by a
    /// seeded hash of the flow id (`0` disables spans entirely,
    /// `1` samples every flow).
    pub span_every: u32,
    /// Seed folded into the span-sampling hash, so two runs can sample
    /// disjoint flow sets deterministically.
    pub seed: u64,
}

impl TelemetryConfig {
    /// Default sampling interval: 100 µs.
    pub const DEFAULT_INTERVAL_PS: u64 = 100_000_000;
    /// Default span sampling: 1 in 8 flows.
    pub const DEFAULT_SPAN_EVERY: u32 = 8;

    /// Telemetry off (the `SimConfig` default): zero hot-loop work.
    pub const fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            interval_ps: Self::DEFAULT_INTERVAL_PS,
            span_every: Self::DEFAULT_SPAN_EVERY,
            seed: 0,
        }
    }

    /// Telemetry on at the default sampling knobs.
    pub const fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// True iff spans for `flow` are recorded under this config — a pure
    /// function of `(flow, seed, span_every)`, so sender- and
    /// receiver-side shards agree without communicating.
    #[inline]
    pub fn flow_sampled(&self, flow: u32) -> bool {
        match self.span_every {
            0 => false,
            1 => true,
            n => fnv1a64(self.seed ^ fnv1a64(flow as u64)).is_multiple_of(n as u64),
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// FNV-1a over the 8 bytes of `x` — the same construction
/// `fatpaths_sim::cell_seed` uses for coordinate-derived seeds.
#[inline]
fn fnv1a64(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Span event kinds, in canonical (tie-break) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// Flow injected (start event dispatched).
    Inject = 0,
    /// First data packet handed to the fabric.
    FirstData = 1,
    /// First payload trim (NDP) seen by the receiver.
    FirstTrim = 2,
    /// First retransmission queued at the sender.
    FirstRetx = 3,
    /// Layer (or LetFlow-nonce) switch at a flowlet boundary;
    /// `a` = old layer, `b` = new layer.
    LayerSwitch = 4,
    /// Retransmission timeout fired at the sender.
    Rto = 5,
    /// Flow completed (receiver side); `a` = packets received,
    /// `b` = trims the receiver saw.
    Finish = 6,
    /// Flow aborted against a dead endpoint.
    Abort = 7,
}

impl SpanKind {
    /// Stable wire name (NDJSON `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Inject => "inject",
            SpanKind::FirstData => "first_data",
            SpanKind::FirstTrim => "first_trim",
            SpanKind::FirstRetx => "first_retx",
            SpanKind::LayerSwitch => "layer_switch",
            SpanKind::Rto => "rto",
            SpanKind::Finish => "finish",
            SpanKind::Abort => "abort",
        }
    }

    /// Inverse of [`name`](SpanKind::name).
    pub fn from_name(s: &str) -> Option<SpanKind> {
        Some(match s {
            "inject" => SpanKind::Inject,
            "first_data" => SpanKind::FirstData,
            "first_trim" => SpanKind::FirstTrim,
            "first_retx" => SpanKind::FirstRetx,
            "layer_switch" => SpanKind::LayerSwitch,
            "rto" => SpanKind::Rto,
            "finish" => SpanKind::Finish,
            "abort" => SpanKind::Abort,
            _ => return None,
        })
    }
}

/// One span event on a sampled flow's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Flow id.
    pub flow: u32,
    /// Event time (ps).
    pub t: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Kind-specific detail (e.g. old layer).
    pub a: u32,
    /// Kind-specific detail (e.g. new layer).
    pub b: u32,
}

/// Per-(interval, shard) occupancy sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSample {
    /// Interval index (`t / interval_ps`).
    pub iv: u64,
    /// Shard id.
    pub shard: u32,
    /// Events pending in the shard's queue at flush time.
    pub events: u64,
    /// Live packets in the shard's slab at flush time.
    pub live: u64,
    /// Slab capacity (slots) at flush time.
    pub cap: u64,
    /// Queue-depth histogram over the shard's output ports ([`qbin`]).
    pub qhist: [u64; QBINS],
}

/// Wire bytes serialized onto one output port (directed link) during one
/// interval. Ports are owned by exactly one shard, so rows never need
/// cross-shard summing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSample {
    /// Interval index.
    pub iv: u64,
    /// Global output-port id (a directed link).
    pub port: u32,
    /// Wire bytes serialized in the interval.
    pub bytes: u64,
}

/// Wire bytes carried by one routing layer during one interval (summed
/// across shards in canonical order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerSample {
    /// Interval index.
    pub iv: u64,
    /// Layer id.
    pub layer: u32,
    /// Wire bytes serialized in the interval.
    pub bytes: u64,
}

/// Cross-shard mailbox traffic during one interval (driver-level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MailboxSample {
    /// Interval index.
    pub iv: u64,
    /// Messages merged.
    pub msgs: u64,
    /// Payload bytes merged.
    pub bytes: u64,
}

/// One control-plane repair pass (mirrors the simulator's repair log).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairSample {
    /// Repair time (ps).
    pub at: u64,
    /// Routing rows touched.
    pub rows: u64,
    /// FIB rows rewritten (compiled schemes only).
    pub fib_rows: u64,
}

/// Run-level metadata, first line of every NDJSON trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Shard count of the run.
    pub shards: u32,
    /// Sampling interval (ps).
    pub interval_ps: u64,
    /// Span sampling rate (1-in-N, 0 = off).
    pub span_every: u32,
    /// Span sampling seed.
    pub seed: u64,
    /// Simulated end time (ps).
    pub end_time: u64,
    /// Number of routing layers (width of the per-layer series).
    pub n_layers: u32,
}

/// The shard-local collector. Owned by one shard, written only from that
/// shard's event execution; flushed at interval boundaries from the
/// serial driver section. Accumulators are dense arrays indexed by the
/// shard's **local** port index / layer id — writes are O(1) and
/// allocation-free after construction (the touched-port list grows to at
/// most the owned-port count and is reused across intervals). Exported
/// rows translate local indices back to global port ids through
/// `owned_ports`.
#[derive(Debug)]
pub struct ShardTelemetry {
    cfg: TelemetryConfig,
    shard: u32,
    /// Local port index → global port id (ascending: shards receive
    /// their ports in global-id order).
    owned_ports: Vec<u32>,
    /// Dense per-local-port byte accumulator for the current interval.
    link_bytes: Vec<u64>,
    /// Local indices with nonzero bytes this interval (sparse flush).
    touched: Vec<u32>,
    /// Dense per-layer byte accumulator for the current interval.
    layer_bytes: Vec<u64>,
    /// Per-sampled-flow "first X already recorded" bitmask.
    span_seen: HashMap<u32, u8>,
    /// Completed samples.
    shard_rows: Vec<ShardSample>,
    link_rows: Vec<LinkSample>,
    layer_rows: Vec<LayerSample>,
    spans: Vec<SpanEvent>,
}

impl ShardTelemetry {
    /// A collector for `shard` with `n_layers` routing layers.
    /// `owned_ports` maps the shard's local port indices to global port
    /// ids, in local-index order.
    pub fn new(cfg: TelemetryConfig, shard: u32, owned_ports: Vec<u32>, n_layers: usize) -> Self {
        let n_local = owned_ports.len();
        ShardTelemetry {
            cfg,
            shard,
            owned_ports,
            link_bytes: vec![0; n_local],
            touched: Vec::new(),
            layer_bytes: vec![0; n_layers.max(1)],
            span_seen: HashMap::new(),
            shard_rows: Vec::new(),
            link_rows: Vec::new(),
            layer_rows: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// The config this collector was built from.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Records `bytes` serialized onto the shard's local port index
    /// `local` under `layer`.
    #[inline]
    pub fn on_wire(&mut self, local: u32, layer: u8, bytes: u32) {
        let slot = &mut self.link_bytes[local as usize];
        if *slot == 0 {
            self.touched.push(local);
        }
        *slot += bytes as u64;
        let l = (layer as usize).min(self.layer_bytes.len() - 1);
        self.layer_bytes[l] += bytes as u64;
    }

    /// True iff spans for `flow` are recorded (delegates to the config).
    #[inline]
    pub fn flow_sampled(&self, flow: u32) -> bool {
        self.cfg.flow_sampled(flow)
    }

    /// Appends a span event unconditionally (caller checks
    /// [`flow_sampled`](ShardTelemetry::flow_sampled)).
    #[inline]
    pub fn span(&mut self, flow: u32, t: u64, kind: SpanKind, a: u32, b: u32) {
        self.spans.push(SpanEvent {
            flow,
            t,
            kind,
            a,
            b,
        });
    }

    /// Appends a span event only the first time `kind` fires for `flow`
    /// (the "first trim / first retx / first data" events).
    #[inline]
    pub fn span_once(&mut self, flow: u32, t: u64, kind: SpanKind, a: u32, b: u32) {
        let bit = 1u8 << (kind as u8 & 7);
        let seen = self.span_seen.entry(flow).or_insert(0);
        if *seen & bit == 0 {
            *seen |= bit;
            self.spans.push(SpanEvent {
                flow,
                t,
                kind,
                a,
                b,
            });
        }
    }

    /// Closes interval `iv`: emits sparse link rows and per-layer rows
    /// from the accumulators, plus one occupancy sample. `depth_of`
    /// reports the current queue depth (packets) of a **local** port
    /// index.
    pub fn flush<F: Fn(u32) -> u32>(
        &mut self,
        iv: u64,
        depth_of: F,
        events: u64,
        live: u64,
        cap: u64,
    ) {
        // Canonical row order within the interval: ascending port id
        // (local index order == global order, `owned_ports` ascending).
        self.touched.sort_unstable();
        for &l in &self.touched {
            let bytes = std::mem::take(&mut self.link_bytes[l as usize]);
            let port = self.owned_ports[l as usize];
            self.link_rows.push(LinkSample { iv, port, bytes });
        }
        self.touched.clear();
        for (layer, slot) in self.layer_bytes.iter_mut().enumerate() {
            if *slot != 0 {
                self.layer_rows.push(LayerSample {
                    iv,
                    layer: layer as u32,
                    bytes: std::mem::take(slot),
                });
            }
        }
        let mut qhist = [0u64; QBINS];
        for l in 0..self.owned_ports.len() as u32 {
            qhist[qbin(depth_of(l))] += 1;
        }
        self.shard_rows.push(ShardSample {
            iv,
            shard: self.shard,
            events,
            live,
            cap,
            qhist,
        });
    }
}

/// A fully merged run trace: every probe series plus spans and the
/// repair timeline, in canonical order. Byte-identical NDJSON/CSV
/// exports across thread counts are the crate's contract (see the
/// module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Run-level metadata.
    pub meta: TraceMeta,
    /// Per-(interval, shard) occupancy samples, sorted `(iv, shard)`.
    pub shard_rows: Vec<ShardSample>,
    /// Per-(interval, port) wire bytes, sorted `(iv, port)`.
    pub link_rows: Vec<LinkSample>,
    /// Per-(interval, layer) wire bytes, sorted `(iv, layer)`.
    pub layer_rows: Vec<LayerSample>,
    /// Per-interval mailbox traffic, ascending interval.
    pub mailbox_rows: Vec<MailboxSample>,
    /// Span events, sorted `(flow, t, kind, a, b)` (stable across the
    /// canonical shard concatenation).
    pub spans: Vec<SpanEvent>,
    /// Repair passes in execution order.
    pub repairs: Vec<RepairSample>,
}

impl Trace {
    /// Merges per-shard collectors (in canonical shard order) with the
    /// driver-level mailbox series and the repair log.
    pub fn assemble(
        meta: TraceMeta,
        collectors: Vec<ShardTelemetry>,
        mailbox_rows: Vec<MailboxSample>,
        repairs: Vec<RepairSample>,
    ) -> Trace {
        let mut shard_rows = Vec::new();
        let mut link_rows = Vec::new();
        let mut layers: BTreeMap<(u64, u32), u64> = BTreeMap::new();
        let mut spans = Vec::new();
        for c in collectors {
            shard_rows.extend(c.shard_rows);
            link_rows.extend(c.link_rows);
            for r in c.layer_rows {
                *layers.entry((r.iv, r.layer)).or_insert(0) += r.bytes;
            }
            spans.extend(c.spans);
        }
        shard_rows.sort_unstable_by_key(|r: &ShardSample| (r.iv, r.shard));
        link_rows.sort_unstable_by_key(|r: &LinkSample| (r.iv, r.port));
        // Stable over the shard-order concatenation: ties within one
        // flow at one instant keep canonical shard order.
        spans.sort_by_key(|s: &SpanEvent| (s.flow, s.t, s.kind, s.a, s.b));
        let layer_rows = layers
            .into_iter()
            .map(|((iv, layer), bytes)| LayerSample { iv, layer, bytes })
            .collect();
        Trace {
            meta,
            shard_rows,
            link_rows,
            layer_rows,
            mailbox_rows,
            spans,
            repairs,
        }
    }

    /// Serializes the trace as NDJSON: one `{"type": …}` object per
    /// line, meta first, then shard / layer / link / mailbox / span /
    /// repair rows in canonical order. Integer-only — the byte-identity
    /// contract needs no float formatting rules.
    pub fn to_ndjson(&self) -> String {
        let m = &self.meta;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"shards\":{},\"interval_ps\":{},\"span_every\":{},\
             \"seed\":{},\"end_time\":{},\"n_layers\":{}}}",
            m.shards, m.interval_ps, m.span_every, m.seed, m.end_time, m.n_layers
        );
        for r in &self.shard_rows {
            let _ = write!(
                out,
                "{{\"type\":\"shard\",\"iv\":{},\"shard\":{},\"events\":{},\"live\":{},\
                 \"cap\":{},\"qhist\":[",
                r.iv, r.shard, r.events, r.live, r.cap
            );
            for (i, q) in r.qhist.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{q}");
            }
            out.push_str("]}\n");
        }
        for r in &self.layer_rows {
            let _ = writeln!(
                out,
                "{{\"type\":\"layer\",\"iv\":{},\"layer\":{},\"bytes\":{}}}",
                r.iv, r.layer, r.bytes
            );
        }
        for r in &self.link_rows {
            let _ = writeln!(
                out,
                "{{\"type\":\"link\",\"iv\":{},\"port\":{},\"bytes\":{}}}",
                r.iv, r.port, r.bytes
            );
        }
        for r in &self.mailbox_rows {
            let _ = writeln!(
                out,
                "{{\"type\":\"mailbox\",\"iv\":{},\"msgs\":{},\"bytes\":{}}}",
                r.iv, r.msgs, r.bytes
            );
        }
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"flow\":{},\"t\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                s.flow,
                s.t,
                s.kind.name(),
                s.a,
                s.b
            );
        }
        for r in &self.repairs {
            let _ = writeln!(
                out,
                "{{\"type\":\"repair\",\"at\":{},\"rows\":{},\"fib_rows\":{}}}",
                r.at, r.rows, r.fib_rows
            );
        }
        out
    }

    /// Serializes the per-interval aggregate time series as CSV:
    /// `interval,start_ps,wire_bytes,active_links,peak_link_bytes,`
    /// `live_packets,events,mailbox_msgs,mailbox_bytes` plus one
    /// `layer<i>_bytes` column per routing layer.
    pub fn to_timeseries_csv(&self) -> String {
        let nl = self.meta.n_layers.max(1) as usize;
        let mut out = String::from(
            "interval,start_ps,wire_bytes,active_links,peak_link_bytes,\
             live_packets,events,mailbox_msgs,mailbox_bytes",
        );
        for l in 0..nl {
            let _ = write!(out, ",layer{l}_bytes");
        }
        out.push('\n');
        // Interval index → aggregate row, in ascending interval order.
        #[derive(Default, Clone)]
        struct Row {
            wire: u64,
            links: u64,
            peak: u64,
            live: u64,
            events: u64,
            mb_msgs: u64,
            mb_bytes: u64,
            layers: Vec<u64>,
        }
        let mut rows: BTreeMap<u64, Row> = BTreeMap::new();
        fn row(rows: &mut BTreeMap<u64, Row>, iv: u64, nl: usize) -> &mut Row {
            rows.entry(iv).or_insert_with(|| Row {
                layers: vec![0; nl],
                ..Row::default()
            })
        }
        for r in &self.link_rows {
            let e = row(&mut rows, r.iv, nl);
            e.wire += r.bytes;
            e.links += 1;
            e.peak = e.peak.max(r.bytes);
        }
        for r in &self.layer_rows {
            let e = row(&mut rows, r.iv, nl);
            if (r.layer as usize) < nl {
                e.layers[r.layer as usize] += r.bytes;
            }
        }
        for r in &self.shard_rows {
            let e = row(&mut rows, r.iv, nl);
            e.live += r.live;
            e.events += r.events;
        }
        for r in &self.mailbox_rows {
            let e = row(&mut rows, r.iv, nl);
            e.mb_msgs += r.msgs;
            e.mb_bytes += r.bytes;
        }
        for (iv, r) in rows {
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                iv,
                iv * self.meta.interval_ps,
                r.wire,
                r.links,
                r.peak,
                r.live,
                r.events,
                r.mb_msgs,
                r.mb_bytes
            );
            for l in &r.layers {
                let _ = write!(out, ",{l}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a trace previously written by
    /// [`to_ndjson`](Trace::to_ndjson). The parser accepts exactly the
    /// layout this crate emits (no serde — the workspace builds
    /// offline); unknown record types are rejected.
    pub fn parse_ndjson(text: &str) -> Result<Trace, String> {
        let mut tr = Trace::default();
        let mut saw_meta = false;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}", ln + 1);
            let ty = sfield(line, "type").ok_or_else(|| err("missing type"))?;
            match ty.as_str() {
                "meta" => {
                    tr.meta = TraceMeta {
                        shards: ufield(line, "shards").ok_or_else(|| err("meta.shards"))? as u32,
                        interval_ps: ufield(line, "interval_ps")
                            .ok_or_else(|| err("meta.interval_ps"))?,
                        span_every: ufield(line, "span_every")
                            .ok_or_else(|| err("meta.span_every"))?
                            as u32,
                        seed: ufield(line, "seed").ok_or_else(|| err("meta.seed"))?,
                        end_time: ufield(line, "end_time").ok_or_else(|| err("meta.end_time"))?,
                        n_layers: ufield(line, "n_layers").ok_or_else(|| err("meta.n_layers"))?
                            as u32,
                    };
                    saw_meta = true;
                }
                "shard" => {
                    let qs = alist(line, "qhist").ok_or_else(|| err("shard.qhist"))?;
                    if qs.len() != QBINS {
                        return Err(err("shard.qhist width"));
                    }
                    let mut qhist = [0u64; QBINS];
                    qhist.copy_from_slice(&qs);
                    tr.shard_rows.push(ShardSample {
                        iv: ufield(line, "iv").ok_or_else(|| err("shard.iv"))?,
                        shard: ufield(line, "shard").ok_or_else(|| err("shard.shard"))? as u32,
                        events: ufield(line, "events").ok_or_else(|| err("shard.events"))?,
                        live: ufield(line, "live").ok_or_else(|| err("shard.live"))?,
                        cap: ufield(line, "cap").ok_or_else(|| err("shard.cap"))?,
                        qhist,
                    });
                }
                "layer" => tr.layer_rows.push(LayerSample {
                    iv: ufield(line, "iv").ok_or_else(|| err("layer.iv"))?,
                    layer: ufield(line, "layer").ok_or_else(|| err("layer.layer"))? as u32,
                    bytes: ufield(line, "bytes").ok_or_else(|| err("layer.bytes"))?,
                }),
                "link" => tr.link_rows.push(LinkSample {
                    iv: ufield(line, "iv").ok_or_else(|| err("link.iv"))?,
                    port: ufield(line, "port").ok_or_else(|| err("link.port"))? as u32,
                    bytes: ufield(line, "bytes").ok_or_else(|| err("link.bytes"))?,
                }),
                "mailbox" => tr.mailbox_rows.push(MailboxSample {
                    iv: ufield(line, "iv").ok_or_else(|| err("mailbox.iv"))?,
                    msgs: ufield(line, "msgs").ok_or_else(|| err("mailbox.msgs"))?,
                    bytes: ufield(line, "bytes").ok_or_else(|| err("mailbox.bytes"))?,
                }),
                "span" => {
                    let kind = sfield(line, "kind")
                        .and_then(|k| SpanKind::from_name(&k))
                        .ok_or_else(|| err("span.kind"))?;
                    tr.spans.push(SpanEvent {
                        flow: ufield(line, "flow").ok_or_else(|| err("span.flow"))? as u32,
                        t: ufield(line, "t").ok_or_else(|| err("span.t"))?,
                        kind,
                        a: ufield(line, "a").ok_or_else(|| err("span.a"))? as u32,
                        b: ufield(line, "b").ok_or_else(|| err("span.b"))? as u32,
                    });
                }
                "repair" => tr.repairs.push(RepairSample {
                    at: ufield(line, "at").ok_or_else(|| err("repair.at"))?,
                    rows: ufield(line, "rows").ok_or_else(|| err("repair.rows"))?,
                    fib_rows: ufield(line, "fib_rows").ok_or_else(|| err("repair.fib_rows"))?,
                }),
                other => return Err(err(&format!("unknown record type {other:?}"))),
            }
        }
        if !saw_meta {
            return Err("no meta record".into());
        }
        Ok(tr)
    }

    /// Total wire bytes across all links and intervals.
    pub fn total_wire_bytes(&self) -> u64 {
        self.link_rows.iter().map(|r| r.bytes).sum()
    }

    /// Peak per-layer utilization across all intervals, in Gb/s
    /// (`bytes · 8 / interval`). Deterministic: one division of two
    /// canonical integers.
    pub fn peak_layer_gbps(&self) -> f64 {
        let peak = self.layer_rows.iter().map(|r| r.bytes).max().unwrap_or(0);
        if self.meta.interval_ps == 0 {
            return 0.0;
        }
        // bytes·8 bits / (interval_ps·1e-12 s) / 1e9 = bytes·8·1e3 / interval_ps.
        peak as f64 * 8_000.0 / self.meta.interval_ps as f64
    }

    /// Time from the last repair pass to network quiescence (the end of
    /// the last interval that carried wire bytes), in picoseconds; 0
    /// when the run had no repairs or no traffic after the last one.
    pub fn time_to_quiescence_ps(&self) -> u64 {
        let Some(last_repair) = self.repairs.iter().map(|r| r.at).max() else {
            return 0;
        };
        let last_active = self
            .link_rows
            .iter()
            .map(|r| (r.iv + 1) * self.meta.interval_ps)
            .max()
            .unwrap_or(0);
        last_active.saturating_sub(last_repair)
    }

    /// The `n` ports carrying the most total wire bytes, descending
    /// (ties by ascending port id).
    pub fn top_links(&self, n: usize) -> Vec<(u32, u64)> {
        let mut totals: BTreeMap<u32, u64> = BTreeMap::new();
        for r in &self.link_rows {
            *totals.entry(r.port).or_insert(0) += r.bytes;
        }
        let mut v: Vec<(u32, u64)> = totals.into_iter().collect();
        v.sort_by_key(|&(port, bytes)| (std::cmp::Reverse(bytes), port));
        v.truncate(n);
        v
    }
}

/// Extracts an unsigned integer field `"key":123` from one NDJSON line.
fn ufield(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field `"key":"value"` from one NDJSON line.
fn sfield(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts an integer-array field `"key":[1,2,3]` from one NDJSON line.
fn alist(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let body = &rest[..rest.find(']')?];
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|x| x.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let cfg = TelemetryConfig {
            enabled: true,
            interval_ps: 1_000,
            span_every: 1,
            seed: 7,
        };
        let mut a = ShardTelemetry::new(cfg, 0, vec![0, 1], 3);
        let mut b = ShardTelemetry::new(cfg, 1, vec![2, 3], 3);
        a.on_wire(0, 0, 100);
        a.on_wire(0, 0, 50);
        a.on_wire(1, 2, 10);
        // Local index 1 on shard 1 is global port 3.
        b.on_wire(1, 1, 999);
        a.span(5, 10, SpanKind::Inject, 0, 0);
        a.span_once(5, 12, SpanKind::FirstData, 0, 0);
        a.span_once(5, 13, SpanKind::FirstData, 0, 0); // suppressed
        b.span(5, 11, SpanKind::FirstTrim, 0, 0);
        a.flush(0, |_| 3, 7, 2, 16);
        b.flush(0, |_| 0, 1, 0, 16);
        Trace::assemble(
            TraceMeta {
                shards: 2,
                interval_ps: 1_000,
                span_every: 1,
                seed: 7,
                end_time: 2_000,
                n_layers: 3,
            },
            vec![a, b],
            vec![MailboxSample {
                iv: 0,
                msgs: 4,
                bytes: 256,
            }],
            vec![RepairSample {
                at: 500,
                rows: 3,
                fib_rows: 0,
            }],
        )
    }

    #[test]
    fn assemble_merges_in_canonical_order() {
        let tr = sample_trace();
        assert_eq!(tr.link_rows.len(), 3);
        assert_eq!(tr.link_rows[0].port, 0);
        assert_eq!(tr.link_rows[0].bytes, 150);
        assert_eq!(tr.layer_rows.len(), 3);
        // span_once suppressed the duplicate; sort is (flow, t, kind).
        assert_eq!(tr.spans.len(), 3);
        assert_eq!(tr.spans[0].kind, SpanKind::Inject);
        assert_eq!(tr.spans[1].kind, SpanKind::FirstTrim);
        assert_eq!(tr.spans[2].kind, SpanKind::FirstData);
    }

    #[test]
    fn ndjson_round_trips() {
        let tr = sample_trace();
        let text = tr.to_ndjson();
        let back = Trace::parse_ndjson(&text).expect("parse");
        assert_eq!(tr, back);
        // Serialization is deterministic byte-for-byte.
        assert_eq!(text, back.to_ndjson());
    }

    #[test]
    fn csv_has_one_row_per_interval_plus_header() {
        let tr = sample_trace();
        let csv = tr.to_timeseries_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("interval,start_ps,wire_bytes"));
        assert!(lines[0].ends_with("layer2_bytes"));
        // wire total = 150 + 10 + 999.
        assert!(lines[1].starts_with("0,0,1159,3,999,"));
    }

    #[test]
    fn flow_sampling_is_a_pure_function() {
        let cfg = TelemetryConfig {
            enabled: true,
            interval_ps: 1,
            span_every: 8,
            seed: 42,
        };
        let picked: Vec<u32> = (0..10_000).filter(|&f| cfg.flow_sampled(f)).collect();
        let again: Vec<u32> = (0..10_000).filter(|&f| cfg.flow_sampled(f)).collect();
        assert_eq!(picked, again);
        // Roughly 1-in-8 (hash quality, not exactness).
        assert!(
            picked.len() > 700 && picked.len() < 1_900,
            "{}",
            picked.len()
        );
        // span_every = 0 disables, 1 samples everything.
        let off = TelemetryConfig {
            span_every: 0,
            ..cfg
        };
        assert!(!(0..100).any(|f| off.flow_sampled(f)));
        let all = TelemetryConfig {
            span_every: 1,
            ..cfg
        };
        assert!((0..100).all(|f| all.flow_sampled(f)));
    }

    #[test]
    fn summaries() {
        let tr = sample_trace();
        assert_eq!(tr.total_wire_bytes(), 1159);
        assert_eq!(tr.top_links(2), vec![(3, 999), (0, 150)]);
        // Peak layer bytes = 999 in a 1000 ps interval.
        assert!((tr.peak_layer_gbps() - 999.0 * 8.0).abs() < 1e-9);
        // Last active interval ends at 1000 ps, last repair at 500 ps.
        assert_eq!(tr.time_to_quiescence_ps(), 500);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse_ndjson("{\"type\":\"nope\"}").is_err());
        assert!(Trace::parse_ndjson("").is_err());
    }

    #[test]
    fn qbin_edges() {
        assert_eq!(qbin(0), 0);
        assert_eq!(qbin(1), 1);
        assert_eq!(qbin(2), 2);
        assert_eq!(qbin(4), 3);
        assert_eq!(qbin(5), 4);
        assert_eq!(qbin(33), 7);
    }
}
