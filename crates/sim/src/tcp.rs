//! TCP-family endpoint logic (§VII-C, §VIII-A): Reno slow start /
//! congestion avoidance / fast retransmit, ECN-Reno (RFC 3168 echo), and
//! DCTCP's fractional window reduction. Receivers ACK every segment
//! (low-latency datacenter stacks disable delayed ACKs); ACKs carry the
//! data packet's CE mark as ECE. Window reductions are flowlet boundaries
//! for FatPaths layer re-selection (§VIII-A1).
//!
//! Sharding note: data arrivals run on the receiver's shard against the
//! [`RxFlow`](crate::shard::RxFlow), ACKs on the sender's shard against
//! the [`TxFlow`](crate::shard::TxFlow); the cumulative-ACK protocol
//! already carries everything the sender needs, so no state is read
//! across the shard boundary. Congestion state lives in the parallel
//! [`TcpState`](crate::shard::TcpState) array (`Shard::tcp`, same local
//! index as `Shard::tx`), allocated only for TCP transports.

use crate::config::{AdaptiveMode, LoadBalancing, SimConfig, TcpVariant, Transport};
use crate::engine::{EvKind, PktKind, TimePs};
use crate::shard::{Ctx, Shard};
use fatpaths_core::fwd::fnv1a;
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_telemetry::SpanKind;

/// DCTCP's EWMA gain g = 1/16.
const DCTCP_G: f64 = 1.0 / 16.0;
/// Initial RTO before the first RTT sample.
const INITIAL_RTO: TimePs = 1_000_000_000; // 1 ms

fn tcp_params(cfg: &SimConfig) -> (TcpVariant, TimePs) {
    match cfg.transport {
        Transport::Tcp {
            variant, min_rto, ..
        } => (variant, min_rto),
        _ => unreachable!("tcp handler in non-tcp mode"),
    }
}

impl Shard {
    pub(crate) fn tcp_start<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        self.tcp_try_send(cx, flow);
        self.tcp_arm_rto(cx, flow);
    }

    /// Sends while the window allows: retransmissions first, then new data.
    fn tcp_try_send<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let ti = cx.tx_idx(flow);
        let num_pkts = cx.meta(flow).num_pkts;
        loop {
            let send = {
                let now = self.now;
                let (txs, tcps) = (&mut self.tx, &mut self.tcp);
                let f = &mut txs[ti];
                let c = &mut tcps[ti];
                if f.cum_ack >= num_pkts || f.aborted {
                    return;
                }
                let window = c.cwnd.floor().max(1.0) as u32;
                if c.inflight >= window {
                    return;
                }
                if let Some(seq) = crate::shard::pop_front(&mut f.retxq) {
                    c.inflight += 1;
                    (seq, true)
                } else if f.next_new < num_pkts {
                    let seq = f.next_new;
                    f.next_new += 1;
                    c.inflight += 1;
                    if c.timed.is_none() {
                        c.timed = Some((seq, now));
                    }
                    if c.window_end <= seq && c.window_end == 0 {
                        c.window_end = c.cwnd as u32 + 1;
                    }
                    (seq, false)
                } else {
                    return;
                }
            };
            self.send_data(cx, flow, send.0, send.1);
        }
    }

    pub(crate) fn tcp_on_arrive<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        ep: u32,
        pid: u32,
    ) {
        let pkt = *self.packets.get(pid);
        self.packets.release(pid);
        let flow = pkt.flow();
        match pkt.kind() {
            PktKind::Data => {
                debug_assert_eq!(ep, pkt.dst_ep);
                let f = &mut self.rx[cx.rx_idx(flow)];
                f.rx_last_layer = pkt.layer;
                f.last_nonce = pkt.nonce;
                f.mark_received(pkt.seq);
                let cum = f.rcv_next;
                let done = f.rcv_count == cx.meta(flow).num_pkts;
                // ACK every segment; echo this segment's CE mark.
                self.send_control(cx, flow, PktKind::Ack, cum, pkt.ecn_ce(), 0xff);
                if done {
                    self.complete_flow(cx, flow);
                }
            }
            PktKind::Ack => {
                if self.tx[cx.tx_idx(flow)].aborted {
                    return;
                }
                self.reset_dead_rtos(cx, flow);
                self.tcp_on_ack(cx, flow, pkt.seq, pkt.ecn_echo())
            }
            _ => {}
        }
    }

    fn tcp_on_ack<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        cum: u32,
        ece: bool,
    ) {
        let (variant, _) = tcp_params(&cx.cfg);
        let ti = cx.tx_idx(flow);
        let num_pkts = cx.meta(flow).num_pkts;
        let ca_scale = cx.meta(flow).ca_scale;
        let mut became_boundary = false; // cwnd reduction = flowlet boundary
        {
            let now = self.now;
            let (txs, tcps) = (&mut self.tx, &mut self.tcp);
            let f = &mut txs[ti];
            let c = &mut tcps[ti];
            if f.cum_ack >= num_pkts {
                return;
            }
            // DCTCP mark bookkeeping counts every ACK.
            c.ce_total += 1;
            if ece {
                c.ce_marked += 1;
            }
            if cum > f.cum_ack {
                let delta = cum - f.cum_ack;
                f.cum_ack = cum;
                c.inflight = c.inflight.saturating_sub(delta);
                c.dup_acks = 0;
                c.backoff = 0;
                // RTT sample (Karn: only when the timed packet is covered
                // and was not retransmitted — retx clears `timed`).
                if let Some((seq, t)) = c.timed {
                    if cum > seq {
                        let rtt = (now - t) as f64;
                        if c.srtt == 0.0 {
                            c.srtt = rtt;
                            c.rttvar = rtt / 2.0;
                        } else {
                            let err = rtt - c.srtt;
                            c.srtt += 0.125 * err;
                            c.rttvar += 0.25 * (err.abs() - c.rttvar);
                        }
                        c.timed = None;
                    }
                }
                if c.in_recovery && cum >= c.recovery_until {
                    c.in_recovery = false;
                    c.cwnd = c.ssthresh.max(2.0);
                }
                if !c.in_recovery {
                    if c.cwnd < c.ssthresh {
                        c.cwnd += delta as f64; // slow start
                    } else {
                        // Congestion avoidance; ca_scale couples MPTCP
                        // subflows (1/k aggressiveness each).
                        c.cwnd += ca_scale * delta as f64 / c.cwnd;
                    }
                }
                // Window rollover: apply per-window ECN reactions.
                if cum >= c.window_end {
                    match variant {
                        TcpVariant::Dctcp => {
                            let frac = if c.ce_total > 0 {
                                c.ce_marked as f64 / c.ce_total as f64
                            } else {
                                0.0
                            };
                            c.alpha = (1.0 - DCTCP_G) * c.alpha + DCTCP_G * frac;
                            if c.ce_marked > 0 {
                                c.cwnd = (c.cwnd * (1.0 - c.alpha / 2.0)).max(2.0);
                                c.ssthresh = c.cwnd;
                                became_boundary = true;
                            }
                        }
                        TcpVariant::EcnReno => {
                            c.cwr = false;
                        }
                        TcpVariant::Reno => {}
                    }
                    c.ce_marked = 0;
                    c.ce_total = 0;
                    c.window_end = cum + (c.cwnd as u32).max(1);
                }
                // ECN-Reno reacts at most once per window, immediately.
                if variant == TcpVariant::EcnReno && ece && !c.cwr {
                    c.ssthresh = (c.cwnd / 2.0).max(2.0);
                    c.cwnd = c.ssthresh;
                    c.cwr = true;
                    became_boundary = true;
                }
            } else {
                // Duplicate ACK.
                c.dup_acks += 1;
                if c.dup_acks == 3 && !c.in_recovery {
                    // Fast retransmit.
                    f.retxq.insert(0, f.cum_ack);
                    f.retx_count += 1;
                    c.timed = None;
                    c.ssthresh = (c.cwnd / 2.0).max(2.0);
                    c.cwnd = c.ssthresh + 3.0;
                    c.in_recovery = true;
                    c.recovery_until = f.next_new;
                    c.inflight = c.inflight.saturating_sub(1);
                    became_boundary = true;
                } else if c.dup_acks > 3 && c.in_recovery {
                    c.cwnd += 1.0; // window inflation
                }
            }
        }
        // Congestion-window reductions mark flowlet boundaries (§VIII-A1).
        // The switch itself is deferred until the pipe is nearly empty
        // (≤ 3 packets can produce at most 2 dup-ACKs — under the fast-
        // retransmit threshold), so path changes never masquerade as loss.
        if became_boundary {
            self.tcp[ti].want_switch = true;
        }
        let (want, inflight) = {
            let c = &self.tcp[ti];
            (c.want_switch, c.inflight)
        };
        if want && inflight <= 3 {
            self.tcp[ti].want_switch = false;
            self.tcp_flowlet_boundary(cx, flow);
        }
        self.tcp_arm_rto(cx, flow);
        self.tcp_try_send(cx, flow);
    }

    /// Immediate path re-pick, safe only when the pipe is empty (RTO):
    /// FatPaths re-picks the layer, LetFlow the nonce.
    fn tcp_flowlet_boundary<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let n_layers = cx.n_layers as u64;
        let lb = cx.cfg.lb;
        if cx.meta(flow).pinned_layer.is_some() {
            return; // MPTCP subflows own their layer
        }
        let ti = cx.tx_idx(flow);
        self.tx[ti].flowlet_ctr += 1;
        let old_layer = self.tx[ti].layer;
        if !(cx.cfg.adaptive == AdaptiveMode::QueueDepth && self.adaptive_repick(cx, flow)) {
            let f = &mut self.tx[ti];
            match lb {
                LoadBalancing::FatPathsLayers => {
                    f.layer = (fnv1a(((flow as u64) << 22) ^ 0xACED ^ f.flowlet_ctr as u64)
                        % n_layers) as u8;
                }
                LoadBalancing::LetFlow => {
                    f.nonce = fnv1a(((flow as u64) << 23) ^ 0xACED ^ f.flowlet_ctr as u64);
                }
                _ => {}
            }
        }
        let new_layer = self.tx[ti].layer;
        if new_layer != old_layer {
            self.span(
                flow,
                SpanKind::LayerSwitch,
                old_layer as u32,
                new_layer as u32,
            );
        }
    }

    fn tcp_rto_value<R: RoutingScheme + ?Sized>(&self, cx: &Ctx<R>, flow: u32) -> TimePs {
        let (_, min_rto) = tcp_params(&cx.cfg);
        let c = &self.tcp[cx.tx_idx(flow)];
        let base = if c.srtt == 0.0 {
            INITIAL_RTO
        } else {
            (c.srtt + 4.0 * c.rttvar) as TimePs
        };
        (base.max(min_rto)) << c.backoff.min(6)
    }

    fn tcp_arm_rto<R: RoutingScheme + ?Sized>(&mut self, cx: &Ctx<R>, flow: u32) {
        let rto = self.tcp_rto_value(cx, flow);
        let ti = cx.tx_idx(flow);
        if self.tx[ti].cum_ack >= cx.meta(flow).num_pkts || self.tx[ti].aborted {
            return;
        }
        self.tx[ti].rto_gen += 1;
        let gen = self.tx[ti].rto_gen;
        self.events
            .push(self.now + rto, EvKind::RtoTimer { flow, gen });
    }

    pub(crate) fn tcp_on_rto<R: RoutingScheme + ?Sized>(
        &mut self,
        cx: &Ctx<R>,
        flow: u32,
        gen: u32,
    ) {
        let ti = cx.tx_idx(flow);
        {
            let (txs, tcps) = (&mut self.tx, &mut self.tcp);
            let f = &mut txs[ti];
            let c = &mut tcps[ti];
            if gen != f.rto_gen || !f.started || f.aborted || f.cum_ack >= cx.meta(flow).num_pkts {
                return;
            }
            // Timeout: collapse to slow start and go back to cum_ack.
            c.ssthresh = (c.cwnd / 2.0).max(2.0);
            c.cwnd = 1.0;
            c.inflight = 0;
            c.dup_acks = 0;
            c.in_recovery = false;
            f.retxq.clear();
            f.retxq.push(f.cum_ack);
            f.retx_count += 1;
            c.timed = None;
            c.backoff += 1;
        }
        self.span(flow, SpanKind::Rto, 0, 0);
        self.tcp_flowlet_boundary(cx, flow);
        self.tcp_arm_rto(cx, flow);
        self.tcp_try_send(cx, flow);
    }
}
