//! Maximum concurrent flow via the Garg–Könemann multiplicative-weights
//! algorithm (with Fleischer's phase accounting), specialized to
//! commodities with explicit candidate path sets.
//!
//! This replaces the paper's TopoBench LP (§VI-A3): under layered routing,
//! each commodity owns at most `n` fixed paths (one per layer, from the
//! destination-based forwarding functions σᵢ), so the layered MCF — with
//! its "no leaking between layers" constraint (Eq. 7) satisfied by
//! construction — reduces to a path-based max concurrent flow:
//!
//! ```text
//! maximize T  s.t.  Σᵢ Σ_{P∋e} f_i(P) ≤ c(e)  ∀e,   Σ_P f_i(P) = T·d_i ∀i
//! ```
//!
//! The algorithm returns a `(1−O(ε))`-approximation; DESIGN.md §2.2 argues
//! why that preserves every comparison in Fig. 9.
//!
//! # Parallelism
//!
//! GK's commodity updates within a phase are *data-dependent* — every
//! routed increment reprices the edges the next commodity sees — so the
//! phase loop is inherently sequential and stays that way (running
//! commodities concurrently would compute a different, possibly
//! infeasible, flow). What does parallelize without changing a single
//! bit of output is the *pricing* step: evaluating the length of every
//! candidate path under the current edge lengths. For the small layered
//! path sets of Fig. 9 (≤ tens of paths) the fan-out costs more than it
//! saves, so pricing only goes parallel past [`PAR_PATHS_THRESHOLD`]
//! candidates; commodity *assembly* parallelism lives in
//! [`crate::mat::mat`].

use rayon::prelude::*;

/// Candidate-set size beyond which path pricing fans out to the pool.
pub const PAR_PATHS_THRESHOLD: usize = 64;

/// Index of the cheapest path under `length`. The common small-set case
/// is an allocation-free scan (this sits in GK's innermost loop); large
/// sets materialize costs in path order and reduce sequentially, so the
/// chosen index (ties included) is identical for any thread count.
fn cheapest_path(paths: &[Vec<u32>], length: &[f64]) -> usize {
    let price = |p: &Vec<u32>| p.iter().map(|&e| length[e as usize]).sum::<f64>();
    if paths.len() < PAR_PATHS_THRESHOLD {
        return paths
            .iter()
            .enumerate()
            .map(|(i, p)| (i, price(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
    }
    let costs: Vec<f64> = paths.par_iter().map(price).collect();
    costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

/// One commodity: a demand and its candidate paths (each a list of edge
/// ids over the base graph).
#[derive(Clone, Debug)]
pub struct Commodity {
    /// Requested flow `T(s,t)`.
    pub demand: f64,
    /// Candidate paths as edge-id lists. Empty paths are invalid; an empty
    /// *set* means the commodity cannot be routed at all (T = 0).
    pub paths: Vec<Vec<u32>>,
}

/// Result of the max-concurrent-flow computation.
#[derive(Clone, Debug)]
pub struct McfResult {
    /// The throughput scaler `T` (≥ 0): every commodity can ship `T·d_i`
    /// concurrently.
    pub throughput: f64,
    /// Per-edge utilization of the final (scaled, feasible) flow.
    pub edge_utilization: Vec<f64>,
}

/// Solves max concurrent flow over `m` edges with the given capacities.
///
/// `eps` trades accuracy for speed (the paper-comparison harness uses
/// 0.05–0.1). If any commodity has no candidate path, the result is 0.
pub fn max_concurrent_flow(capacities: &[f64], commodities: &[Commodity], eps: f64) -> McfResult {
    let m = capacities.len();
    assert!(eps > 0.0 && eps < 0.5);
    if commodities.is_empty() {
        return McfResult {
            throughput: f64::INFINITY,
            edge_utilization: vec![0.0; m],
        };
    }
    if commodities.iter().any(|c| c.paths.is_empty()) {
        return McfResult {
            throughput: 0.0,
            edge_utilization: vec![0.0; m],
        };
    }
    for c in commodities {
        debug_assert!(c.demand > 0.0);
        debug_assert!(c.paths.iter().all(|p| !p.is_empty()));
    }
    // δ = (m / (1-ε))^(-1/ε); lengths start at δ / c(e).
    let delta = ((m as f64) / (1.0 - eps)).powf(-1.0 / eps);
    let mut length: Vec<f64> = capacities.iter().map(|&c| delta / c).collect();
    let mut flow = vec![0.0f64; m];
    // D(l) = Σ l(e)·c(e); maintained incrementally.
    let mut d_l: f64 = length.iter().zip(capacities).map(|(&l, &c)| l * c).sum();
    let mut phases: u64 = 0;
    'outer: loop {
        for com in commodities {
            let mut remaining = com.demand;
            while remaining > 1e-15 {
                if d_l >= 1.0 {
                    break 'outer;
                }
                // Cheapest candidate path under current lengths.
                let pi = cheapest_path(&com.paths, &length);
                let path = &com.paths[pi];
                let bottleneck = path
                    .iter()
                    .map(|&e| capacities[e as usize])
                    .fold(f64::INFINITY, f64::min);
                let f = remaining.min(bottleneck);
                for &e in path {
                    let e = e as usize;
                    flow[e] += f;
                    let grow = 1.0 + eps * f / capacities[e];
                    d_l += length[e] * (grow - 1.0) * capacities[e];
                    length[e] *= grow;
                }
                remaining -= f;
            }
        }
        phases += 1;
    }
    // Scale: the accumulated flow exceeds capacities by at most
    // log_{1+ε}((1+ε)/δ) — final lengths satisfy l(e) < (1+ε)/c(e) and
    // l(e) ≥ (δ/c(e))·(1+ε)^{f(e)/c(e)}. The completed phases, divided by
    // the same factor, give the throughput.
    let scale = ((1.0 + eps) / delta).ln() / (1.0 + eps).ln();
    let throughput = phases as f64 / scale;
    let edge_utilization = flow
        .iter()
        .zip(capacities)
        .map(|(&f, &c)| (f / scale) / c)
        .collect();
    McfResult {
        throughput,
        edge_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 0.05;

    fn close(x: f64, expect: f64) -> bool {
        (x - expect).abs() <= 0.12 * expect.max(0.1)
    }

    #[test]
    fn single_edge_unit_demand() {
        let r = max_concurrent_flow(
            &[1.0],
            &[Commodity {
                demand: 1.0,
                paths: vec![vec![0]],
            }],
            EPS,
        );
        assert!(close(r.throughput, 1.0), "T={}", r.throughput);
        assert!(r.edge_utilization[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn two_commodities_share_edge() {
        let coms = vec![
            Commodity {
                demand: 1.0,
                paths: vec![vec![0]],
            },
            Commodity {
                demand: 1.0,
                paths: vec![vec![0]],
            },
        ];
        let r = max_concurrent_flow(&[1.0], &coms, EPS);
        assert!(close(r.throughput, 0.5), "T={}", r.throughput);
    }

    #[test]
    fn parallel_paths_double_throughput() {
        // One commodity, demand 2, two disjoint unit paths → T = 1.
        let coms = vec![Commodity {
            demand: 2.0,
            paths: vec![vec![0], vec![1]],
        }];
        let r = max_concurrent_flow(&[1.0, 1.0], &coms, EPS);
        assert!(close(r.throughput, 1.0), "T={}", r.throughput);
    }

    #[test]
    fn unequal_path_lengths_prefer_short() {
        // Paths of length 1 and 3 over unit edges; demand 1.5:
        // optimal T = (1 + 1)/1.5 = 4/3 (short path 1 unit, long path 1).
        let coms = vec![Commodity {
            demand: 1.5,
            paths: vec![vec![0], vec![1, 2, 3]],
        }];
        let r = max_concurrent_flow(&[1.0; 4], &coms, EPS);
        assert!(close(r.throughput, 4.0 / 3.0), "T={}", r.throughput);
    }

    #[test]
    fn no_paths_means_zero() {
        let coms = vec![Commodity {
            demand: 1.0,
            paths: vec![],
        }];
        let r = max_concurrent_flow(&[1.0], &coms, EPS);
        assert_eq!(r.throughput, 0.0);
    }

    #[test]
    fn capacity_scales_result() {
        let coms = vec![Commodity {
            demand: 1.0,
            paths: vec![vec![0]],
        }];
        let r1 = max_concurrent_flow(&[1.0], &coms, EPS);
        let r4 = max_concurrent_flow(&[4.0], &coms, EPS);
        assert!(close(r4.throughput / r1.throughput, 4.0));
    }

    #[test]
    fn bottleneck_edge_governs() {
        // Two-hop path with capacities 1 and 0.25 → T = 0.25.
        let coms = vec![Commodity {
            demand: 1.0,
            paths: vec![vec![0, 1]],
        }];
        let r = max_concurrent_flow(&[1.0, 0.25], &coms, EPS);
        assert!(close(r.throughput, 0.25), "T={}", r.throughput);
    }

    #[test]
    fn utilization_is_feasible() {
        let coms = vec![
            Commodity {
                demand: 1.0,
                paths: vec![vec![0, 1], vec![2]],
            },
            Commodity {
                demand: 2.0,
                paths: vec![vec![1], vec![2, 0]],
            },
        ];
        let r = max_concurrent_flow(&[1.0, 2.0, 1.5], &coms, EPS);
        for (i, &u) in r.edge_utilization.iter().enumerate() {
            assert!(u <= 1.0 + 0.05, "edge {i} over capacity: {u}");
        }
    }
}
