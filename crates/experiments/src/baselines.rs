//! Unified baseline comparison (Table I § VII made executable): every
//! routing scheme the paper discusses — FatPaths layered routing, ECMP,
//! packet spraying, LetFlow, SPAIN, PAST, k-shortest-paths, and Valiant —
//! packet-simulated under identical transport and workload on multiple
//! topologies. This is the experiment the `RoutingScheme` trait exists
//! for: before it, SPAIN/PAST/KSP/VLB could only be scored by static
//! theory figures (Fig. 9), never run through the event loop.

use crate::common::{f, label, pattern_workload, post_warmup, write_summary, Csv};
use fatpaths_core::past::PastVariant;
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::TopoKind;
use fatpaths_sim::metrics::{mean, percentile};
use fatpaths_sim::{LoadBalancing, Scenario, SchemeSpec};
use fatpaths_workloads::patterns::adversarial_for;
use std::io;

/// The full comparison matrix: (CSV label, spec, LB override).
fn matrix() -> Vec<(&'static str, SchemeSpec, Option<LoadBalancing>)> {
    vec![
        (
            "fatpaths",
            SchemeSpec::LayeredRandom {
                n_layers: 9,
                rho: 0.6,
            },
            None,
        ),
        ("ecmp", SchemeSpec::Minimal, Some(LoadBalancing::EcmpFlow)),
        (
            "spray",
            SchemeSpec::Minimal,
            Some(LoadBalancing::PacketSpray),
        ),
        ("letflow", SchemeSpec::Minimal, Some(LoadBalancing::LetFlow)),
        ("spain", SchemeSpec::Spain { k_paths: 3 }, None),
        (
            "past",
            SchemeSpec::Past {
                variant: PastVariant::Bfs,
            },
            None,
        ),
        ("ksp", SchemeSpec::Ksp { k: 4 }, None),
        ("valiant", SchemeSpec::Valiant { n_layers: 9 }, None),
    ]
}

/// Runs the matrix on the small-class SF, DF, and FT3 under the skewed
/// adversarial workload (the regime where scheme differences are
/// starkest, Fig. 11) with the NDP transport.
pub fn baselines(quick: bool) -> io::Result<()> {
    let window = if quick { 0.003 } else { 0.006 };
    let kinds = [TopoKind::SlimFly, TopoKind::Dragonfly, TopoKind::FatTree];
    let mut csv = Csv::new(
        "baselines_matrix",
        &[
            "topology",
            "scheme",
            "layers",
            "completion_rate",
            "fct_mean_ms",
            "fct_p50_ms",
            "fct_p99_ms",
            "trims",
            "retx_total",
        ],
    )?;
    let mut summary =
        String::from("Baselines — every scheme packet-simulated, identical transport/workload\n");
    for kind in kinds {
        let topo = build(kind, SizeClass::Small, 1);
        let p = topo.concentration.iter().copied().max().unwrap();
        let pattern = adversarial_for(p, topo.num_routers() as u32);
        let flows = pattern_workload(&topo, &pattern, 150.0, window, false, 23);
        summary.push_str(&format!(
            "-- {} ({} endpoints, {} flows) --\n",
            label(&topo),
            topo.num_endpoints(),
            flows.len()
        ));
        let mut fat_mean = f64::NAN;
        for (name, spec, lb) in matrix() {
            let mut sc = Scenario::on(&topo).scheme(spec).workload(&flows).seed(5);
            if let Some(lb) = lb {
                sc = sc.lb(lb);
            }
            let scheme = sc.build_scheme();
            let layers = fatpaths_sim::RoutingScheme::num_layers(&scheme);
            let res = post_warmup(&sc.run_with(&scheme), window);
            let fcts = res.fcts(None);
            let retx: u64 = res.flows.iter().map(|fl| fl.retx as u64).sum();
            csv.row(&[
                label(&topo),
                name.to_string(),
                layers.to_string(),
                f(res.completion_rate()),
                f(mean(&fcts) * 1e3),
                f(percentile(&fcts, 50.0) * 1e3),
                f(percentile(&fcts, 99.0) * 1e3),
                res.trims.to_string(),
                retx.to_string(),
            ])?;
            if name == "fatpaths" {
                fat_mean = mean(&fcts);
            }
            summary.push_str(&format!(
                "{:<9} layers={:<4} mean {:>7.3} ms  p99 {:>8.3} ms  ({:.2}x fatpaths)\n",
                name,
                layers,
                mean(&fcts) * 1e3,
                percentile(&fcts, 99.0) * 1e3,
                mean(&fcts) / fat_mean
            ));
        }
    }
    csv.finish()?;
    summary.push_str(
        "Paper (§VII, Fig. 11/14): layered routing leads on the low-diameter networks;\n\
         SPAIN/PAST pay for tree-restricted paths, VLB pays double path length,\n\
         and the minimal-path family only competes where diversity exists (FT3).\n",
    );
    write_summary("baselines_matrix", &summary)
}
