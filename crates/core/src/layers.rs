//! Routing layers — the core FatPaths abstraction (§V-B).
//!
//! A *layer* is a subset of the physical links. Layer 0 always contains
//! every link (hosting true minimal paths, σ₁ in the paper); layers
//! `1..n` keep a fraction `ρ` of links each, so that *minimal routing
//! within a sparse layer* yields paths that are non-minimal — typically
//! "almost minimal", one hop longer — on the full topology. This encodes
//! non-minimal multipathing in plain destination-based forwarding
//! hardware.
//!
//! This module implements the random uniform edge sampling construction
//! (Listing 1); the interference-minimizing variant (Listing 2) lives in
//! [`crate::interference_min`].

use fatpaths_net::graph::Graph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters of layered routing: the number of layers `n` and the fraction
/// of surviving edges `ρ` per sparse layer (§V-B1 discusses the interplay).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerConfig {
    /// Total number of layers, counting the complete layer 0. Must be ≥ 1.
    pub n_layers: usize,
    /// Fraction of edges kept in each sparsified layer, `ρ ∈ (0, 1]`.
    pub rho: f64,
    /// RNG seed; layer construction is deterministic in it.
    pub seed: u64,
}

impl LayerConfig {
    /// Convenience constructor.
    pub fn new(n_layers: usize, rho: f64, seed: u64) -> Self {
        assert!(n_layers >= 1, "need at least the complete layer");
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1]");
        LayerConfig {
            n_layers,
            rho,
            seed,
        }
    }
}

/// A set of routing layers over a common base graph. Layer 0 is the
/// complete edge set; each layer is stored as its own [`Graph`] so
/// per-layer shortest-path queries are direct.
#[derive(Clone, Debug)]
pub struct LayerSet {
    /// Per-layer subgraphs over the same router id space.
    pub graphs: Vec<Graph>,
}

impl LayerSet {
    /// Number of layers (≥ 1).
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True iff only the complete layer exists.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The subgraph of layer `i`.
    pub fn layer(&self, i: usize) -> &Graph {
        &self.graphs[i]
    }

    /// Builds a single-layer set (minimal routing only, the paper's
    /// `ρ = 1` baseline).
    pub fn minimal_only(base: &Graph) -> LayerSet {
        LayerSet {
            graphs: vec![base.clone()],
        }
    }

    /// Verifies that every layer is a subgraph of `base` and connected.
    pub fn validate(&self, base: &Graph) -> bool {
        self.graphs.iter().all(|layer| {
            layer.n() == base.n()
                && layer.is_connected()
                && layer.edges().all(|(u, v)| base.has_edge(u, v))
        })
    }
}

/// Listing 1: builds `cfg.n_layers` layers by uniform random edge sampling.
///
/// Layer 0 keeps all edges. Each further layer samples `⌊ρ·|E|⌋` edges
/// u.a.r.; disconnected samples are re-drawn (the paper: "a small number of
/// attempts delivers a connected network"), and as a last resort the sample
/// is patched with original edges bridging its components, keeping the edge
/// budget as close to `⌊ρ·|E|⌋` as possible.
pub fn build_random_layers(base: &Graph, cfg: &LayerConfig) -> LayerSet {
    assert!(base.is_connected(), "base topology must be connected");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let all_edges = base.edge_vec();
    let m = all_edges.len();
    let keep = ((cfg.rho * m as f64).floor() as usize).clamp(1, m);
    let mut graphs = Vec::with_capacity(cfg.n_layers);
    graphs.push(base.clone());
    for _ in 1..cfg.n_layers {
        let layer = sample_connected_layer(base, &all_edges, keep, &mut rng);
        graphs.push(layer);
    }
    LayerSet { graphs }
}

fn sample_connected_layer(
    base: &Graph,
    all_edges: &[(u32, u32)],
    keep: usize,
    rng: &mut StdRng,
) -> Graph {
    let m = all_edges.len();
    let mut idx: Vec<u32> = (0..m as u32).collect();
    for _attempt in 0..50 {
        // Partial Fisher–Yates: the first `keep` entries are a u.a.r. subset.
        for i in 0..keep {
            let j = rng.random_range(i..m);
            idx.swap(i, j);
        }
        let edges: Vec<(u32, u32)> = idx[..keep].iter().map(|&i| all_edges[i as usize]).collect();
        let g = Graph::from_edges(base.n(), &edges);
        if g.is_connected() {
            return g;
        }
    }
    // Patch the last sample: greedily add original edges that bridge
    // components until connected (rare; only for very low ρ).
    let mut edges: Vec<(u32, u32)> = idx[..keep].iter().map(|&i| all_edges[i as usize]).collect();
    loop {
        let g = Graph::from_edges(base.n(), &edges);
        if g.is_connected() {
            return g;
        }
        let comp = component_labels(&g);
        let mut bridges: Vec<(u32, u32)> = all_edges
            .iter()
            .copied()
            .filter(|&(u, v)| comp[u as usize] != comp[v as usize])
            .collect();
        assert!(!bridges.is_empty(), "base graph must be connected");
        bridges.shuffle(rng);
        // Add one bridge per distinct component pair this round.
        let mut seen = rustc_hash::FxHashSet::default();
        for (u, v) in bridges {
            let key = (
                comp[u as usize].min(comp[v as usize]),
                comp[u as usize].max(comp[v as usize]),
            );
            if seen.insert(key) {
                edges.push((u, v));
            }
        }
    }
}

fn component_labels(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = Vec::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        queue.clear();
        queue.push(s);
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push(v);
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn layer_zero_is_complete() {
        let t = slim_fly(5, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(4, 0.6, 1));
        assert_eq!(ls.len(), 4);
        assert_eq!(ls.layer(0).m(), t.graph.m());
    }

    #[test]
    fn sparse_layers_have_rho_fraction() {
        let t = slim_fly(5, 1).unwrap();
        let m = t.graph.m();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(5, 0.7, 2));
        for i in 1..ls.len() {
            let lm = ls.layer(i).m();
            // Equal to ⌊0.7 m⌋ unless connectivity patching added a few.
            assert!(lm >= (0.7 * m as f64) as usize && lm <= (0.75 * m as f64) as usize + 2);
        }
    }

    #[test]
    fn all_layers_connected_and_subgraphs() {
        let t = slim_fly(7, 1).unwrap();
        for rho in [0.3, 0.5, 0.8] {
            let ls = build_random_layers(&t.graph, &LayerConfig::new(6, rho, 3));
            assert!(ls.validate(&t.graph), "rho={rho}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let t = slim_fly(5, 1).unwrap();
        let a = build_random_layers(&t.graph, &LayerConfig::new(3, 0.6, 11));
        let b = build_random_layers(&t.graph, &LayerConfig::new(3, 0.6, 11));
        for (ga, gb) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(ga, gb);
        }
        let c = build_random_layers(&t.graph, &LayerConfig::new(3, 0.6, 12));
        assert_ne!(a.graphs[1], c.graphs[1]);
    }

    #[test]
    fn layers_differ_from_each_other() {
        let t = slim_fly(7, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(4, 0.6, 5));
        assert_ne!(ls.graphs[1], ls.graphs[2]);
        assert_ne!(ls.graphs[2], ls.graphs[3]);
    }

    #[test]
    fn minimal_only_single_layer() {
        let t = slim_fly(5, 1).unwrap();
        let ls = LayerSet::minimal_only(&t.graph);
        assert_eq!(ls.len(), 1);
        assert!(ls.validate(&t.graph));
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn zero_rho_rejected() {
        let _ = LayerConfig::new(2, 0.0, 1);
    }
}
