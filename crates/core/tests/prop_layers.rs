//! Property-based tests for layered routing: for *any* (n, ρ, seed) on a
//! connected topology, layers must stay connected subgraphs and forwarding
//! must be loop-free, complete, and layer-minimal.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::ksp::k_shortest_paths;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_net::topo::slimfly::slim_fly;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_layers_always_valid(
        n in 1usize..8,
        rho in 0.2f64..1.0,
        seed in 0u64..1000,
    ) {
        let t = slim_fly(5, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(n, rho, seed));
        prop_assert_eq!(ls.len(), n);
        prop_assert!(ls.validate(&t.graph));
    }

    #[test]
    fn forwarding_complete_and_loop_free(
        n in 2usize..6,
        rho in 0.3f64..0.9,
        seed in 0u64..200,
    ) {
        let t = slim_fly(5, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(n, rho, seed));
        let rt = RoutingTables::build(&t.graph, &ls);
        let nr = t.num_routers() as u32;
        for layer in 0..n {
            for (s, d) in [(0u32, nr - 1), (3, 17), (nr / 2, 1)] {
                if s == d { continue; }
                let path = rt.path(&t.graph, layer, s, d);
                prop_assert!(path.is_some(), "unreachable in connected layer");
                let path = path.unwrap();
                // Loop-free: no repeated routers.
                let mut q = path.clone();
                q.sort_unstable();
                q.dedup();
                prop_assert_eq!(q.len(), path.len());
                // Hop count equals the layer BFS distance (layer-minimal).
                prop_assert_eq!(
                    path.len() as u32 - 1,
                    rt.layer_distance(layer, s, d).unwrap()
                );
            }
        }
    }

    #[test]
    fn layer_paths_never_shorter_than_base_distance(
        rho in 0.3f64..0.9,
        seed in 0u64..100,
    ) {
        let t = slim_fly(5, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(4, rho, seed));
        let rt = RoutingTables::build(&t.graph, &ls);
        let base = t.graph.bfs(0);
        for d in 1..t.num_routers() as u32 {
            for layer in 0..4 {
                let ld = rt.layer_distance(layer, 0, d).unwrap();
                prop_assert!(ld >= base[d as usize], "layer path beats base shortest path");
            }
        }
    }

    #[test]
    fn ksp_sorted_simple_distinct(k in 1usize..8, s in 0u32..49, d in 0u32..49) {
        prop_assume!(s != d);
        let t = slim_fly(5, 1).unwrap();
        let paths = k_shortest_paths(&t.graph, s, d, k);
        prop_assert!(!paths.is_empty());
        prop_assert!(paths.len() <= k);
        let mut prev = 0;
        for p in &paths {
            prop_assert!(p.len() >= prev, "not sorted by length");
            prev = p.len();
            prop_assert_eq!(*p.first().unwrap(), s);
            prop_assert_eq!(*p.last().unwrap(), d);
            for w in p.windows(2) {
                prop_assert!(t.graph.has_edge(w[0], w[1]));
            }
        }
        let set: std::collections::HashSet<_> = paths.iter().collect();
        prop_assert_eq!(set.len(), paths.len());
    }
}
