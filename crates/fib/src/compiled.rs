//! The simulatable face of a compiled FIB: a [`RoutingScheme`] that
//! forwards by matching the compiled per-switch tables instead of
//! consulting the analytic scheme — so a packet simulation exercises
//! exactly the state a switch would hold.
//!
//! Parity is structural: compilation enumerates the inner scheme's
//! forwarding function over its full tag space, and lookup misses map
//! to empty candidate sets exactly where the inner scheme reports
//! unreachable — so compiled and analytic runs produce byte-identical
//! results (pinned in `crates/sim/tests/compiled_parity.rs`).
//!
//! Two pieces of state deliberately stay with the inner scheme:
//!
//! * [`update_layer`] — per-hop tag rewriting is VLAN-rewrite state, a
//!   separate (tiny) table on real hardware, not destination-prefix
//!   forwarding state; the adapter delegates it unchanged.
//! * repair decisions — [`repair_routes`] delegates the *routing*
//!   response to the inner scheme, then prices realizing that overlay
//!   in switch memory: only FIB rows whose ECMP groups touch down
//!   ports change, and the rewritten-row count (with aggregated-range
//!   splits and re-merges accounted) lands in
//!   [`RouteRepair::fib_rows_rewritten`], which the simulator surfaces
//!   per `RepairTick`.
//!
//! [`update_layer`]: RoutingScheme::update_layer
//! [`repair_routes`]: RoutingScheme::repair_routes

use crate::compile::{compile, CompileMode};
use crate::table::Fib;
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::{PortSet, RoutingScheme};
use fatpaths_net::graph::{Graph, RouterId};
use fatpaths_net::topo::Topology;

/// A routing scheme that forwards from compiled per-switch FIBs,
/// wrapping the scheme it was compiled from.
pub struct CompiledScheme<S> {
    inner: S,
    fib: Fib,
}

impl<S: RoutingScheme + Sync> CompiledScheme<S> {
    /// Compiles `inner` on `topo` and wraps it.
    pub fn compile(topo: &Topology, inner: S, mode: CompileMode) -> Self {
        let fib = compile(topo, &inner, mode);
        CompiledScheme { inner, fib }
    }

    /// The compiled tables (for statistics and budget accounting).
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// The analytic scheme the tables were compiled from.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: RoutingScheme> RoutingScheme for CompiledScheme<S> {
    fn name(&self) -> &'static str {
        "compiled"
    }

    fn num_layers(&self) -> usize {
        self.inner.num_layers()
    }

    fn tag_space(&self) -> usize {
        self.fib.tag_space()
    }

    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        let l = (layer as usize).min(self.fib.tag_space() - 1);
        match self.fib.lookup_router(at_router, l, dst_router) {
            Some(g) => g.clone(),
            None => PortSet::new(),
        }
    }

    fn update_layer(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> u8 {
        self.inner.update_layer(layer, at_router, dst_router)
    }

    /// Delegates the routing decision to the inner scheme and prices it
    /// in switch memory: the returned overlay is identical (so compiled
    /// and analytic fault runs stay byte-identical), with
    /// [`RouteRepair::fib_rows_rewritten`] set to the number of FIB
    /// rows the control plane must push.
    fn repair_routes(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        let mut rep = self.inner.repair_routes(base, down);
        rep.fib_rows_rewritten = self.count_rewritten_rows(&rep);
        rep
    }
}

impl<S: RoutingScheme> CompiledScheme<S> {
    /// Number of FIB rows the overlay rewrites, computed by re-running
    /// the compiler's run-length merge over the changed keys only: per
    /// `(switch, layer)`, consecutive changed destinations with
    /// contiguous endpoint ranges and identical new port sets coalesce
    /// into one pushed rule (in [`CompileMode::HostRoutes`] every
    /// changed destination is its own row). In aggregated mode a change
    /// that lands *inside* a stored merged rule also splits it: the
    /// unchanged left/right remnants of the stored rules at the two
    /// ends of each touched address segment must be re-pushed too, and
    /// are counted (interior stored rules are wholly replaced — no
    /// remnants). Keys for routers without endpoints carry no FIB
    /// state and are skipped, as are tags outside the compiled span.
    fn count_rewritten_rows(&self, rep: &RouteRepair) -> u64 {
        if rep.is_empty() {
            return 0;
        }
        let off = &self.fib.endpoint_offset;
        let mut keys: Vec<(RouterId, u8, RouterId, &PortSet)> = rep
            .rows()
            .filter(|&((l, _, dst), _)| {
                (l as usize) < self.fib.tag_space() && off[dst as usize] < off[dst as usize + 1]
            })
            .map(|((l, at, dst), ports)| (at, l, dst, ports))
            .collect();
        keys.sort_unstable_by_key(|&(at, l, dst, _)| (at, l, dst));
        let aggregated = self.fib.mode() == CompileMode::Aggregated;
        // The stored rule of switch `at` covering endpoint `ep`, if any.
        let stored = |at: RouterId, l: u8, ep: u32| {
            let rules = &self.fib.switches[at as usize].layers[l as usize];
            let i = rules.partition_point(|e| e.hi <= ep);
            rules.get(i).filter(|e| e.lo <= ep).copied()
        };
        let mut rows = 0u64;
        // Run-length state over the new rules ((at, l, hi, ports)) and
        // the touched address segment ((at, l, seg_lo, seg_hi)) —
        // segments extend across port changes; their interior stored
        // rules are wholly replaced, but a stored rule sticking out of
        // either end leaves an unchanged remnant that must be re-pushed.
        let mut prev: Option<(RouterId, u8, u32, &PortSet)> = None;
        let mut seg: Option<(RouterId, u8, u32, u32)> = None;
        let mut remnants = 0u64;
        let close_segment = |s: Option<(RouterId, u8, u32, u32)>| {
            let Some((at, l, seg_lo, seg_hi)) = s else {
                return 0u64;
            };
            let mut n = 0u64;
            if stored(at, l, seg_lo).is_some_and(|e| e.lo < seg_lo) {
                n += 1; // left remnant of a split rule
            }
            if stored(at, l, seg_hi - 1).is_some_and(|e| e.hi > seg_hi) {
                n += 1; // right remnant of a split rule
            }
            n
        };
        for (at, l, dst, ports) in keys {
            let (lo, hi) = (off[dst as usize], off[dst as usize + 1]);
            let merges = aggregated
                && prev.is_some_and(|(pat, pl, phi, pports)| {
                    pat == at && pl == l && phi == lo && pports.as_slice() == ports.as_slice()
                });
            if !merges {
                rows += 1;
            }
            prev = Some((at, l, hi, ports));
            if aggregated {
                match seg {
                    Some((sat, sl, slo, shi)) if sat == at && sl == l && shi == lo => {
                        seg = Some((sat, sl, slo, hi));
                    }
                    _ => {
                        remnants += close_segment(seg);
                        seg = Some((at, l, lo, hi));
                    }
                }
            }
        }
        remnants += close_segment(seg);
        rows + remnants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_core::fwd::RoutingTables;
    use fatpaths_core::layers::{build_random_layers, LayerConfig};
    use fatpaths_net::fault::{FaultModel, FaultPlan};
    use fatpaths_net::topo::slimfly::slim_fly;

    fn compiled(topo: &Topology, mode: CompileMode) -> CompiledScheme<RoutingTables> {
        let ls = build_random_layers(&topo.graph, &LayerConfig::new(4, 0.6, 7));
        let rt = RoutingTables::build(&topo.graph, &ls);
        CompiledScheme::compile(topo, rt, mode)
    }

    #[test]
    fn compiled_ports_match_inner_everywhere() {
        let t = slim_fly(5, 2).unwrap();
        let cs = compiled(&t, CompileMode::Aggregated);
        for l in 0..cs.tag_space() as u8 {
            for at in 0..t.num_routers() as u32 {
                for dst in (0..t.num_routers() as u32).step_by(7) {
                    if at == dst {
                        continue;
                    }
                    let a = cs.candidate_ports(l, at, dst);
                    let b = cs.inner().candidate_ports(l, at, dst);
                    assert_eq!(a.as_slice(), b.as_slice(), "tag {l} {at}->{dst}");
                }
            }
        }
        assert_eq!(cs.num_layers(), 4);
        assert_eq!(cs.name(), "compiled");
    }

    #[test]
    fn repair_overlay_identical_and_fib_rows_priced() {
        let t = slim_fly(5, 2).unwrap();
        let cs = compiled(&t, CompileMode::Aggregated);
        let plan = FaultPlan::sample(&t, &FaultModel::UniformFraction { fraction: 0.08 }, 3);
        let down = DownLinks::from_links(plan.static_failures());
        let rep_inner = cs.inner().repair_routes(&t.graph, &down);
        let rep = RoutingScheme::repair_routes(&cs, &t.graph, &down);
        assert_eq!(rep.len(), rep_inner.len());
        assert_eq!(
            rep_inner.fib_rows_rewritten, 0,
            "analytic schemes carry no FIB"
        );
        assert!(rep.fib_rows_rewritten > 0, "repair must touch FIB rows");
        // Every overlay decision matches the inner scheme's.
        for (key, ports) in rep_inner.rows() {
            let got = rep.lookup(key.0, key.1, key.2).expect("key present");
            assert_eq!(got.as_slice(), ports.as_slice());
        }
        // Host-route pricing never merges and never splits: exactly one
        // pushed row per overlay key.
        let host = compiled(&t, CompileMode::HostRoutes);
        let rep_host = RoutingScheme::repair_routes(&host, &t.graph, &down);
        assert_eq!(rep_host.fib_rows_rewritten, rep_host.len() as u64);
    }

    /// Hand-computed split accounting on a 4-router line (one endpoint
    /// per router), minimal-only tables, failing the middle link
    /// `{1, 2}`: every switch loses the two destinations across the
    /// cut. Aggregated stored rules at the line's ends cover three
    /// destinations each, so the change lands *inside* them and leaves
    /// an unchanged remnant that must be re-pushed:
    ///
    /// * switch 0 (stored rule `[1,4) → port(1)`): one merged delete +
    ///   the surviving left remnant `[1,2)` = 2 rows; switch 3 is
    ///   symmetric (right remnant) = 2 rows;
    /// * switches 1 and 2: the changed segment exactly covers a stored
    ///   rule — no remnant, 1 row each.
    ///
    /// Total aggregated = 6; host routes = one row per overlay key = 8.
    #[test]
    fn split_rules_price_their_remnants() {
        use fatpaths_net::topo::{LinkClass, TopoKind};
        let topo = Topology::assemble(
            TopoKind::Star,
            "line4".into(),
            4,
            vec![
                (0, 1, LinkClass::Short),
                (1, 2, LinkClass::Short),
                (2, 3, LinkClass::Short),
            ],
            vec![1, 1, 1, 1],
            3,
        );
        let build = |mode| {
            let rt = RoutingTables::build(
                &topo.graph,
                &fatpaths_core::layers::LayerSet::minimal_only(&topo.graph),
            );
            CompiledScheme::compile(&topo, rt, mode)
        };
        let down = DownLinks::from_links(&[(1, 2)]);
        let agg = build(CompileMode::Aggregated);
        let rep = RoutingScheme::repair_routes(&agg, &topo.graph, &down);
        assert_eq!(rep.len(), 8, "4 switches × 2 now-unreachable dsts");
        assert_eq!(rep.fib_rows_rewritten, 6, "4 merged deletes + 2 remnants");
        let host = build(CompileMode::HostRoutes);
        let rep_host = RoutingScheme::repair_routes(&host, &topo.graph, &down);
        assert_eq!(rep_host.fib_rows_rewritten, 8);
    }

    #[test]
    fn empty_down_set_prices_nothing() {
        let t = slim_fly(5, 1).unwrap();
        let cs = compiled(&t, CompileMode::Aggregated);
        let rep = RoutingScheme::repair_routes(&cs, &t.graph, &DownLinks::from_links(&[]));
        assert!(rep.is_empty());
        assert_eq!(rep.fib_rows_rewritten, 0);
    }
}
