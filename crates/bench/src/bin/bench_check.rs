//! Bench-regression gate: compares a freshly generated
//! `BENCH_parallel.json` (see `parallel_bench`) against the committed
//! baseline and fails on a >25% wall-clock slowdown of any stage at a
//! matching thread count.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json>
//! ```
//!
//! Rules:
//! * Only matching `(stage, threads)` keys are compared — stages or
//!   thread counts present on one side only are reported and skipped,
//!   so adding a stage never breaks CI and `--quick` runs (1/2-thread
//!   cells only) compare against full baselines.
//! * If the two files were generated on machines with different core
//!   counts, the comparison is skipped gracefully (exit 0): wall-clock
//!   against a different machine class is noise, not signal.
//! * Sub-20 ms deltas never fail: timer jitter at that scale exceeds
//!   any real regression signal.
//!
//! The parser handles exactly the JSON `parallel_bench` emits (one
//! stage per line); this tool has no serde dependency by design — the
//! workspace builds offline.

use std::process::ExitCode;

/// Slowdown factor that fails the gate.
const THRESHOLD: f64 = 1.25;

/// Absolute slowdown floor (seconds) below which jitter wins.
const FLOOR_S: f64 = 0.020;

/// A parsed benchmark file: machine core count + per-stage
/// `(threads, seconds)` samples.
struct Bench {
    machine_threads: u64,
    stages: Vec<(String, Vec<(String, f64)>)>,
}

/// Parses the `parallel_bench` JSON layout: `"machine_threads": N,` on
/// its own line, then one `"<stage>": {"1": 0.1, "2": 0.2},` line per
/// stage inside `wall_clock_seconds`.
fn parse(text: &str) -> Result<Bench, String> {
    let mut machine_threads = None;
    let mut stages = Vec::new();
    let mut in_stages = false;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("\"machine_threads\":") {
            machine_threads = Some(
                rest.trim()
                    .parse::<u64>()
                    .map_err(|e| format!("bad machine_threads: {e}"))?,
            );
        } else if line.starts_with("\"wall_clock_seconds\"") {
            in_stages = true;
        } else if in_stages && line.starts_with('"') && line.contains(": {") {
            let (name, body) = line.split_once(": {").ok_or("malformed stage line")?;
            let name = name.trim_matches('"').to_string();
            let body = body.trim_end_matches('}');
            let mut samples = Vec::new();
            for pair in body.split(',') {
                let (t, v) = pair.split_once(':').ok_or("malformed stage sample")?;
                samples.push((
                    t.trim().trim_matches('"').to_string(),
                    v.trim()
                        .parse::<f64>()
                        .map_err(|e| format!("bad seconds in {name}: {e}"))?,
                ));
            }
            stages.push((name, samples));
        } else if in_stages && line.starts_with('}') {
            in_stages = false;
        }
    }
    Ok(Bench {
        machine_threads: machine_threads.ok_or("no machine_threads field")?,
        stages,
    })
}

fn load(path: &str) -> Result<Bench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_check <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    if baseline.machine_threads != fresh.machine_threads {
        println!(
            "bench_check: skipping — core-count mismatch (baseline {} threads, this machine {}); \
             wall-clock comparison across machine classes is noise",
            baseline.machine_threads, fresh.machine_threads
        );
        // GitHub Actions annotation: surface the silent skip on the
        // run summary, naming every (stage, threads) key that went
        // ungated, so an unarmed perf gate is visible at a glance.
        let skipped: Vec<String> = fresh
            .stages
            .iter()
            .flat_map(|(stage, samples)| {
                samples
                    .iter()
                    .map(move |(threads, _)| format!("{stage}/t{threads}"))
            })
            .collect();
        println!(
            "::notice title=bench_check skipped::baseline machine class differs \
             ({} vs {} threads) — perf gate not armed; skipped keys: {}",
            baseline.machine_threads,
            fresh.machine_threads,
            skipped.join(", ")
        );
        return ExitCode::SUCCESS;
    }
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (stage, samples) in &fresh.stages {
        let Some((_, base_samples)) = baseline.stages.iter().find(|(s, _)| s == stage) else {
            println!("{stage:<16} new stage — no baseline, skipped");
            continue;
        };
        for (threads, secs) in samples {
            let Some((_, base)) = base_samples.iter().find(|(t, _)| t == threads) else {
                println!("{stage:<16} threads={threads}: no baseline sample, skipped");
                continue;
            };
            compared += 1;
            let ratio = secs / base;
            let verdict = if *secs > base * THRESHOLD && secs - base > FLOOR_S {
                regressions += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "{stage:<16} threads={threads}: {secs:.3}s vs baseline {base:.3}s \
                 ({ratio:.2}x) {verdict}"
            );
        }
    }
    if compared == 0 {
        println!("bench_check: no comparable (stage, threads) keys — nothing to gate");
        return ExitCode::SUCCESS;
    }
    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} stage(s) slowed down more than \
             {:.0}% vs {baseline_path}",
            (THRESHOLD - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_check: all {compared} samples within {THRESHOLD}x of baseline");
    ExitCode::SUCCESS
}
