//! Acceptance test for the `churn` experiment: on miniature SF and FT3
//! instances, FatPaths layered routing sustains strictly higher
//! completed-flow goodput than flow-hash ECMP over minimal paths
//! through a rolling reboot — the paper's robustness contrast (§V-G)
//! in its time-varying, node-level form. Fault schedules derive from
//! cell coordinates, so these numbers are bit-stable at any thread
//! count.

use fatpaths_experiments::churn::churn_matrix_on;
use fatpaths_net::topo::Topology;

fn mini_topos() -> Vec<Topology> {
    vec![
        fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(),
        fatpaths_net::topo::fattree::fat_tree(6, 1),
    ]
}

/// One parsed CSV row of the churn artifact.
#[derive(Debug)]
struct Row {
    topology: String,
    scheme: String,
    fraction: f64,
    stagger_us: u64,
    sampler: String,
    rebooted: u64,
    flows: usize,
    host_dead: usize,
    completed: usize,
    on_time: usize,
    stranded: usize,
    goodput: f64,
    repair_rows: u64,
}

fn parse(csv: &str) -> Vec<Row> {
    csv.lines()
        .skip(1)
        .map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            Row {
                topology: c[0].into(),
                scheme: c[1].into(),
                fraction: c[2].parse().unwrap(),
                stagger_us: c[3].parse().unwrap(),
                sampler: c[4].into(),
                rebooted: c[5].parse().unwrap(),
                flows: c[6].parse().unwrap(),
                host_dead: c[7].parse().unwrap(),
                completed: c[8].parse().unwrap(),
                on_time: c[9].parse().unwrap(),
                stranded: c[10].parse().unwrap(),
                goodput: c[11].parse().unwrap(),
                repair_rows: c[17].parse().unwrap(),
            }
        })
        .collect()
}

#[test]
fn fatpaths_sustains_higher_goodput_through_rolling_reboot() {
    let fractions = [0.1];
    let staggers = [500u64, 2_000];
    let (csv, _summary) = churn_matrix_on(mini_topos(), &fractions, &staggers);
    let rows = parse(&csv);
    let find = |topo: &str, scheme: &str, stagger: u64| -> &Row {
        rows.iter()
            .find(|r| {
                r.topology == topo
                    && r.scheme == scheme
                    && r.stagger_us == stagger
                    && r.sampler == "uniform"
            })
            .unwrap_or_else(|| panic!("missing row {topo}/{scheme}/{stagger}"))
    };
    for topo in ["SF", "FT3"] {
        for &stagger in &staggers {
            let fat = find(topo, "fatpaths", stagger);
            let ecmp = find(topo, "ecmp", stagger);
            eprintln!(
                "{topo} stagger={stagger}us: fatpaths {}/{} on-time {} ({} host_dead, \
                 {} stranded, {:.3} Gb/s) vs ecmp {}/{} on-time {} ({} host_dead, \
                 {} stranded, {:.3} Gb/s)",
                fat.completed,
                fat.flows,
                fat.on_time,
                fat.host_dead,
                fat.stranded,
                fat.goodput,
                ecmp.completed,
                ecmp.flows,
                ecmp.on_time,
                ecmp.host_dead,
                ecmp.stranded,
                ecmp.goodput
            );
            // Sanity: the schedule really rebooted routers and the
            // workload really lost hosts to them.
            assert!(fat.rebooted > 0, "{topo}: no routers rebooted");
            assert_eq!(fat.fraction, 0.1);
            // host_dead is a property of the fault plan, not the scheme.
            assert_eq!(fat.host_dead, ecmp.host_dead, "{topo}/{stagger}");
            assert_eq!(fat.flows, ecmp.flows, "{topo}/{stagger}");
            // Accounting closes: host_dead + completed + stranded = flows.
            for r in [fat, ecmp] {
                assert_eq!(
                    r.host_dead + r.completed + r.stranded,
                    r.flows,
                    "{topo}/{}/{stagger}: accounting leak",
                    r.scheme
                );
            }
            // The acceptance criterion: layered routing sustains higher
            // completed-flow goodput than ECMP-minimal through the roll.
            assert!(
                fat.goodput > ecmp.goodput,
                "{topo} stagger={stagger}: fatpaths {} !> ecmp {}",
                fat.goodput,
                ecmp.goodput
            );
        }
    }
}

#[test]
fn detection_and_batched_repair_lift_ecmp_goodput() {
    let (csv, _summary) = churn_matrix_on(mini_topos(), &[0.1], &[500]);
    let rows = parse(&csv);
    for topo in ["SF", "FT3"] {
        let stuck = rows
            .iter()
            .find(|r| r.topology == topo && r.scheme == "ecmp" && r.sampler == "uniform")
            .unwrap();
        let repaired = rows
            .iter()
            .find(|r| r.topology == topo && r.scheme == "ecmp_rep" && r.sampler == "uniform")
            .unwrap();
        assert!(
            repaired.completed >= stuck.completed,
            "{topo}: repair lowered ECMP completions ({} < {})",
            repaired.completed,
            stuck.completed
        );
        assert!(
            repaired.goodput > stuck.goodput,
            "{topo}: repair did not lift ECMP goodput ({} !> {})",
            repaired.goodput,
            stuck.goodput
        );
    }
}

/// The domain-aware sampler (ROADMAP's correlated-churn item): walking
/// a fat-tree pod's aggregation layer concentrates the same reboot
/// budget inside one fate-sharing unit, which (a) makes the repair
/// path work harder per pass than scattered uniform draws and (b) hits
/// delivered goodput harder. On SF — no domain metadata — the domain
/// sampler degrades to the uniform draw and the rows must coincide.
#[test]
fn domain_walks_stress_repair_harder_than_uniform_draws() {
    let (csv, _summary) = churn_matrix_on(mini_topos(), &[0.1], &[500]);
    let rows = parse(&csv);
    let find = |topo: &str, scheme: &str, sampler: &str| -> &Row {
        rows.iter()
            .find(|r| r.topology == topo && r.scheme == scheme && r.sampler == sampler)
            .unwrap_or_else(|| panic!("missing row {topo}/{scheme}/{sampler}"))
    };
    // SF has no domains: the two samplers draw identical schedules.
    for scheme in ["fatpaths", "ecmp", "fatpaths_rep"] {
        let u = find("SF", scheme, "uniform");
        let d = find("SF", scheme, "domain");
        assert_eq!(u.completed, d.completed, "SF/{scheme}");
        assert_eq!(u.goodput, d.goodput, "SF/{scheme}");
        assert_eq!(u.repair_rows, d.repair_rows, "SF/{scheme}");
    }
    // FT3: same reboot budget, concentrated in one pod's agg layer.
    for scheme in ["fatpaths_rep", "ecmp_rep"] {
        let u = find("FT3", scheme, "uniform");
        let d = find("FT3", scheme, "domain");
        assert_eq!(u.rebooted, d.rebooted, "same budget by construction");
        eprintln!(
            "FT3/{scheme}: uniform rows={} goodput={:.3} stranded={} vs \
             domain rows={} goodput={:.3} stranded={}",
            u.repair_rows, u.goodput, u.stranded, d.repair_rows, d.goodput, d.stranded
        );
        assert!(
            d.repair_rows > u.repair_rows,
            "FT3/{scheme}: domain walk must touch more repair rows \
             ({} !> {})",
            d.repair_rows,
            u.repair_rows
        );
    }
    // Structural contrast: the FT3 domain walk reboots aggregation
    // routers only (they host no endpoints), so no flow loses its host
    // — the full workload stays eligible and every loss is routing's
    // problem. The uniform draw at the same budget hits edge routers
    // and removes their hosts from the workload instead.
    let u = find("FT3", "fatpaths", "uniform");
    let d = find("FT3", "fatpaths", "domain");
    assert_eq!(d.host_dead, 0, "agg-layer walks kill no hosts");
    assert!(
        u.host_dead > 0,
        "uniform draw at this seed must hit an edge router"
    );
    assert_eq!(d.flows, u.flows);
}
