//! # fatpaths-diversity
//!
//! Path-diversity analysis from §IV of the FatPaths paper: the machinery
//! behind Figs. 4, 6, 7, 8 and Table IV.
//!
//! * [`apsp`] — minimal path lengths/counts, diameter, average path length;
//! * [`cdp`](mod@cdp) — count of disjoint paths `c_l(A,B)` (greedy length-bounded
//!   Ford–Fulkerson, §IV-B1) and exact Menger max-flow for validation;
//! * [`interference`] — path interference `I^l_{ac,bd}` (§IV-B2);
//! * [`tnl`] — total network load bound (§IV-B3);
//! * [`collisions`] — flow-collision histograms (§IV-A);
//! * [`matpath`] — matrix-multiplication path counting (Appendix B).

pub mod algebraic;
pub mod apsp;
pub mod cdp;
pub mod collisions;
pub mod interference;
pub mod matpath;
pub mod tnl;

pub use apsp::{count_shortest_paths, shortest_path_stats, PathStats};
pub use cdp::{cdp, edge_disjoint_maxflow, lmin_cmin, EdgeIds};
pub use collisions::collision_histogram;
pub use interference::{path_interference, sample_pi, PiSample};
pub use tnl::total_network_load;
