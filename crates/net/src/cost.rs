//! Construction cost model (§VII-A2, Fig. 10).
//!
//! Following the linear router/cable models of Kim et al. (ref. 23), Besta &
//! Hoefler (ref. 55), and Kim/Dally/Abts (ref. 57), parameterized with 100 GbE
//! list-price ballpark figures of the paper's era (Mellanox gear via
//! ColfaxDirect). Costs split into:
//!
//! * **routers** — `base + per_port · radix` (radix counts endpoint ports);
//! * **interconnect cables** — copper for [`LinkClass::Short`] runs, fiber
//!   (transceivers included) for [`LinkClass::Long`];
//! * **endpoint cables** — copper.
//!
//! Absolute dollars are indicative; what the reproduction preserves is the
//! *relative* per-endpoint cost across topologies (Fig. 10's shape: HX3
//! highest due to oversized radix, DF cable-light, SF/JF/XP cheapest).

use crate::topo::{LinkClass, Topology};

/// Price book for the cost model. All values in USD.
#[derive(Clone, Copy, Debug)]
pub struct PriceBook {
    /// Fixed per-router cost (chassis, fans, management).
    pub router_base: f64,
    /// Cost per router port (switching silicon scales ~linearly in radix).
    pub router_per_port: f64,
    /// Short electrical cable (intra-group / endpoint link).
    pub copper_cable: f64,
    /// Long optical cable with transceivers (global / inter-group link).
    pub fiber_cable: f64,
}

impl Default for PriceBook {
    /// 100 GbE-era defaults (cf. Fig. 10's ≈ $1.5–3k per endpoint).
    fn default() -> Self {
        PriceBook {
            router_base: 1_500.0,
            router_per_port: 350.0,
            copper_cable: 110.0,
            fiber_cable: 480.0,
        }
    }
}

/// Itemized cost of one topology instance.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Switch hardware.
    pub routers: f64,
    /// Router-to-router cables.
    pub interconnect_cables: f64,
    /// Endpoint (NIC-to-switch) cables.
    pub endpoint_cables: f64,
}

impl CostBreakdown {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.routers + self.interconnect_cables + self.endpoint_cables
    }

    /// Cost normalized per endpoint, the metric of Fig. 10.
    pub fn per_endpoint(&self, n_endpoints: usize) -> f64 {
        self.total() / n_endpoints.max(1) as f64
    }
}

/// Computes the itemized construction cost of `topo` under `prices`.
pub fn cost(topo: &Topology, prices: &PriceBook) -> CostBreakdown {
    let mut routers = 0.0;
    for r in 0..topo.num_routers() {
        let radix = topo.graph.degree(r as u32) + topo.concentration[r] as usize;
        routers += prices.router_base + prices.router_per_port * radix as f64;
    }
    let mut interconnect = 0.0;
    for class in &topo.link_classes {
        interconnect += match class {
            LinkClass::Short => prices.copper_cable,
            LinkClass::Long => prices.fiber_cable,
        };
    }
    let endpoint_cables = topo.num_endpoints() as f64 * prices.copper_cable;
    CostBreakdown {
        routers,
        interconnect_cables: interconnect,
        endpoint_cables,
    }
}

/// Convenience: per-endpoint cost with the default price book.
pub fn cost_per_endpoint(topo: &Topology) -> f64 {
    cost(topo, &PriceBook::default()).per_endpoint(topo.num_endpoints())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{build, SizeClass};
    use crate::topo::TopoKind;

    #[test]
    fn breakdown_sums() {
        let t = build(TopoKind::SlimFly, SizeClass::Small, 1);
        let c = cost(&t, &PriceBook::default());
        assert!(c.routers > 0.0 && c.interconnect_cables > 0.0 && c.endpoint_cables > 0.0);
        assert!((c.total() - (c.routers + c.interconnect_cables + c.endpoint_cables)).abs() < 1e-9);
    }

    #[test]
    fn figure_10_shape_hx_most_expensive() {
        // Fig. 10: HX3's per-endpoint cost clearly exceeds the others'.
        let hx = cost_per_endpoint(&build(TopoKind::HyperX, SizeClass::Medium, 1));
        for kind in [TopoKind::SlimFly, TopoKind::Dragonfly, TopoKind::Xpander] {
            let other = cost_per_endpoint(&build(kind, SizeClass::Medium, 1));
            assert!(hx > other, "{:?}: {other} !< HX {hx}", kind);
        }
    }

    #[test]
    fn comparable_cost_within_class() {
        // The class configurations were chosen for comparable cost: all
        // medium-class topologies must be within ~2.2x of the cheapest.
        let costs: Vec<f64> = crate::classes::evaluated_kinds()
            .iter()
            .map(|&k| cost_per_endpoint(&build(k, SizeClass::Medium, 1)))
            .collect();
        let lo = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = costs.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo < 2.2, "cost spread {lo}..{hi}");
    }

    #[test]
    fn ballpark_matches_figure_10() {
        // Fig. 10 shows ≈ $1.5k–3k per endpoint at N≈10k with 100GbE gear.
        for kind in crate::classes::evaluated_kinds() {
            let c = cost_per_endpoint(&build(kind, SizeClass::Medium, 1));
            assert!((800.0..4000.0).contains(&c), "{:?}: ${c}", kind);
        }
    }
}
