//! Theory/analysis experiments: Fig. 9 (MAT per routing scheme), Fig. 10
//! (cost model), Fig. 19 (edge density / radix scaling), Tables I and V.

use crate::common::{f, write_summary, Csv};
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::interference_min::{build_interference_min_layers, ImConfig};
use fatpaths_core::past::{PastTrees, PastVariant};
use fatpaths_core::spain::{build_spain_layers, SpainConfig};
use fatpaths_mcf::mat::{mat, router_demands, KspPaths, LayeredPaths, PastPaths};
use fatpaths_mcf::worstcase::worst_case_flows;
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::cost::{cost, PriceBook};
use fatpaths_net::topo::jellyfish::equivalent_jellyfish;
use fatpaths_net::topo::{
    dragonfly::dragonfly, fattree::fat_tree, hyperx::hyperx, slimfly::slim_fly, xpander::xpander,
    TopoKind, Topology,
};
use rayon::prelude::*;
use std::io;

/// Fig. 9: maximum achievable throughput of FatPaths (interference-min
/// layers), SPAIN, PAST, and k-shortest paths under the worst-case traffic
/// pattern at intensity 0.55, across topology sizes.
pub fn fig9(quick: bool) -> io::Result<()> {
    let mut configs: Vec<Topology> = Vec::new();
    // A size sweep per family (kept below ≈1600 routers for SPAIN/Yen).
    for q in [5u32, 7, 11, 13] {
        configs.push(slim_fly(q, ((3 * q + 1) / 4).max(1)).unwrap());
    }
    for p in [2u32, 3, 4] {
        configs.push(dragonfly(p));
    }
    for s in [4u32, 6, 8] {
        configs.push(hyperx(3, s, s - 1));
    }
    for k in [8u32, 12, 16] {
        configs.push(xpander(k, k, k / 2, 3));
    }
    for k in [8u32, 12, 16] {
        configs.push(fat_tree(k, 1));
    }
    let sf_for_jf = slim_fly(11, 8).unwrap();
    configs.push(equivalent_jellyfish(&sf_for_jf, 5));
    if quick {
        configs.retain(|t| t.num_routers() <= 300);
    }
    let eps = 0.08;
    let n_layers = 6;
    let mut csv = Csv::new(
        "fig9_mat",
        &["topology", "endpoints", "scheme", "throughput", "layers"],
    )?;
    let mut summary =
        String::from("Fig. 9 — MAT per scheme (worst-case traffic, intensity 0.55)\n");
    let rows: Vec<Vec<[String; 5]>> = configs
        .par_iter()
        .map(|t| {
            let flows = worst_case_flows(t, 0.55, 17);
            let demands = router_demands(&flows, |e| t.endpoint_router(e));
            let mut out = Vec::new();
            // FatPaths, interference-minimizing construction.
            let ls = build_interference_min_layers(
                &t.graph,
                &ImConfig {
                    n_layers,
                    seed: 5,
                    ..ImConfig::default()
                },
            );
            let rt = RoutingTables::build(&t.graph, &ls);
            let fp = mat(
                &t.graph,
                &demands,
                &LayeredPaths {
                    base: &t.graph,
                    tables: &rt,
                },
                eps,
            );
            out.push(("fatpaths", fp.throughput, n_layers));
            // SPAIN (capped to the same layer budget for fairness, §VI-C).
            let spain = build_spain_layers(
                &t.graph,
                &SpainConfig {
                    k_paths: 2,
                    max_layers: Some(n_layers),
                    seed: 6,
                },
            );
            let srt = RoutingTables::build(&t.graph, &spain.layers);
            let sp = mat(
                &t.graph,
                &demands,
                &LayeredPaths {
                    base: &t.graph,
                    tables: &srt,
                },
                eps,
            );
            out.push(("spain", sp.throughput, spain.layers.len()));
            // PAST.
            let trees = PastTrees::build(&t.graph, PastVariant::Bfs, 7);
            let pa = mat(&t.graph, &demands, &PastPaths { trees: &trees }, eps);
            out.push(("past", pa.throughput, t.num_routers()));
            // k-shortest paths.
            let ks = mat(
                &t.graph,
                &demands,
                &KspPaths {
                    graph: &t.graph,
                    k: n_layers,
                },
                eps,
            );
            out.push(("ksp", ks.throughput, n_layers));
            out.into_iter()
                .map(|(scheme, tp, layers)| {
                    [
                        crate::common::label(t),
                        t.num_endpoints().to_string(),
                        scheme.to_string(),
                        f(tp),
                        layers.to_string(),
                    ]
                })
                .collect()
        })
        .collect();
    // Aggregate per-scheme wins for the summary.
    let mut fat_wins = 0usize;
    let mut total = 0usize;
    for group in &rows {
        let get = |s: &str| {
            group
                .iter()
                .find(|r| r[2] == s)
                .map(|r| r[3].parse::<f64>().unwrap())
                .unwrap_or(0.0)
        };
        let (fp, sp, pa, ks) = (get("fatpaths"), get("spain"), get("past"), get("ksp"));
        let topo = &group[0][0];
        let n = &group[0][1];
        summary.push_str(&format!(
            "{:<4} N={:<6} fatpaths={:.3} spain={:.3} past={:.3} ksp={:.3}\n",
            topo, n, fp, sp, pa, ks
        ));
        if topo != "FT3" {
            total += 1;
            if fp >= sp.max(pa) {
                fat_wins += 1;
            }
        }
        for r in group {
            csv.row(&r[..])?;
        }
    }
    csv.finish()?;
    summary.push_str(&format!(
        "FatPaths ≥ SPAIN,PAST on {fat_wins}/{total} low-diameter configs \
         (paper: FatPaths wins everywhere except SPAIN-on-fat-tree).\n"
    ));
    write_summary("fig9_mat", &summary)
}

/// Fig. 10: itemized per-endpoint cost at N≈10k with 100 GbE prices.
pub fn fig10(_quick: bool) -> io::Result<()> {
    let mut csv = Csv::new(
        "fig10_cost",
        &[
            "topology",
            "endpoints",
            "routers_usd",
            "interconnect_usd",
            "endpoint_links_usd",
            "per_endpoint_usd",
        ],
    )?;
    let prices = PriceBook::default();
    let mut summary = String::from("Fig. 10 — cost per endpoint (100GbE model)\n");
    let mut topos = crate::common::topo_set(SizeClass::Medium, 1);
    // Order as in the figure: SF, JF-SF, XP, DF, FT3, HX3.
    topos.sort_by_key(|t| match t.kind {
        TopoKind::SlimFly => 0,
        TopoKind::Jellyfish => 1,
        TopoKind::Xpander => 2,
        TopoKind::Dragonfly => 3,
        TopoKind::FatTree => 4,
        _ => 5,
    });
    for t in &topos {
        let c = cost(t, &prices);
        let n = t.num_endpoints();
        csv.row(&[
            crate::common::label(t),
            n.to_string(),
            f(c.routers),
            f(c.interconnect_cables),
            f(c.endpoint_cables),
            f(c.per_endpoint(n)),
        ])?;
        summary.push_str(&format!(
            "{:<5} ${:>7.0}/endpoint (routers {:.0}%, cables {:.0}%)\n",
            crate::common::label(t),
            c.per_endpoint(n),
            100.0 * c.routers / c.total(),
            100.0 * (c.interconnect_cables + c.endpoint_cables) / c.total(),
        ));
    }
    csv.finish()?;
    summary.push_str("Paper: ≈$2–3k per endpoint; HX3 most expensive (oversized radix).\n");
    write_summary("fig10_cost", &summary)
}

/// Fig. 19: edge density and router radix as functions of network size.
pub fn fig19(_quick: bool) -> io::Result<()> {
    let mut csv = Csv::new(
        "fig19_scaling",
        &["topology", "endpoints", "edge_density", "radix"],
    )?;
    let mut summary = String::from("Fig. 19 — edge density and radix vs N\n");
    for class in SizeClass::all() {
        if class == SizeClass::Huge {
            continue; // the generators handle it, but the table gets long
        }
        for kind in fatpaths_net::classes::evaluated_kinds() {
            let t = build(kind, class, 1);
            csv.row(&[
                crate::common::label(&t),
                t.num_endpoints().to_string(),
                f(t.edge_density()),
                t.router_radix().to_string(),
            ])?;
        }
    }
    // Asymptotic check: densities stay ~constant per family.
    for kind in [TopoKind::SlimFly, TopoKind::Dragonfly, TopoKind::FatTree] {
        let small = build(kind, SizeClass::Small, 1).edge_density();
        let large = build(kind, SizeClass::Large, 1).edge_density();
        summary.push_str(&format!(
            "{:<4} density small→large: {:.2} → {:.2}\n",
            kind.label(),
            small,
            large
        ));
    }
    csv.finish()?;
    summary.push_str("Paper: density ≈ constant (2.1–3.0) per family; DF needs most cables.\n");
    write_summary("fig19_scaling", &summary)
}

/// Table I: the routing-scheme feature matrix.
pub fn table1(_quick: bool) -> io::Result<()> {
    let text = fatpaths_core::schemes::render_table_i();
    std::fs::write(
        crate::common::results_dir()?.join("table1_schemes.txt"),
        &text,
    )?;
    write_summary("table1_schemes", &text)
}

/// Table V: topology structure parameters per size class.
pub fn table5(_quick: bool) -> io::Result<()> {
    let mut csv = Csv::new(
        "table5_topologies",
        &[
            "topology",
            "class",
            "routers",
            "endpoints",
            "kprime",
            "p",
            "diameter",
            "avg_path_len",
        ],
    )?;
    let mut summary = String::from("Table V — generated topology parameters\n");
    for class in [SizeClass::Small, SizeClass::Medium] {
        for kind in fatpaths_net::classes::evaluated_kinds() {
            let t = build(kind, class, 1);
            let (d, apl) = if t.num_routers() <= 1500 {
                t.graph.diameter_apl()
            } else {
                t.graph.diameter_apl_sampled(64)
            };
            csv.row(&[
                crate::common::label(&t),
                format!("{class:?}"),
                t.num_routers().to_string(),
                t.num_endpoints().to_string(),
                t.network_radix().to_string(),
                t.concentration
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                d.to_string(),
                f(apl),
            ])?;
            if class == SizeClass::Medium {
                summary.push_str(&format!(
                    "{:<5} Nr={:<5} N={:<6} k'={:<3} D={} d={:.2}\n",
                    crate::common::label(&t),
                    t.num_routers(),
                    t.num_endpoints(),
                    t.network_radix(),
                    d,
                    apl
                ));
            }
        }
    }
    csv.finish()?;
    write_summary("table5_topologies", &summary)
}
