//! Offline shim for `rustc-hash`: the Fx multiply-and-rotate hasher with
//! the `FxHashMap` / `FxHashSet` aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: fast multiplicative hashing, not collision
/// resistant (fine for trusted keys).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m[&(1, 2)], 3);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashes_spread() {
        use std::hash::Hash;
        let mut seen = FxHashSet::default();
        for i in 0..1000u64 {
            let mut h = FxHasher::default();
            i.hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000);
    }
}
