//! # fatpaths-te
//!
//! Traffic engineering for FatPaths layers: **negotiated-congestion
//! routing** in the style of PathFinder (the classic FPGA routing
//! algorithm), transplanted from FPGA wires to network links.
//!
//! Static FatPaths tables are oblivious — layer subgraphs are sampled at
//! random and every `(layer, destination)` tree picks hash-tie-broken
//! minimal next hops with no knowledge of the traffic. Under adversarial
//! matrices many trees pile onto the same links. The TE subsystem keeps
//! the FatPaths forwarding model (destination-based per-layer tables,
//! flowlet load balancing over layers) but *specializes the trees to a
//! traffic matrix*:
//!
//! 1. route every `(layer, destination)` tree, initially the static
//!    tables;
//! 2. measure per-link load under the matrix (equal flowlet split over
//!    layers — the same demand model the simulator's hashing realizes);
//! 3. re-price each link with a *present* cost proportional to its
//!    current load and an accumulated *historic* cost for persistent
//!    oversubscription ([`TeConfig::hist_factor`]);
//! 4. rebuild all trees as shortest-path trees under the new prices and
//!    repeat until the peak load stops improving
//!    ([`TeConfig::epsilon`]) or [`TeConfig::max_iterations`] is hit.
//!
//! The negotiation is deterministic end to end — stable demand ordering,
//! the same `fnv1a(layer, src, dst)` tie-break as the static tables, no
//! RNG — so negotiated tables are bit-identical at any thread count.
//!
//! * [`TeScheme`] — the negotiated scheme; a drop-in
//!   [`RoutingScheme`](fatpaths_core::scheme::RoutingScheme) that
//!   compiles through `fatpaths-fib` and repairs through
//!   `repair_routes` like every other scheme.
//! * [`TeController`] — the slow control loop: re-prices and re-routes
//!   only the trees that actually cross links invalidated by fault or
//!   churn events, caching per-layer rebuilds across repair ticks.
//! * [`score`] — matrix scoring shared with the experiments: per-edge
//!   loads of any scheme under equal flowlet split, and the achieved
//!   throughput `1 / max_load` compared against the
//!   `fatpaths-mcf` upper bound.

pub mod controller;
pub mod negotiate;
pub mod score;

pub use controller::TeController;
pub use fatpaths_mcf::RouterDemand;
pub use negotiate::{TeConfig, TeScheme};
pub use score::{achieved_throughput, edge_loads, peak_load};

use fatpaths_net::topo::Topology;

/// Aggregates endpoint flow pairs into router-level demands — the traffic
/// matrix the negotiation and the scorer consume. Thin wrapper over
/// [`fatpaths_mcf::router_demands`] with the result sorted by
/// `(src, dst)` so downstream float accumulation is order-stable.
pub fn endpoint_demands(topo: &Topology, pairs: &[(u32, u32)]) -> Vec<RouterDemand> {
    let mut demands = fatpaths_mcf::router_demands(pairs, |e| topo.endpoint_router(e));
    demands.sort_by_key(|d| (d.src, d.dst));
    demands
}
