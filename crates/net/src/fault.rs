//! Link-failure modeling: deterministic fault plans over a [`Topology`].
//!
//! FatPaths' robustness argument (§V-G) is that preprovisioned layers keep
//! traffic flowing when links die, while single-path minimal routing
//! collapses. Testing that claim needs failures to be a *modeled,
//! sweepable dimension*: a [`FaultPlan`] describes which links are down —
//! either statically from `t = 0` or through timed [`LinkEvent`]s — and is
//! sampled from seeded [`FaultModel`]s so a sweep cell's failure set is a
//! pure function of its seed (the determinism discipline of the execution
//! layer; see `fatpaths_sim::cell_seed`).
//!
//! Two failure granularities are modeled. The finer one is the
//! bidirectional router-router link, the unit the paper's resilience
//! evaluation uses; endpoint access links never fail on their own (a
//! dead access link is an endpoint failure, a different phenomenon).
//! The coarser one is the whole router (the node-level fault model of
//! the fat-tree fault-resiliency literature, e.g. Gliksberg et al.):
//! a dead router atomically loses *all* incident links **and** takes
//! its attached endpoints out of the workload — flows whose source or
//! destination host sits behind it are `host_dead`, a different
//! phenomenon than `unroutable` pairs in a link-degraded network.
//! Timed [`RouterEvent`]s compose into churn schedules:
//! [`FaultPlan::rolling_reboot`] (staggered reboots, e.g. a firmware
//! roll) and [`FaultPlan::maintenance_window`] (a rack taken down at
//! once and restored later).

use crate::graph::RouterId;
use crate::topo::{LinkClass, Topology};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Seeded failure-sampling models. All counts round to the nearest link
/// and are clamped to the available population, so `fraction = 0.0`
/// always yields an empty plan and `1.0` the whole population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultModel {
    /// Fail a uniform random `fraction` of all router-router links — the
    /// classic independent-failure sweep axis.
    UniformFraction {
        /// Fraction of links to fail, in `[0, 1]`.
        fraction: f64,
    },
    /// Correlated bursts: pick `routers` routers uniformly and fail
    /// `fraction` of each one's incident links — models a failing
    /// linecard / top-of-rack event rather than independent cable faults.
    RouterBursts {
        /// Number of routers hit by a burst.
        routers: usize,
        /// Fraction of each hit router's incident links that die.
        fraction: f64,
    },
    /// Fail `fraction` of the links of one cable class only — e.g. the
    /// long optical global links of a Dragonfly, which dominate cost and
    /// fail differently than short copper.
    ClassTargeted {
        /// Cable class to target.
        class: LinkClass,
        /// Fraction of that class's links to fail.
        fraction: f64,
    },
    /// Whole-router failures: pick `routers` routers uniformly and kill
    /// them outright — every incident link fails *and* the attached
    /// endpoints drop out of the workload (power event, crashed control
    /// plane). The node-level analogue of [`FaultModel::RouterBursts`],
    /// which only damages links and keeps the router's hosts injecting.
    RouterDown {
        /// Number of routers that die.
        routers: usize,
    },
}

/// A timed link state change, in simulation picoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    /// Absolute event time (ps).
    pub at: u64,
    /// Link endpoints (canonical order not required).
    pub u: RouterId,
    /// Second endpoint.
    pub v: RouterId,
    /// `true` = the link comes (back) up; `false` = it goes down.
    pub up: bool,
}

/// A timed router state change, in simulation picoseconds. A router
/// going down atomically fails every incident link and marks its
/// attached endpoints dead; coming back up revives exactly the links
/// whose other end is alive and not independently failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterEvent {
    /// Absolute event time (ps).
    pub at: u64,
    /// The router whose state flips.
    pub router: RouterId,
    /// `true` = the router comes (back) up; `false` = it dies.
    pub up: bool,
}

/// A deterministic description of which links and routers fail and when.
///
/// Static failures are down from `t = 0`; [`LinkEvent`]s and
/// [`RouterEvent`]s flip state mid-run. The simulator consumes the plan
/// via `Simulator::apply_fault_plan`, and `Scenario::fault_plan` wires
/// it into the fluent builder. The legacy single-link
/// `Scenario::fail_link` / `Simulator::fail_link` APIs are thin wrappers
/// over the static set, so there is exactly one failure mechanism.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    static_failures: Vec<(RouterId, RouterId)>,
    events: Vec<LinkEvent>,
    static_router_failures: Vec<RouterId>,
    router_events: Vec<RouterEvent>,
}

impl FaultPlan {
    /// The empty plan (no failures).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with the given links down from `t = 0`.
    pub fn from_links(links: &[(RouterId, RouterId)]) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for &(u, v) in links {
            plan.add_static(u, v);
        }
        plan
    }

    /// Adds a static (down from `t = 0`) failure of link `{u, v}`.
    /// Duplicates (in either orientation) collapse.
    pub fn add_static(&mut self, u: RouterId, v: RouterId) {
        let key = (u.min(v), u.max(v));
        if !self.static_failures.contains(&key) {
            self.static_failures.push(key);
        }
    }

    /// Builder form of [`FaultPlan::add_static`].
    pub fn fail(mut self, u: RouterId, v: RouterId) -> FaultPlan {
        self.add_static(u, v);
        self
    }

    /// Schedules link `{u, v}` to go down at `at` picoseconds.
    pub fn link_down_at(mut self, at: u64, u: RouterId, v: RouterId) -> FaultPlan {
        self.events.push(LinkEvent {
            at,
            u,
            v,
            up: false,
        });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Schedules link `{u, v}` to come back up at `at` picoseconds.
    pub fn link_up_at(mut self, at: u64, u: RouterId, v: RouterId) -> FaultPlan {
        self.events.push(LinkEvent { at, u, v, up: true });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Adds a static (dead from `t = 0`) whole-router failure: all of
    /// `r`'s incident links fail and its endpoints drop out of the
    /// workload. Duplicates collapse.
    pub fn add_router(&mut self, r: RouterId) {
        if !self.static_router_failures.contains(&r) {
            self.static_router_failures.push(r);
        }
    }

    /// Builder form of [`FaultPlan::add_router`].
    pub fn fail_router(mut self, r: RouterId) -> FaultPlan {
        self.add_router(r);
        self
    }

    /// Schedules router `r` to die at `at` picoseconds.
    pub fn router_down_at(mut self, at: u64, r: RouterId) -> FaultPlan {
        self.router_events.push(RouterEvent {
            at,
            router: r,
            up: false,
        });
        self.router_events.sort_by_key(|e| e.at);
        self
    }

    /// Schedules router `r` to come back up at `at` picoseconds.
    pub fn router_up_at(mut self, at: u64, r: RouterId) -> FaultPlan {
        self.router_events.push(RouterEvent {
            at,
            router: r,
            up: true,
        });
        self.router_events.sort_by_key(|e| e.at);
        self
    }

    /// A rolling-reboot (firmware roll / staggered maintenance)
    /// schedule: `count_of(Nr, fraction)` routers sampled by `seed`
    /// reboot one after another — router *i* of the draw goes down at
    /// `start + i·stagger` and returns `downtime` later. With
    /// `stagger ≥ downtime` at most one router is dead at a time; with
    /// `stagger < downtime` reboots overlap, as aggressive rolls do.
    /// Deterministic in `(topo, fraction, seed)`.
    pub fn rolling_reboot(
        topo: &Topology,
        fraction: f64,
        start: u64,
        stagger: u64,
        downtime: u64,
        seed: u64,
    ) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for (i, r) in sample_routers(topo, fraction, seed).into_iter().enumerate() {
            let down = start + i as u64 * stagger;
            plan = plan
                .router_down_at(down, r)
                .router_up_at(down + downtime, r);
        }
        plan
    }

    /// A domain-aware maintenance roll: like
    /// [`FaultPlan::rolling_reboot`], but instead of drawing routers
    /// uniformly it walks the topology's failure *domains*
    /// ([`Topology::domains`] — a fat-tree pod's aggregation layer, a
    /// Dragonfly group, a HyperX row) in seed-shuffled order, rebooting
    /// each domain's routers consecutively (ascending id) before moving
    /// to the next. Real maintenance rolls work through one enclosure
    /// at a time, which concentrates simultaneous downtime inside a
    /// fate-sharing unit — with `stagger < downtime` a whole domain can
    /// be dark at once, the case that stresses route repair far harder
    /// than scattered uniform draws.
    ///
    /// The reboot budget is `count_of(Nr, fraction)` routers — the same
    /// as the uniform roll, so the two samplers are directly comparable
    /// at equal fractions (the last domain may be walked partially).
    /// Routers outside every domain are never rebooted: when domains
    /// cover only part of the machine (a fat tree's domains are its
    /// aggregation layers, `k²/4` of `5k²/4` routers), the walk stops
    /// at the covered population and the effective budget clamps there
    /// — compare samplers at fractions below the coverage ratio.
    /// Topologies without domain metadata degrade to per-router
    /// domains, which reproduces [`FaultPlan::rolling_reboot`] exactly.
    /// Deterministic in `(topo, fraction, seed)`.
    pub fn rolling_domain_reboot(
        topo: &Topology,
        fraction: f64,
        start: u64,
        stagger: u64,
        downtime: u64,
        seed: u64,
    ) -> FaultPlan {
        let nr = topo.num_routers();
        let budget = count_of(nr, fraction);
        let mut domains: Vec<std::ops::Range<RouterId>> = if topo.domains.is_empty() {
            (0..nr as u32).map(|r| r..r + 1).collect()
        } else {
            topo.domains.clone()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        domains.shuffle(&mut rng);
        let mut plan = FaultPlan::default();
        let mut i = 0u64;
        'walk: for dom in domains {
            for r in dom {
                if i as usize >= budget {
                    break 'walk;
                }
                let down = start + i * stagger;
                plan = plan
                    .router_down_at(down, r)
                    .router_up_at(down + downtime, r);
                i += 1;
            }
        }
        plan
    }

    /// A maintenance window: the sampled routers all die at `start` and
    /// all return at `start + duration` — one correlated burst of
    /// simultaneous events, the worst case for per-change repair cost.
    pub fn maintenance_window(
        topo: &Topology,
        fraction: f64,
        start: u64,
        duration: u64,
        seed: u64,
    ) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for r in sample_routers(topo, fraction, seed) {
            plan = plan
                .router_down_at(start, r)
                .router_up_at(start + duration, r);
        }
        plan
    }

    /// Samples a static failure set from `model` on `topo`. Deterministic:
    /// the same `(topo, model, seed)` always yields the same plan, and the
    /// draw is a pure function of the seed (never of thread count or call
    /// order), so sweep cells may sample in parallel.
    pub fn sample(topo: &Topology, model: &FaultModel, seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = topo.graph.edge_vec();
        let mut plan = FaultPlan::default();
        match *model {
            // The fraction samplers draw from canonical edge lists, so
            // their picks are distinct by construction: push directly
            // instead of paying add_static's linear dedup scan per link.
            FaultModel::UniformFraction { fraction } => {
                plan.static_failures = sample_fraction(&edges, fraction, &mut rng);
            }
            FaultModel::RouterBursts { routers, fraction } => {
                let nr = topo.num_routers();
                let mut ids: Vec<RouterId> = (0..nr as u32).collect();
                ids.shuffle(&mut rng);
                // Two burst routers may share a link: dedup via a set,
                // keeping first-drawn order.
                let mut seen = rustc_hash::FxHashSet::default();
                for &r in ids.iter().take(routers.min(nr)) {
                    let mut nbs: Vec<RouterId> = topo.graph.neighbors(r).to_vec();
                    let kill = count_of(nbs.len(), fraction);
                    nbs.shuffle(&mut rng);
                    for &nb in nbs.iter().take(kill) {
                        let key = (r.min(nb), r.max(nb));
                        if seen.insert(key) {
                            plan.static_failures.push(key);
                        }
                    }
                }
            }
            FaultModel::ClassTargeted { class, fraction } => {
                let pool: Vec<(RouterId, RouterId)> = edges
                    .iter()
                    .zip(&topo.link_classes)
                    .filter(|&(_, &c)| c == class)
                    .map(|(&e, _)| e)
                    .collect();
                plan.static_failures = sample_fraction(&pool, fraction, &mut rng);
            }
            FaultModel::RouterDown { routers } => {
                let nr = topo.num_routers();
                let mut ids: Vec<RouterId> = (0..nr as u32).collect();
                ids.shuffle(&mut rng);
                plan.static_router_failures = ids.into_iter().take(routers.min(nr)).collect();
            }
        }
        plan
    }

    /// Merges `other` into this plan: static link and router failures
    /// dedup (keeping this plan's order first), timed events interleave
    /// with one stable sort by time.
    pub fn merge(&mut self, other: &FaultPlan) {
        let mut seen: rustc_hash::FxHashSet<(RouterId, RouterId)> =
            self.static_failures.iter().copied().collect();
        for &key in &other.static_failures {
            if seen.insert(key) {
                self.static_failures.push(key);
            }
        }
        self.events.extend_from_slice(&other.events);
        self.events.sort_by_key(|e| e.at);
        for &r in &other.static_router_failures {
            self.add_router(r);
        }
        self.router_events.extend_from_slice(&other.router_events);
        self.router_events.sort_by_key(|e| e.at);
    }

    /// The links down from `t = 0`, in canonical `(min, max)` form.
    pub fn static_failures(&self) -> &[(RouterId, RouterId)] {
        &self.static_failures
    }

    /// Timed link events, sorted by time.
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// The routers dead from `t = 0`, in draw order.
    pub fn static_router_failures(&self) -> &[RouterId] {
        &self.static_router_failures
    }

    /// Timed router events, sorted by time.
    pub fn router_events(&self) -> &[RouterEvent] {
        &self.router_events
    }

    /// True iff the plan fails nothing, ever.
    pub fn is_empty(&self) -> bool {
        self.static_failures.is_empty()
            && self.events.is_empty()
            && self.static_router_failures.is_empty()
            && self.router_events.is_empty()
    }

    /// Number of statically failed links.
    pub fn num_static(&self) -> usize {
        self.static_failures.len()
    }

    /// Number of statically dead routers.
    pub fn num_static_routers(&self) -> usize {
        self.static_router_failures.len()
    }
}

/// Draws `count_of(Nr, fraction)` distinct routers, uniformly, in a
/// seed-determined order (shared by the churn schedule builders).
fn sample_routers(topo: &Topology, fraction: f64, seed: u64) -> Vec<RouterId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nr = topo.num_routers();
    let mut ids: Vec<RouterId> = (0..nr as u32).collect();
    ids.shuffle(&mut rng);
    ids.truncate(count_of(nr, fraction));
    ids
}

/// Rounds `fraction` of `n` to the nearest whole count, clamped to `n`.
fn count_of(n: usize, fraction: f64) -> usize {
    ((fraction * n as f64).round() as usize).min(n)
}

/// Partial Fisher–Yates: draws a uniform random subset of
/// `count_of(pool.len(), fraction)` links from `pool`.
fn sample_fraction(
    pool: &[(RouterId, RouterId)],
    fraction: f64,
    rng: &mut StdRng,
) -> Vec<(RouterId, RouterId)> {
    let n = pool.len();
    let take = count_of(n, fraction);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    for i in 0..take {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx[..take].iter().map(|&i| pool[i as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::dragonfly::dragonfly;
    use crate::topo::slimfly::slim_fly;

    #[test]
    fn uniform_fraction_is_deterministic_in_seed() {
        let t = slim_fly(5, 1).unwrap();
        let m = FaultModel::UniformFraction { fraction: 0.1 };
        let a = FaultPlan::sample(&t, &m, 42);
        let b = FaultPlan::sample(&t, &m, 42);
        let c = FaultPlan::sample(&t, &m, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_static(), (0.1 * t.graph.m() as f64).round() as usize);
        for &(u, v) in a.static_failures() {
            assert!(u < v, "canonical order");
            assert!(t.graph.has_edge(u, v));
        }
    }

    #[test]
    fn fraction_extremes() {
        let t = slim_fly(5, 1).unwrap();
        let none = FaultPlan::sample(&t, &FaultModel::UniformFraction { fraction: 0.0 }, 1);
        assert!(none.is_empty());
        let all = FaultPlan::sample(&t, &FaultModel::UniformFraction { fraction: 1.0 }, 1);
        assert_eq!(all.num_static(), t.graph.m());
    }

    #[test]
    fn router_bursts_concentrate_on_few_routers() {
        let t = slim_fly(7, 1).unwrap();
        let m = FaultModel::RouterBursts {
            routers: 2,
            fraction: 0.5,
        };
        let a = FaultPlan::sample(&t, &m, 9);
        assert_eq!(a, FaultPlan::sample(&t, &m, 9));
        // Every failed link touches one of at most 2 burst routers.
        let mut touched = std::collections::BTreeSet::new();
        for &(u, v) in a.static_failures() {
            touched.insert(u);
            touched.insert(v);
        }
        // Each burst router loses ~half its radix; with 2 bursts the
        // failed set is far smaller than a uniform 50% draw would be.
        assert!(a.num_static() <= t.graph.max_degree() + 2);
        assert!(a.num_static() >= 2);
        // Concentration: the burst centers are incident to many failed
        // links (exactly 2 routers can cover every failed link), which a
        // uniform draw of the same size essentially never produces.
        let incident = |r: u32| {
            a.static_failures()
                .iter()
                .filter(|&&(u, v)| u == r || v == r)
                .count()
        };
        let hot: Vec<u32> = (0..t.num_routers() as u32)
            .filter(|&r| incident(r) >= 3)
            .collect();
        assert!(
            (1..=2).contains(&hot.len()),
            "expected 1-2 burst centers, got {hot:?}"
        );
        assert!(
            a.static_failures()
                .iter()
                .all(|&(u, v)| hot.contains(&u) || hot.contains(&v)),
            "every failed link must touch a burst center"
        );
        assert!(touched.len() <= 2 + a.num_static());
    }

    #[test]
    fn class_targeted_only_hits_that_class() {
        let t = dragonfly(3);
        let m = FaultModel::ClassTargeted {
            class: LinkClass::Long,
            fraction: 0.5,
        };
        let a = FaultPlan::sample(&t, &m, 4);
        assert_eq!(a, FaultPlan::sample(&t, &m, 4));
        assert!(!a.is_empty(), "DF must have long links");
        let classes: std::collections::HashMap<_, _> =
            t.graph.edges().zip(t.link_classes.iter()).collect();
        for &(u, v) in a.static_failures() {
            assert_eq!(classes[&(u, v)], &LinkClass::Long);
        }
    }

    #[test]
    fn timed_events_sorted_and_static_dedup() {
        let plan = FaultPlan::none()
            .fail(3, 1)
            .fail(1, 3)
            .link_up_at(2_000, 0, 2)
            .link_down_at(1_000, 0, 2);
        assert_eq!(plan.static_failures(), &[(1, 3)]);
        let at: Vec<u64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![1_000, 2_000]);
        assert!(!plan.events()[0].up);
        assert!(plan.events()[1].up);
        assert!(!plan.is_empty());
    }

    #[test]
    fn from_links_roundtrip() {
        let plan = FaultPlan::from_links(&[(5, 2), (2, 5), (0, 1)]);
        assert_eq!(plan.static_failures(), &[(2, 5), (0, 1)]);
    }

    #[test]
    fn router_down_samples_distinct_routers_deterministically() {
        let t = slim_fly(5, 1).unwrap();
        let m = FaultModel::RouterDown { routers: 3 };
        let a = FaultPlan::sample(&t, &m, 11);
        assert_eq!(a, FaultPlan::sample(&t, &m, 11));
        assert_ne!(a, FaultPlan::sample(&t, &m, 12));
        assert_eq!(a.num_static_routers(), 3);
        assert_eq!(a.num_static(), 0, "router failures, not link failures");
        let mut rs = a.static_router_failures().to_vec();
        rs.sort_unstable();
        rs.dedup();
        assert_eq!(rs.len(), 3, "distinct routers");
        assert!(rs.iter().all(|&r| (r as usize) < t.num_routers()));
        // Clamped to the population.
        let all = FaultPlan::sample(&t, &FaultModel::RouterDown { routers: 10_000 }, 1);
        assert_eq!(all.num_static_routers(), t.num_routers());
    }

    #[test]
    fn rolling_reboot_staggers_down_up_pairs() {
        let t = slim_fly(5, 1).unwrap();
        let plan = FaultPlan::rolling_reboot(&t, 0.1, 1_000, 500, 200, 7);
        assert_eq!(plan, FaultPlan::rolling_reboot(&t, 0.1, 1_000, 500, 200, 7));
        let expect = (0.1 * t.num_routers() as f64).round() as usize;
        assert_eq!(plan.router_events().len(), 2 * expect);
        assert!(plan.static_router_failures().is_empty());
        // Each sampled router gets one down and one up, downtime apart,
        // and consecutive reboots start one stagger apart.
        let mut downs: Vec<&RouterEvent> = plan.router_events().iter().filter(|e| !e.up).collect();
        downs.sort_by_key(|e| e.at);
        for (i, d) in downs.iter().enumerate() {
            assert_eq!(d.at, 1_000 + i as u64 * 500);
            let up = plan
                .router_events()
                .iter()
                .find(|e| e.up && e.router == d.router)
                .expect("matching up event");
            assert_eq!(up.at, d.at + 200);
        }
        // Events are time-sorted.
        let at: Vec<u64> = plan.router_events().iter().map(|e| e.at).collect();
        assert!(at.windows(2).all(|w| w[0] <= w[1]));
        assert!(!plan.is_empty());
    }

    #[test]
    fn domain_reboot_walks_whole_domains_in_sequence() {
        use crate::topo::fattree::fat_tree;
        let t = fat_tree(8, 1); // 8 pods × 4 agg routers, 80 routers total
        assert_eq!(t.domains.len(), 8);
        let plan = FaultPlan::rolling_domain_reboot(&t, 0.1, 1_000, 500, 200, 9);
        assert_eq!(
            plan,
            FaultPlan::rolling_domain_reboot(&t, 0.1, 1_000, 500, 200, 9)
        );
        // Budget matches the uniform roll: count_of(80, 0.1) = 8 routers.
        let mut downs: Vec<&RouterEvent> = plan.router_events().iter().filter(|e| !e.up).collect();
        assert_eq!(downs.len(), 8);
        downs.sort_by_key(|e| e.at);
        // Staggered down/up pairs, like the uniform roll.
        for (i, d) in downs.iter().enumerate() {
            assert_eq!(d.at, 1_000 + i as u64 * 500);
            let up = plan
                .router_events()
                .iter()
                .find(|e| e.up && e.router == d.router)
                .unwrap();
            assert_eq!(up.at, d.at + 200);
        }
        // The walk consumes whole domains consecutively: the first four
        // reboots are exactly one pod's aggregation layer (ascending),
        // the next four exactly another's.
        for half in downs.chunks(4) {
            let ids: Vec<u32> = half.iter().map(|e| e.router).collect();
            let dom = t
                .domains
                .iter()
                .find(|d| d.contains(&ids[0]))
                .expect("reboot target must sit in a domain");
            assert_eq!(
                ids,
                dom.clone().collect::<Vec<u32>>(),
                "domain walked in order"
            );
        }
    }

    #[test]
    fn domain_reboot_budget_clamps_to_domain_coverage() {
        use crate::topo::fattree::fat_tree;
        // fat_tree(8,1): 80 routers, domains cover only the 32 agg
        // routers. A fraction above the 0.4 coverage ratio exhausts
        // every domain and stops — the walk never reboots routers that
        // belong to no fate-sharing unit.
        let t = fat_tree(8, 1);
        let covered: usize = t.domains.iter().map(|d| d.len()).sum();
        assert_eq!(covered, 32);
        let plan = FaultPlan::rolling_domain_reboot(&t, 0.9, 1_000, 500, 200, 2);
        let downs = plan.router_events().iter().filter(|e| !e.up).count();
        assert_eq!(downs, covered, "budget clamps at the covered population");
        assert!(plan
            .router_events()
            .iter()
            .all(|e| t.domains.iter().any(|d| d.contains(&e.router))));
    }

    #[test]
    fn domain_reboot_without_domains_degrades_to_uniform_roll() {
        let t = slim_fly(5, 1).unwrap();
        assert!(t.domains.is_empty(), "SF is irregular — no domains");
        let dom = FaultPlan::rolling_domain_reboot(&t, 0.12, 2_000, 700, 300, 4);
        let uni = FaultPlan::rolling_reboot(&t, 0.12, 2_000, 700, 300, 4);
        assert_eq!(dom, uni);
    }

    #[test]
    fn structured_topologies_expose_domain_metadata() {
        use crate::topo::dragonfly::dragonfly;
        use crate::topo::hyperx::hyperx;
        let df = dragonfly(2);
        // One domain per group, each of size a = 2p, covering all routers.
        assert_eq!(df.domains.len(), 2 * 2 * 2 + 1);
        let covered: usize = df.domains.iter().map(|d| d.len()).sum();
        assert_eq!(covered, df.num_routers());
        assert!(df.domains.iter().all(|d| d.len() == 4));
        let hx = hyperx(2, 4, 1);
        assert_eq!(hx.domains.len(), 4);
        assert!(hx.domains.iter().all(|d| d.len() == 4));
        // Degraded views keep their domains.
        let e = df.graph.edge_vec()[0];
        assert_eq!(df.degraded(&[e]).domains, df.domains);
    }

    #[test]
    fn maintenance_window_is_one_simultaneous_burst() {
        let t = slim_fly(5, 1).unwrap();
        let plan = FaultPlan::maintenance_window(&t, 0.2, 2_000, 900, 3);
        let expect = (0.2 * t.num_routers() as f64).round() as usize;
        let downs: Vec<_> = plan.router_events().iter().filter(|e| !e.up).collect();
        let ups: Vec<_> = plan.router_events().iter().filter(|e| e.up).collect();
        assert_eq!(downs.len(), expect);
        assert_eq!(ups.len(), expect);
        assert!(downs.iter().all(|e| e.at == 2_000));
        assert!(ups.iter().all(|e| e.at == 2_900));
    }

    #[test]
    fn merge_carries_router_failures() {
        let mut a = FaultPlan::none().fail_router(3).router_down_at(1_000, 5);
        let b = FaultPlan::none()
            .fail_router(3)
            .fail_router(7)
            .router_up_at(500, 5);
        a.merge(&b);
        assert_eq!(a.static_router_failures(), &[3, 7]);
        let at: Vec<u64> = a.router_events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![500, 1_000]);
    }

    #[test]
    fn merge_dedups_statics_and_interleaves_events() {
        let mut a = FaultPlan::from_links(&[(0, 1), (2, 3)]).link_down_at(5_000, 0, 1);
        let b = FaultPlan::from_links(&[(1, 0), (4, 5)])
            .link_up_at(9_000, 0, 1)
            .link_down_at(1_000, 2, 3);
        a.merge(&b);
        assert_eq!(a.static_failures(), &[(0, 1), (2, 3), (4, 5)]);
        let at: Vec<u64> = a.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![1_000, 5_000, 9_000]);
    }
}
