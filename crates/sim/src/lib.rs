//! # fatpaths-sim
//!
//! Packet-level discrete-event network simulator (the htsim/OMNeT++ role in
//! the paper's evaluation, §VII-A6) plus a flow-level fluid simulator for
//! huge-scale runs:
//!
//! * [`engine`] — deterministic event queue and packet slab;
//! * [`config`] — §VII-A6 constants (9 KB jumbo / 8-pkt windows for NDP,
//!   100-pkt queues / ECN@33 / 200 µs min-RTO for TCP, 50 µs flowlets);
//! * [`simulator`] — ports, queues (trim+priority / taildrop+ECN), links,
//!   routing and load balancing (ECMP, spraying, LetFlow, FatPaths layers);
//! * `ndp` (internal) — the purified receiver-driven transport (§III-C);
//! * `tcp` (internal) — Reno, ECN-Reno, DCTCP (§VIII-A);
//! * [`fluid`] — max-min fluid model (Fig. 13 at 1M endpoints);
//! * [`metrics`] — FCT/throughput statistics;
//! * [`sweep`] — [`SweepRunner`]: deterministic parallel execution of
//!   scenario grids (bit-identical output for any thread count);
//! * [`scenario`] — the [`Scenario`]/[`SchemeSpec`] builder: declare a
//!   topology + routing scheme + transport + workload, get a
//!   [`SimResult`]. The [`Simulator`] itself is generic over any
//!   [`RoutingScheme`], so every baseline (layered, ECMP-family, SPAIN,
//!   PAST, k-shortest-paths, Valiant) is simulatable, not just scored.

pub mod config;
pub mod engine;
mod faults;
pub mod fluid;
pub mod metrics;
mod ndp;
pub mod queueing;
pub mod scenario;
mod shard;
pub mod simulator;
pub mod sweep;
mod tcp;

pub use config::{AdaptiveMode, LoadBalancing, SimConfig, TcpVariant, Transport, HDR_BYTES};
pub use engine::{least_loaded, TimePs};
pub use fatpaths_core::repair::{DownLinks, RouteRepair};
pub use fatpaths_core::scheme::{PortSet, RoutingScheme};
pub use fatpaths_fib::{CompileMode, CompiledScheme, Fib, FibStats, TableBudget};
pub use fatpaths_net::fault::{FaultModel, FaultPlan, LinkEvent, RouterEvent};
pub use fatpaths_te::{TeConfig, TeScheme};
pub use fatpaths_telemetry::{SpanEvent, SpanKind, TelemetryConfig, Trace, TraceMeta};
pub use metrics::{
    histogram, mean, peak_rss_kb, percentile, reset_peak_rss, throughput_by_size, FlowRecord,
    HistogramResult, RepairTickRecord, RunProfile, SimResult, Summary,
};
pub use scenario::{BuiltScheme, Scenario, SchemeSpec};
pub use shard::partition_routers;
pub use simulator::Simulator;
pub use sweep::{cell_seed, coord_str, SweepRunner};
