//! Declarative experiment configuration: a [`SchemeSpec`] names any
//! routing scheme the paper compares, [`Scenario`] wires it to a
//! topology, transport, load balancer, workload, and seed, and `run()`
//! produces a [`SimResult`] — one fluent path from "what to simulate" to
//! numbers:
//!
//! ```
//! use fatpaths_net::topo::slimfly::slim_fly;
//! use fatpaths_sim::{Scenario, SchemeSpec, Transport};
//! use fatpaths_workloads::arrivals::FlowSpec;
//!
//! let topo = slim_fly(5, 2).unwrap();
//! let flows = [FlowSpec { src: 0, dst: 55, size: 64 * 1024, start: 0 }];
//! let result = Scenario::on(&topo)
//!     .scheme(SchemeSpec::LayeredRandom { n_layers: 4, rho: 0.6 })
//!     .transport(Transport::ndp_default())
//!     .workload(&flows)
//!     .seed(7)
//!     .run();
//! assert_eq!(result.completion_rate(), 1.0);
//! ```
//!
//! Scheme construction (table builds, Yen's algorithm, …) dominates setup
//! cost, so it is split out: [`Scenario::build_scheme`] once, then
//! [`Scenario::run_with`] per workload/seed. [`BuiltScheme`] is an enum —
//! the hot-path port lookups dispatch statically through one `match`
//! instead of a vtable (the "thin enum shim"; `cargo bench` compares
//! both).

use crate::config::{AdaptiveMode, LoadBalancing, SimConfig, Transport};
use crate::engine::TimePs;
use crate::metrics::SimResult;
use crate::simulator::Simulator;
use fatpaths_core::ecmp::DistanceMatrix;
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::interference_min::{build_interference_min_layers, ImConfig};
use fatpaths_core::layers::{build_random_layers, LayerConfig, LayerSet};
use fatpaths_core::past::PastVariant;
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::{
    KspConfig, KspScheme, MinimalScheme, PastScheme, PortSet, RoutingScheme, SpainScheme,
    ValiantScheme,
};
use fatpaths_core::spain::SpainConfig;
use fatpaths_fib::{CompileMode, CompiledScheme};
use fatpaths_net::fault::FaultPlan;
use fatpaths_net::graph::{Graph, RouterId};
use fatpaths_net::topo::Topology;
use fatpaths_te::{TeConfig, TeScheme};
use fatpaths_telemetry::{TelemetryConfig, Trace};
use fatpaths_workloads::arrivals::FlowSpec;

/// Declarative routing-scheme selection — every baseline of the paper's
/// comparison (§VI / §VII-A3), all simulatable through the same
/// [`RoutingScheme`] machinery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchemeSpec {
    /// FatPaths with random uniform edge-sampled layers (Listing 1).
    LayeredRandom {
        /// Total layers including the complete layer 0.
        n_layers: usize,
        /// Fraction of edges kept per sparse layer.
        rho: f64,
    },
    /// FatPaths with interference-minimizing layers (Listing 2).
    LayeredInterferenceMin {
        /// Total layers including the complete layer 0.
        n_layers: usize,
    },
    /// Single complete layer: minimal-path forwarding through the layered
    /// tables (the ρ=1 FatPaths baseline).
    LayeredMinimal,
    /// Minimal multipath port sets (the ECMP / packet-spray / LetFlow
    /// substrate; pick the balancer with [`Scenario::lb`]).
    Minimal,
    /// SPAIN's merged VLAN forests as layers.
    Spain {
        /// Trees (≈ disjoint paths) computed per destination.
        k_paths: usize,
    },
    /// PAST: one spanning tree per destination.
    Past {
        /// Tree construction variant.
        variant: PastVariant,
    },
    /// k-shortest-paths layers (Jellyfish-style).
    Ksp {
        /// Paths per pair.
        k: usize,
    },
    /// Valiant load balancing via per-(layer, destination) intermediates.
    Valiant {
        /// Selectable intermediates per destination.
        n_layers: usize,
    },
}

impl SchemeSpec {
    /// Stable label for CSV rows and logs.
    pub fn label(&self) -> String {
        match *self {
            SchemeSpec::LayeredRandom { n_layers, rho } => {
                format!("layered(n={n_layers},rho={rho})")
            }
            SchemeSpec::LayeredInterferenceMin { n_layers } => format!("layered_im(n={n_layers})"),
            SchemeSpec::LayeredMinimal => "layered_minimal".into(),
            SchemeSpec::Minimal => "minimal".into(),
            SchemeSpec::Spain { k_paths } => format!("spain(k={k_paths})"),
            SchemeSpec::Past { variant } => match variant {
                PastVariant::Bfs => "past_bfs".into(),
                PastVariant::Valiant => "past_valiant".into(),
            },
            SchemeSpec::Ksp { k } => format!("ksp(k={k})"),
            SchemeSpec::Valiant { n_layers } => format!("valiant(n={n_layers})"),
        }
    }

    /// The load balancer this scheme pairs with unless overridden:
    /// flowlets-over-layers for every layered family, flow-hash ECMP for
    /// minimal/PAST (single candidate path sets leave nothing to spray).
    pub fn default_lb(&self) -> LoadBalancing {
        match self {
            SchemeSpec::Minimal | SchemeSpec::Past { .. } => LoadBalancing::EcmpFlow,
            _ => LoadBalancing::FatPathsLayers,
        }
    }
}

/// A constructed routing scheme, owned by the scenario run. The enum
/// gives the simulator's per-packet lookups static dispatch.
pub enum BuiltScheme<'a> {
    /// Layered forwarding tables (FatPaths random / interference-min /
    /// minimal-only).
    Layered(RoutingTables),
    /// Minimal multipath over a distance matrix.
    Minimal {
        /// The topology this was built for.
        topo: &'a Topology,
        /// All-pairs distances.
        dm: DistanceMatrix,
    },
    /// SPAIN forests.
    Spain(SpainScheme),
    /// PAST per-destination trees.
    Past(PastScheme),
    /// k-shortest-path layers.
    Ksp(KspScheme),
    /// Valiant load balancing.
    Valiant(ValiantScheme<'a>),
    /// Layered tables specialized to the scenario's traffic matrix by
    /// negotiated-congestion TE ([`Scenario::traffic_engineered`]).
    Te(TeScheme),
    /// Any of the above, compiled to per-switch FIBs
    /// ([`Scenario::compiled`]): forwarding reads the compiled
    /// prefix-rule tables instead of the analytic scheme, so the run
    /// exercises exactly the state a switch would hold.
    Compiled(CompiledScheme<Box<dyn RoutingScheme + Send + Sync + 'a>>),
}

impl RoutingScheme for BuiltScheme<'_> {
    fn name(&self) -> &'static str {
        match self {
            BuiltScheme::Layered(s) => s.name(),
            BuiltScheme::Minimal { .. } => "minimal",
            BuiltScheme::Spain(s) => s.name(),
            BuiltScheme::Past(s) => s.name(),
            BuiltScheme::Ksp(s) => s.name(),
            BuiltScheme::Valiant(s) => s.name(),
            BuiltScheme::Te(s) => s.name(),
            BuiltScheme::Compiled(s) => s.name(),
        }
    }

    fn num_layers(&self) -> usize {
        match self {
            BuiltScheme::Layered(s) => RoutingScheme::num_layers(s),
            BuiltScheme::Minimal { .. } => 1,
            BuiltScheme::Spain(s) => s.num_layers(),
            BuiltScheme::Past(s) => s.num_layers(),
            BuiltScheme::Ksp(s) => s.num_layers(),
            BuiltScheme::Valiant(s) => s.num_layers(),
            BuiltScheme::Te(s) => RoutingScheme::num_layers(s),
            BuiltScheme::Compiled(s) => s.num_layers(),
        }
    }

    fn tag_space(&self) -> usize {
        match self {
            BuiltScheme::Layered(s) => s.tag_space(),
            BuiltScheme::Minimal { topo, dm } => MinimalScheme::new(&topo.graph, dm).tag_space(),
            BuiltScheme::Spain(s) => s.tag_space(),
            BuiltScheme::Past(s) => s.tag_space(),
            BuiltScheme::Ksp(s) => s.tag_space(),
            BuiltScheme::Valiant(s) => s.tag_space(),
            BuiltScheme::Te(s) => s.tag_space(),
            BuiltScheme::Compiled(s) => s.tag_space(),
        }
    }

    fn candidate_ports(&self, layer: u8, at: RouterId, dst: RouterId) -> PortSet {
        match self {
            BuiltScheme::Layered(s) => s.candidate_ports(layer, at, dst),
            BuiltScheme::Minimal { topo, dm } => {
                MinimalScheme::new(&topo.graph, dm).candidate_ports(layer, at, dst)
            }
            BuiltScheme::Spain(s) => s.candidate_ports(layer, at, dst),
            BuiltScheme::Past(s) => s.candidate_ports(layer, at, dst),
            BuiltScheme::Ksp(s) => s.candidate_ports(layer, at, dst),
            BuiltScheme::Valiant(s) => s.candidate_ports(layer, at, dst),
            BuiltScheme::Te(s) => s.candidate_ports(layer, at, dst),
            BuiltScheme::Compiled(s) => s.candidate_ports(layer, at, dst),
        }
    }

    fn update_layer(&self, layer: u8, at: RouterId, dst: RouterId) -> u8 {
        match self {
            BuiltScheme::Layered(s) => s.update_layer(layer, at, dst),
            BuiltScheme::Minimal { topo, dm } => {
                MinimalScheme::new(&topo.graph, dm).update_layer(layer, at, dst)
            }
            BuiltScheme::Spain(s) => s.update_layer(layer, at, dst),
            BuiltScheme::Past(s) => s.update_layer(layer, at, dst),
            BuiltScheme::Ksp(s) => s.update_layer(layer, at, dst),
            BuiltScheme::Valiant(s) => s.update_layer(layer, at, dst),
            BuiltScheme::Te(s) => s.update_layer(layer, at, dst),
            BuiltScheme::Compiled(s) => s.update_layer(layer, at, dst),
        }
    }

    fn repair_routes(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        match self {
            BuiltScheme::Layered(s) => s.repair_routes(base, down),
            BuiltScheme::Minimal { topo, dm } => {
                MinimalScheme::new(&topo.graph, dm).repair_routes(base, down)
            }
            // The forest/tree/VLB baselines keep the trait default (no
            // repair): their published constructions are static, so
            // recovery stays end-to-end — exactly the deficiency §VI
            // measures.
            BuiltScheme::Spain(s) => s.repair_routes(base, down),
            BuiltScheme::Past(s) => s.repair_routes(base, down),
            BuiltScheme::Ksp(s) => s.repair_routes(base, down),
            BuiltScheme::Valiant(s) => s.repair_routes(base, down),
            BuiltScheme::Te(s) => s.repair_routes(base, down),
            BuiltScheme::Compiled(s) => RoutingScheme::repair_routes(s, base, down),
        }
    }
}

/// Fluent scenario configuration; see the module docs for the shape.
/// `Clone` supports sweeps: clone the scenario, vary one knob, and
/// [`run_with`](Scenario::run_with) a shared prebuilt scheme.
#[derive(Clone)]
pub struct Scenario<'a> {
    topo: &'a Topology,
    spec: SchemeSpec,
    transport: Transport,
    lb: Option<LoadBalancing>,
    adaptive: AdaptiveMode,
    seed: u64,
    horizon: TimePs,
    flows: Vec<FlowSpec>,
    faults: FaultPlan,
    detection_delay: Option<TimePs>,
    compiled: Option<CompileMode>,
    abort_host_death: Option<u32>,
    te: Option<TeConfig>,
    shards: u32,
    telemetry: TelemetryConfig,
}

impl<'a> Scenario<'a> {
    /// Starts a scenario on `topo`. Defaults: FatPaths layered routing
    /// (9 layers, ρ = 0.6 — the paper's headline configuration), NDP
    /// transport, the spec's default balancer, seed 1, no horizon.
    pub fn on(topo: &'a Topology) -> Self {
        Scenario {
            topo,
            spec: SchemeSpec::LayeredRandom {
                n_layers: 9,
                rho: 0.6,
            },
            transport: Transport::ndp_default(),
            lb: None,
            adaptive: AdaptiveMode::Oblivious,
            seed: 1,
            horizon: 0,
            flows: Vec::new(),
            faults: FaultPlan::none(),
            detection_delay: None,
            compiled: None,
            abort_host_death: None,
            te: None,
            shards: 0,
            telemetry: TelemetryConfig::disabled(),
        }
    }

    /// Selects the routing scheme.
    pub fn scheme(mut self, spec: SchemeSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Selects the transport (NDP or a TCP variant).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Overrides the load balancer (default: [`SchemeSpec::default_lb`]).
    ///
    /// Note: [`LoadBalancing::FatPathsLayers`] on a single-layer scheme
    /// (e.g. [`SchemeSpec::Minimal`] or [`SchemeSpec::Past`]) is not an
    /// error but degenerates to static per-flow routing — flowlet
    /// re-picks always land on layer 0 and the ECMP nonce is never
    /// re-rolled. Pick `LetFlow` for flowlet behavior on minimal paths.
    pub fn lb(mut self, lb: LoadBalancing) -> Self {
        self.lb = Some(lb);
        self
    }

    /// Sets the flowlet-boundary path selection policy (default:
    /// [`AdaptiveMode::Oblivious`], the paper's hash-based re-pick).
    /// [`AdaptiveMode::QueueDepth`] makes boundaries CONGA/LetFlow-style
    /// congestion-aware: the sender steers each new flowlet to the
    /// least-loaded candidate as seen in its attachment router's live
    /// queue depths. Composes with [`Scenario::traffic_engineered`] and
    /// [`Scenario::compiled`]; a no-op under
    /// [`LoadBalancing::PacketSpray`], which has no flowlet decision.
    pub fn adaptive(mut self, mode: AdaptiveMode) -> Self {
        self.adaptive = mode;
        self
    }

    /// Sets the seed for scheme construction (layer sampling, SPAIN/PAST
    /// tree randomization, Valiant intermediates). The packet simulator
    /// itself is hash-driven and fully deterministic: for a fixed scheme
    /// and workload, the seed does not add simulation noise (it is still
    /// recorded in [`SimConfig::seed`] for provenance).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Stops simulating at `horizon` ps even if flows remain (0 = off).
    pub fn horizon(mut self, horizon: TimePs) -> Self {
        self.horizon = horizon;
        self
    }

    /// Appends flows to inject (call repeatedly to merge workloads).
    pub fn workload(mut self, flows: &[FlowSpec]) -> Self {
        self.flows.extend_from_slice(flows);
        self
    }

    /// Fails the bidirectional link `{u, v}` before the run (§V-G).
    /// Thin wrapper over [`Scenario::fault_plan`]'s static-failure set —
    /// there is exactly one failure mechanism.
    pub fn fail_link(mut self, u: u32, v: u32) -> Self {
        self.faults.add_static(u, v);
        self
    }

    /// Installs a [`FaultPlan`]: static link and whole-router failures
    /// plus timed `LinkDown`/`LinkUp`/`RouterDown`/`RouterUp` events
    /// (e.g. the [`FaultPlan::rolling_reboot`] and
    /// [`FaultPlan::maintenance_window`] churn schedules). Merges with
    /// any links already failed via [`Scenario::fail_link`].
    ///
    /// Whole-router failures filter the workload: a flow whose source or
    /// destination endpoint sits behind a dead router at its start time
    /// is never injected and is accounted `host_dead` in the
    /// [`SimResult`] — separate from `unroutable` (live hosts that the
    /// degraded network cannot connect) and excluded from
    /// [`SimResult::completion_rate`]'s denominator.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults.merge(&plan);
        self
    }

    /// Enables fault detection: the routing scheme repairs itself (via
    /// [`RoutingScheme::repair_routes`]) this long after every
    /// link-state change. Without it (the default), failures are never
    /// detected and recovery is purely end-to-end.
    pub fn detection_delay(mut self, delay: TimePs) -> Self {
        self.detection_delay = Some(delay);
        self
    }

    /// Compiles the built scheme into per-switch FIBs and simulates on
    /// them: [`Scenario::build_scheme`] wraps the analytic scheme in a
    /// [`CompiledScheme`], so every per-packet port lookup reads the
    /// compiled prefix-rule tables — exactly the state a switch would
    /// hold (byte-identical results to the analytic run, pinned by the
    /// `compiled_parity` suite; use
    /// [`fatpaths_fib::compile()`] directly for the table statistics).
    pub fn compiled(mut self, mode: CompileMode) -> Self {
        self.compiled = Some(mode);
        self
    }

    /// Specializes the layered tables to this scenario's workload with
    /// negotiated-congestion traffic engineering (`fatpaths_te`):
    /// [`Scenario::build_scheme`] aggregates the workload's flows into a
    /// router traffic matrix and runs [`TeScheme::negotiate`] over the
    /// static tables, so per-packet forwarding (and route repair, via
    /// the TE controller) reads the negotiated tables. Composes with
    /// [`Scenario::compiled`] — the TE tables are what gets compiled.
    ///
    /// Only meaningful for layered specs; [`Scenario::build_scheme`]
    /// panics if the spec does not build [`BuiltScheme::Layered`].
    pub fn traffic_engineered(mut self, cfg: TeConfig) -> Self {
        self.te = Some(cfg);
        self
    }

    /// Mid-flow host-death semantics: aborts a flow whose endpoint is
    /// dead at RTO time after it burns `k` such timeouts (see
    /// [`SimConfig::abort_on_host_death`]).
    pub fn abort_on_host_death(mut self, k: u32) -> Self {
        self.abort_host_death = Some(k);
        self
    }

    /// Sets the number of event-loop shards for intra-simulation
    /// parallelism (0 = resolve from `FATPATHS_SHARDS`, then 1; see
    /// [`SimConfig::shards`]). Results are bit-identical for any value.
    pub fn shards(mut self, k: u32) -> Self {
        self.shards = k;
        self
    }

    /// Enables in-simulation telemetry (time-series probes and sampled
    /// flow spans; see [`TelemetryConfig`]). Off by default. Retrieve
    /// the collected [`Trace`] with [`Scenario::run_traced`] — a plain
    /// [`Scenario::run`] with telemetry set still pays the collection
    /// cost but discards the trace.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = cfg;
        self
    }

    /// The spec's label (for CSV rows), with an `+adapt` suffix under
    /// queue-depth-adaptive flowlet re-picks, a `+te` suffix when the
    /// tables are traffic-engineered and a `+fib` suffix when the
    /// scenario simulates on compiled FIBs.
    pub fn label(&self) -> String {
        let mut label = self.spec.label();
        if self.adaptive == AdaptiveMode::QueueDepth {
            label.push_str("+adapt");
        }
        if self.te.is_some() {
            label.push_str("+te");
        }
        match self.compiled {
            Some(mode) => format!("{label}+fib({})", mode.label()),
            None => label,
        }
    }

    /// Constructs the routing scheme — the expensive step, split out so
    /// sweeps can reuse it via [`Scenario::run_with`].
    pub fn build_scheme(&self) -> BuiltScheme<'a> {
        let analytic = self.apply_te(self.build_analytic());
        match self.compiled {
            None => analytic,
            Some(mode) => {
                let inner: Box<dyn RoutingScheme + Send + Sync + 'a> = Box::new(analytic);
                BuiltScheme::Compiled(CompiledScheme::compile(self.topo, inner, mode))
            }
        }
    }

    /// Applies [`Scenario::traffic_engineered`]: negotiates the static
    /// layered tables against the router traffic matrix of this
    /// scenario's workload.
    fn apply_te(&self, analytic: BuiltScheme<'a>) -> BuiltScheme<'a> {
        let Some(cfg) = self.te else {
            return analytic;
        };
        let BuiltScheme::Layered(rt) = analytic else {
            panic!("traffic_engineered requires a layered scheme spec");
        };
        let pairs: Vec<(u32, u32)> = self.flows.iter().map(|f| (f.src, f.dst)).collect();
        let demands = fatpaths_te::endpoint_demands(self.topo, &pairs);
        BuiltScheme::Te(TeScheme::negotiate(&self.topo.graph, &rt, &demands, &cfg))
    }

    /// Constructs the analytic (uncompiled) scheme for the spec.
    fn build_analytic(&self) -> BuiltScheme<'a> {
        let g = &self.topo.graph;
        match self.spec {
            SchemeSpec::LayeredRandom { n_layers, rho } => {
                let ls = build_random_layers(g, &LayerConfig::new(n_layers, rho, self.seed));
                BuiltScheme::Layered(RoutingTables::build(g, &ls))
            }
            SchemeSpec::LayeredInterferenceMin { n_layers } => {
                let ls = build_interference_min_layers(
                    g,
                    &ImConfig {
                        n_layers,
                        seed: self.seed,
                        ..ImConfig::default()
                    },
                );
                BuiltScheme::Layered(RoutingTables::build(g, &ls))
            }
            SchemeSpec::LayeredMinimal => {
                BuiltScheme::Layered(RoutingTables::build(g, &LayerSet::minimal_only(g)))
            }
            SchemeSpec::Minimal => BuiltScheme::Minimal {
                topo: self.topo,
                dm: DistanceMatrix::build(g),
            },
            SchemeSpec::Spain { k_paths } => BuiltScheme::Spain(SpainScheme::build(
                g,
                &SpainConfig {
                    k_paths,
                    seed: self.seed,
                    ..SpainConfig::default()
                },
            )),
            SchemeSpec::Past { variant } => {
                BuiltScheme::Past(PastScheme::build(g, variant, self.seed))
            }
            SchemeSpec::Ksp { k } => BuiltScheme::Ksp(KspScheme::build(
                g,
                &KspConfig {
                    k,
                    ..KspConfig::default()
                },
            )),
            SchemeSpec::Valiant { n_layers } => {
                BuiltScheme::Valiant(ValiantScheme::build(g, n_layers, self.seed))
            }
        }
    }

    /// The simulator configuration this scenario resolves to.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            transport: self.transport,
            lb: self.lb.unwrap_or_else(|| self.spec.default_lb()),
            adaptive: self.adaptive,
            seed: self.seed,
            horizon: self.horizon,
            detection_delay: self.detection_delay,
            abort_on_host_death: self.abort_host_death,
            shards: self.shards,
            telemetry: self.telemetry,
            ..SimConfig::default()
        }
    }

    /// Builds the scheme and runs the scenario.
    pub fn run(self) -> SimResult {
        let scheme = self.build_scheme();
        self.run_with(&scheme)
    }

    /// Constructs the simulator with this scenario's config and fault
    /// plan applied — the single wiring point every run path shares.
    fn make_sim<'s>(&'s self, scheme: &'s BuiltScheme<'a>) -> Simulator<'s, BuiltScheme<'a>> {
        let mut sim = Simulator::new(self.topo, scheme, self.sim_config());
        sim.apply_fault_plan(&self.faults);
        sim
    }

    /// Runs against a previously [built](Scenario::build_scheme) scheme.
    pub fn run_with(&self, scheme: &BuiltScheme<'a>) -> SimResult {
        let mut sim = self.make_sim(scheme);
        sim.add_flows(&self.flows);
        sim.run()
    }

    /// Builds the scheme and runs with telemetry collection, returning
    /// the result and the merged [`Trace`]. Uses the config set via
    /// [`Scenario::telemetry`], force-enabled: when none was set, the
    /// defaults ([`TelemetryConfig::on`] with this scenario's seed)
    /// apply.
    pub fn run_traced(mut self) -> (SimResult, Trace) {
        if !self.telemetry.enabled {
            self.telemetry = TelemetryConfig {
                seed: self.seed,
                ..TelemetryConfig::on()
            };
        }
        let scheme = self.build_scheme();
        let mut sim = self.make_sim(&scheme);
        sim.add_flows(&self.flows);
        let (result, trace) = sim.run_traced();
        (result, trace.expect("telemetry was enabled"))
    }

    /// Runs the scenario with each workload flow striped over `subflows`
    /// MPTCP subflows (§VIII-A2); returns the result and the per-
    /// connection flow-id groups for
    /// [`mptcp_group_fcts`](crate::metrics::mptcp_group_fcts).
    pub fn run_mptcp(self, subflows: u32) -> (SimResult, Vec<Vec<u32>>) {
        let scheme = self.build_scheme();
        let mut sim = self.make_sim(&scheme);
        let groups = sim.add_mptcp_flows(&self.flows, subflows);
        (sim.run(), groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::slimfly::slim_fly;

    fn flows(n: u64, offset: u64) -> Vec<FlowSpec> {
        (0..n)
            .map(|e| FlowSpec {
                src: e as u32,
                dst: ((e + offset) % n) as u32,
                size: 64 * 1024,
                start: 0,
            })
            .collect()
    }

    #[test]
    fn every_spec_runs_to_completion() {
        let topo = slim_fly(5, 2).unwrap();
        let w = flows(topo.num_endpoints() as u64, 21);
        for spec in [
            SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            },
            SchemeSpec::LayeredMinimal,
            SchemeSpec::Minimal,
            SchemeSpec::Spain { k_paths: 2 },
            SchemeSpec::Past {
                variant: PastVariant::Bfs,
            },
            SchemeSpec::Ksp { k: 3 },
            SchemeSpec::Valiant { n_layers: 4 },
        ] {
            let res = Scenario::on(&topo).scheme(spec).workload(&w).seed(2).run();
            assert_eq!(
                res.completion_rate(),
                1.0,
                "{} did not complete",
                spec.label()
            );
        }
    }

    #[test]
    fn builder_matches_manual_construction() {
        let topo = slim_fly(5, 2).unwrap();
        let w = flows(topo.num_endpoints() as u64, 13);
        let via_builder = Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .workload(&w)
            .seed(5)
            .run();
        // Manual: same layers, tables, config.
        let ls = build_random_layers(&topo.graph, &LayerConfig::new(4, 0.6, 5));
        let rt = RoutingTables::build(&topo.graph, &ls);
        let cfg = SimConfig {
            lb: LoadBalancing::FatPathsLayers,
            seed: 5,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topo, &rt, cfg);
        sim.add_flows(&w);
        let manual = sim.run();
        assert_eq!(via_builder.end_time, manual.end_time);
        let fb: Vec<_> = via_builder.flows.iter().map(|f| f.finish).collect();
        let fm: Vec<_> = manual.flows.iter().map(|f| f.finish).collect();
        assert_eq!(fb, fm);
    }

    #[test]
    fn scheme_reuse_across_runs_is_deterministic() {
        let topo = slim_fly(5, 2).unwrap();
        let w = flows(topo.num_endpoints() as u64, 7);
        let sc = Scenario::on(&topo)
            .scheme(SchemeSpec::Valiant { n_layers: 3 })
            .workload(&w)
            .seed(3);
        let scheme = sc.build_scheme();
        let a = sc.run_with(&scheme);
        let b = sc.run_with(&scheme);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.trims, b.trims);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            SchemeSpec::LayeredRandom {
                n_layers: 9,
                rho: 0.6
            }
            .label(),
            "layered(n=9,rho=0.6)"
        );
        assert_eq!(SchemeSpec::Ksp { k: 4 }.label(), "ksp(k=4)");
        assert_eq!(SchemeSpec::Minimal.default_lb(), LoadBalancing::EcmpFlow);
    }
}
