//! Full-TCP-stack (cloud) experiments: Fig. 14 (FatPaths vs ECMP vs
//! LetFlow speedups), Fig. 15 (SF long-flow FCT distribution vs queueing
//! model), Fig. 16 (ρ sweep on TCP), Fig. 17 (stencil + barrier), Fig. 20
//! (λ behavior on a crossbar).
//!
//! Scenario grids run as parallel [`SweepRunner`] sweeps with ordered
//! post-processing (speedups against the ECMP cell of the same group are
//! computed after the sweep, from grid-ordered results).

use crate::common::{f, label, pattern_workload, post_warmup, topo_set, write_summary, Csv};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::{star::star, TopoKind, Topology};
use fatpaths_sim::metrics::{histogram, mean, percentile};
use fatpaths_sim::{
    coord_str, LoadBalancing, Scenario, SchemeSpec, SimResult, SweepRunner, TcpVariant, Transport,
};
use fatpaths_workloads::arrivals::poisson_flows;
use fatpaths_workloads::patterns::Pattern;
use fatpaths_workloads::sizes::FlowSizeDist;
use std::io;

/// The four §VII-C comparison schemes: ECMP, LetFlow, FatPaths ρ=0.6, and
/// FatPaths ρ=1 (minimal-path layers), all with n=4 layers.
const SCHEMES: [&str; 4] = ["ecmp", "letflow", "fatpaths_rho06", "fatpaths_rho1"];

/// Position of the ECMP reference scheme in [`SCHEMES`] — looked up by
/// name so speedup baselines survive reordering of the scheme list.
fn ecmp_index() -> usize {
    SCHEMES
        .iter()
        .position(|&s| s == "ecmp")
        .expect("SCHEMES must contain the ecmp reference")
}

fn run_scheme(topo: &Topology, scheme: &str, flows: &[fatpaths_workloads::FlowSpec]) -> SimResult {
    // The paper's TCP runs use ECN (§VII-A6).
    let sc = Scenario::on(topo)
        .transport(Transport::tcp_default(TcpVariant::Dctcp))
        .workload(flows)
        .seed(3);
    match scheme {
        "ecmp" => sc
            .scheme(SchemeSpec::Minimal)
            .lb(LoadBalancing::EcmpFlow)
            .run(),
        "letflow" => sc
            .scheme(SchemeSpec::Minimal)
            .lb(LoadBalancing::LetFlow)
            .run(),
        "fatpaths_rho06" => sc
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .seed(5)
            .run(),
        "fatpaths_rho1" => sc
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 1.0,
            })
            .seed(5)
            .run(),
        _ => unreachable!(),
    }
}

fn class_for(quick: bool) -> SizeClass {
    let _ = quick;
    SizeClass::Small // TCP packets are 6× smaller than jumbo; stay at ≈1k eps
}

/// Fig. 14: mean and 99%-tail FCT speedup over ECMP by flow size.
pub fn fig14(quick: bool) -> io::Result<()> {
    let window = if quick { 0.01 } else { 0.02 };
    let mut csv = Csv::new(
        "fig14_tcp_speedup",
        &[
            "topology",
            "scheme",
            "flow_kib",
            "speedup_mean",
            "speedup_p99",
        ],
    )?;
    let mut summary = String::from("Fig. 14 — TCP FCT speedup over ECMP (n=4)\n");
    let mut topos = topo_set(class_for(quick), 3);
    if crate::common::is_smoke() {
        // Smoke proves the pipeline runs end-to-end; two topologies keep
        // the size buckets populated (≥5 flows → CSV rows) at a fraction
        // of the six-topology cost.
        topos.truncate(2);
    }
    // Grid: (topology, scheme); the workload is shared per topology and
    // regenerated inside the cell from the topology-indexed seed (cheap
    // next to the simulation, and keeps cells self-contained).
    let mut cells = Vec::new();
    for ti in 0..topos.len() {
        for si in 0..SCHEMES.len() {
            cells.push((ti, si));
        }
    }
    let results = SweepRunner::new("fig14", cells).run(|_, &(ti, si)| {
        let topo = &topos[ti];
        let flows = pattern_workload(topo, &Pattern::Permutation, 200.0, window, true, 31);
        post_warmup(&run_scheme(topo, SCHEMES[si], &flows), window)
    });
    for (ti, topo) in topos.iter().enumerate() {
        let group = &results[ti * SCHEMES.len()..(ti + 1) * SCHEMES.len()];
        // Speedups relative to ECMP per size bucket.
        let ecmp = &group[ecmp_index()];
        let sizes: Vec<u64> = {
            let mut s: Vec<u64> = ecmp.completed().map(|f| f.size).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        for (scheme, res) in SCHEMES.iter().zip(group) {
            let mut mean_sp = Vec::new();
            let mut best_tail = 0.0f64;
            for &size in &sizes {
                let base = ecmp.fcts(Some(size));
                let ours = res.fcts(Some(size));
                if base.len() < 5 || ours.len() < 5 {
                    continue; // too few flows in this size bucket
                }
                let sp_mean = mean(&base) / mean(&ours).max(1e-12);
                let sp_p99 = percentile(&base, 99.0) / percentile(&ours, 99.0).max(1e-12);
                csv.row(&[
                    label(topo),
                    scheme.to_string(),
                    (size / 1024).to_string(),
                    f(sp_mean),
                    f(sp_p99),
                ])?;
                mean_sp.push(sp_mean);
                best_tail = best_tail.max(sp_p99);
            }
            summary.push_str(&format!(
                "{:<5} {:<15} avg speedup {:>5.2}x, best tail speedup {:>5.2}x\n",
                label(topo),
                scheme,
                mean(&mean_sp),
                best_tail
            ));
        }
    }
    csv.finish()?;
    summary.push_str(
        "Paper: FatPaths ρ=0.6 beats ECMP/LetFlow, up to 2.5x on SF; LetFlow/ECMP are\n\
         ineffective on SF and DF (no minimal-path diversity).\n",
    );
    write_summary("fig14_tcp_speedup", &summary)
}

/// Fig. 15: FCT distribution of 1 MiB flows on SF — ECMP vs FatPaths vs a
/// simple M/M/1-style queueing prediction.
pub fn fig15(quick: bool) -> io::Result<()> {
    let topo = build(TopoKind::SlimFly, class_for(quick), 1);
    let window = if quick { 0.02 } else { 0.04 };
    let pairs = Pattern::Permutation.flows(topo.num_endpoints() as u64, 3);
    let dist = FlowSizeDist::fixed(1 << 20);
    let lambda = 150.0;
    let flows = poisson_flows(&pairs, lambda, window, &dist, 4);
    // Two independent cells: FatPaths and ECMP.
    let runs = SweepRunner::new("fig15", vec!["fatpaths_rho06", "ecmp"])
        .run(|_, scheme| post_warmup(&run_scheme(&topo, scheme, &flows), window));
    // Queueing prediction (see sim::queueing): M/M/1-PS sojourn for a
    // 1 MiB job at per-endpoint-link utilization ρ = λ·E[S].
    let service = (1u64 << 20) as f64 / (10e9 / 8.0);
    let model = fatpaths_sim::queueing::QueueModel {
        lambda,
        mean_service_s: service,
    };
    let predicted = model.mm1_ps_fct(service);
    let mut csv = Csv::new("fig15_fct_dist", &["scheme", "fct_ms_bin", "count"])?;
    let mut summary = String::from("Fig. 15 — FCT distribution of 1 MiB flows on SF (TCP)\n");
    for (scheme, res) in [("fatpaths", &runs[0]), ("ecmp", &runs[1])] {
        let fcts: Vec<f64> = res.fcts(None).iter().map(|s| s * 1e3).collect();
        let hist = histogram(&fcts, 0.0, 40.0, 40);
        for (bin, &c) in hist.counts.iter().enumerate() {
            if c > 0 {
                csv.row(&[scheme.to_string(), bin.to_string(), c.to_string()])?;
            }
        }
        summary.push_str(&format!(
            "{:<9} mean {:>7.2} ms  p99 {:>8.2} ms  (model predicts {:.2} ms)\n",
            scheme,
            mean(&fcts),
            percentile(&fcts, 99.0),
            predicted * 1e3
        ));
    }
    csv.finish()?;
    summary.push_str("Paper: FatPaths tracks the queueing model; ECMP grows a collision tail.\n");
    write_summary("fig15_fct_dist", &summary)
}

/// Fig. 16: impact of ρ on long-flow FCT with TCP, n = 4.
pub fn fig16(quick: bool) -> io::Result<()> {
    let window = if quick { 0.01 } else { 0.02 };
    let rhos: &[f64] = if quick {
        &[0.5, 0.7, 1.0]
    } else {
        &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    };
    let mut csv = Csv::new(
        "fig16_rho_tcp",
        &["topology", "rho", "fct_mean_ms", "fct_p10_ms", "fct_p99_ms"],
    )?;
    let mut summary = String::from("Fig. 16 — ρ sweep, TCP long flows (1 MiB), n=4\n");
    let topos: Vec<Topology> = topo_set(class_for(quick), 3)
        .into_iter()
        .filter(|t| t.kind != TopoKind::FatTree) // figure covers the low-diameter set
        .collect();
    let flows_per_topo = {
        let cells: Vec<usize> = (0..topos.len()).collect();
        SweepRunner::new("fig16-prep", cells).run(|_, &ti| {
            let topo = &topos[ti];
            let p = topo.concentration.iter().copied().max().unwrap();
            let pattern =
                fatpaths_workloads::patterns::adversarial_for(p, topo.num_routers() as u32);
            let pairs = pattern.flows(topo.num_endpoints() as u64, 2);
            let dist = FlowSizeDist::fixed(1 << 20);
            poisson_flows(&pairs, 100.0, window, &dist, 6)
        })
    };
    let mut cells = Vec::new();
    for ti in 0..topos.len() {
        for &rho in rhos {
            cells.push((ti, rho));
        }
    }
    // Layer-sampling seed from the cell coordinates; the topology
    // coordinate is its label, so seeds survive set reordering/filtering.
    let runner = SweepRunner::new("fig16", cells);
    let results = runner.run_seeded(
        |&(ti, rho)| vec![coord_str(&label(&topos[ti])), rho.to_bits()],
        |_, &(ti, rho), seed| {
            let res = post_warmup(
                &Scenario::on(&topos[ti])
                    .scheme(SchemeSpec::LayeredRandom { n_layers: 4, rho })
                    .transport(Transport::tcp_default(TcpVariant::Dctcp))
                    .workload(&flows_per_topo[ti])
                    .seed(seed)
                    .run(),
                window,
            );
            let fcts = res.fcts(None);
            (
                mean(&fcts) * 1e3,
                percentile(&fcts, 10.0) * 1e3,
                percentile(&fcts, 99.0) * 1e3,
            )
        },
    );
    let mut i = 0;
    for topo in &topos {
        for &rho in rhos {
            let (m, p10, p99) = results[i];
            i += 1;
            csv.row(&[label(topo), f(rho), f(m), f(p10), f(p99)])?;
            summary.push_str(&format!(
                "{:<6} rho={:.1}: mean {:>7.2} ms p99 {:>8.2} ms\n",
                label(topo),
                rho,
                m,
                p99
            ));
        }
    }
    csv.finish()?;
    summary.push_str("Paper: ρ≈0.6–0.8 optimal for SF/DF (2x tail gain); ρ=1 fine for HX.\n");
    write_summary("fig16_rho_tcp", &summary)
}

/// Fig. 17: stencil + barrier workload — total completion speedup over
/// ECMP for LetFlow and FatPaths (ρ ∈ {0.6, 1}). The stencil traffic
/// pattern (4 off-diagonals) runs with Poisson arrivals and a fixed
/// message size per series; "completion" is the post-warmup makespan.
pub fn fig17(quick: bool) -> io::Result<()> {
    let msg_sizes: &[u64] = if quick {
        &[200_000]
    } else {
        &[20_000, 200_000, 2_000_000]
    };
    let window = if quick { 0.008 } else { 0.015 };
    let mut csv = Csv::new(
        "fig17_stencil",
        &[
            "topology",
            "scheme",
            "message_bytes",
            "completion_ms",
            "speedup_vs_ecmp",
        ],
    )?;
    let mut summary = String::from("Fig. 17 — stencil+barrier completion speedup\n");
    let topos = topo_set(class_for(quick), 3);
    // Per-topology randomized stencil pairs, shared across the grid.
    let pairs_per_topo = {
        let cells: Vec<usize> = (0..topos.len()).collect();
        SweepRunner::new("fig17-prep", cells).run(|_, &ti| {
            let topo = &topos[ti];
            let n = topo.num_endpoints() as u64;
            let mapping = fatpaths_workloads::mapping::random_mapping(n as u32, 5);
            let pairs = fatpaths_workloads::mapping::apply_mapping(
                &mapping,
                &Pattern::stencil_small().flows(n, 2),
            );
            pairs
                .into_iter()
                .filter(|&(s, d)| topo.endpoint_router(s) != topo.endpoint_router(d))
                .collect::<Vec<(u32, u32)>>()
        })
    };
    // Grid: (topology, message size, scheme) — barrier percentile per cell.
    let mut cells = Vec::new();
    for ti in 0..topos.len() {
        for &msg in msg_sizes {
            for si in 0..SCHEMES.len() {
                cells.push((ti, msg, si));
            }
        }
    }
    let results = SweepRunner::new("fig17", cells).run(|_, &(ti, msg, si)| {
        let dist = FlowSizeDist::fixed(msg);
        let flows = poisson_flows(&pairs_per_topo[ti], 200.0, window, &dist, 6);
        let res = post_warmup(&run_scheme(&topos[ti], SCHEMES[si], &flows), window);
        // Barrier semantics: an iteration completes when its slowest
        // exchange does — p99 FCT is the robust version of that max.
        percentile(&res.fcts(None), 99.0) * 1e3
    });
    let mut i = 0;
    for topo in &topos {
        for &msg in msg_sizes {
            let group = &results[i..i + SCHEMES.len()];
            i += SCHEMES.len();
            let base_ms = group[ecmp_index()];
            for (scheme, &ms) in SCHEMES.iter().zip(group) {
                let speedup = base_ms / ms.max(1e-12);
                csv.row(&[
                    label(topo),
                    scheme.to_string(),
                    msg.to_string(),
                    f(ms),
                    f(speedup),
                ])?;
                if msg == 200_000 {
                    summary.push_str(&format!(
                        "{:<5} {:<15} msg=200K: {:>8.2} ms ({:>4.2}x vs ECMP)\n",
                        label(topo),
                        scheme,
                        ms,
                        speedup
                    ));
                }
            }
        }
    }
    csv.finish()?;
    summary.push_str("Paper: >2.5x on SF and ≈2x on XP for 200K/2M messages.\n");
    write_summary("fig17_stencil", &summary)
}

/// Fig. 20: TCP behavior vs flow arrival rate λ on a 60-endpoint crossbar.
pub fn fig20(quick: bool) -> io::Result<()> {
    let topo = star(60);
    let lambdas: &[f64] = if quick {
        &[100.0, 400.0]
    } else {
        &[50.0, 100.0, 200.0, 400.0, 800.0]
    };
    let mut csv = Csv::new(
        "fig20_lambda_tcp",
        &["lambda", "fct_p10_ms", "fct_mean_ms", "fct_p90_ms", "flows"],
    )?;
    let mut summary = String::from("Fig. 20 — TCP crossbar λ sweep (2 MB flows)\n");
    let results = SweepRunner::new("fig20", lambdas.to_vec()).run(|_, &lambda| {
        let pairs = Pattern::Uniform.flows(60, 3);
        let dist = FlowSizeDist::fixed(2_000_000);
        let window = 0.05;
        let flows = poisson_flows(&pairs, lambda, window, &dist, 8);
        let res = post_warmup(
            &Scenario::on(&topo)
                .scheme(SchemeSpec::Minimal)
                .transport(Transport::tcp_default(TcpVariant::Reno))
                .workload(&flows)
                .seed(3)
                .run(),
            window,
        );
        res.fcts(None).iter().map(|s| s * 1e3).collect::<Vec<f64>>()
    });
    for (&lambda, fcts) in lambdas.iter().zip(&results) {
        csv.row(&[
            f(lambda),
            f(percentile(fcts, 10.0)),
            f(mean(fcts)),
            f(percentile(fcts, 90.0)),
            fcts.len().to_string(),
        ])?;
        summary.push_str(&format!(
            "λ={:<6} mean {:>8.2} ms p90 {:>8.2} ms ({} flows)\n",
            lambda,
            mean(fcts),
            percentile(fcts, 90.0),
            fcts.len()
        ));
    }
    csv.finish()?;
    summary.push_str("Paper: saturation knee beyond λ≈250 on the 60-endpoint crossbar.\n");
    write_summary("fig20_lambda_tcp", &summary)
}
