//! Route repair: the routing-side response to link failures.
//!
//! When links die, a routing scheme has three options (§V-G and the
//! fault-resiliency literature): do nothing and let end-to-end recovery
//! re-pick layers (the FatPaths default — failures are masked by
//! preprovisioned path diversity), *repair* the affected forwarding rows
//! in place, or rebuild from the degraded topology. This module provides
//! the shared vocabulary for the last two:
//!
//! * [`DownLinks`] — the canonical set of currently-down links, with
//!   O(1) membership and deterministic (sorted) iteration;
//! * [`RouteRepair`] — a sparse overlay of repaired forwarding rows the
//!   simulator consults *before* the scheme's own
//!   [`candidate_ports`](crate::scheme::RoutingScheme::candidate_ports).
//!
//! A repair entry stores the scheme's **final** decision for a
//! `(layer, at_router, dst_router)` key — including any internal
//! fallback (e.g. a sparse layer falling back to layer 0) — so the
//! simulator stays scheme-agnostic: present + non-empty means "use
//! exactly these ports", present + empty means "genuinely unreachable in
//! the degraded network, drop", absent means "the original row is still
//! valid, ask the scheme".
//!
//! The overlay has two representations. During construction it is a
//! *staged* hash map, so scheme repair passes can interleave inserts and
//! lookups freely. [`RouteRepair::seal`] then collapses the staged rows
//! into sorted destination-range intervals ([`lookup`] becomes a binary
//! search): repairs cluster on the contiguous router-id ranges behind a
//! failure (a fat-tree pod, a dragonfly group), so the sealed form's
//! size tracks the *damage*, not the network — the property that lets
//! one shared copy serve every simulation shard at million-endpoint
//! scale.
//!
//! [`lookup`]: RouteRepair::lookup

use crate::scheme::PortSet;
use fatpaths_net::graph::{Graph, RouterId};
use rustc_hash::{FxHashMap, FxHashSet};

/// The set of currently-down bidirectional links, canonicalized to
/// `(min, max)` pairs. Iteration order is sorted, so everything derived
/// from a `DownLinks` is deterministic regardless of how the set was
/// accumulated.
#[derive(Clone, Debug, Default)]
pub struct DownLinks {
    sorted: Vec<(RouterId, RouterId)>,
    set: FxHashSet<(RouterId, RouterId)>,
}

impl DownLinks {
    /// Builds the set from links in any orientation (duplicates collapse).
    pub fn from_links(links: &[(RouterId, RouterId)]) -> DownLinks {
        let mut sorted: Vec<(RouterId, RouterId)> =
            links.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let set = sorted.iter().copied().collect();
        DownLinks { sorted, set }
    }

    /// Builds the set from explicitly failed links *plus* whole-router
    /// failures: a dead router loses every incident link at once (the
    /// node-level fault model), so `graph` is consulted to expand each
    /// router in `dead_routers` into its incident links. Schemes stay
    /// router-agnostic — a repair pass over this set routes around the
    /// dead node because no live link reaches it.
    pub fn from_failures(
        graph: &Graph,
        links: &[(RouterId, RouterId)],
        dead_routers: &[RouterId],
    ) -> DownLinks {
        let mut all: Vec<(RouterId, RouterId)> = links.to_vec();
        for &r in dead_routers {
            all.extend(graph.neighbors(r).iter().map(|&nb| (r, nb)));
        }
        DownLinks::from_links(&all)
    }

    /// True iff link `{u, v}` is down (orientation-insensitive).
    #[inline]
    pub fn contains(&self, u: RouterId, v: RouterId) -> bool {
        self.set.contains(&(u.min(v), u.max(v)))
    }

    /// The down links in canonical sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        self.sorted.iter().copied()
    }

    /// The down links as a canonical sorted slice.
    pub fn as_slice(&self) -> &[(RouterId, RouterId)] {
        &self.sorted
    }

    /// Number of down links.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True iff nothing is down.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// One sealed repair interval: every destination in
/// `dst_start..dst_end` shares the same repaired row at
/// `(layer, at)`.
#[derive(Clone, Debug)]
struct RepairSpan {
    layer: u8,
    at: RouterId,
    dst_start: RouterId,
    /// Exclusive.
    dst_end: RouterId,
    ports: PortSet,
}

/// A sparse overlay of repaired forwarding rows, keyed by
/// `(layer, at_router, dst_router)`.
///
/// Semantics of [`RouteRepair::lookup`]:
/// * `None` — the scheme's original row survived the failures; use
///   [`candidate_ports`](crate::scheme::RoutingScheme::candidate_ports).
/// * `Some(ports)` non-empty — the repaired candidates (already
///   including any scheme-internal fallback).
/// * `Some(ports)` empty — the destination is unreachable from here in
///   the degraded network; the packet cannot be forwarded.
///
/// Construction uses the staged hash-map form ([`insert`]/[`lookup`]
/// interleave freely); [`seal`] converts to the interval form that the
/// simulator shares read-only across shards. Sealing is optional —
/// every read works in either state.
///
/// [`insert`]: RouteRepair::insert
/// [`lookup`]: RouteRepair::lookup
/// [`seal`]: RouteRepair::seal
#[derive(Clone, Debug, Default)]
pub struct RouteRepair {
    /// Staged rows (construction form; empty once sealed).
    staged: FxHashMap<(u8, RouterId, RouterId), PortSet>,
    /// Sealed destination-range intervals, sorted by
    /// `(layer, at, dst_start)` with no overlap within `(layer, at)`.
    spans: Vec<RepairSpan>,
    /// Row count covered by `spans` (cached: spans compress rows).
    sealed_rows: usize,
    /// Control-plane cost of realizing this overlay in compiled
    /// switch-forwarding state: the number of FIB rows (prefix rules)
    /// that must be installed, rewritten, or deleted across all
    /// switches. Zero for analytic schemes, which carry no FIB; the
    /// FIB-compiled adapter (`fatpaths_fib::CompiledScheme`) fills it
    /// from the range-merged overlay delta.
    pub fib_rows_rewritten: u64,
}

impl RouteRepair {
    /// An overlay with no repaired rows.
    pub fn none() -> RouteRepair {
        RouteRepair::default()
    }

    /// Installs a repaired row (empty `ports` = unreachable).
    pub fn insert(&mut self, layer: u8, at: RouterId, dst: RouterId, ports: PortSet) {
        debug_assert!(self.spans.is_empty(), "insert into a sealed overlay");
        self.staged.insert((layer, at, dst), ports);
    }

    /// Looks up a repaired row; see the type docs for the semantics.
    #[inline]
    pub fn lookup(&self, layer: u8, at: RouterId, dst: RouterId) -> Option<&PortSet> {
        if !self.staged.is_empty() {
            return self.staged.get(&(layer, at, dst));
        }
        let i = self
            .spans
            .partition_point(|s| (s.layer, s.at, s.dst_start) <= (layer, at, dst));
        let s = self.spans[..i].last()?;
        (s.layer == layer && s.at == at && dst < s.dst_end).then_some(&s.ports)
    }

    /// Collapses the staged rows into sorted destination-range
    /// intervals: adjacent destinations with identical repaired ports at
    /// the same `(layer, at)` merge into one span, so memory tracks the
    /// damage (failures repair contiguous id ranges — pods, groups),
    /// not the network size. Idempotent; every read works before or
    /// after.
    pub fn seal(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let mut rows: Vec<((u8, RouterId, RouterId), PortSet)> =
            std::mem::take(&mut self.staged).into_iter().collect();
        rows.sort_unstable_by_key(|&(k, _)| k);
        self.sealed_rows = rows.len();
        for ((layer, at, dst), ports) in rows {
            if let Some(last) = self.spans.last_mut() {
                if last.layer == layer
                    && last.at == at
                    && last.dst_end == dst
                    && last.ports == ports
                {
                    last.dst_end = dst + 1;
                    continue;
                }
            }
            self.spans.push(RepairSpan {
                layer,
                at,
                dst_start: dst,
                dst_end: dst + 1,
                ports,
            });
        }
    }

    /// Sealed intervals currently held (0 before [`RouteRepair::seal`]).
    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// Number of repaired rows (in either representation).
    pub fn len(&self) -> usize {
        self.staged.len() + self.sealed_rows
    }

    /// Iterates over the repaired rows as `((layer, at, dst), ports)`,
    /// in unspecified order before sealing and sorted key order after
    /// (sort the keys before deriving anything order-sensitive from an
    /// unsealed overlay).
    pub fn rows(&self) -> impl Iterator<Item = ((u8, RouterId, RouterId), &PortSet)> + '_ {
        self.staged.iter().map(|(&k, v)| (k, v)).chain(
            self.spans.iter().flat_map(|s| {
                (s.dst_start..s.dst_end).map(move |d| ((s.layer, s.at, d), &s.ports))
            }),
        )
    }

    /// True iff the overlay repairs nothing (the fast-path gate for the
    /// simulator's per-hop lookup).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty() && self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_links_canonicalize_and_sort() {
        let d = DownLinks::from_links(&[(7, 2), (0, 1), (2, 7), (1, 0)]);
        assert_eq!(d.as_slice(), &[(0, 1), (2, 7)]);
        assert_eq!(d.len(), 2);
        assert!(d.contains(7, 2));
        assert!(d.contains(2, 7));
        assert!(!d.contains(0, 2));
        assert!(DownLinks::from_links(&[]).is_empty());
    }

    #[test]
    fn from_failures_expands_dead_routers() {
        // Triangle 0-1-2 plus a pendant 3 on router 1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let d = DownLinks::from_failures(&g, &[(0, 2)], &[1]);
        assert_eq!(d.as_slice(), &[(0, 1), (0, 2), (1, 2), (1, 3)]);
        // Dedup across sources: the explicit link may also be incident.
        let d2 = DownLinks::from_failures(&g, &[(1, 0)], &[1]);
        assert_eq!(d2.as_slice(), &[(0, 1), (1, 2), (1, 3)]);
        // No routers → same as from_links.
        let d3 = DownLinks::from_failures(&g, &[(2, 0)], &[]);
        assert_eq!(d3.as_slice(), DownLinks::from_links(&[(0, 2)]).as_slice());
    }

    #[test]
    fn repair_lookup_semantics() {
        let mut r = RouteRepair::none();
        assert!(r.is_empty());
        r.insert(1, 4, 9, PortSet::single(3));
        r.insert(1, 5, 9, PortSet::new());
        assert_eq!(r.len(), 2);
        assert_eq!(r.lookup(1, 4, 9).unwrap().as_slice(), &[3]);
        assert!(r.lookup(1, 5, 9).unwrap().is_empty());
        assert!(r.lookup(0, 4, 9).is_none());
    }

    #[test]
    fn sealed_overlay_answers_identically() {
        let mut r = RouteRepair::none();
        // Two contiguous dst runs with equal ports (merge), one row with
        // different ports (breaks the run), plus an unreachable row.
        for dst in 10..14 {
            r.insert(0, 2, dst, PortSet::single(7));
        }
        r.insert(0, 2, 14, PortSet::single(8));
        r.insert(1, 2, 10, PortSet::new());
        r.insert(0, 3, 11, PortSet::single(7));
        let staged: Vec<_> = {
            let mut v: Vec<_> = r.rows().map(|(k, p)| (k, p.clone())).collect();
            v.sort_unstable_by_key(|&(k, _)| k);
            v
        };
        r.seal();
        assert_eq!(r.len(), 7);
        assert_eq!(r.num_spans(), 4, "contiguous equal rows must merge");
        let sealed: Vec<_> = r.rows().map(|(k, p)| (k, p.clone())).collect();
        assert_eq!(staged, sealed, "rows() must survive sealing");
        for &(k, ref p) in &staged {
            assert_eq!(
                r.lookup(k.0, k.1, k.2).map(|x| x.as_slice()),
                Some(p.as_slice())
            );
        }
        // Misses on either side of the spans.
        assert!(r.lookup(0, 2, 9).is_none());
        assert!(r.lookup(0, 2, 15).is_none());
        assert!(r.lookup(0, 4, 11).is_none());
        assert!(r.lookup(2, 2, 10).is_none());
        // Unreachable row stays Some(empty) after sealing.
        assert!(r.lookup(1, 2, 10).unwrap().is_empty());
        // Sealing twice is a no-op.
        r.seal();
        assert_eq!(r.len(), 7);
        assert_eq!(r.num_spans(), 4);
    }

    #[test]
    fn sealing_an_empty_overlay_is_empty() {
        let mut r = RouteRepair::none();
        r.seal();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.lookup(0, 0, 0).is_none());
    }
}
