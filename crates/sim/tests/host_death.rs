//! Mid-flow host-death semantics (`SimConfig::abort_on_host_death`):
//! separates "the host came back and the *same* transfer finished"
//! (default stall-and-resume) from "the transfer would have to be
//! restarted" (abort after k RTOs against a dead endpoint — the
//! connection reset a real stack surfaces).

use fatpaths_net::fault::FaultPlan;
use fatpaths_sim::{Scenario, SchemeSpec, SimResult};
use fatpaths_workloads::arrivals::FlowSpec;

const MS: u64 = 1_000_000_000; // 1 ms in ps

/// One large flow toward router 30's endpoint (still transferring when
/// the router dies at 1 ms), plus an unaffected control flow.
fn run(abort_k: Option<u32>, revive_at: u64) -> SimResult {
    run_plan(
        abort_k,
        4 << 20,
        FaultPlan::none()
            .router_down_at(MS, 30)
            .router_up_at(revive_at, 30),
    )
}

fn run_plan(abort_k: Option<u32>, size: u64, plan: FaultPlan) -> SimResult {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
    let flows = [
        FlowSpec {
            src: 0,
            dst: 30,
            size,
            start: 0,
        },
        FlowSpec {
            src: 5,
            dst: 12,
            size: 64 * 1024,
            start: 0,
        },
    ];
    let mut sc = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .workload(&flows)
        .seed(2)
        .horizon(60 * MS)
        .fault_plan(plan);
    if let Some(k) = abort_k {
        sc = sc.abort_on_host_death(k);
    }
    sc.run()
}

#[test]
fn without_the_knob_the_same_transfer_survives_the_reboot() {
    let res = run(None, 10 * MS);
    let hit = &res.flows[0];
    assert!(!hit.aborted);
    let finish = hit.finish.expect("flow resumes after the host revives");
    assert!(
        finish > 10 * MS,
        "completion {finish} must postdate the 10 ms revival"
    );
    assert!(res.flows[1].finish.is_some(), "control flow unaffected");
    assert_eq!(res.aborted(), 0);
    assert_eq!(res.completion_rate(), 1.0);
}

#[test]
fn with_the_knob_the_transfer_aborts_after_k_dead_rtos() {
    let res = run(Some(2), 10 * MS);
    let hit = &res.flows[0];
    assert!(hit.aborted, "2 RTOs against a dead host must abort");
    assert!(hit.finish.is_none(), "aborted transfers never complete");
    assert!(!hit.host_dead, "the flow *was* injected — host died later");
    // The control flow is untouched by the knob.
    assert!(res.flows[1].finish.is_some());
    assert!(!res.flows[1].aborted);
    assert_eq!(res.aborted(), 1);
    // Aborted flows stay in the eligible denominator: the reset is the
    // fault's scheme-visible outcome.
    assert_eq!(res.host_dead(), 0);
    assert!((res.completion_rate() - 0.5).abs() < 1e-9);
}

#[test]
fn generous_rto_budget_outlasts_a_short_reboot() {
    // Downtime 3 ms < budget · 2 ms NDP RTO: the host returns before
    // the budget runs out, so the transfer resumes — the knob only
    // fires when the outage outlasts k timeouts.
    let res = run(Some(8), 4 * MS);
    let hit = &res.flows[0];
    assert!(!hit.aborted, "budget must survive a 3 ms outage");
    assert!(hit.finish.is_some());
    assert_eq!(res.completion_rate(), 1.0);
}

#[test]
fn separate_survivable_outages_do_not_sum_to_an_abort() {
    // The budget counts *consecutive* RTOs against a dead endpoint:
    // three separate ~2.5 ms outages (≤ 2 dead RTOs each against the
    // 2 ms NDP RTO) under k = 3 must each reset the count once traffic
    // flows again — a lifetime sum of ~6 dead RTOs is irrelevant.
    let mut plan = FaultPlan::none();
    for i in 0..3u64 {
        let down = MS + i * 5 * MS; // 1 ms, 6 ms, 11 ms
        plan = plan
            .router_down_at(down, 30)
            .router_up_at(down + 5 * MS / 2, 30);
    }
    let res = run_plan(Some(3), 16 << 20, plan);
    let hit = &res.flows[0];
    assert!(
        !hit.aborted,
        "separate short outages must not accumulate into an abort"
    );
    assert!(hit.finish.is_some(), "the transfer rides out every outage");
    assert_eq!(res.completion_rate(), 1.0);
}
