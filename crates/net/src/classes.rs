//! Comparable-cost topology configurations by size class (§II-B, §VII-A2).
//!
//! The paper evaluates four size classes — small (≈1k), medium (≈10k),
//! large (≈100k, in practice ≈80k in Fig. 13), huge (≈1M endpoints) — and,
//! within each class, picks per-topology parameters so that endpoint counts
//! and hardware budgets are as close as the discrete parameter spaces allow.
//! Concentration follows the `p = k'/D` rule of §II-B (shown in §VII to
//! maximize throughput at minimum cost for random uniform traffic).
//!
//! The medium-class entries reproduce the paper's Table IV configurations
//! exactly.

use crate::topo::{
    complete::complete, dragonfly::dragonfly, fattree::fat_tree, hyperx::hyperx,
    jellyfish::equivalent_jellyfish, slimfly::slim_fly, xpander::xpander, TopoKind, Topology,
};

/// The paper's four network size classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// ≈ 1,000 endpoints.
    Small,
    /// ≈ 10,000 endpoints (the paper's Table IV / main-evaluation class).
    Medium,
    /// ≈ 80,000–100,000 endpoints (Fig. 13 left/middle).
    Large,
    /// ≈ 1,000,000 endpoints (Fig. 13 right).
    Huge,
}

impl SizeClass {
    /// Nominal endpoint count of the class.
    pub fn nominal_endpoints(self) -> usize {
        match self {
            SizeClass::Small => 1_000,
            SizeClass::Medium => 10_000,
            SizeClass::Large => 80_000,
            SizeClass::Huge => 1_000_000,
        }
    }

    /// All classes in ascending size order.
    pub fn all() -> [SizeClass; 4] {
        [
            SizeClass::Small,
            SizeClass::Medium,
            SizeClass::Large,
            SizeClass::Huge,
        ]
    }
}

/// Builds the canonical comparable-cost instance of `kind` in `class`.
///
/// Seeds only matter for randomized topologies (JF, XP). Jellyfish here is
/// the Slim Fly-equivalent instance (`SF-JF`), the representative the paper
/// shows when space is limited (§VII-A8); use
/// [`equivalent_jellyfish`] directly for other `X-JF` controls.
pub fn build(kind: TopoKind, class: SizeClass, seed: u64) -> Topology {
    use SizeClass::*;
    match (kind, class) {
        // ---- Slim Fly: q prime, Nr = 2q², k' = (3q∓1)/2, p = ⌊k'/2⌋ ----
        (TopoKind::SlimFly, Small) => slim_fly(11, 8).unwrap(), // N=1,936
        (TopoKind::SlimFly, Medium) => slim_fly(19, 14).unwrap(), // N=10,108 (Table IV)
        (TopoKind::SlimFly, Large) => slim_fly(37, 28).unwrap(), // N=76,664
        (TopoKind::SlimFly, Huge) => slim_fly(89, 66).unwrap(), // N=1,045,572
        // ---- Dragonfly: N = 4p⁴+2p², k' = 3p−1 ----
        (TopoKind::Dragonfly, Small) => dragonfly(4), // N=1,056
        (TopoKind::Dragonfly, Medium) => dragonfly(8), // N=16,512 (Table IV)
        (TopoKind::Dragonfly, Large) => dragonfly(12), // N=83,232
        (TopoKind::Dragonfly, Huge) => dragonfly(22), // N=937,992
        // ---- HyperX: L=3 regular cube, k' = 3(S−1), p = ⌈k'/3⌉ = S−1 ----
        (TopoKind::HyperX, Small) => hyperx(3, 6, 5), // N=1,080
        (TopoKind::HyperX, Medium) => hyperx(3, 11, 10), // N=13,310 (Table IV)
        (TopoKind::HyperX, Large) => hyperx(3, 17, 16), // N=78,608
        (TopoKind::HyperX, Huge) => hyperx(3, 32, 31), // N=1,015,808
        // ---- Xpander: ℓ = k', Nr = k'(k'+1), p = ⌈k'/2⌉ ----
        (TopoKind::Xpander, Small) => xpander(12, 12, 6, seed), // N=936
        (TopoKind::Xpander, Medium) => xpander(32, 32, 16, seed), // N=16,896 (Table IV)
        (TopoKind::Xpander, Large) => xpander(56, 56, 25, seed), // N=79,800
        (TopoKind::Xpander, Huge) => xpander(128, 128, 63, seed), // N=1,040,256
        // ---- Fat tree: 5k²/4 routers, N = os·k³/4 ----
        (TopoKind::FatTree, Small) => fat_tree(16, 1), // N=1,024
        (TopoKind::FatTree, Medium) => fat_tree(28, 2), // N=10,976 (2× oversub, §VII-A1)
        (TopoKind::FatTree, Large) => fat_tree(54, 2), // N=78,732
        (TopoKind::FatTree, Huge) => fat_tree(128, 2), // N=1,048,576
        // ---- Complete graph: p = k' ----
        (TopoKind::Complete, Small) => complete(31, 31), // N=992
        (TopoKind::Complete, Medium) => complete(100, 100), // N=10,100 (Table IV)
        (TopoKind::Complete, Large) => complete(282, 282), // N=79,806
        (TopoKind::Complete, Huge) => complete(1000, 1000), // N=1,001,000
        // ---- Jellyfish: the SF-equivalent control ----
        (TopoKind::Jellyfish, c) => {
            let sf = build(TopoKind::SlimFly, c, seed);
            equivalent_jellyfish(&sf, seed)
        }
        (TopoKind::Star, c) => crate::topo::star::star(c.nominal_endpoints() as u32),
    }
}

/// The five low-diameter topologies + fat tree, in the paper's usual order.
pub fn evaluated_kinds() -> [TopoKind; 6] {
    [
        TopoKind::SlimFly,
        TopoKind::Dragonfly,
        TopoKind::HyperX,
        TopoKind::Xpander,
        TopoKind::Jellyfish,
        TopoKind::FatTree,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_class_matches_table_iv() {
        let sf = build(TopoKind::SlimFly, SizeClass::Medium, 1);
        assert_eq!(
            (sf.num_routers(), sf.network_radix(), sf.num_endpoints()),
            (722, 29, 10108)
        );
        let df = build(TopoKind::Dragonfly, SizeClass::Medium, 1);
        assert_eq!(
            (df.num_routers(), df.network_radix(), df.num_endpoints()),
            (2064, 23, 16512)
        );
        let hx = build(TopoKind::HyperX, SizeClass::Medium, 1);
        assert_eq!(
            (hx.num_routers(), hx.network_radix(), hx.num_endpoints()),
            (1331, 30, 13310)
        );
        let xp = build(TopoKind::Xpander, SizeClass::Medium, 1);
        assert_eq!(
            (xp.num_routers(), xp.network_radix(), xp.num_endpoints()),
            (1056, 32, 16896)
        );
        let ft = build(TopoKind::FatTree, SizeClass::Medium, 1);
        assert_eq!(ft.num_routers(), 980);
        assert!((9_000..=17_000).contains(&ft.num_endpoints()));
    }

    #[test]
    fn small_class_sizes_comparable() {
        for kind in evaluated_kinds() {
            let t = build(kind, SizeClass::Small, 7);
            let n = t.num_endpoints();
            assert!(
                (900..=2_000).contains(&n),
                "{:?} small N={n} out of band",
                kind
            );
        }
    }

    #[test]
    fn jf_equivalent_of_sf() {
        let jf = build(TopoKind::Jellyfish, SizeClass::Small, 3);
        let sf = build(TopoKind::SlimFly, SizeClass::Small, 3);
        assert_eq!(jf.num_routers(), sf.num_routers());
        assert_eq!(jf.network_radix(), sf.network_radix());
    }

    #[test]
    fn concentration_rule_p_over_d() {
        // p ≈ k'/D for the low-diameter entries (±1 rounding).
        for (kind, class) in [
            (TopoKind::SlimFly, SizeClass::Medium),
            (TopoKind::HyperX, SizeClass::Medium),
            (TopoKind::Dragonfly, SizeClass::Medium),
        ] {
            let t = build(kind, class, 1);
            let p = t.concentration[0] as f64;
            let expect = t.network_radix() as f64 / t.diameter as f64;
            assert!(
                (p - expect).abs() <= 1.5,
                "{:?}: p={p} vs k'/D={expect}",
                kind
            );
        }
    }
}
