//! Parallel-execution trajectory benchmark: times the pool-bound
//! pipeline stages — APSP, layered routing-table construction, a
//! single sharded packet simulation (with and without telemetry), a
//! scenario-grid sweep, the degraded/churn fault sweeps, and the
//! adaptive-flowlet sweep — at
//! 1, 2, and N threads, and writes the results to
//! `BENCH_parallel.json` so future PRs have a perf baseline to
//! compare against.
//!
//! The pool size is fixed at process start, so the harness re-executes
//! itself once per (stage, threads) cell with `FATPATHS_THREADS` set,
//! parses the child's wall-clock, and assembles the JSON:
//!
//! ```text
//! parallel_bench                 # writes BENCH_parallel.json (cwd)
//! parallel_bench --quick         # CI mode: 1- and 2-thread cells only
//! parallel_bench --stage apsp    # child mode: prints seconds to stdout
//! parallel_bench --profile       # execution-layer profile of the
//!                                # 119k-endpoint scale scenario, JSON
//! ```
//!
//! `--quick` keeps each stage's workload identical to the full run (so
//! its numbers compare against the committed baseline on matching
//! (stage, threads) keys — see `bench_check`) and only trims the
//! thread-count axis.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_diversity::apsp::shortest_path_stats;
use fatpaths_net::fault::{FaultModel, FaultPlan};
use fatpaths_net::topo::slimfly::slim_fly;
use fatpaths_sim::{cell_seed, LoadBalancing, Scenario, SchemeSpec, SweepRunner};
use fatpaths_workloads::arrivals::FlowSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Stages measured, in report order.
const STAGES: [&str; 11] = [
    "apsp",
    "layer_build",
    "fib_compile",
    "te_negotiate",
    "sim_run",
    "sim_scale",
    "telemetry_overhead",
    "sweep",
    "degraded_sweep",
    "churn_sweep",
    "adaptive_sweep",
];

/// The endpoint-scale scenario shared by the `sim_scale` stage and
/// `--profile`: an all-to-all permutation (`e → e + n/2`) of 16 KiB NDP
/// flows on `fat_tree(62, 2)` — 4805 routers / 119,164 endpoints —
/// under minimal routing + packet spray. The same configuration as the
/// `FATPATHS_SCALE=1` acceptance test, so a wall-clock or memory
/// regression here is a regression of the scale story itself.
fn scale_run(shards: u32) -> fatpaths_sim::SimResult {
    let t = fatpaths_net::topo::fattree::fat_tree(62, 2);
    let n = t.num_endpoints() as u64;
    let flows: Vec<FlowSpec> = (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + n / 2) % n) as u32,
            size: 16 * 1024,
            start: 0,
        })
        .filter(|f| f.src != f.dst)
        .collect();
    let r = Scenario::on(&t)
        .scheme(SchemeSpec::Minimal)
        .lb(LoadBalancing::PacketSpray)
        .workload(&flows)
        .shards(shards)
        .run();
    assert!(r.completion_rate() == 1.0);
    r
}

/// Runs one stage and returns its wall-clock seconds.
fn run_stage(stage: &str) -> f64 {
    match stage {
        "apsp" => {
            // §IV-B1 statistics on a Large-class Slim Fly (~80k
            // endpoints): one BFS per source, fanned out on the pool.
            let t = fatpaths_net::classes::build(
                fatpaths_net::topo::TopoKind::SlimFly,
                fatpaths_net::classes::SizeClass::Large,
                1,
            );
            let start = Instant::now();
            let stats = shortest_path_stats(&t.graph);
            assert_eq!(stats.diameter, 2);
            start.elapsed().as_secs_f64()
        }
        "layer_build" => {
            // The paper's headline configuration on a Medium-class Slim
            // Fly: 9 random layers + full per-(layer, destination) tables.
            let t = fatpaths_net::classes::build(
                fatpaths_net::topo::TopoKind::SlimFly,
                fatpaths_net::classes::SizeClass::Medium,
                1,
            );
            let ls = build_random_layers(&t.graph, &LayerConfig::new(9, 0.6, 7));
            let start = Instant::now();
            let rt = RoutingTables::build(&t.graph, &ls);
            assert_eq!(rt.n_layers(), 9);
            start.elapsed().as_secs_f64()
        }
        "fib_compile" => {
            // The FIB compiler on the paper's headline configuration
            // (9 layers, ρ = 0.6) over a Medium-class Slim Fly: per-
            // switch rule rows compile in parallel on the pool, in both
            // host-route and aggregated modes (~9.4M candidate-port
            // enumerations total).
            use fatpaths_fib::{compile, CompileMode};
            let t = fatpaths_net::classes::build(
                fatpaths_net::topo::TopoKind::SlimFly,
                fatpaths_net::classes::SizeClass::Medium,
                1,
            );
            let ls = build_random_layers(&t.graph, &LayerConfig::new(9, 0.6, 7));
            let rt = RoutingTables::build(&t.graph, &ls);
            let start = Instant::now();
            let host = compile(&t, &rt, CompileMode::HostRoutes);
            let agg = compile(&t, &rt, CompileMode::Aggregated);
            let (hs, ags) = (host.stats(), agg.stats());
            assert_eq!(hs.raw_entries, ags.raw_entries);
            assert!(ags.entries_total <= hs.entries_total);
            start.elapsed().as_secs_f64()
        }
        "te_negotiate" => {
            // Congestion negotiation on a Small-class Slim Fly under the
            // worst-case matrix: per-iteration tree rebuilds fan out over
            // (layer, destination) on the pool; load measurement and
            // pricing stay sequential by design.
            use fatpaths_te::{endpoint_demands, TeConfig, TeScheme};
            use fatpaths_workloads::matrices::{matrix_flows, MatrixSpec};
            let t = fatpaths_net::classes::build(
                fatpaths_net::topo::TopoKind::SlimFly,
                fatpaths_net::classes::SizeClass::Small,
                1,
            );
            let ls = build_random_layers(&t.graph, &LayerConfig::new(9, 0.6, 7));
            let rt = RoutingTables::build(&t.graph, &ls);
            let flows = matrix_flows(&t, &MatrixSpec::WorstCase { intensity: 0.7 }, 3);
            let demands = endpoint_demands(&t, &flows);
            let cfg = TeConfig {
                max_iterations: 12,
                ..TeConfig::default()
            };
            let start = Instant::now();
            let te = TeScheme::negotiate(&t.graph, &rt, &demands, &cfg);
            assert!(te.peak().is_finite() && te.iterations() >= 1);
            start.elapsed().as_secs_f64()
        }
        "sim_run" => {
            // Single-scenario latency (not sweep throughput): one
            // Medium-class fat tree (~11k endpoints), NDP + FatPaths
            // layers, permutation traffic — the sharded event loop is
            // the only parallelism, so the thread axis doubles as the
            // shard axis (1 shard at 1 thread, 2 at 2, …).
            let shards: u32 = std::env::var("FATPATHS_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            let t = fatpaths_net::topo::fattree::fat_tree(28, 2);
            let n = t.num_endpoints() as u64;
            let flows: Vec<FlowSpec> = (0..n)
                .map(|e| FlowSpec {
                    src: e as u32,
                    dst: ((e + 37) % n) as u32,
                    size: 64 * 1024,
                    start: 0,
                })
                .filter(|f| t.endpoint_router(f.src) != t.endpoint_router(f.dst))
                .collect();
            let start = Instant::now();
            let r = Scenario::on(&t)
                .scheme(SchemeSpec::LayeredRandom {
                    n_layers: 9,
                    rho: 0.6,
                })
                .workload(&flows)
                .seed(2)
                .shards(shards)
                .run();
            assert!(r.completion_rate() == 1.0);
            start.elapsed().as_secs_f64()
        }
        "sim_scale" => {
            // Endpoint-scale latency: the 119k-endpoint permutation from
            // `scale_run`, with the thread axis doubling as the shard
            // axis (as in `sim_run`). Guards the hot loop's allocation
            // discipline — wall-clock here moves when per-packet work or
            // arena churn regresses at scale.
            let shards: u32 = std::env::var("FATPATHS_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            let start = Instant::now();
            scale_run(shards);
            start.elapsed().as_secs_f64()
        }
        "telemetry_overhead" => {
            // The `sim_run` workload with full telemetry on (interval
            // probes + span sampling of every flow). Priced against the
            // `sim_run` baseline this stage bounds the *enabled* cost;
            // the *disabled* cost is bounded by `sim_run` itself staying
            // flat, since its hot loop sees telemetry only as one
            // `Option` check per wire start.
            use fatpaths_sim::TelemetryConfig;
            let shards: u32 = std::env::var("FATPATHS_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            let t = fatpaths_net::topo::fattree::fat_tree(28, 2);
            let n = t.num_endpoints() as u64;
            let flows: Vec<FlowSpec> = (0..n)
                .map(|e| FlowSpec {
                    src: e as u32,
                    dst: ((e + 37) % n) as u32,
                    size: 64 * 1024,
                    start: 0,
                })
                .filter(|f| t.endpoint_router(f.src) != t.endpoint_router(f.dst))
                .collect();
            let start = Instant::now();
            let (r, trace) = Scenario::on(&t)
                .scheme(SchemeSpec::LayeredRandom {
                    n_layers: 9,
                    rho: 0.6,
                })
                .workload(&flows)
                .seed(2)
                .shards(shards)
                .telemetry(TelemetryConfig {
                    span_every: 1,
                    seed: 2,
                    ..TelemetryConfig::on()
                })
                .run_traced();
            assert!(r.completion_rate() == 1.0);
            assert!(trace.total_wire_bytes() > 0);
            start.elapsed().as_secs_f64()
        }
        "sweep" => {
            // A miniature baselines-style grid: 4 schemes × 4 permutation
            // offsets, each cell a scheme build + packet simulation.
            let t = slim_fly(5, 2).unwrap();
            let n = t.num_endpoints() as u64;
            let specs = [
                SchemeSpec::LayeredRandom {
                    n_layers: 4,
                    rho: 0.6,
                },
                SchemeSpec::Minimal,
                SchemeSpec::Ksp { k: 3 },
                SchemeSpec::Valiant { n_layers: 4 },
            ];
            let mut cells = Vec::new();
            for si in 0..specs.len() {
                for offset in [21u64, 33, 47, 61] {
                    cells.push((si, offset));
                }
            }
            let start = Instant::now();
            let results = SweepRunner::new("bench-sweep", cells).run(|_, &(si, offset)| {
                let flows: Vec<FlowSpec> = (0..n)
                    .map(|e| FlowSpec {
                        src: e as u32,
                        dst: ((e + offset) % n) as u32,
                        size: 192 * 1024,
                        start: 0,
                    })
                    .filter(|f| t.endpoint_router(f.src) != t.endpoint_router(f.dst))
                    .collect();
                Scenario::on(&t)
                    .scheme(specs[si])
                    .workload(&flows)
                    .seed(2)
                    .run()
                    .completion_rate()
            });
            assert!(results.iter().all(|&r| r == 1.0));
            start.elapsed().as_secs_f64()
        }
        "degraded_sweep" => {
            // Resilience-style cells: packet runs on a degraded Slim Fly
            // (per-port down-bitmask on the hot path, detection-triggered
            // route repair mid-run) across schemes × failure fractions.
            let t = slim_fly(5, 2).unwrap();
            let n = t.num_endpoints() as u64;
            let specs = [
                SchemeSpec::LayeredRandom {
                    n_layers: 9,
                    rho: 0.6,
                },
                SchemeSpec::Minimal,
            ];
            let mut cells = Vec::new();
            for si in 0..specs.len() {
                for frac_pct in [5u64, 10] {
                    for offset in [21u64, 47] {
                        cells.push((si, frac_pct, offset));
                    }
                }
            }
            let start = Instant::now();
            let results =
                SweepRunner::new("bench-degraded", cells).run(|_, &(si, frac_pct, offset)| {
                    let flows: Vec<FlowSpec> = (0..n)
                        .map(|e| FlowSpec {
                            src: e as u32,
                            dst: ((e + offset) % n) as u32,
                            size: 128 * 1024,
                            start: 0,
                        })
                        .filter(|f| t.endpoint_router(f.src) != t.endpoint_router(f.dst))
                        .collect();
                    let plan = FaultPlan::sample(
                        &t,
                        &FaultModel::UniformFraction {
                            fraction: frac_pct as f64 / 100.0,
                        },
                        cell_seed("bench-degraded", &[frac_pct]),
                    );
                    Scenario::on(&t)
                        .scheme(specs[si])
                        .workload(&flows)
                        .seed(2)
                        .horizon(30_000_000_000)
                        .fault_plan(plan)
                        .detection_delay(50_000_000)
                        .run()
                        .completion_rate()
                });
            // Repaired routing delivers everything on a still-connected
            // degraded SF (a correctness canary inside the benchmark).
            assert!(results.iter().all(|&r| r > 0.99), "{results:?}");
            start.elapsed().as_secs_f64()
        }
        "churn_sweep" => {
            // Rolling-reboot cells: timed router-down/up events, the
            // host-dead workload filter, and one batched repair pass per
            // event on the detection path — across schemes × staggers.
            let t = slim_fly(5, 2).unwrap();
            let n = t.num_endpoints() as u64;
            let specs = [
                SchemeSpec::LayeredRandom {
                    n_layers: 9,
                    rho: 0.6,
                },
                SchemeSpec::Minimal,
            ];
            let mut cells = Vec::new();
            for si in 0..specs.len() {
                for stagger_us in [500u64, 2_000] {
                    for offset in [21u64, 47] {
                        cells.push((si, stagger_us, offset));
                    }
                }
            }
            let start = Instant::now();
            let results =
                SweepRunner::new("bench-churn", cells).run(|_, &(si, stagger_us, offset)| {
                    let flows: Vec<FlowSpec> = (0..n)
                        .map(|e| FlowSpec {
                            src: e as u32,
                            dst: ((e + offset) % n) as u32,
                            size: 64 * 1024,
                            start: 0,
                        })
                        .filter(|f| t.endpoint_router(f.src) != t.endpoint_router(f.dst))
                        .collect();
                    let plan = FaultPlan::rolling_reboot(
                        &t,
                        0.1,
                        1_000_000_000,
                        stagger_us * 1_000_000,
                        3_000_000_000,
                        cell_seed("bench-churn", &[stagger_us]),
                    );
                    Scenario::on(&t)
                        .scheme(specs[si])
                        .workload(&flows)
                        .seed(2)
                        .horizon(30_000_000_000)
                        .fault_plan(plan)
                        .detection_delay(50_000_000)
                        .run()
                        .completion_rate()
                });
            // Eligible flows all complete once the roll ends within the
            // horizon (a correctness canary inside the benchmark).
            assert!(results.iter().all(|&r| r > 0.99), "{results:?}");
            start.elapsed().as_secs_f64()
        }
        "adaptive_sweep" => {
            // Adaptive-flowlet cells: every flowlet boundary snapshots
            // the sender's attachment-router queue depths and runs the
            // least-loaded pick, so this stage prices the adaptive hot
            // path against the oblivious hash on the same adversarial
            // matrices the `adaptive` experiment scores.
            use fatpaths_sim::AdaptiveMode;
            use fatpaths_workloads::matrices::{matrix_flows, MatrixSpec};
            let t = slim_fly(5, 2).unwrap();
            let specs = [
                MatrixSpec::HeavyHitter {
                    hotspots: 2,
                    skew: 0.5,
                },
                MatrixSpec::Incast {
                    targets: 4,
                    fan_in: 8,
                },
            ];
            let mut cells = Vec::new();
            for mi in 0..specs.len() {
                for adaptive in [false, true] {
                    for seed in [3u64, 9] {
                        cells.push((mi, adaptive, seed));
                    }
                }
            }
            let start = Instant::now();
            let results =
                SweepRunner::new("bench-adaptive", cells).run(|_, &(mi, adaptive, seed)| {
                    let flows: Vec<FlowSpec> = matrix_flows(&t, &specs[mi], seed)
                        .into_iter()
                        .map(|(src, dst)| FlowSpec {
                            src,
                            dst,
                            size: 256 * 1024,
                            start: 0,
                        })
                        .collect();
                    let mut sc = Scenario::on(&t)
                        .scheme(SchemeSpec::LayeredRandom {
                            n_layers: 9,
                            rho: 0.6,
                        })
                        .workload(&flows)
                        .seed(2)
                        .horizon(30_000_000_000);
                    if adaptive {
                        sc = sc.adaptive(AdaptiveMode::QueueDepth);
                    }
                    sc.run().completion_rate()
                });
            // Skewed SF cells all drain within the horizon whether the
            // boundary steers or hashes (a correctness canary inside
            // the benchmark).
            assert!(results.iter().all(|&r| r > 0.99), "{results:?}");
            start.elapsed().as_secs_f64()
        }
        other => panic!("unknown stage '{other}'"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--stage") {
        let stage = args.get(pos + 1).expect("--stage needs a name");
        println!("{:.6}", run_stage(stage));
        return;
    }
    if args.iter().any(|a| a == "--profile") {
        // Execution-layer profile of the scale scenario: window count,
        // mailbox traffic, fault-epoch publications, and peak RSS, as
        // JSON on stdout. `FATPATHS_THREADS` picks the shard count.
        let shards: u32 = std::env::var("FATPATHS_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let start = Instant::now();
        let r = scale_run(shards);
        let secs = start.elapsed().as_secs_f64();
        let p = r.profile;
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"scenario\": \"sim_scale\",");
        let _ = writeln!(json, "  \"wall_clock_seconds\": {secs:.6},");
        let _ = writeln!(json, "  \"shards\": {},", p.shards);
        let _ = writeln!(json, "  \"windows\": {},", p.windows);
        let _ = writeln!(json, "  \"mailbox_msgs\": {},", p.mailbox_msgs);
        let _ = writeln!(json, "  \"mailbox_bytes\": {},", p.mailbox_bytes);
        let _ = writeln!(json, "  \"epochs_published\": {},", p.epochs_published);
        let _ = writeln!(json, "  \"repair_ticks\": {},", p.repair_ticks);
        let _ = writeln!(json, "  \"peak_rss_kb\": {}", p.peak_rss_kb);
        json.push_str("}\n");
        print!("{json}");
        return;
    }

    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let quick = args.iter().any(|a| a == "--quick");
    let mut thread_counts = if quick {
        // CI mode: only the 1- and 2-thread cells, so the run stays
        // cheap and its keys exist in any full baseline. bench_check
        // still compares only when the baseline came from a machine
        // with the same core count (wall-clock across machine classes
        // is noise) — regenerate the baseline on a CI-class machine to
        // arm the gate there.
        vec![1usize, 2]
    } else {
        vec![1usize, 2, machine]
    };
    thread_counts.dedup();
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let exe = std::env::current_exe().expect("current_exe");
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"parallel_bench\",");
    let _ = writeln!(json, "  \"machine_threads\": {machine},");
    let _ = writeln!(json, "  \"wall_clock_seconds\": {{");
    // Quick (CI) mode feeds a ±25% regression gate, so damp scheduler
    // jitter by keeping the best of two runs per cell.
    let runs = if quick { 2 } else { 1 };
    for (si, stage) in STAGES.iter().enumerate() {
        let _ = write!(json, "    \"{stage}\": {{");
        for (ti, &threads) in thread_counts.iter().enumerate() {
            let mut secs = f64::INFINITY;
            for _ in 0..runs {
                let out = std::process::Command::new(&exe)
                    .args(["--stage", stage])
                    .env("FATPATHS_THREADS", threads.to_string())
                    .output()
                    .expect("spawn child bench");
                assert!(
                    out.status.success(),
                    "stage {stage} at {threads} threads failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                let run_secs: f64 = String::from_utf8_lossy(&out.stdout)
                    .trim()
                    .parse()
                    .expect("child printed seconds");
                secs = secs.min(run_secs);
            }
            eprintln!("{stage:<12} threads={threads}: {secs:.3}s");
            let sep = if ti + 1 < thread_counts.len() {
                ", "
            } else {
                ""
            };
            let _ = write!(json, "\"{threads}\": {secs:.6}{sep}");
        }
        let sep = if si + 1 < STAGES.len() { "," } else { "" };
        let _ = writeln!(json, "}}{sep}");
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = std::env::var("FATPATHS_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel.json".into());
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    eprintln!("→ {path}");
    print!("{json}");
}
