//! Bare-Ethernet (htsim-style, NDP transport) performance experiments:
//! Fig. 2 (randomized workload, FatPaths vs NDP fat tree), Fig. 11
//! (skewed adversarial workload), Fig. 12 (layer count × ρ sweep),
//! Fig. 21 (λ sweep: fat tree vs crossbar baseline).
//!
//! Every figure's scenario grid runs as a parallel [`SweepRunner`]
//! sweep; CSV rows and summary lines are assembled serially in grid
//! order afterwards, so output is identical for any thread count.

use crate::common::{f, label, pattern_workload, post_warmup, topo_set, write_summary, Csv};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::{star::star, TopoKind, Topology};
use fatpaths_sim::metrics::{mean, percentile, throughput_by_size};
use fatpaths_sim::{coord_str, LoadBalancing, Scenario, SchemeSpec, SimResult, SweepRunner};
use fatpaths_workloads::arrivals::{poisson_flows, FlowSpec};
use fatpaths_workloads::patterns::{adversarial_for, Pattern};
use fatpaths_workloads::sizes::FlowSizeDist;
use std::io;

fn class_for(quick: bool) -> SizeClass {
    if quick {
        SizeClass::Small
    } else {
        SizeClass::Medium
    }
}

/// Runs one NDP experiment on a topology: FatPaths (9 layers, ρ=0.6) for
/// low-diameter networks; NDP packet spraying for the fat tree (its native
/// scheme, per §VII-A3).
fn run_native(topo: &Topology, flows: &[FlowSpec], seed: u64) -> SimResult {
    let sc = Scenario::on(topo).workload(flows).seed(seed);
    if topo.kind == TopoKind::FatTree {
        sc.scheme(SchemeSpec::Minimal)
            .lb(LoadBalancing::PacketSpray)
            .run()
    } else {
        sc.scheme(SchemeSpec::LayeredRandom {
            n_layers: 9,
            rho: 0.6,
        })
        .run()
    }
}

/// Fig. 2: per-flow throughput vs flow size, randomized permutation
/// workload, similar-cost networks.
pub fn fig2(quick: bool) -> io::Result<()> {
    let class = class_for(quick);
    let window = if quick { 0.004 } else { 0.008 };
    let lambda = 300.0;
    let mut csv = Csv::new(
        "fig2_throughput",
        &["topology", "flow_kib", "mean_mib_s", "tail1_mib_s", "flows"],
    )?;
    let mut summary = String::from("Fig. 2 — throughput/flow (randomized workload, NDP-style)\n");
    let topos = topo_set(class, 3);
    // One cell per topology: workload generation + the simulation.
    let cells: Vec<usize> = (0..topos.len()).collect();
    let results = SweepRunner::new("fig2", cells).run(|_, &ti| {
        let topo = &topos[ti];
        let flows = pattern_workload(topo, &Pattern::Permutation, lambda, window, true, 9);
        post_warmup(&run_native(topo, &flows, 4), window)
    });
    let mut ft_mean = 0.0;
    let mut ld_best: f64 = 0.0;
    for (topo, res) in topos.iter().zip(&results) {
        let groups = throughput_by_size(res);
        let mut all = Vec::new();
        for (size, m, t1, n) in &groups {
            csv.row(&[
                label(topo),
                (size / 1024).to_string(),
                f(*m),
                f(*t1),
                n.to_string(),
            ])?;
            all.push(*m);
        }
        let overall = mean(&all);
        summary.push_str(&format!(
            "{:<5} mean TPF over sizes: {:>7.1} MiB/s ({} flows, trims {})\n",
            label(topo),
            overall,
            res.flows.len(),
            res.trims
        ));
        if topo.kind == TopoKind::FatTree {
            ft_mean = overall;
        } else {
            ld_best = ld_best.max(overall);
        }
    }
    csv.finish()?;
    summary.push_str(&format!(
        "Best low-diameter vs fat tree: {:.1} vs {:.1} MiB/s ({:+.0}%) — paper: ≈+15%.\n",
        ld_best,
        ft_mean,
        100.0 * (ld_best / ft_mean - 1.0)
    ));
    write_summary("fig2_throughput", &summary)
}

/// Fig. 11: skewed (non-randomized) adversarial traffic: FatPaths
/// non-minimal routing vs minimal-only NDP baseline on each topology.
pub fn fig11(quick: bool) -> io::Result<()> {
    let class = class_for(quick);
    let window = if quick { 0.004 } else { 0.008 };
    let mut csv = Csv::new(
        "fig11_adversarial",
        &[
            "topology",
            "scheme",
            "flow_kib",
            "mean_mib_s",
            "tail1_mib_s",
        ],
    )?;
    let mut summary = String::from("Fig. 11 — skewed adversarial traffic (no randomization)\n");
    let topos = topo_set(class, 3);
    // Grid: (topology, variant) with variant 0 = FatPaths, 1 = minimal NDP.
    let mut cells = Vec::new();
    for ti in 0..topos.len() {
        for vi in 0..2usize {
            cells.push((ti, vi));
        }
    }
    let results = SweepRunner::new("fig11", cells).run(|_, &(ti, vi)| {
        let topo = &topos[ti];
        let p = topo.concentration.iter().copied().max().unwrap();
        let pattern = adversarial_for(p, topo.num_routers() as u32);
        let flows = pattern_workload(topo, &pattern, 200.0, window, false, 11);
        let sc = Scenario::on(topo).workload(&flows).seed(6);
        let res = if vi == 0 {
            // FatPaths (non-minimal multipathing).
            sc.scheme(SchemeSpec::LayeredRandom {
                n_layers: 9,
                rho: 0.6,
            })
            .run()
        } else {
            // Baseline: NDP on minimal paths (packet spraying, no layers).
            sc.scheme(SchemeSpec::Minimal)
                .lb(LoadBalancing::PacketSpray)
                .run()
        };
        post_warmup(&res, window)
    });
    for (ti, topo) in topos.iter().enumerate() {
        let fp = &results[ti * 2];
        let base = &results[ti * 2 + 1];
        for (scheme, res) in [("fatpaths", fp), ("ndp_minimal", base)] {
            for (size, m, t1, _) in throughput_by_size(res) {
                csv.row(&[
                    label(topo),
                    scheme.into(),
                    (size / 1024).to_string(),
                    f(m),
                    f(t1),
                ])?;
            }
        }
        let m_fp = mean(&fp.fcts(None));
        let m_base = mean(&base.fcts(None));
        summary.push_str(&format!(
            "{:<5} mean FCT: fatpaths {:>8.3} ms vs minimal {:>8.3} ms ({:.1}x)\n",
            label(topo),
            m_fp * 1e3,
            m_base * 1e3,
            m_base / m_fp.max(1e-12)
        ));
    }
    csv.finish()?;
    summary.push_str(
        "Paper: non-minimal layered routing improves FCT up to 30x; HX benefits least\n\
         (it already has minimal-path diversity).\n",
    );
    write_summary("fig11_adversarial", &summary)
}

/// Fig. 12: effect of layer count n and edge fraction ρ on the FCT of
/// 1 MiB flows, for a complete graph, SF, and DF.
pub fn fig12(quick: bool) -> io::Result<()> {
    let class = class_for(quick);
    let topos = vec![
        build(TopoKind::Complete, class, 1),
        build(TopoKind::SlimFly, class, 1),
        build(TopoKind::Dragonfly, class, 1),
    ];
    let ns: &[usize] = if quick {
        &[2, 4, 9]
    } else {
        &[2, 4, 9, 16, 33]
    };
    let rhos = [0.5, 0.7, 0.8];
    let window = if quick { 0.003 } else { 0.005 };
    let mut csv = Csv::new(
        "fig12_layers",
        &[
            "topology",
            "n_layers",
            "rho",
            "fct_mean_ms",
            "fct_p10_ms",
            "fct_p99_ms",
        ],
    )?;
    let mut summary = String::from("Fig. 12 — FCT vs (n, ρ), 1 MiB flows\n");
    // Shared per-topology adversarial workload.
    let prep_cells: Vec<usize> = (0..topos.len()).collect();
    let flows_per_topo = SweepRunner::new("fig12-prep", prep_cells).run(|_, &ti| {
        let topo = &topos[ti];
        let p = topo.concentration.iter().copied().max().unwrap();
        let pattern = adversarial_for(p, topo.num_routers() as u32);
        let pairs = pattern.flows(topo.num_endpoints() as u64, 1);
        let dist = FlowSizeDist::fixed(1 << 20);
        poisson_flows(&pairs, 100.0, window, &dist, 2)
    });
    // Grid: (topology, n, ρ); the scenario seed (layer sampling) derives
    // from the cell coordinates — the topology coordinate is its *label*,
    // not its grid position, so seeds survive reordering/filtering of the
    // topology set — and each (n, ρ) point gets a decorrelated layer
    // sample regardless of sweep order or thread count.
    let mut cells: Vec<(usize, usize, f64)> = Vec::new();
    for ti in 0..topos.len() {
        for &n in ns {
            for rho in rhos {
                cells.push((ti, n, rho));
            }
        }
    }
    let runner = SweepRunner::new("fig12", cells);
    let results = runner.run_seeded(
        |&(ti, n, rho)| vec![coord_str(&label(&topos[ti])), n as u64, rho.to_bits()],
        |_, &(ti, n, rho), seed| {
            let res = post_warmup(
                &Scenario::on(&topos[ti])
                    .scheme(SchemeSpec::LayeredRandom { n_layers: n, rho })
                    .workload(&flows_per_topo[ti])
                    .seed(seed)
                    .run(),
                window,
            );
            let fcts = res.fcts(None);
            (
                mean(&fcts) * 1e3,
                percentile(&fcts, 10.0) * 1e3,
                percentile(&fcts, 99.0) * 1e3,
            )
        },
    );
    let mut i = 0;
    for topo in &topos {
        for &n in ns {
            for rho in rhos {
                let row = results[i];
                i += 1;
                csv.row(&[
                    label(topo),
                    n.to_string(),
                    f(rho),
                    f(row.0),
                    f(row.1),
                    f(row.2),
                ])?;
                summary.push_str(&format!(
                    "{:<4} n={:<3} rho={:.1}: mean {:>7.2} ms p99 {:>8.2} ms\n",
                    label(topo),
                    n,
                    rho,
                    row.0,
                    row.2
                ));
            }
        }
    }
    csv.finish()?;
    summary.push_str("Paper: 9 layers suffice for SF/DF; with more layers, higher ρ wins.\n");
    write_summary("fig12_layers", &summary)
}

/// Fig. 21: NDP λ sweep — 2× oversubscribed fat tree vs the star baseline.
pub fn fig21(quick: bool) -> io::Result<()> {
    let ft = if quick {
        build(TopoKind::FatTree, SizeClass::Small, 1)
    } else {
        fatpaths_net::topo::fattree::fat_tree(16, 2)
    };
    let st = star(ft.num_endpoints() as u32);
    let lambdas: &[f64] = if quick {
        &[100.0, 300.0]
    } else {
        &[100.0, 200.0, 300.0, 400.0, 500.0]
    };
    let window = 0.004;
    let mut csv = Csv::new(
        "fig21_lambda_ndp",
        &[
            "topology",
            "lambda",
            "flow_kib",
            "fct_p10_norm",
            "fct_mean_norm",
            "fct_p99_norm",
        ],
    )?;
    let mut summary = String::from("Fig. 21 — NDP λ sweep (normalized FCT; fat tree vs star)\n");
    let series = [("fattree", &ft), ("star", &st)];
    let mut cells = Vec::new();
    for si in 0..series.len() {
        for &lambda in lambdas {
            cells.push((si, lambda));
        }
    }
    let results = SweepRunner::new("fig21", cells).run(|_, &(si, lambda)| {
        let topo = series[si].1;
        let lb = if topo.kind == TopoKind::FatTree {
            LoadBalancing::PacketSpray
        } else {
            LoadBalancing::EcmpFlow
        };
        let flows = pattern_workload(topo, &Pattern::Uniform, lambda, window, true, 21);
        post_warmup(
            &Scenario::on(topo)
                .scheme(SchemeSpec::Minimal)
                .lb(lb)
                .workload(&flows)
                .seed(3)
                .run(),
            window,
        )
    });
    let mut i = 0;
    for (name, _) in series {
        for &lambda in lambdas {
            let res = &results[i];
            i += 1;
            // Normalize by the ideal line-rate FCT per size (µ=10Gb/s).
            for (size, _grp_mean, _t1, _) in throughput_by_size(res) {
                let fcts: Vec<f64> = res
                    .completed()
                    .filter(|fl| fl.size == size)
                    .filter_map(|fl| fl.fct_s())
                    .collect();
                let ideal = size as f64 / (10e9 / 8.0);
                csv.row(&[
                    name.into(),
                    f(lambda),
                    (size / 1024).to_string(),
                    f(percentile(&fcts, 10.0) / ideal),
                    f(mean(&fcts) / ideal),
                    f(percentile(&fcts, 99.0) / ideal),
                ])?;
            }
            let all = res.fcts(None);
            summary.push_str(&format!(
                "{:<8} λ={:<5} mean FCT {:>8.3} ms (flows {})\n",
                name,
                lambda,
                mean(&all) * 1e3,
                all.len()
            ));
        }
    }
    csv.finish()?;
    summary.push_str("Paper: λ≤200 shows no oversubscription penalty; λ≥300 loads the core.\n");
    write_summary("fig21_lambda_ndp", &summary)
}
