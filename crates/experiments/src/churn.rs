//! Churn sweep: rolling-reboot (maintenance-roll) schedules as a
//! first-class experiment axis — the node-level, *time-varying*
//! counterpart of the static link-failure `resilience` sweep.
//!
//! Grid: topology × routing scheme × reboot fraction × stagger. Each
//! cell replays the *same* seeded [`FaultPlan::rolling_reboot`]
//! schedule (routers sampled and ordered from the cell's coordinates
//! via [`cell_seed`]) under a wave workload that keeps flows starting
//! throughout the churn window, then measures what actually got
//! delivered:
//!
//! * `host_dead` — flows whose source or destination host sat behind a
//!   dead router at start time; excluded from the denominator (no
//!   scheme can serve a dead host), identical across schemes by
//!   construction.
//! * `completed` / `stranded` — eligible flows that did / did not
//!   finish by the horizon (churn end + one tail).
//! * `on_time` / `goodput_gbps` — completed-flow goodput *sustained
//!   through the roll*: payload bits of flows that completed within
//!   [`ON_TIME_PS`] of injection (one RTO-driven re-route plus the
//!   transfer), per churn-window second. A flow that outwaits a
//!   rebooting router's multi-RTO downtime still counts as `completed`,
//!   but it did not sustain goodput during the event. This is the §V-G
//!   contrast in time-varying form: FatPaths' preprovisioned layers
//!   re-route a cut flow at its next timeout, so it lands on time,
//!   while flow-hash ECMP on a single minimal path replays the same
//!   dead path until the router returns — so ECMP goodput decays with
//!   reboot fraction while layered routing holds.
//!
//! Detection is part of the scheme axis (`*_rep` rows repair routing
//! 50 µs after every event batch), bracketing the design space the
//! same way the resilience sweep does: multipath masking without any
//! control plane vs. control-plane repair.

use crate::common::{f, label, write_summary, write_text};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::fault::FaultPlan;
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::metrics::Summary;
use fatpaths_sim::{cell_seed, coord_str, LoadBalancing, Scenario, SchemeSpec, SweepRunner};
use fatpaths_workloads::arrivals::FlowSpec;
use std::io;

/// Fractions of routers rebooted by the roll (sweep axis).
pub const REBOOT_FRACTIONS: [f64; 2] = [0.05, 0.12];

/// Stagger between consecutive reboots, in µs (sweep axis).
pub const STAGGERS_US: [u64; 2] = [500, 2_000];

/// Reboot-sampler axis: `uniform` draws routers independently
/// ([`FaultPlan::rolling_reboot`]); `domain` walks failure domains —
/// a fat-tree pod's aggregation layer, a Dragonfly group — in sequence
/// ([`FaultPlan::rolling_domain_reboot`]), concentrating simultaneous
/// downtime inside fate-sharing units the way real maintenance rolls
/// do. Topologies without domain metadata (SF) degrade to the uniform
/// draw, so their two rows coincide by construction.
pub const SAMPLERS: [&str; 2] = ["uniform", "domain"];

/// Per-router downtime: long against the 2 ms NDP RTO, so a stuck
/// single-path flow pays many timeouts while a layered one re-picks
/// once (a real firmware reboot is seconds; 8 ms = 4 RTOs keeps the
/// same ordering at simulable scale).
const DOWNTIME_PS: u64 = 8_000_000_000; // 8 ms

/// The roll starts here (the first wave of flows launches healthy).
const CHURN_START_PS: u64 = 1_000_000_000; // 1 ms

/// Flow waves launched across the churn window.
const N_WAVES: u64 = 5;

/// Horizon tail past the last revival: enough for one more RTO + a
/// transfer, so late-cut layered flows finish while flows that sat
/// stuck on a down path through the window are cut off.
const TAIL_PS: u64 = 1_500_000_000; // 1.5 ms

/// Payload per flow (4 NDP jumbo packets).
const FLOW_BYTES: u64 = 32 * 1024;

/// On-time bound for sustained goodput: one 2 ms NDP RTO (the earliest
/// moment a sender can re-route around a silent down-port loss) plus
/// transfer slack. Completions beyond this outwaited the fault instead
/// of routing around it.
pub const ON_TIME_PS: u64 = 2_500_000_000; // 2.5 ms

/// The scheme matrix: FatPaths layers vs flow-hash ECMP over minimal
/// paths, each with and without a 50 µs-detection control plane.
fn schemes() -> Vec<(&'static str, SchemeSpec, Option<LoadBalancing>, Option<u64>)> {
    let fat = SchemeSpec::LayeredRandom {
        n_layers: 9,
        rho: 0.6,
    };
    vec![
        ("fatpaths", fat, None, None),
        (
            "ecmp",
            SchemeSpec::Minimal,
            Some(LoadBalancing::EcmpFlow),
            None,
        ),
        ("fatpaths_rep", fat, None, Some(50_000_000)),
        (
            "ecmp_rep",
            SchemeSpec::Minimal,
            Some(LoadBalancing::EcmpFlow),
            Some(50_000_000),
        ),
    ]
}

/// CSV header of the churn artifact.
const HEADER: &str = "topology,scheme,fraction,stagger_us,sampler,rebooted,flows,host_dead,\
                      completed,on_time,stranded,goodput_gbps,fct_mean_ms,fct_p99_ms,drops,\
                      unroutable,repair_ticks,repair_rows";

/// The deterministic churn schedule of one `(topology, fraction,
/// stagger, sampler)` coordinate, plus its end time (`last revival`).
/// The seed ignores the sampler, so uniform and domain rows of one
/// coordinate draw from the same stream (and coincide exactly on
/// domain-less topologies).
fn reboot_plan(topo: &Topology, fraction: f64, stagger_us: u64, sampler: &str) -> (FaultPlan, u64) {
    let seed = cell_seed(
        "churn-faults",
        &[coord_str(&label(topo)), fraction.to_bits(), stagger_us],
    );
    let stagger = stagger_us * 1_000_000; // µs → ps
    let plan = match sampler {
        "domain" => FaultPlan::rolling_domain_reboot(
            topo,
            fraction,
            CHURN_START_PS,
            stagger,
            DOWNTIME_PS,
            seed,
        ),
        _ => FaultPlan::rolling_reboot(topo, fraction, CHURN_START_PS, stagger, DOWNTIME_PS, seed),
    };
    let n = plan.router_events().len() as u64 / 2;
    let end = CHURN_START_PS + n.saturating_sub(1) * stagger + DOWNTIME_PS;
    (plan, end)
}

/// Wave workload: `N_WAVES` endpoint permutations spread evenly from
/// `t = 0` to the end of the churn window, so reboots hit flows in
/// every phase — before, during, and between their transfers.
fn wave_flows(topo: &Topology, churn_end: u64) -> Vec<FlowSpec> {
    let n = topo.num_endpoints() as u64;
    let gap = churn_end / N_WAVES;
    let mut flows = Vec::new();
    for w in 0..N_WAVES {
        let offset = [21u64, 33, 47, 5, 11][w as usize % 5] % n.max(2);
        flows.extend(
            (0..n)
                .map(|e| FlowSpec {
                    src: e as u32,
                    dst: ((e + offset) % n) as u32,
                    size: FLOW_BYTES,
                    start: w * gap,
                })
                .filter(|fl| fl.src != fl.dst),
        );
    }
    flows
}

/// Metrics of one grid cell, pre-assembly.
struct CellOut {
    rebooted: u64,
    flows: usize,
    host_dead: usize,
    completed: usize,
    on_time: usize,
    goodput_gbps: f64,
    fct_mean_s: f64,
    fct_p99_s: f64,
    drops: u64,
    unroutable: u64,
    repair_ticks: usize,
    repair_rows: u64,
}

/// Runs the churn grid and returns `(csv_text, summary_text)`,
/// assembled in grid order after the parallel phase (bit-identical for
/// any thread count; fault schedules and workloads are pure functions
/// of cell coordinates).
pub fn churn_matrix_on(
    topos: Vec<Topology>,
    fractions: &[f64],
    staggers_us: &[u64],
) -> (String, String) {
    let specs = schemes();
    let mut cells: Vec<(usize, usize, usize, usize, usize)> = Vec::new();
    for ti in 0..topos.len() {
        for si in 0..specs.len() {
            for fi in 0..fractions.len() {
                for sti in 0..staggers_us.len() {
                    for sai in 0..SAMPLERS.len() {
                        cells.push((ti, si, fi, sti, sai));
                    }
                }
            }
        }
    }
    let (fr, st) = (fractions.to_vec(), staggers_us.to_vec());
    let results = SweepRunner::new("churn", cells).run(|_, &(ti, si, fi, sti, sai)| {
        let topo = &topos[ti];
        let (_, spec, lb, detect) = specs[si];
        let (plan, churn_end) = reboot_plan(topo, fr[fi], st[sti], SAMPLERS[sai]);
        let rebooted = plan.router_events().len() as u64 / 2;
        let flows = wave_flows(topo, churn_end);
        let horizon = churn_end + TAIL_PS;
        let mut sc = Scenario::on(topo)
            .scheme(spec)
            .workload(&flows)
            .seed(5)
            .horizon(horizon)
            .fault_plan(plan);
        if let Some(lb) = lb {
            sc = sc.lb(lb);
        }
        if let Some(d) = detect {
            sc = sc.detection_delay(d);
        }
        let res = sc.run();
        let fct = Summary::of(&res.fcts(None));
        // Goodput sustained *through* the roll: only bytes delivered
        // on time count (a flow that outwaits a rebooting router's
        // multi-RTO downtime completed, but it did not sustain goodput
        // during the event).
        let on_time: Vec<u64> = res
            .completed()
            .filter(|fl| fl.finish.is_some_and(|t| t - fl.start <= ON_TIME_PS))
            .map(|fl| fl.size)
            .collect();
        CellOut {
            rebooted,
            flows: res.flows.len(),
            host_dead: res.host_dead(),
            completed: res.completed().count(),
            on_time: on_time.len(),
            // on-time bits / churn-window seconds, in Gb/s.
            goodput_gbps: on_time.iter().sum::<u64>() as f64 * 8_000.0 / churn_end as f64,
            fct_mean_s: fct.mean,
            fct_p99_s: fct.p99,
            drops: res.drops,
            unroutable: res.unroutable,
            repair_ticks: res.repair_ticks(),
            repair_rows: res.repair_rows(),
        }
    });
    let (nf, nst, nsa) = (fractions.len(), staggers_us.len(), SAMPLERS.len());
    let cell_index = |ti: usize, si: usize, fi: usize, sti: usize, sai: usize| {
        (((ti * specs.len() + si) * nf + fi) * nst + sti) * nsa + sai
    };
    let mut csv = String::from(HEADER);
    csv.push('\n');
    let mut summary = String::from(
        "Churn — completed-flow goodput through a rolling reboot (FatPaths vs ECMP)\n",
    );
    for (ti, topo) in topos.iter().enumerate() {
        summary.push_str(&format!(
            "-- {} ({} endpoints, {} routers) --\n",
            label(topo),
            topo.num_endpoints(),
            topo.num_routers()
        ));
        for (si, (name, ..)) in specs.iter().enumerate() {
            for (fi, &fraction) in fractions.iter().enumerate() {
                for (sti, &stagger) in staggers_us.iter().enumerate() {
                    for (sai, sampler) in SAMPLERS.iter().enumerate() {
                        let c = &results[cell_index(ti, si, fi, sti, sai)];
                        let stranded = c.flows - c.host_dead - c.completed;
                        csv.push_str(&format!(
                            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                            label(topo),
                            name,
                            f(fraction),
                            stagger,
                            sampler,
                            c.rebooted,
                            c.flows,
                            c.host_dead,
                            c.completed,
                            c.on_time,
                            stranded,
                            f(c.goodput_gbps),
                            f(c.fct_mean_s * 1e3),
                            f(c.fct_p99_s * 1e3),
                            c.drops,
                            c.unroutable,
                            c.repair_ticks,
                            c.repair_rows
                        ));
                        if sti + 1 == nst {
                            summary.push_str(&format!(
                                "{:<12} f={:.2} stagger={:>5}us {:<7}: {:>5}/{:<5} done \
                                 ({} host_dead, {} stranded), {:>7.3} Gb/s, \
                                 {} repair rows\n",
                                name,
                                fraction,
                                stagger,
                                sampler,
                                c.completed,
                                c.flows - c.host_dead,
                                c.host_dead,
                                stranded,
                                c.goodput_gbps,
                                c.repair_rows
                            ));
                        }
                    }
                }
            }
        }
    }
    summary.push_str(
        "Rolling reboots (node-level churn): a dead router takes its hosts out of the\n\
         workload (host_dead) and its whole radix off the network at once. FatPaths'\n\
         preprovisioned layers re-route cut flows one RTO after the hit; flow-hash\n\
         ECMP strands them until the router returns, so its completed-flow goodput\n\
         decays with reboot fraction. Detection + batched repair (*_rep) closes most\n\
         of the gap for both. Domain walks (sampler=domain) concentrate the same\n\
         reboot budget inside one fate-sharing unit — a pod's aggregation layer, a\n\
         DF group — stressing repair harder than scattered uniform draws;\n\
         repair_rows counts the routing rows the control plane rewrote per run.\n",
    );
    (csv, summary)
}

/// The shipped experiment: small-class SF, DF, and FT3 under the
/// [`REBOOT_FRACTIONS`] × [`STAGGERS_US`] rolling-reboot sweep.
pub fn churn(quick: bool) -> io::Result<()> {
    let kinds: &[TopoKind] = if quick || crate::common::is_smoke() {
        &[TopoKind::SlimFly, TopoKind::FatTree]
    } else {
        &[TopoKind::SlimFly, TopoKind::Dragonfly, TopoKind::FatTree]
    };
    let topos = SweepRunner::new("churn-topos", kinds.to_vec())
        .run(|_, &kind| build(kind, SizeClass::Small, 1));
    let (fractions, staggers): (&[f64], &[u64]) = if quick || crate::common::is_smoke() {
        (&[0.05], &[500])
    } else {
        (&REBOOT_FRACTIONS, &STAGGERS_US)
    };
    let (csv, summary) = churn_matrix_on(topos, fractions, staggers);
    write_text("churn.csv", &csv)?;
    write_summary("churn", &summary)
}
