//! Flow-collision analysis (§IV-A, Fig. 4).
//!
//! Two flows *collide* when their communicating endpoint pairs occupy the
//! same (source router, destination router) pair — a property of the
//! workload mapping and concentration `p` only, independent of topology
//! wiring. The paper's takeaway: with `D ≥ 2` and random mapping, at most
//! ~3 collisions per router pair occur even for 4×-oversubscribed patterns,
//! so three disjoint paths per router pair suffice.

use fatpaths_net::graph::RouterId;
use rustc_hash::FxHashMap;

/// Histogram of collision multiplicities: `hist[c]` = number of distinct
/// ordered router pairs that carry exactly `c` flows (`c ≥ 1`; index 0
/// unused). Intra-router flows (same source and destination router) are
/// excluded, as they never enter the network.
pub fn collision_histogram(flows: &[(RouterId, RouterId)]) -> Vec<u64> {
    let mut per_pair: FxHashMap<(RouterId, RouterId), u64> = FxHashMap::default();
    for &(s, t) in flows {
        if s != t {
            *per_pair.entry((s, t)).or_insert(0) += 1;
        }
    }
    let mut hist = vec![0u64; 2];
    for &c in per_pair.values() {
        if c as usize >= hist.len() {
            hist.resize(c as usize + 1, 0);
        }
        hist[c as usize] += 1;
    }
    hist
}

/// Fraction of router pairs with at least `threshold` colliding flows — the
/// paper's "fewer than 1% of four or more collisions" statistic.
pub fn fraction_with_at_least(hist: &[u64], threshold: usize) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let above: u64 = hist.iter().skip(threshold).sum();
    above as f64 / total as f64
}

/// Maximum observed collision multiplicity.
pub fn max_collisions(hist: &[u64]) -> usize {
    hist.iter().rposition(|&c| c > 0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_multiplicities() {
        let flows = [(0, 1), (0, 1), (0, 2), (3, 4), (3, 4), (3, 4), (5, 5)];
        let hist = collision_histogram(&flows);
        // (0,1):2, (0,2):1, (3,4):3; (5,5) dropped.
        assert_eq!(hist, vec![0, 1, 1, 1]);
        assert_eq!(max_collisions(&hist), 3);
        assert!((fraction_with_at_least(&hist, 2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let hist = collision_histogram(&[]);
        assert_eq!(fraction_with_at_least(&hist, 1), 0.0);
        assert_eq!(max_collisions(&hist), 0);
    }

    #[test]
    fn direction_matters() {
        let hist = collision_histogram(&[(0, 1), (1, 0)]);
        assert_eq!(hist, vec![0, 2]); // two distinct ordered pairs
    }
}
