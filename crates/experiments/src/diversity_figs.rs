//! Path-diversity experiments: Fig. 4 (collision histograms), Fig. 6
//! (minimal path lengths/counts), Fig. 7 (non-minimal CDP distributions),
//! Fig. 8 (path-interference distributions), Table IV (CDP/PI summary).

use crate::common::{f, label, write_summary, Csv};
use fatpaths_diversity::cdp::{cdp_with, lmin_cmin, CdpScratch, EdgeIds};
use fatpaths_diversity::collisions::{collision_histogram, fraction_with_at_least};
use fatpaths_diversity::interference::{pi_summary, sample_pi_from};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::jellyfish::equivalent_jellyfish;
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_workloads::mapping::{apply_mapping, random_mapping};
use fatpaths_workloads::patterns::Pattern;
use rand::prelude::*;
use rand::rngs::StdRng;
use rayon::prelude::*;
use std::io;

/// Routers with endpoints (fat trees: edge routers only).
fn hosting_routers(t: &Topology) -> Vec<u32> {
    (0..t.num_routers() as u32)
        .filter(|&r| t.concentration[r as usize] > 0)
        .collect()
}

/// Deterministic sample of distinct router pairs among `candidates`.
fn sample_pairs(candidates: &[u32], count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = candidates.len();
    (0..count)
        .map(|_| loop {
            let a = candidates[rng.random_range(0..m)];
            let b = candidates[rng.random_range(0..m)];
            if a != b {
                return (a, b);
            }
        })
        .collect()
}

/// Fig. 4: histogram of colliding paths per router pair under five traffic
/// patterns, for a complete graph, Slim Fly, and Dragonfly.
pub fn fig4(quick: bool) -> io::Result<()> {
    let class = if quick {
        SizeClass::Small
    } else {
        SizeClass::Medium
    };
    let topos = vec![
        build(TopoKind::Complete, class, 1),
        build(TopoKind::SlimFly, class, 1),
        build(TopoKind::Dragonfly, class, 1),
    ];
    let mut csv = Csv::new(
        "fig4_collisions",
        &["topology", "pattern", "collisions", "pairs"],
    )?;
    let mut summary = String::from("Fig. 4 — collision multiplicity per router pair\n");
    for t in &topos {
        let n = t.num_endpoints() as u64;
        let patterns: Vec<(String, Vec<(u32, u32)>)> = vec![
            ("permutation".into(), Pattern::Permutation.flows(n, 11)),
            (
                "offdiag".into(),
                Pattern::OffDiagonal { offset: n / 3 + 1 }.flows(n, 12),
            ),
            ("shuffle".into(), Pattern::Shuffle.flows(n, 13)),
            (
                "4perms".into(),
                Pattern::MultiPermutation { k: 4 }.flows(n, 14),
            ),
            ("stencil".into(), Pattern::stencil_small().flows(n, 15)),
        ];
        for (name, pairs) in patterns {
            // Random mapping (the §IV-A assumption).
            let m = random_mapping(n as u32, 1000 + n);
            let mapped = apply_mapping(&m, &pairs);
            let router_flows: Vec<(u32, u32)> = mapped
                .iter()
                .map(|&(s, d)| (t.endpoint_router(s), t.endpoint_router(d)))
                .collect();
            let hist = collision_histogram(&router_flows);
            for (c, &count) in hist.iter().enumerate().skip(1) {
                if count > 0 {
                    csv.row(&[label(t), name.clone(), c.to_string(), count.to_string()])?;
                }
            }
            let frac4 = fraction_with_at_least(&hist, 4);
            summary.push_str(&format!(
                "{:<4} {:<12} max={:<3} frac(≥4)={:.4}\n",
                label(t),
                name,
                fatpaths_diversity::collisions::max_collisions(&hist),
                frac4
            ));
        }
    }
    let p = csv.finish()?;
    summary.push_str(&format!("CSV: {}\n", p.display()));
    summary.push_str("Paper: for D≥2 fewer than 1% of pairs see ≥4 collisions; D=1 sees ≥9.\n");
    write_summary("fig4_collisions", &summary)
}

/// Fig. 6: distributions of minimal path lengths and minimal-path
/// diversity (cmin) for the five topologies and their Jellyfish controls.
pub fn fig6(quick: bool) -> io::Result<()> {
    let class = if quick {
        SizeClass::Small
    } else {
        SizeClass::Medium
    };
    let mut csv = Csv::new(
        "fig6_minimal_paths",
        &["topology", "variant", "metric", "value", "fraction"],
    )?;
    let mut summary = String::from("Fig. 6 — minimal path lengths and counts\n");
    let kinds = [
        TopoKind::Dragonfly,
        TopoKind::FatTree,
        TopoKind::HyperX,
        TopoKind::SlimFly,
        TopoKind::Xpander,
    ];
    for kind in kinds {
        let base = build(kind, class, 2);
        let jf = equivalent_jellyfish(&base, 7);
        for (variant, t) in [("default", &base), ("jellyfish", &jf)] {
            let hosts = hosting_routers(t);
            let pairs = sample_pairs(&hosts, if quick { 300 } else { 1500 }, 42);
            let eids = EdgeIds::new(&t.graph);
            let results: Vec<(u32, u32)> = pairs
                .par_iter()
                .map(|&(a, b)| lmin_cmin(&t.graph, &eids, a, b))
                .collect();
            // Length histogram.
            let max_l = results.iter().map(|r| r.0).max().unwrap_or(0);
            for l in 1..=max_l {
                let frac =
                    results.iter().filter(|r| r.0 == l).count() as f64 / results.len() as f64;
                if frac > 0.0 {
                    csv.row(&[
                        label(&base),
                        variant.into(),
                        "lmin".into(),
                        l.to_string(),
                        f(frac),
                    ])?;
                }
            }
            // cmin histogram (1, 2, 3, >3).
            let buckets = [(1u32, "1"), (2, "2"), (3, "3")];
            for (c, name) in buckets {
                let frac =
                    results.iter().filter(|r| r.1 == c).count() as f64 / results.len() as f64;
                csv.row(&[
                    label(&base),
                    variant.into(),
                    "cmin".into(),
                    name.into(),
                    f(frac),
                ])?;
            }
            let frac_gt3 = results.iter().filter(|r| r.1 > 3).count() as f64 / results.len() as f64;
            csv.row(&[
                label(&base),
                variant.into(),
                "cmin".into(),
                ">3".into(),
                f(frac_gt3),
            ])?;
            let unique = results.iter().filter(|r| r.1 == 1).count() as f64 / results.len() as f64;
            summary.push_str(&format!(
                "{:<4} {:<9} unique-minimal-path fraction: {:.2}\n",
                label(&base),
                variant,
                unique
            ));
        }
    }
    csv.finish()?;
    summary.push_str("Paper: in DF/SF most pairs have ONE minimal path; HX/FT3 have several.\n");
    write_summary("fig6_minimal_paths", &summary)
}

/// Fig. 7: distribution of non-minimal disjoint path counts c_l(A,B) for
/// l ∈ {2,3,4} on SF, DF, HX, SF-JF.
pub fn fig7(quick: bool) -> io::Result<()> {
    let class = if quick {
        SizeClass::Small
    } else {
        SizeClass::Medium
    };
    let sf = build(TopoKind::SlimFly, class, 3);
    let df = build(TopoKind::Dragonfly, class, 3);
    let hx = build(TopoKind::HyperX, class, 3);
    let sfjf = equivalent_jellyfish(&sf, 3);
    let mut csv = Csv::new("fig7_nonminimal_cdp", &["topology", "l", "cdp", "fraction"])?;
    let mut summary = String::from("Fig. 7 — non-minimal disjoint path counts\n");
    for (name, t) in [("SF", &sf), ("DF", &df), ("HX", &hx), ("SF-JF", &sfjf)] {
        let hosts = hosting_routers(t);
        let pairs = sample_pairs(&hosts, if quick { 200 } else { 800 }, 5);
        let eids = EdgeIds::new(&t.graph);
        for l in [2u32, 3, 4] {
            let counts: Vec<u32> = pairs
                .par_iter()
                .map_init(CdpScratch::default, |s, &(a, b)| {
                    cdp_with(&t.graph, &eids, &[a], &[b], l, s)
                })
                .collect();
            let max_c = counts.iter().copied().max().unwrap_or(0);
            for c in 0..=max_c {
                let frac = counts.iter().filter(|&&x| x == c).count() as f64 / counts.len() as f64;
                if frac > 0.0 {
                    csv.row(&[name.into(), l.to_string(), c.to_string(), f(frac)])?;
                }
            }
            let mean = counts.iter().sum::<u32>() as f64 / counts.len() as f64;
            let radix_frac = mean / t.network_radix() as f64;
            summary.push_str(&format!(
                "{:<6} l={} mean CDP {:.1} ({:.0}% of k')\n",
                name,
                l,
                mean,
                100.0 * radix_frac
            ));
        }
    }
    csv.finish()?;
    summary.push_str("Paper: all topologies reach ≥3 disjoint paths by l = lmin+1.\n");
    write_summary("fig7_nonminimal_cdp", &summary)
}

/// Fig. 8: path-interference distributions at l ∈ {2,3,4,5}.
pub fn fig8(quick: bool) -> io::Result<()> {
    let class = if quick {
        SizeClass::Small
    } else {
        SizeClass::Medium
    };
    let mut csv = Csv::new("fig8_interference", &["topology", "l", "pi", "fraction"])?;
    let mut summary = String::from("Fig. 8 — path interference distributions\n");
    let mut entries: Vec<(String, Topology)> = Vec::new();
    for kind in [
        TopoKind::Dragonfly,
        TopoKind::FatTree,
        TopoKind::HyperX,
        TopoKind::SlimFly,
    ] {
        let t = build(kind, class, 4);
        let jf = equivalent_jellyfish(&t, 9);
        entries.push((label(&t), t));
        if kind != TopoKind::FatTree {
            entries.push((format!("{}-JF", kind.label()), jf));
        }
    }
    let samples = if quick { 150 } else { 600 };
    for (name, t) in &entries {
        let eids = EdgeIds::new(&t.graph);
        let hosts = hosting_routers(t);
        for l in [2u32, 3, 4, 5] {
            let s = sample_pi_from(&t.graph, &eids, l, samples, 77, &hosts);
            let vals: Vec<i64> = s.iter().map(|x| x.pi).collect();
            let max_v = vals.iter().copied().max().unwrap_or(0);
            for v in 0..=max_v {
                let frac = vals.iter().filter(|&&x| x == v).count() as f64 / vals.len() as f64;
                if frac > 0.0 {
                    csv.row(&[name.clone(), l.to_string(), v.to_string(), f(frac)])?;
                }
            }
            let (mean, p999) = pi_summary(&s, 99.9);
            summary.push_str(&format!(
                "{:<7} l={} mean PI {:.2} (99.9% {})\n",
                name, l, mean, p999
            ));
        }
    }
    csv.finish()?;
    summary.push_str("Paper: most PI sits at l=3..4; FT3 shows none; SF has outlier tails.\n");
    write_summary("fig8_interference", &summary)
}

/// Table IV: CDP (mean, 1% tail) and PI (mean, 99.9% tail) at distance d′
/// for the paper's exact configurations and their Jellyfish controls.
pub fn table4(quick: bool) -> io::Result<()> {
    let mut csv = Csv::new(
        "table4_cdp_pi",
        &[
            "topology",
            "dprime",
            "kprime",
            "nr",
            "n",
            "cdp_mean_pct",
            "cdp_tail1_pct",
            "pi_mean_pct",
            "pi_tail999_pct",
        ],
    )?;
    // (name, topology, d′) — Table IV's exact parameters.
    let mut rows: Vec<(String, Topology, u32)> = vec![
        (
            "clique".into(),
            build(TopoKind::Complete, SizeClass::Medium, 1),
            2,
        ),
        (
            "SF".into(),
            build(TopoKind::SlimFly, SizeClass::Medium, 1),
            3,
        ),
        (
            "XP".into(),
            build(TopoKind::Xpander, SizeClass::Medium, 1),
            3,
        ),
        (
            "HX".into(),
            build(TopoKind::HyperX, SizeClass::Medium, 1),
            3,
        ),
        (
            "DF".into(),
            build(TopoKind::Dragonfly, SizeClass::Medium, 1),
            4,
        ),
        (
            "FT3".into(),
            build(TopoKind::FatTree, SizeClass::Medium, 1),
            4,
        ),
    ];
    let jf_rows: Vec<(String, Topology, u32)> = rows
        .iter()
        .filter(|(n, ..)| n != "clique")
        .map(|(n, t, d)| (format!("{n}-JF"), equivalent_jellyfish(t, 5), *d))
        .collect();
    rows.extend(jf_rows);
    let pair_samples = if quick { 150 } else { 600 };
    let mut summary = String::from(
        "Table IV — CDP and PI at d' (radix-invariant percentages)\n\
         topo      d'  CDPmean  CDP1%   PImean  PI99.9%\n",
    );
    for (name, t, dprime) in &rows {
        let eids = EdgeIds::new(&t.graph);
        let hosts = hosting_routers(t);
        // Radix-invariant normalization uses the *communicating* routers'
        // network radix (fat trees: edge-router uplinks, the paper's k'=18).
        let kprime = hosts.iter().map(|&r| t.graph.degree(r)).max().unwrap() as f64;
        let pairs = sample_pairs(&hosts, pair_samples, 21);
        let mut cdps: Vec<f64> = pairs
            .par_iter()
            .map_init(CdpScratch::default, |s, &(a, b)| {
                cdp_with(&t.graph, &eids, &[a], &[b], *dprime, s) as f64 / kprime
            })
            .collect();
        cdps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cdp_mean = cdps.iter().sum::<f64>() / cdps.len() as f64;
        let cdp_tail = cdps[(0.01 * (cdps.len() as f64 - 1.0)) as usize];
        let pis = sample_pi_from(&t.graph, &eids, *dprime, pair_samples, 31, &hosts);
        let (pi_mean_abs, pi_tail_abs) = pi_summary(&pis, 99.9);
        let (pi_mean, pi_tail) = (pi_mean_abs / kprime, pi_tail_abs as f64 / kprime);
        csv.row(&[
            name.clone(),
            dprime.to_string(),
            (kprime as u32).to_string(),
            t.num_routers().to_string(),
            t.num_endpoints().to_string(),
            f(cdp_mean * 100.0),
            f(cdp_tail * 100.0),
            f(pi_mean * 100.0),
            f(pi_tail * 100.0),
        ])?;
        summary.push_str(&format!(
            "{:<9} {:<3} {:>6.0}%  {:>5.0}%  {:>6.0}%  {:>6.0}%\n",
            name,
            dprime,
            cdp_mean * 100.0,
            cdp_tail * 100.0,
            pi_mean * 100.0,
            pi_tail * 100.0
        ));
    }
    csv.finish()?;
    summary.push_str(
        "Paper (Table IV): SF CDP≈89%/10%, XP 49%/34%, HX 25%/10%, DF 25%/13%, FT3 100%/100%;\n\
         deterministic topologies beat their JFs on mean but have worse tails.\n",
    );
    write_summary("table4_cdp_pi", &summary)
}
