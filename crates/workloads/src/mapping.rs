//! Randomized workload mapping (§III-D).
//!
//! FatPaths optionally places communicating endpoints on routers chosen
//! u.a.r., spreading load over the rich inter-group path diversity of
//! low-diameter networks. Concretely: a u.a.r. permutation of endpoint ids
//! is applied to both ends of every flow. Skewed experiments (Fig. 11) skip
//! this step.

use rand::prelude::*;
use rand::rngs::StdRng;

/// A u.a.r. endpoint permutation.
pub fn random_mapping(n: u32, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Applies a mapping to both ends of each flow pair.
pub fn apply_mapping(mapping: &[u32], pairs: &[(u32, u32)]) -> Vec<(u32, u32)> {
    pairs
        .iter()
        .map(|&(s, t)| (mapping[s as usize], mapping[t as usize]))
        .collect()
}

/// Identity mapping (the "no randomization" control).
pub fn identity_mapping(n: u32) -> Vec<u32> {
    (0..n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_permutation() {
        let m = random_mapping(100, 5);
        let mut s = m.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn apply_preserves_flow_count_and_distinctness() {
        let m = random_mapping(10, 1);
        let pairs = [(0u32, 1u32), (2, 3)];
        let out = apply_mapping(&m, &pairs);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn randomization_breaks_router_alignment() {
        // An adversarial aligned pattern stops being aligned after mapping:
        // destination routers spread out.
        let p = 4u32;
        let n = 400u32;
        let pairs: Vec<(u32, u32)> = (0..n).map(|s| (s, (s + p * 7) % n)).collect();
        let m = random_mapping(n, 2);
        let mapped = apply_mapping(&m, &pairs);
        let mut dst_routers: Vec<u32> = mapped.iter().map(|&(_, t)| t / p).collect();
        dst_routers.sort_unstable();
        dst_routers.dedup();
        // Aligned pattern hits 100 routers with p-way collisions; randomized
        // mapping should hit nearly all routers with low multiplicity.
        assert!(dst_routers.len() > 80);
    }
}
