//! Discrete-event core: a deterministic time-ordered event queue and a
//! packet slab.
//!
//! Events are ordered by a **canonical key**, not by push sequence:
//! `(time, class, key)` where `class` ranks event kinds (fault events
//! before repair before flow starts before packet motion before timers)
//! and `key` is derived from the event's *content* (global port/router/
//! endpoint ids; for packet arrivals, the packet's unique transmission
//! id). Two queues that hold the same set of events therefore pop them
//! in the same order no matter how the pushes interleaved — this is
//! what makes the sharded engine (`crate::shard`) bit-identical to the
//! single-queue run at any shard count: a shard's queue sees exactly
//! the events for its region, and the canonical order is independent of
//! whether a packet arrived via a local push or a cross-shard mailbox.

use fatpaths_core::fwd::fnv1a;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in picoseconds.
pub type TimePs = u64;

/// Kinds of events the simulator processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvKind {
    /// A flow's start time arrived.
    FlowStart {
        /// Flow index.
        flow: u32,
    },
    /// A port's serializer finished; pop the next queued packet.
    PortPop {
        /// Port index.
        port: u32,
    },
    /// A packet arrives at a router (after link latency).
    ArriveRouter {
        /// Packet slab id.
        pkt: u32,
        /// Router id.
        router: u32,
    },
    /// A packet arrives at an endpoint.
    ArriveEndpoint {
        /// Packet slab id.
        pkt: u32,
        /// Endpoint id.
        ep: u32,
    },
    /// The endpoint may emit its next paced NDP PULL.
    PullTick {
        /// Endpoint id.
        ep: u32,
    },
    /// TCP retransmission timeout.
    RtoTimer {
        /// Flow index.
        flow: u32,
        /// Timer generation (stale timers are ignored).
        gen: u32,
    },
    /// Link `{u, v}` goes down: packets forwarded onto it are lost from
    /// this instant.
    LinkDown {
        /// One endpoint router.
        u: u32,
        /// The other endpoint router.
        v: u32,
    },
    /// Link `{u, v}` comes back up.
    LinkUp {
        /// One endpoint router.
        u: u32,
        /// The other endpoint router.
        v: u32,
    },
    /// Router `router` dies: every incident link goes down atomically
    /// and its attached endpoints stop injecting (flows starting while
    /// it is dead are accounted `host_dead`).
    RouterDown {
        /// The dying router.
        router: u32,
    },
    /// Router `router` comes back up: incident links whose other end is
    /// alive and not independently failed are restored, and its
    /// endpoints may inject again.
    RouterUp {
        /// The reviving router.
        router: u32,
    },
    /// The control plane noticed a link-state change (one detection
    /// delay after it): recompute the route-repair overlay from the
    /// current down-link set.
    RepairTick,
}

/// Flat heap entry. Ordering is the derived lexicographic order on
/// `(tcls, key, a, b)` where `tcls` packs the timestamp (high 56 bits)
/// over the class rank (low 8 bits) — identical to ordering by
/// `(t, cls, …)` while keeping the entry at 24 bytes instead of 32,
/// which is tens of MB of heap high-water at fat-tree scale. 2^56 ps
/// is ~20 hours of simulated time, far beyond any run; `encode`
/// debug-asserts the bound. `a`/`b` are the raw `EvKind` payload words
/// and only break ties between *distinct* events whose canonical key
/// collides (e.g. `LinkDown{u,v}` vs `LinkDown{v,u}` at the same
/// instant). For packet arrivals `key` is the globally unique
/// transmission id, so the slab id in `a` — which *does* differ between
/// shard layouts — is never consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EvEntry {
    tcls: u64,
    key: u64,
    a: u32,
    b: u32,
}

/// Canonical class ranks. Fault events sort before everything else at
/// the same instant (a link that dies at `t` drops packets forwarded at
/// `t`), repair before traffic, flow starts before packet motion, and
/// timers last (an ACK and an RTO at the same instant: the ACK bumps
/// the timer generation, so the RTO is stale — matching the pre-shard
/// push-order behavior where timers were armed after sends).
const CLS_LINK_DOWN: u8 = 0;
const CLS_ROUTER_DOWN: u8 = 1;
const CLS_LINK_UP: u8 = 2;
const CLS_ROUTER_UP: u8 = 3;
const CLS_REPAIR: u8 = 4;
const CLS_FLOW_START: u8 = 5;
const CLS_PORT_POP: u8 = 6;
const CLS_ARRIVE_ROUTER: u8 = 7;
const CLS_ARRIVE_EP: u8 = 8;
const CLS_PULL_TICK: u8 = 9;
const CLS_RTO: u8 = 10;

fn link_key(u: u32, v: u32) -> u64 {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    ((lo as u64) << 32) | hi as u64
}

impl EvEntry {
    fn encode(t: TimePs, kind: EvKind, uid: Option<u64>) -> Self {
        let (cls, key, a, b) = match kind {
            EvKind::LinkDown { u, v } => (CLS_LINK_DOWN, link_key(u, v), u, v),
            EvKind::RouterDown { router } => (CLS_ROUTER_DOWN, router as u64, router, 0),
            EvKind::LinkUp { u, v } => (CLS_LINK_UP, link_key(u, v), u, v),
            EvKind::RouterUp { router } => (CLS_ROUTER_UP, router as u64, router, 0),
            EvKind::RepairTick => (CLS_REPAIR, 0, 0, 0),
            EvKind::FlowStart { flow } => (CLS_FLOW_START, flow as u64, flow, 0),
            EvKind::PortPop { port } => (CLS_PORT_POP, port as u64, port, 0),
            EvKind::ArriveRouter { pkt, router } => {
                let uid = uid.expect("router arrivals must be pushed with push_arrival");
                (CLS_ARRIVE_ROUTER, uid, pkt, router)
            }
            EvKind::ArriveEndpoint { pkt, ep } => {
                let uid = uid.expect("endpoint arrivals must be pushed with push_arrival");
                (CLS_ARRIVE_EP, uid, pkt, ep)
            }
            EvKind::PullTick { ep } => (CLS_PULL_TICK, ep as u64, ep, 0),
            EvKind::RtoTimer { flow, gen } => {
                (CLS_RTO, ((flow as u64) << 32) | gen as u64, flow, gen)
            }
        };
        debug_assert!(t >> 56 == 0, "timestamp exceeds the 56-bit heap encoding");
        EvEntry {
            tcls: (t << 8) | cls as u64,
            key,
            a,
            b,
        }
    }

    #[inline]
    fn t(&self) -> TimePs {
        self.tcls >> 8
    }

    fn decode(self) -> (TimePs, EvKind) {
        let kind = match self.tcls as u8 {
            CLS_LINK_DOWN => EvKind::LinkDown {
                u: self.a,
                v: self.b,
            },
            CLS_ROUTER_DOWN => EvKind::RouterDown { router: self.a },
            CLS_LINK_UP => EvKind::LinkUp {
                u: self.a,
                v: self.b,
            },
            CLS_ROUTER_UP => EvKind::RouterUp { router: self.a },
            CLS_REPAIR => EvKind::RepairTick,
            CLS_FLOW_START => EvKind::FlowStart { flow: self.a },
            CLS_PORT_POP => EvKind::PortPop { port: self.a },
            CLS_ARRIVE_ROUTER => EvKind::ArriveRouter {
                pkt: self.a,
                router: self.b,
            },
            CLS_ARRIVE_EP => EvKind::ArriveEndpoint {
                pkt: self.a,
                ep: self.b,
            },
            CLS_PULL_TICK => EvKind::PullTick { ep: self.a },
            CLS_RTO => EvKind::RtoTimer {
                flow: self.a,
                gen: self.b,
            },
            _ => unreachable!("corrupt event class"),
        };
        (self.t(), kind)
    }
}

/// The deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<EvEntry>>,
}

impl EventQueue {
    /// Schedules a non-arrival event at absolute time `at`. Packet
    /// arrivals carry slab ids that are not canonical across shard
    /// layouts — they must go through [`push_arrival`] with the
    /// packet's transmission id instead.
    ///
    /// [`push_arrival`]: EventQueue::push_arrival
    pub fn push(&mut self, at: TimePs, kind: EvKind) {
        debug_assert!(
            !matches!(
                kind,
                EvKind::ArriveRouter { .. } | EvKind::ArriveEndpoint { .. }
            ),
            "arrival events need push_arrival(at, kind, uid)"
        );
        self.ensure_slot();
        self.heap.push(Reverse(EvEntry::encode(at, kind, None)));
    }

    /// Schedules a packet arrival ordered by the packet's unique
    /// transmission id (`Packet::salt`), which is stable across shard
    /// layouts — unlike the slab id embedded in the `EvKind`.
    pub fn push_arrival(&mut self, at: TimePs, kind: EvKind, uid: u64) {
        debug_assert!(
            matches!(
                kind,
                EvKind::ArriveRouter { .. } | EvKind::ArriveEndpoint { .. }
            ),
            "push_arrival is for packet arrivals only"
        );
        self.ensure_slot();
        self.heap
            .push(Reverse(EvEntry::encode(at, kind, Some(uid))));
    }

    /// Grows a full heap by a bounded exact step (⅛ of capacity) before
    /// the next push would trigger the collection's amortized doubling:
    /// a doubling realloc of a multi-hundred-k-entry heap permanently
    /// raises the process high-water mark far past the true event peak.
    #[inline]
    fn ensure_slot(&mut self) {
        if self.heap.len() == self.heap.capacity() {
            self.heap
                .reserve_exact((self.heap.capacity() / 8).max(1024));
        }
    }

    /// Pops the earliest event (canonical order within a timestamp).
    pub fn pop(&mut self) -> Option<(TimePs, EvKind)> {
        self.heap.pop().map(|Reverse(e)| e.decode())
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<TimePs> {
        self.heap.peek().map(|Reverse(e)| e.t())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pre-sizes the heap for at least `n` additional events. Growth is
    /// exact, not amortized — see [`PacketSlab::reserve`].
    pub fn reserve(&mut self, n: usize) {
        self.heap.reserve_exact(n);
    }

    /// Allocated heap capacity in entries.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Releases capacity the heap no longer needs (down to 1.5× the
    /// live count, with hysteresis so oscillating load cannot thrash).
    /// Event demand is front-loaded — the flow-start burst can need
    /// twice the steady-state heap — so without this the burst-sized
    /// buffer would be carried through the late-run memory plateau
    /// where the process high-water mark actually forms.
    pub fn shrink_excess(&mut self) {
        let len = self.heap.len();
        if len * 2 <= self.heap.capacity() && self.heap.capacity() > 8192 {
            self.heap.shrink_to((len + len / 2).max(8192));
        }
    }
}

/// What a packet is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PktKind {
    /// Payload-carrying data packet.
    Data = 0,
    /// Acknowledgment (TCP cumulative; NDP per-packet).
    Ack = 1,
    /// NDP "payload was trimmed" notification.
    Nack = 2,
    /// NDP receiver-paced credit.
    Pull = 3,
}

/// A packet in flight, packed to 32 bytes — at the 119k-endpoint scale
/// each shard's slab peaks in the hundreds of thousands of slots, so
/// every byte here is hundreds of kilobytes of arena high-water mark.
///
/// Two fields of the logical packet are *derived*, not stored:
///
/// * the owning flow is the top bits of [`salt`](Packet::salt)
///   ([`Packet::flow`]);
/// * the destination router is a flat lookup from
///   [`dst_ep`](Packet::dst_ep) (`Ctx::ep_router`).
///
/// Kind and flag bits share one byte behind accessors.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Packet index within the flow (data), or the cumulative-ack /
    /// sequence payload for control packets.
    pub seq: u32,
    /// Bytes on the wire (payload + header, or header only).
    pub wire_bytes: u32,
    /// Destination endpoint.
    pub dst_ep: u32,
    /// Kind (low 2 bits) and flag bits; see the `F_*` constants.
    meta: u8,
    /// Routing layer tag (FatPaths); 0 = minimal layer.
    pub layer: u8,
    /// Receiver's suggested layer carried on PULL/NACK (0xff = none).
    pub suggest_layer: u8,
    /// Flowlet nonce (LetFlow router hashing).
    pub nonce: u64,
    /// Unique per-transmission id: `(flow << 33) | (counter << 1) | dir`
    /// where `dir` distinguishes sender-emitted (0) from
    /// receiver-emitted (1) packets, each side counting independently.
    /// Doubles as the spraying salt *and* the canonical arrival-order
    /// key in the event queue, so the id — unlike a globally-sequenced
    /// counter — must not depend on event interleaving across flows.
    pub salt: u64,
}

/// Payload was trimmed by a congested NDP queue.
const F_TRIMMED: u8 = 1 << 2;
/// ECN congestion-experienced mark.
const F_ECN_CE: u8 = 1 << 3;
/// ECE echo on ACKs.
const F_ECN_ECHO: u8 = 1 << 4;
/// Retransmission (NDP prioritizes these).
const F_RETX: u8 = 1 << 5;

impl Packet {
    /// Builds a packet with all flag bits clear; set flags with
    /// [`Packet::with_retx`] / [`Packet::with_ecn_echo`] at the source
    /// and the `set_*` mutators in flight.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: PktKind,
        seq: u32,
        wire_bytes: u32,
        layer: u8,
        dst_ep: u32,
        nonce: u64,
        salt: u64,
        suggest_layer: u8,
    ) -> Packet {
        Packet {
            seq,
            wire_bytes,
            dst_ep,
            meta: kind as u8,
            layer,
            suggest_layer,
            nonce,
            salt,
        }
    }

    /// Marks the packet a retransmission.
    pub fn with_retx(mut self, retx: bool) -> Packet {
        self.meta |= if retx { F_RETX } else { 0 };
        self
    }

    /// Sets the ACK's ECE echo bit.
    pub fn with_ecn_echo(mut self, echo: bool) -> Packet {
        self.meta |= if echo { F_ECN_ECHO } else { 0 };
        self
    }

    /// Owning flow index (the top bits of the transmission id).
    #[inline]
    pub fn flow(&self) -> u32 {
        (self.salt >> 33) as u32
    }

    /// Kind.
    #[inline]
    pub fn kind(&self) -> PktKind {
        match self.meta & 0b11 {
            0 => PktKind::Data,
            1 => PktKind::Ack,
            2 => PktKind::Nack,
            _ => PktKind::Pull,
        }
    }

    /// Payload was trimmed by a congested NDP queue.
    #[inline]
    pub fn trimmed(&self) -> bool {
        self.meta & F_TRIMMED != 0
    }

    /// Records a payload trim (the caller also rewrites `wire_bytes`).
    #[inline]
    pub fn set_trimmed(&mut self) {
        self.meta |= F_TRIMMED;
    }

    /// ECN congestion-experienced mark.
    #[inline]
    pub fn ecn_ce(&self) -> bool {
        self.meta & F_ECN_CE != 0
    }

    /// Applies the ECN congestion-experienced mark.
    #[inline]
    pub fn set_ecn_ce(&mut self) {
        self.meta |= F_ECN_CE;
    }

    /// ECE echo on ACKs.
    #[inline]
    pub fn ecn_echo(&self) -> bool {
        self.meta & F_ECN_ECHO != 0
    }

    /// Retransmission (NDP prioritizes these).
    #[inline]
    pub fn retx(&self) -> bool {
        self.meta & F_RETX != 0
    }
}

/// Sentinel for "no packet" in the slab's intrusive queue links.
pub const NO_PKT: u32 = u32::MAX;

/// Fixed-capacity-free packet slab with id reuse.
///
/// Each slot carries an intrusive `next` link so queued packets chain
/// through the slab itself: a port queue is then just a `(head, tail)`
/// pair instead of a heap-allocated deque — at fat-tree scale the
/// hundreds of thousands of per-port queue allocations were a dominant
/// share of the event loop's transient memory.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    /// Intrusive successor link per slot ([`NO_PKT`] = end of chain).
    next: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    /// Stores a packet, returning its id (its `next` link is reset).
    pub fn alloc(&mut self, p: Packet) -> u32 {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = p;
            self.next[id as usize] = NO_PKT;
            id
        } else {
            // Bounded exact growth (see `EventQueue::ensure_slot`):
            // never let a push double a multi-MB arena.
            if self.slots.len() == self.slots.capacity() {
                let step = (self.slots.capacity() / 8).max(1024);
                self.slots.reserve_exact(step);
                self.next.reserve_exact(step);
            }
            self.slots.push(p);
            self.next.push(NO_PKT);
            (self.slots.len() - 1) as u32
        }
    }

    /// Releases a packet id for reuse.
    pub fn release(&mut self, id: u32) {
        self.live -= 1;
        self.free.push(id);
    }

    /// The intrusive successor of `id` ([`NO_PKT`] at chain end).
    #[inline]
    pub fn next_of(&self, id: u32) -> u32 {
        self.next[id as usize]
    }

    /// Links `id`'s intrusive successor.
    #[inline]
    pub fn set_next(&mut self, id: u32, next: u32) {
        self.next[id as usize] = next;
    }

    /// Immutable access.
    pub fn get(&self, id: u32) -> &Packet {
        &self.slots[id as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: u32) -> &mut Packet {
        &mut self.slots[id as usize]
    }

    /// Packets currently allocated.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Allocated slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Pre-sizes backing storage so `n` further [`PacketSlab::alloc`]
    /// calls need no growth. Free-list slots count toward that budget:
    /// a steady-state slab with plenty of released ids reserves
    /// nothing, so per-window bulk reserves (mailbox delivery) cannot
    /// inflate the arena past its true high-water mark.
    /// Growth is exact, not amortized: bulk reserves arrive every
    /// delivery window, and doubling a multi-MB arena on each would
    /// push the high-water mark far past the true peak population.
    pub fn reserve(&mut self, n: usize) {
        let fresh = n.saturating_sub(self.free.len());
        self.slots.reserve_exact(fresh);
        self.next.reserve_exact(fresh);
    }
}

/// The congestion-aware flowlet-boundary decision
/// ([`AdaptiveMode::QueueDepth`](crate::config::AdaptiveMode)): given a
/// snapshot of local queue depths (one entry per candidate — layer or
/// port — with `u32::MAX` marking dead/unusable candidates), returns
/// the index of the least-loaded candidate. Ties break by a
/// deterministic hash of `(flow, flowlet counter)` so repeated
/// boundaries of one flow spread over equally idle candidates instead
/// of herding onto the first.
///
/// This is a pure function of exactly `(depths, flow, ctr)` — no clock,
/// no RNG, no global state — which is what keeps adaptive runs
/// byte-identical at any shard and thread count (the shard-parity
/// proptests pin this contract). Returns `None` when every candidate is
/// unusable; the caller falls back to the oblivious hash. Cost is two
/// passes over `depths`, no allocation.
pub fn least_loaded(depths: &[u32], flow: u32, ctr: u32) -> Option<usize> {
    let min = *depths.iter().min()?;
    if min == u32::MAX {
        return None;
    }
    let ties = depths.iter().filter(|&&d| d == min).count() as u64;
    let k = (fnv1a(((flow as u64) << 32) ^ 0xADA7 ^ ctr as u64) % ties) as usize;
    depths
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == min)
        .nth(k)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_picks_a_minimum_and_is_deterministic() {
        let depths = [4, 1, 7, 1, 1];
        let pick = least_loaded(&depths, 9, 3).unwrap();
        assert_eq!(depths[pick], 1);
        assert_eq!(least_loaded(&depths, 9, 3), Some(pick));
        // A unique minimum is always chosen regardless of the tie-break.
        for ctr in 0..32 {
            assert_eq!(least_loaded(&[5, 0, 9], 1, ctr), Some(1));
        }
        // All-dead snapshots defer to the oblivious fallback.
        assert_eq!(least_loaded(&[u32::MAX, u32::MAX], 1, 1), None);
        assert_eq!(least_loaded(&[], 1, 1), None);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::default();
        q.push(30, EvKind::PortPop { port: 3 });
        q.push(10, EvKind::PortPop { port: 1 });
        q.push(20, EvKind::PortPop { port: 2 });
        let order: Vec<TimePs> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_canonical_order_not_push_order() {
        // Push flow starts in descending id order; they must pop in
        // ascending id order — the canonical key, not the push sequence.
        let mut q = EventQueue::default();
        for i in (0..10u32).rev() {
            q.push(5, EvKind::FlowStart { flow: i });
        }
        let flows: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, k)| match k {
                EvKind::FlowStart { flow } => flow,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_time_classes_rank_faults_before_traffic_before_timers() {
        let mut q = EventQueue::default();
        q.push(7, EvKind::RtoTimer { flow: 0, gen: 1 });
        q.push_arrival(7, EvKind::ArriveRouter { pkt: 9, router: 2 }, 42);
        q.push(7, EvKind::FlowStart { flow: 3 });
        q.push(7, EvKind::RepairTick);
        q.push(7, EvKind::LinkDown { u: 5, v: 1 });
        let kinds: Vec<EvKind> = std::iter::from_fn(|| q.pop().map(|(_, k)| k)).collect();
        assert_eq!(
            kinds,
            vec![
                EvKind::LinkDown { u: 5, v: 1 },
                EvKind::RepairTick,
                EvKind::FlowStart { flow: 3 },
                EvKind::ArriveRouter { pkt: 9, router: 2 },
                EvKind::RtoTimer { flow: 0, gen: 1 },
            ]
        );
    }

    #[test]
    fn arrivals_order_by_transmission_id_not_slab_id() {
        // Two arrivals at the same instant: the one with the smaller
        // transmission id pops first even though its slab id is larger.
        let mut q = EventQueue::default();
        q.push_arrival(5, EvKind::ArriveEndpoint { pkt: 1, ep: 0 }, 200);
        q.push_arrival(5, EvKind::ArriveEndpoint { pkt: 7, ep: 0 }, 100);
        let pkts: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, k)| match k {
                EvKind::ArriveEndpoint { pkt, .. } => pkt,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(pkts, vec![7, 1]);
    }

    #[test]
    fn order_is_push_sequence_independent() {
        // The same event set pushed in two different interleavings pops
        // identically — the invariant the sharded engine relies on.
        let evs = [
            (9, EvKind::PortPop { port: 4 }),
            (9, EvKind::PortPop { port: 2 }),
            (3, EvKind::PullTick { ep: 8 }),
            (9, EvKind::FlowStart { flow: 1 }),
            (3, EvKind::RouterDown { router: 6 }),
        ];
        let mut fwd = EventQueue::default();
        let mut rev = EventQueue::default();
        for &(t, k) in evs.iter() {
            fwd.push(t, k);
        }
        for &(t, k) in evs.iter().rev() {
            rev.push(t, k);
        }
        let a: Vec<_> = std::iter::from_fn(|| fwd.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rev.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn slab_reuses_ids() {
        let mut s = PacketSlab::default();
        let p = Packet::new(PktKind::Ack, 0, 64, 0, 0, 0, 0, 0xff);
        let a = s.alloc(p);
        let b = s.alloc(p);
        assert_ne!(a, b);
        s.release(a);
        let c = s.alloc(p);
        assert_eq!(c, a);
        assert_eq!(s.live(), 2);
    }
}
