//! Memory sweep: the paper's routing-table overhead analysis (§V-E,
//! §VII-C) made a first-class experiment — how much switch-resident
//! forwarding state does layered routing actually cost, topology by
//! topology, and does prefix aggregation keep it inside commodity
//! table budgets?
//!
//! Grid: topology × routing scheme × layer count × compile mode
//! ({host-routes, aggregated}). Each cell builds the scheme, compiles
//! it to per-switch FIBs with `fatpaths_fib`, and reports entry counts
//! (mean + max per switch), ECMP group counts, the compression ratio of
//! aggregation over host routes, a byte estimate, and how many switches
//! overflow a low-end commodity [`TableBudget`]. The paper's
//! deployability claim shows up directly in the numbers: structured
//! topologies (fat tree, Dragonfly, HyperX) collapse under aggregation
//! because their fate-sharing domains occupy contiguous endpoint-id
//! ranges, while irregular ones (SF, JF, XP) stay near the host-route
//! floor and pay for layers linearly.
//!
//! Everything is a pure function of the grid coordinates, so the CSV is
//! byte-identical at any thread count (pinned by `parallel_parity`).

use crate::common::{f, is_smoke, label, write_summary, write_text};
use fatpaths_fib::{compile, CompileMode, TableBudget};
use fatpaths_net::classes::{build, evaluated_kinds, SizeClass};
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::{Scenario, SchemeSpec, SweepRunner};
use std::io;

/// Layer counts swept for the layered scheme (the §V-B knob that
/// multiplies table state).
pub const LAYER_COUNTS: [usize; 3] = [3, 6, 9];

/// Compile modes swept.
const MODES: [CompileMode; 2] = [CompileMode::HostRoutes, CompileMode::Aggregated];

/// CSV header of the memory artifact.
const HEADER: &str = "topology,scheme,layers,mode,switches,endpoints,raw_entries,entries_total,\
                      entries_mean,entries_max,groups_mean,groups_max,compression,kib_total,\
                      overflow_switches";

/// The scheme axis: FatPaths layers at each swept count, plus
/// minimal-path ECMP (multi-port groups — the group-dedup stress case).
fn schemes(layer_counts: &[usize]) -> Vec<(&'static str, SchemeSpec)> {
    let mut out: Vec<(&'static str, SchemeSpec)> = layer_counts
        .iter()
        .map(|&n| {
            (
                "fatpaths",
                SchemeSpec::LayeredRandom {
                    n_layers: n,
                    rho: 0.6,
                },
            )
        })
        .collect();
    out.push(("ecmp", SchemeSpec::Minimal));
    out
}

/// Metrics of one grid cell, pre-assembly.
struct CellOut {
    layers: usize,
    stats: fatpaths_fib::FibStats,
    overflow: usize,
    endpoints: usize,
}

/// Runs the memory grid and returns `(csv_text, summary_text)`,
/// assembled in grid order after the parallel phase (bit-identical for
/// any thread count; compilation is deterministic per cell).
pub fn memory_matrix_on(topos: Vec<Topology>, layer_counts: &[usize]) -> (String, String) {
    let specs = schemes(layer_counts);
    let budget = TableBudget::default();
    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for ti in 0..topos.len() {
        for si in 0..specs.len() {
            for mi in 0..MODES.len() {
                cells.push((ti, si, mi));
            }
        }
    }
    let results = SweepRunner::new("memory", cells).run(|_, &(ti, si, mi)| {
        let topo = &topos[ti];
        let (_, spec) = specs[si];
        let scheme = Scenario::on(topo).scheme(spec).seed(1).build_scheme();
        let fib = compile(topo, &scheme, MODES[mi]);
        CellOut {
            layers: fib.tag_space(),
            stats: fib.stats(),
            overflow: fib.overflowing_switches(&budget),
            endpoints: topo.num_endpoints(),
        }
    });
    let (ns, nm) = (specs.len(), MODES.len());
    let cell_index = |ti: usize, si: usize, mi: usize| (ti * ns + si) * nm + mi;
    let mut csv = String::from(HEADER);
    csv.push('\n');
    let mut summary = String::from(
        "Memory — per-switch FIB state of layered routing (entries / groups / budget)\n",
    );
    for (ti, topo) in topos.iter().enumerate() {
        summary.push_str(&format!(
            "-- {} ({} routers, {} endpoints) --\n",
            label(topo),
            topo.num_routers(),
            topo.num_endpoints()
        ));
        for (si, (name, _)) in specs.iter().enumerate() {
            for (mi, mode) in MODES.iter().enumerate() {
                let c = &results[cell_index(ti, si, mi)];
                let s = &c.stats;
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    label(topo),
                    name,
                    c.layers,
                    mode.label(),
                    s.switches,
                    c.endpoints,
                    s.raw_entries,
                    s.entries_total,
                    f(s.entries_mean),
                    s.entries_max,
                    f(s.groups_mean),
                    s.groups_max,
                    f(s.compression),
                    f(s.bytes_total as f64 / 1024.0),
                    c.overflow
                ));
                summary.push_str(&format!(
                    "{:<9} layers={:<2} {:<4}: {:>8.1} entries/switch (max {:>6}), \
                     {:>6.1} groups, {:>6.2}x compressed, {:>4} over budget\n",
                    name,
                    c.layers,
                    mode.label(),
                    s.entries_mean,
                    s.entries_max,
                    s.groups_mean,
                    s.compression,
                    c.overflow
                ));
            }
        }
    }
    summary.push_str(&format!(
        "Budget: {} rules / {} ECMP groups per switch (a low-end commodity ToR).\n\
         Aggregation merges adjacent destination ranges that share an ECMP group:\n\
         structured topologies (FT3/DF/HX) collapse toward one rule per remote\n\
         domain, irregular ones (SF/JF/XP) stay near host routes — the shape of the\n\
         paper's memory-overhead argument across the whole topology zoo.\n",
        budget.entries, budget.groups
    ));
    (csv, summary)
}

/// The shipped experiment: the full topology zoo (the five low-diameter
/// families + fat tree + the complete graph) at the small class under
/// the [`LAYER_COUNTS`] × mode sweep.
pub fn memory(quick: bool) -> io::Result<()> {
    let kinds: Vec<TopoKind> = if is_smoke() {
        vec![TopoKind::SlimFly, TopoKind::FatTree]
    } else {
        let mut k = evaluated_kinds().to_vec();
        k.push(TopoKind::Complete);
        k
    };
    let topos =
        SweepRunner::new("memory-topos", kinds).run(|_, &kind| build(kind, SizeClass::Small, 1));
    let layer_counts: &[usize] = if is_smoke() {
        &[3]
    } else if quick {
        &[3, 9]
    } else {
        &LAYER_COUNTS
    };
    let (csv, summary) = memory_matrix_on(topos, layer_counts);
    write_text("memory.csv", &csv)?;
    write_summary("memory", &summary)
}
