//! Compiled-FIB parity: the flagship guarantee of the FIB subsystem.
//! Simulating on [`CompiledScheme`] tables — per-switch prefix rules +
//! ECMP groups, matched per packet — must produce **byte-identical**
//! results to the analytic schemes they were compiled from, across the
//! whole baselines grid (every scheme family of the paper's
//! comparison), in both compile modes, and through a fault + repair
//! run. Any divergence means the compiled state is not the state the
//! analytic evaluation assumed switches would hold, which would void
//! the deployment argument (§V-E).

use fatpaths_core::past::PastVariant;
use fatpaths_net::fault::{FaultModel, FaultPlan};
use fatpaths_net::topo::Topology;
use fatpaths_sim::{CompileMode, LoadBalancing, Scenario, SchemeSpec, SimResult};
use fatpaths_workloads::arrivals::FlowSpec;

/// The full baselines scheme matrix (same specs as the `baselines`
/// experiment).
fn matrix() -> Vec<(SchemeSpec, Option<LoadBalancing>)> {
    vec![
        (
            SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            },
            None,
        ),
        (SchemeSpec::Minimal, Some(LoadBalancing::EcmpFlow)),
        (SchemeSpec::Minimal, Some(LoadBalancing::PacketSpray)),
        (SchemeSpec::Minimal, Some(LoadBalancing::LetFlow)),
        (SchemeSpec::Spain { k_paths: 2 }, None),
        (
            SchemeSpec::Past {
                variant: PastVariant::Bfs,
            },
            None,
        ),
        (SchemeSpec::Ksp { k: 3 }, None),
        (SchemeSpec::Valiant { n_layers: 4 }, None),
    ]
}

fn mini_topos() -> Vec<Topology> {
    vec![
        fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(),
        fatpaths_net::topo::fattree::fat_tree(4, 1),
    ]
}

fn permutation(topo: &Topology, offset: u64) -> Vec<FlowSpec> {
    let n = topo.num_endpoints() as u64;
    (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size: 48 * 1024,
            start: 0,
        })
        .filter(|f| f.src != f.dst)
        .collect()
}

/// Serializes everything a result CSV could ever derive — per-flow
/// records and global counters — so equality here is equality of any
/// downstream artifact. FIB rewrite pricing is metadata about the
/// *scheme representation* and intentionally excluded; overlay row
/// counts and tick times must still match.
fn fingerprint(r: &SimResult) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "end={} drops={} trims={} unroutable={}\n",
        r.end_time, r.drops, r.trims, r.unroutable
    );
    for f in &r.flows {
        let _ = writeln!(
            s,
            "{},{},{:?},{},{},{},{}",
            f.size, f.start, f.finish, f.retx, f.trims, f.host_dead, f.aborted
        );
    }
    for t in &r.repair_log {
        let _ = writeln!(s, "tick {} rows={}", t.at, t.rows);
    }
    s
}

/// Healthy-network parity: all eight baselines, both compile modes,
/// two topologies.
#[test]
fn compiled_fib_runs_are_byte_identical_to_analytic_runs() {
    for topo in mini_topos() {
        let flows = permutation(&topo, 17);
        for (spec, lb) in matrix() {
            let scenario = |compiled: Option<CompileMode>| {
                let mut sc = Scenario::on(&topo).scheme(spec).workload(&flows).seed(3);
                if let Some(lb) = lb {
                    sc = sc.lb(lb);
                }
                if let Some(mode) = compiled {
                    sc = sc.compiled(mode);
                }
                sc.run()
            };
            let analytic = fingerprint(&scenario(None));
            for mode in [CompileMode::HostRoutes, CompileMode::Aggregated] {
                let compiled = fingerprint(&scenario(Some(mode)));
                assert!(
                    analytic == compiled,
                    "{} {:?} diverged on {} (lb {:?})",
                    spec.label(),
                    mode,
                    topo.name,
                    lb
                );
            }
        }
    }
}

/// Fault parity: static failures + mid-run churn with detection-driven
/// repair. The compiled scheme delegates routing repair to its inner
/// scheme and prices it in FIB rows, so the packet-visible behavior —
/// including every repair tick's overlay — must match exactly, while
/// the compiled run additionally reports nonzero rewritten FIB rows.
#[test]
fn compiled_fib_fault_repair_runs_match_analytic_runs() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap();
    let flows = permutation(&topo, 21);
    let plan = FaultPlan::sample(&topo, &FaultModel::UniformFraction { fraction: 0.06 }, 11)
        .router_down_at(2_000_000_000, 7)
        .router_up_at(6_000_000_000, 7);
    let run = |compiled: Option<CompileMode>| {
        let mut sc = Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .workload(&flows)
            .seed(3)
            .horizon(40_000_000_000)
            .fault_plan(plan.clone())
            .detection_delay(50_000_000);
        if let Some(mode) = compiled {
            sc = sc.compiled(mode);
        }
        sc.run()
    };
    let analytic = run(None);
    let compiled = run(Some(CompileMode::Aggregated));
    assert_eq!(fingerprint(&analytic), fingerprint(&compiled));
    assert!(analytic.repair_ticks() >= 2, "churn must trigger repairs");
    assert_eq!(analytic.fib_rows(), 0, "analytic schemes carry no FIB");
    assert!(
        compiled.fib_rows() > 0,
        "compiled repair must price rewritten FIB rows"
    );
    assert!(compiled.repair_rows() == analytic.repair_rows());
}

/// The `+fib` label marks compiled scenarios for CSV rows.
#[test]
fn compiled_label_is_distinct() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
    let sc = Scenario::on(&topo).scheme(SchemeSpec::Minimal);
    assert_eq!(sc.clone().label(), "minimal");
    assert_eq!(
        sc.compiled(CompileMode::Aggregated).label(),
        "minimal+fib(agg)"
    );
}

/// TE compiled parity — the PR 6 acceptance pin: negotiated TE tables
/// compile through `crates/fib` like any other scheme, and simulating
/// on the compiled form is byte-identical to the analytic TE run, both
/// healthy and through a fault + detection-driven repair (which routes
/// through the TE controller rather than the static-table repair).
#[test]
fn te_compiled_fib_runs_match_analytic_runs() {
    for topo in mini_topos() {
        let flows = permutation(&topo, 13);
        let plan = FaultPlan::sample(&topo, &FaultModel::UniformFraction { fraction: 0.04 }, 9);
        let run = |compiled: Option<CompileMode>, faulty: bool| {
            let mut sc = Scenario::on(&topo)
                .scheme(SchemeSpec::LayeredRandom {
                    n_layers: 4,
                    rho: 0.6,
                })
                .traffic_engineered(fatpaths_sim::TeConfig::default())
                .workload(&flows)
                .seed(5)
                .horizon(40_000_000_000);
            if faulty {
                sc = sc.fault_plan(plan.clone()).detection_delay(50_000_000);
            }
            if let Some(mode) = compiled {
                sc = sc.compiled(mode);
            }
            sc.run()
        };
        for faulty in [false, true] {
            let analytic = run(None, faulty);
            for mode in [CompileMode::HostRoutes, CompileMode::Aggregated] {
                let compiled = run(Some(mode), faulty);
                assert!(
                    fingerprint(&analytic) == fingerprint(&compiled),
                    "te {:?} diverged on {} (faulty {faulty})",
                    mode,
                    topo.name
                );
                if faulty {
                    assert!(
                        compiled.fib_rows() > 0,
                        "TE repair must price rewritten FIB rows"
                    );
                }
            }
            if faulty {
                assert!(
                    analytic.repair_ticks() >= 1,
                    "static faults must trigger a TE repair tick on {}",
                    topo.name
                );
                assert_eq!(analytic.fib_rows(), 0, "analytic TE carries no FIB");
            }
        }
    }
}

/// The `+te` label slots between the scheme label and the `+fib` suffix.
#[test]
fn te_label_composes() {
    let topo = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
    let sc = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .traffic_engineered(fatpaths_sim::TeConfig::default());
    assert_eq!(sc.clone().label(), "layered(n=4,rho=0.6)+te");
    assert_eq!(
        sc.compiled(CompileMode::Aggregated).label(),
        "layered(n=4,rho=0.6)+te+fib(agg)"
    );
}
