//! Discrete-event core: a deterministic time-ordered event queue and a
//! packet slab.
//!
//! Events are ordered by a **canonical key**, not by push sequence:
//! `(time, class, key)` where `class` ranks event kinds (fault events
//! before repair before flow starts before packet motion before timers)
//! and `key` is derived from the event's *content* (global port/router/
//! endpoint ids; for packet arrivals, the packet's unique transmission
//! id). Two queues that hold the same set of events therefore pop them
//! in the same order no matter how the pushes interleaved — this is
//! what makes the sharded engine (`crate::shard`) bit-identical to the
//! single-queue run at any shard count: a shard's queue sees exactly
//! the events for its region, and the canonical order is independent of
//! whether a packet arrived via a local push or a cross-shard mailbox.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in picoseconds.
pub type TimePs = u64;

/// Kinds of events the simulator processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvKind {
    /// A flow's start time arrived.
    FlowStart {
        /// Flow index.
        flow: u32,
    },
    /// A port's serializer finished; pop the next queued packet.
    PortPop {
        /// Port index.
        port: u32,
    },
    /// A packet arrives at a router (after link latency).
    ArriveRouter {
        /// Packet slab id.
        pkt: u32,
        /// Router id.
        router: u32,
    },
    /// A packet arrives at an endpoint.
    ArriveEndpoint {
        /// Packet slab id.
        pkt: u32,
        /// Endpoint id.
        ep: u32,
    },
    /// The endpoint may emit its next paced NDP PULL.
    PullTick {
        /// Endpoint id.
        ep: u32,
    },
    /// TCP retransmission timeout.
    RtoTimer {
        /// Flow index.
        flow: u32,
        /// Timer generation (stale timers are ignored).
        gen: u32,
    },
    /// Link `{u, v}` goes down: packets forwarded onto it are lost from
    /// this instant.
    LinkDown {
        /// One endpoint router.
        u: u32,
        /// The other endpoint router.
        v: u32,
    },
    /// Link `{u, v}` comes back up.
    LinkUp {
        /// One endpoint router.
        u: u32,
        /// The other endpoint router.
        v: u32,
    },
    /// Router `router` dies: every incident link goes down atomically
    /// and its attached endpoints stop injecting (flows starting while
    /// it is dead are accounted `host_dead`).
    RouterDown {
        /// The dying router.
        router: u32,
    },
    /// Router `router` comes back up: incident links whose other end is
    /// alive and not independently failed are restored, and its
    /// endpoints may inject again.
    RouterUp {
        /// The reviving router.
        router: u32,
    },
    /// The control plane noticed a link-state change (one detection
    /// delay after it): recompute the route-repair overlay from the
    /// current down-link set.
    RepairTick,
}

/// Flat heap entry. Ordering is the derived lexicographic order on
/// `(t, cls, key, a, b)`; `a`/`b` are the raw `EvKind` payload words and
/// only break ties between *distinct* events whose canonical key
/// collides (e.g. `LinkDown{u,v}` vs `LinkDown{v,u}` at the same
/// instant). For packet arrivals `key` is the globally unique
/// transmission id, so the slab id in `a` — which *does* differ between
/// shard layouts — is never consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EvEntry {
    t: TimePs,
    cls: u8,
    key: u64,
    a: u32,
    b: u32,
}

/// Canonical class ranks. Fault events sort before everything else at
/// the same instant (a link that dies at `t` drops packets forwarded at
/// `t`), repair before traffic, flow starts before packet motion, and
/// timers last (an ACK and an RTO at the same instant: the ACK bumps
/// the timer generation, so the RTO is stale — matching the pre-shard
/// push-order behavior where timers were armed after sends).
const CLS_LINK_DOWN: u8 = 0;
const CLS_ROUTER_DOWN: u8 = 1;
const CLS_LINK_UP: u8 = 2;
const CLS_ROUTER_UP: u8 = 3;
const CLS_REPAIR: u8 = 4;
const CLS_FLOW_START: u8 = 5;
const CLS_PORT_POP: u8 = 6;
const CLS_ARRIVE_ROUTER: u8 = 7;
const CLS_ARRIVE_EP: u8 = 8;
const CLS_PULL_TICK: u8 = 9;
const CLS_RTO: u8 = 10;

fn link_key(u: u32, v: u32) -> u64 {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    ((lo as u64) << 32) | hi as u64
}

impl EvEntry {
    fn encode(t: TimePs, kind: EvKind, uid: Option<u64>) -> Self {
        let (cls, key, a, b) = match kind {
            EvKind::LinkDown { u, v } => (CLS_LINK_DOWN, link_key(u, v), u, v),
            EvKind::RouterDown { router } => (CLS_ROUTER_DOWN, router as u64, router, 0),
            EvKind::LinkUp { u, v } => (CLS_LINK_UP, link_key(u, v), u, v),
            EvKind::RouterUp { router } => (CLS_ROUTER_UP, router as u64, router, 0),
            EvKind::RepairTick => (CLS_REPAIR, 0, 0, 0),
            EvKind::FlowStart { flow } => (CLS_FLOW_START, flow as u64, flow, 0),
            EvKind::PortPop { port } => (CLS_PORT_POP, port as u64, port, 0),
            EvKind::ArriveRouter { pkt, router } => {
                let uid = uid.expect("router arrivals must be pushed with push_arrival");
                (CLS_ARRIVE_ROUTER, uid, pkt, router)
            }
            EvKind::ArriveEndpoint { pkt, ep } => {
                let uid = uid.expect("endpoint arrivals must be pushed with push_arrival");
                (CLS_ARRIVE_EP, uid, pkt, ep)
            }
            EvKind::PullTick { ep } => (CLS_PULL_TICK, ep as u64, ep, 0),
            EvKind::RtoTimer { flow, gen } => {
                (CLS_RTO, ((flow as u64) << 32) | gen as u64, flow, gen)
            }
        };
        EvEntry { t, cls, key, a, b }
    }

    fn decode(self) -> (TimePs, EvKind) {
        let kind = match self.cls {
            CLS_LINK_DOWN => EvKind::LinkDown {
                u: self.a,
                v: self.b,
            },
            CLS_ROUTER_DOWN => EvKind::RouterDown { router: self.a },
            CLS_LINK_UP => EvKind::LinkUp {
                u: self.a,
                v: self.b,
            },
            CLS_ROUTER_UP => EvKind::RouterUp { router: self.a },
            CLS_REPAIR => EvKind::RepairTick,
            CLS_FLOW_START => EvKind::FlowStart { flow: self.a },
            CLS_PORT_POP => EvKind::PortPop { port: self.a },
            CLS_ARRIVE_ROUTER => EvKind::ArriveRouter {
                pkt: self.a,
                router: self.b,
            },
            CLS_ARRIVE_EP => EvKind::ArriveEndpoint {
                pkt: self.a,
                ep: self.b,
            },
            CLS_PULL_TICK => EvKind::PullTick { ep: self.a },
            CLS_RTO => EvKind::RtoTimer {
                flow: self.a,
                gen: self.b,
            },
            _ => unreachable!("corrupt event class"),
        };
        (self.t, kind)
    }
}

/// The deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<EvEntry>>,
}

impl EventQueue {
    /// Schedules a non-arrival event at absolute time `at`. Packet
    /// arrivals carry slab ids that are not canonical across shard
    /// layouts — they must go through [`push_arrival`] with the
    /// packet's transmission id instead.
    ///
    /// [`push_arrival`]: EventQueue::push_arrival
    pub fn push(&mut self, at: TimePs, kind: EvKind) {
        debug_assert!(
            !matches!(
                kind,
                EvKind::ArriveRouter { .. } | EvKind::ArriveEndpoint { .. }
            ),
            "arrival events need push_arrival(at, kind, uid)"
        );
        self.heap.push(Reverse(EvEntry::encode(at, kind, None)));
    }

    /// Schedules a packet arrival ordered by the packet's unique
    /// transmission id (`Packet::salt`), which is stable across shard
    /// layouts — unlike the slab id embedded in the `EvKind`.
    pub fn push_arrival(&mut self, at: TimePs, kind: EvKind, uid: u64) {
        debug_assert!(
            matches!(
                kind,
                EvKind::ArriveRouter { .. } | EvKind::ArriveEndpoint { .. }
            ),
            "push_arrival is for packet arrivals only"
        );
        self.heap
            .push(Reverse(EvEntry::encode(at, kind, Some(uid))));
    }

    /// Pops the earliest event (canonical order within a timestamp).
    pub fn pop(&mut self) -> Option<(TimePs, EvKind)> {
        self.heap.pop().map(|Reverse(e)| e.decode())
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<TimePs> {
        self.heap.peek().map(|Reverse(e)| e.t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pre-sizes the heap for at least `n` additional events.
    pub fn reserve(&mut self, n: usize) {
        self.heap.reserve(n);
    }
}

/// What a packet is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PktKind {
    /// Payload-carrying data packet.
    Data,
    /// Acknowledgment (TCP cumulative; NDP per-packet).
    Ack,
    /// NDP "payload was trimmed" notification.
    Nack,
    /// NDP receiver-paced credit.
    Pull,
}

/// A packet in flight. Small enough to copy around freely.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Owning flow index.
    pub flow: u32,
    /// Packet index within the flow (data), or the cumulative-ack /
    /// sequence payload for control packets.
    pub seq: u32,
    /// Bytes on the wire (payload + header, or header only).
    pub wire_bytes: u32,
    /// Kind.
    pub kind: PktKind,
    /// Routing layer tag (FatPaths); 0 = minimal layer.
    pub layer: u8,
    /// Payload was trimmed by a congested NDP queue.
    pub trimmed: bool,
    /// ECN congestion-experienced mark.
    pub ecn_ce: bool,
    /// ECE echo on ACKs.
    pub ecn_echo: bool,
    /// Retransmission (NDP prioritizes these).
    pub retx: bool,
    /// Destination router.
    pub dst_router: u32,
    /// Destination endpoint.
    pub dst_ep: u32,
    /// Flowlet nonce (LetFlow router hashing).
    pub nonce: u64,
    /// Unique per-transmission id: `(flow << 33) | (counter << 1) | dir`
    /// where `dir` distinguishes sender-emitted (0) from
    /// receiver-emitted (1) packets, each side counting independently.
    /// Doubles as the spraying salt *and* the canonical arrival-order
    /// key in the event queue, so the id — unlike a globally-sequenced
    /// counter — must not depend on event interleaving across flows.
    pub salt: u64,
    /// Receiver's suggested layer carried on PULL/NACK (0xff = none).
    pub suggest_layer: u8,
}

/// Fixed-capacity-free packet slab with id reuse.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    /// Stores a packet, returning its id.
    pub fn alloc(&mut self, p: Packet) -> u32 {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = p;
            id
        } else {
            self.slots.push(p);
            (self.slots.len() - 1) as u32
        }
    }

    /// Releases a packet id for reuse.
    pub fn release(&mut self, id: u32) {
        self.live -= 1;
        self.free.push(id);
    }

    /// Immutable access.
    pub fn get(&self, id: u32) -> &Packet {
        &self.slots[id as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: u32) -> &mut Packet {
        &mut self.slots[id as usize]
    }

    /// Packets currently allocated.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Pre-sizes backing storage for at least `n` additional packets.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::default();
        q.push(30, EvKind::PortPop { port: 3 });
        q.push(10, EvKind::PortPop { port: 1 });
        q.push(20, EvKind::PortPop { port: 2 });
        let order: Vec<TimePs> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_canonical_order_not_push_order() {
        // Push flow starts in descending id order; they must pop in
        // ascending id order — the canonical key, not the push sequence.
        let mut q = EventQueue::default();
        for i in (0..10u32).rev() {
            q.push(5, EvKind::FlowStart { flow: i });
        }
        let flows: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, k)| match k {
                EvKind::FlowStart { flow } => flow,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_time_classes_rank_faults_before_traffic_before_timers() {
        let mut q = EventQueue::default();
        q.push(7, EvKind::RtoTimer { flow: 0, gen: 1 });
        q.push_arrival(7, EvKind::ArriveRouter { pkt: 9, router: 2 }, 42);
        q.push(7, EvKind::FlowStart { flow: 3 });
        q.push(7, EvKind::RepairTick);
        q.push(7, EvKind::LinkDown { u: 5, v: 1 });
        let kinds: Vec<EvKind> = std::iter::from_fn(|| q.pop().map(|(_, k)| k)).collect();
        assert_eq!(
            kinds,
            vec![
                EvKind::LinkDown { u: 5, v: 1 },
                EvKind::RepairTick,
                EvKind::FlowStart { flow: 3 },
                EvKind::ArriveRouter { pkt: 9, router: 2 },
                EvKind::RtoTimer { flow: 0, gen: 1 },
            ]
        );
    }

    #[test]
    fn arrivals_order_by_transmission_id_not_slab_id() {
        // Two arrivals at the same instant: the one with the smaller
        // transmission id pops first even though its slab id is larger.
        let mut q = EventQueue::default();
        q.push_arrival(5, EvKind::ArriveEndpoint { pkt: 1, ep: 0 }, 200);
        q.push_arrival(5, EvKind::ArriveEndpoint { pkt: 7, ep: 0 }, 100);
        let pkts: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, k)| match k {
                EvKind::ArriveEndpoint { pkt, .. } => pkt,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(pkts, vec![7, 1]);
    }

    #[test]
    fn order_is_push_sequence_independent() {
        // The same event set pushed in two different interleavings pops
        // identically — the invariant the sharded engine relies on.
        let evs = [
            (9, EvKind::PortPop { port: 4 }),
            (9, EvKind::PortPop { port: 2 }),
            (3, EvKind::PullTick { ep: 8 }),
            (9, EvKind::FlowStart { flow: 1 }),
            (3, EvKind::RouterDown { router: 6 }),
        ];
        let mut fwd = EventQueue::default();
        let mut rev = EventQueue::default();
        for &(t, k) in evs.iter() {
            fwd.push(t, k);
        }
        for &(t, k) in evs.iter().rev() {
            rev.push(t, k);
        }
        let a: Vec<_> = std::iter::from_fn(|| fwd.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rev.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn slab_reuses_ids() {
        let mut s = PacketSlab::default();
        let p = Packet {
            flow: 0,
            seq: 0,
            wire_bytes: 64,
            kind: PktKind::Ack,
            layer: 0,
            trimmed: false,
            ecn_ce: false,
            ecn_echo: false,
            retx: false,
            dst_router: 0,
            dst_ep: 0,
            nonce: 0,
            salt: 0,
            suggest_layer: 0xff,
        };
        let a = s.alloc(p);
        let b = s.alloc(p);
        assert_ne!(a, b);
        s.release(a);
        let c = s.alloc(p);
        assert_eq!(c, a);
        assert_eq!(s.live(), 2);
    }
}
