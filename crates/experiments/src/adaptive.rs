//! Adaptive-vs-oblivious flowlet sweep: CONGA/LetFlow-style local
//! congestion awareness ([`fatpaths_sim::AdaptiveMode::QueueDepth`])
//! scored against the paper's oblivious hash re-pick, with and without
//! negotiated-congestion TE — the data-plane half of the adaptivity
//! axis the multipathing survey (arXiv:2007.03776) makes central, now
//! that the TE sweep covers the control-plane half.
//!
//! Grid: topology × matrix × {static, te} × {oblivious, adaptive}. Each
//! cell runs the same seeded adversarial matrix (worst-case permutation,
//! heavy-hitter skew, synchronized incast from
//! [`fatpaths_workloads::matrices`]) under NDP over FatPaths layers and
//! measures on-time goodput: payload bits of flows completing within
//! [`ON_TIME_PS`] of injection, per on-time-window second. Deterministic
//! at any thread and shard count: the grid runs through [`SweepRunner`],
//! seeds derive from cell coordinates, rows assemble in grid order, and
//! the adaptive decision itself is a pure function of shard-local queue
//! snapshots (pinned by `shard_parity` and `parallel_parity`).

use crate::common::{f, is_smoke, label, write_summary, write_text};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::metrics::Summary;
use fatpaths_sim::{
    cell_seed, coord_str, AdaptiveMode, Scenario, SchemeSpec, SweepRunner, TeConfig,
};
use fatpaths_workloads::arrivals::FlowSpec;
use fatpaths_workloads::matrices::{matrix_flows, MatrixSpec};
use std::io;

/// CSV header of the adaptive sweep artifact.
pub const HEADER: &str = "topology,matrix,routing,boundary,scheme,flows,completed,on_time,\
                          goodput_gbps,trims,drops,fct_mean_ms,fct_p99_ms,peak_layer_gbps";

/// Routing-table axis: the static seeded layers vs the same layers
/// negotiated against the cell's matrix.
pub const ROUTINGS: [&str; 2] = ["static", "te"];

/// Flowlet-boundary axis (maps onto [`AdaptiveMode`]).
pub const BOUNDARIES: [&str; 2] = ["oblivious", "adaptive"];

/// Payload per flow: 29 jumbo packets, so every flow outlives its
/// line-rate first window and spends most of its life pull-paced —
/// where flowlet gaps (and hence boundary decisions) actually occur.
const FLOW_BYTES: u64 = 256 * 1024;

/// On-time bound for sustained goodput (mirrors the churn sweep's
/// reading: completions beyond this outlasted the congestion event
/// instead of routing around it).
pub const ON_TIME_PS: u64 = 2_500_000_000; // 2.5 ms

/// Hard stop: adversarial cells that strand flows must not run forever.
const HORIZON_PS: u64 = 20_000_000_000; // 20 ms

/// The adversarial matrices adaptivity is scored on.
fn matrices() -> Vec<MatrixSpec> {
    vec![
        MatrixSpec::WorstCase { intensity: 0.7 },
        MatrixSpec::HeavyHitter {
            hotspots: 2,
            skew: 0.5,
        },
        MatrixSpec::Incast {
            targets: 4,
            fan_in: 8,
        },
    ]
}

/// Metrics of one grid cell, pre-assembly.
struct CellOut {
    flows: usize,
    completed: usize,
    on_time: usize,
    goodput_gbps: f64,
    trims: u64,
    drops: u64,
    fct_mean_s: f64,
    fct_p99_s: f64,
    /// Telemetry-derived: peak per-layer wire utilization over the run.
    peak_layer_gbps: f64,
    scheme_label: String,
}

/// Index of cell `(ti, mi, ri, bi)` in grid order.
fn cell_index(n_matrices: usize, ti: usize, mi: usize, ri: usize, bi: usize) -> usize {
    ((ti * n_matrices + mi) * ROUTINGS.len() + ri) * BOUNDARIES.len() + bi
}

/// Runs the adaptive grid on the given topologies and returns
/// `(csv_text, summary_text)`; byte-identical at any thread count (the
/// parity suite pins this with miniature topologies).
pub fn adaptive_matrix_on(topos: Vec<Topology>, n_layers: usize, rho: f64) -> (String, String) {
    let specs = matrices();
    let mut cells: Vec<(usize, usize, usize, usize)> = Vec::new();
    for ti in 0..topos.len() {
        for mi in 0..specs.len() {
            for ri in 0..ROUTINGS.len() {
                for bi in 0..BOUNDARIES.len() {
                    cells.push((ti, mi, ri, bi));
                }
            }
        }
    }
    let results = SweepRunner::new("adaptive", cells).run(|_, &(ti, mi, ri, bi)| {
        let topo = &topos[ti];
        let spec = &specs[mi];
        let mseed = cell_seed(
            "adaptive-matrix",
            &[coord_str(&label(topo)), coord_str(&spec.label())],
        );
        let flows: Vec<FlowSpec> = matrix_flows(topo, spec, mseed)
            .into_iter()
            .map(|(src, dst)| FlowSpec {
                src,
                dst,
                size: FLOW_BYTES,
                start: 0,
            })
            .collect();
        let lseed = cell_seed("adaptive-layers", &[coord_str(&label(topo))]);
        let mut sc = Scenario::on(topo)
            .scheme(SchemeSpec::LayeredRandom { n_layers, rho })
            .workload(&flows)
            .seed(lseed)
            .horizon(HORIZON_PS);
        if ROUTINGS[ri] == "te" {
            sc = sc.traffic_engineered(TeConfig::default());
        }
        if BOUNDARIES[bi] == "adaptive" {
            sc = sc.adaptive(AdaptiveMode::QueueDepth);
        }
        let scheme_label = sc.label();
        // Traced run: the trace feeds the peak-layer-utilization column
        // (deterministic — integer byte counts per canonical interval).
        let (res, trace) = sc.run_traced();
        let fct = Summary::of(&res.fcts(None));
        let on_time: Vec<u64> = res
            .completed()
            .filter(|fl| fl.finish.is_some_and(|t| t - fl.start <= ON_TIME_PS))
            .map(|fl| fl.size)
            .collect();
        CellOut {
            flows: res.flows.len(),
            completed: res.completed().count(),
            on_time: on_time.len(),
            // on-time bits / on-time-window seconds, in Gb/s.
            goodput_gbps: on_time.iter().sum::<u64>() as f64 * 8_000.0 / ON_TIME_PS as f64,
            trims: res.trims,
            drops: res.drops,
            fct_mean_s: fct.mean,
            fct_p99_s: fct.p99,
            peak_layer_gbps: trace.peak_layer_gbps(),
            scheme_label,
        }
    });
    let mut csv = String::from(HEADER);
    csv.push('\n');
    let mut summary =
        String::from("Adaptive flowlets — queue-depth boundary steering vs oblivious hashing\n");
    for (ti, topo) in topos.iter().enumerate() {
        summary.push_str(&format!(
            "-- {} ({} endpoints, {} routers) --\n",
            label(topo),
            topo.num_endpoints(),
            topo.num_routers()
        ));
        for (mi, spec) in specs.iter().enumerate() {
            for (ri, routing) in ROUTINGS.iter().enumerate() {
                for (bi, boundary) in BOUNDARIES.iter().enumerate() {
                    let c = &results[cell_index(specs.len(), ti, mi, ri, bi)];
                    csv.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                        label(topo),
                        spec.label(),
                        routing,
                        boundary,
                        c.scheme_label,
                        c.flows,
                        c.completed,
                        c.on_time,
                        f(c.goodput_gbps),
                        c.trims,
                        c.drops,
                        f(c.fct_mean_s * 1e3),
                        f(c.fct_p99_s * 1e3),
                        f(c.peak_layer_gbps),
                    ));
                }
                let obl = &results[cell_index(specs.len(), ti, mi, ri, 0)];
                let ada = &results[cell_index(specs.len(), ti, mi, ri, 1)];
                summary.push_str(&format!(
                    "{:<9} {:<6}: oblivious {:>8.4} Gb/s ({:>4} on time)  \
                     adaptive {:>8.4} Gb/s ({:>4} on time)  {:+.1}%\n",
                    spec.label(),
                    routing,
                    obl.goodput_gbps,
                    obl.on_time,
                    ada.goodput_gbps,
                    ada.on_time,
                    if obl.goodput_gbps > 0.0 {
                        (ada.goodput_gbps / obl.goodput_gbps - 1.0) * 100.0
                    } else {
                        0.0
                    }
                ));
            }
        }
    }
    summary.push_str(
        "Adaptive boundaries read the sender's attachment-router queue depths (shard-\n\
         local by construction) and steer each new flowlet to the least-loaded layer;\n\
         oblivious boundaries redraw uniformly from the flowlet counter. Gains\n\
         concentrate where local queues predict path congestion — skewed and incast\n\
         matrices — and compose with TE, which reshapes the same tables offline.\n",
    );
    (csv, summary)
}

/// The shipped experiment: small-class SF + FT3 (the acceptance pair),
/// or miniature instances under `--quick` / the CI smoke gate.
pub fn adaptive(quick: bool) -> io::Result<()> {
    let (topos, n_layers) = if quick || is_smoke() {
        (
            vec![
                fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(),
                fatpaths_net::topo::fattree::fat_tree(4, 1),
            ],
            4,
        )
    } else {
        (
            vec![
                build(TopoKind::SlimFly, SizeClass::Small, 1),
                build(TopoKind::FatTree, SizeClass::Small, 1),
            ],
            9,
        )
    };
    let (csv, summary) = adaptive_matrix_on(topos, n_layers, 0.6);
    write_text("adaptive.csv", &csv)?;
    write_summary("adaptive", &summary)
}
