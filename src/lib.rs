//! # FatPaths
//!
//! A from-scratch Rust reproduction of **"FatPaths: Routing in
//! Supercomputers and Data Centers when Shortest Paths Fall Short"**
//! (Besta et al., ACM/IEEE Supercomputing 2020).
//!
//! FatPaths is a routing architecture for modern *low-diameter* topologies
//! (Slim Fly, Dragonfly, Jellyfish, Xpander, HyperX). Its insight: these
//! networks have almost no shortest-path diversity — usually exactly one
//! minimal path per router pair — but plenty of **"almost" minimal paths**
//! (one hop longer). FatPaths encodes that diversity in commodity
//! destination-based forwarding by splitting links into **layers**, routing
//! minimally *within* each layer, and balancing elastic **flowlets** across
//! layers, on top of an NDP-derived "purified" transport.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`net`] | graph model, topology generators, size classes, cost model |
//! | [`diversity`] | path-diversity metrics: CDP, PI, TNL, collisions (§IV) |
//! | [`core`] | layered routing, forwarding tables, SPAIN/PAST/KSP/ECMP (§V–VI) |
//! | [`mcf`] | max-achievable-throughput solver, worst-case traffic (§VI) |
//! | [`workloads`] | traffic patterns, flow sizes, arrivals, mappings (§II-C) |
//! | [`sim`] | packet-level simulator (NDP + TCP/DCTCP) and fluid model (§VII) |
//!
//! ## Quickstart
//!
//! ```
//! use fatpaths::prelude::*;
//!
//! // A Slim Fly MMS(q=5) with 3 endpoints per router.
//! let topo = fatpaths::net::topo::slimfly::slim_fly(5, 3).unwrap();
//!
//! // FatPaths layered routing: 1 complete layer + 5 sparse layers (ρ=0.6).
//! let layers = build_random_layers(&topo.graph, &LayerConfig::new(6, 0.6, 1));
//! let tables = RoutingTables::build(&topo.graph, &layers);
//!
//! // Simulate an adversarial workload with the purified transport.
//! let flows: Vec<FlowSpec> = (0..topo.num_endpoints() as u32 / 2)
//!     .map(|e| FlowSpec { src: e, dst: e + 75, size: 64 * 1024, start: 0 })
//!     .collect();
//! let mut sim = Simulator::new(&topo, Routing::Layered(&tables), SimConfig::default());
//! sim.add_flows(&flows);
//! let result = sim.run();
//! assert_eq!(result.completion_rate(), 1.0);
//! ```

pub use fatpaths_core as core;
pub use fatpaths_diversity as diversity;
pub use fatpaths_mcf as mcf;
pub use fatpaths_net as net;
pub use fatpaths_sim as sim;
pub use fatpaths_workloads as workloads;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use fatpaths_core::ecmp::DistanceMatrix;
    pub use fatpaths_core::fwd::RoutingTables;
    pub use fatpaths_core::interference_min::{build_interference_min_layers, ImConfig};
    pub use fatpaths_core::layers::{build_random_layers, LayerConfig, LayerSet};
    pub use fatpaths_net::classes::{build, SizeClass};
    pub use fatpaths_net::topo::{TopoKind, Topology};
    pub use fatpaths_sim::{
        LoadBalancing, Routing, SimConfig, SimResult, Simulator, TcpVariant, Transport,
    };
    pub use fatpaths_workloads::arrivals::FlowSpec;
    pub use fatpaths_workloads::patterns::Pattern;
    pub use fatpaths_workloads::sizes::FlowSizeDist;
}
