//! Tests for §V-G fault tolerance (layer-based failover around link
//! failures, the `FaultPlan` subsystem, timed link events, and
//! detection-triggered route repair) and the §VIII-A2 MPTCP integration.

use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_net::topo::slimfly::slim_fly;
use fatpaths_sim::metrics::mptcp_group_fcts;
use fatpaths_sim::{FaultPlan, Scenario, SchemeSpec, TcpVariant, Transport};
use fatpaths_workloads::arrivals::FlowSpec;

/// The unique layer-0 (minimal) path of the 2-hop pair the failure tests
/// break. Layer 0 is the complete edge set, so this is independent of the
/// layer-sampling seed.
fn minimal_path_0_41(topo: &fatpaths_net::Topology) -> Vec<u32> {
    let ls = build_random_layers(&topo.graph, &LayerConfig::new(1, 1.0, 0));
    let rt = RoutingTables::build(&topo.graph, &ls);
    let p0 = rt.path(&topo.graph, 0, 0, 41).unwrap();
    assert_eq!(p0.len(), 3, "expected a 2-hop pair");
    p0
}

#[test]
fn fatpaths_routes_around_failed_link() {
    // SF(q=5): between most router pairs there is exactly ONE shortest
    // path. Fail its middle link: minimal-only routing stalls, FatPaths
    // redirects onto another layer and completes.
    let topo = slim_fly(5, 2).unwrap();
    let p0 = minimal_path_0_41(&topo);
    let flows = [FlowSpec {
        src: 0,
        dst: 82,
        size: 256 * 1024,
        start: 0,
    }];
    let run = |spec: SchemeSpec, fail: bool| {
        let mut sc = Scenario::on(&topo)
            .scheme(spec)
            .workload(&flows)
            .seed(3)
            .horizon(50_000_000_000); // 50 ms
        if fail {
            // The FaultPlan path (Scenario::fail_link is a thin wrapper
            // over the same static-failure set).
            sc = sc.fault_plan(FaultPlan::from_links(&[(p0[0], p0[1])]));
        }
        sc.run()
    };
    let layered = SchemeSpec::LayeredRandom {
        n_layers: 9,
        rho: 0.6,
    };
    // Sanity: with the link up, both complete.
    assert_eq!(run(layered, false).completion_rate(), 1.0);
    // Link down: multi-layer FatPaths completes; the flow recovers through
    // an alternate layer after RTOs.
    let multi = run(layered, true);
    assert_eq!(
        multi.completion_rate(),
        1.0,
        "FatPaths must route around the failure"
    );
    assert!(multi.drops > 0, "the failed link must have eaten packets");
    // Minimal-only routing cannot: the only forwarding path is dead.
    let single = run(SchemeSpec::LayeredMinimal, true);
    assert_eq!(
        single.completion_rate(),
        0.0,
        "single-path routing cannot recover"
    );
}

#[test]
fn failure_recovery_costs_bounded_time() {
    let topo = slim_fly(5, 2).unwrap();
    let p0 = minimal_path_0_41(&topo);
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 9,
            rho: 0.6,
        })
        .workload(&[FlowSpec {
            src: 0,
            dst: 82,
            size: 256 * 1024,
            start: 0,
        }])
        .seed(3)
        .horizon(100_000_000_000)
        .fail_link(p0[0], p0[1])
        .run();
    let fct = res.flows[0].fct_s().expect("must complete");
    // Ideal ≈ 0.21 ms; recovery adds RTOs (2 ms each) but must stay small.
    assert!(fct < 0.05, "recovery took {fct}s");
}

#[test]
fn timed_link_events_stall_then_recover() {
    // Single-path minimal routing, link down from t = 0, back up at 5 ms:
    // the flow stalls (every packet onto the dead link is dropped) until
    // LinkUp, then an RTO retransmission completes it.
    let topo = slim_fly(5, 2).unwrap();
    let p0 = minimal_path_0_41(&topo);
    let flow = [FlowSpec {
        src: 0,
        dst: 82,
        size: 64 * 1024,
        start: 0,
    }];
    let up_at = 5_000_000_000; // 5 ms
    let run = |plan: FaultPlan| {
        Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredMinimal)
            .workload(&flow)
            .seed(3)
            .horizon(50_000_000_000)
            .fault_plan(plan)
            .run()
    };
    // Without the LinkUp the flow never completes.
    let stuck = run(FaultPlan::from_links(&[(p0[0], p0[1])]));
    assert_eq!(stuck.completion_rate(), 0.0);
    // With it, the flow completes — but only after the outage window.
    let healed = run(FaultPlan::from_links(&[(p0[0], p0[1])]).link_up_at(up_at, p0[0], p0[1]));
    assert_eq!(healed.completion_rate(), 1.0);
    let fct = healed.flows[0].fct_s().unwrap();
    assert!(
        fct > up_at as f64 / 1e12,
        "flow finished during the outage: {fct}s"
    );
    assert!(healed.drops > 0, "the dead link must have eaten packets");
}

#[test]
fn mid_run_link_down_hits_only_later_flows() {
    // The link dies at 10 ms: a flow injected before completes untouched,
    // an identical flow injected after the failure stalls.
    let topo = slim_fly(5, 2).unwrap();
    let p0 = minimal_path_0_41(&topo);
    let down_at = 10_000_000_000; // 10 ms
    let flows = [
        FlowSpec {
            src: 0,
            dst: 82,
            size: 64 * 1024,
            start: 0,
        },
        FlowSpec {
            src: 0,
            dst: 82,
            size: 64 * 1024,
            start: down_at + 1_000_000,
        },
    ];
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredMinimal)
        .workload(&flows)
        .seed(3)
        .horizon(40_000_000_000)
        .fault_plan(FaultPlan::none().link_down_at(down_at, p0[0], p0[1]))
        .run();
    assert!(
        res.flows[0].finish.is_some(),
        "pre-failure flow must finish"
    );
    assert!(
        res.flows[1].finish.is_none(),
        "post-failure flow has no path"
    );
}

#[test]
fn detection_and_repair_revive_single_path_routing() {
    // The §V-G contrast, closed: minimal-only routing is dead without
    // help, but with a detection delay the link-state hook repairs the
    // affected (layer 0, dst) rows and the flow sails through.
    let topo = slim_fly(5, 2).unwrap();
    let p0 = minimal_path_0_41(&topo);
    let flow = [FlowSpec {
        src: 0,
        dst: 82,
        size: 256 * 1024,
        start: 0,
    }];
    let base = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredMinimal)
        .workload(&flow)
        .seed(3)
        .horizon(50_000_000_000)
        .fault_plan(FaultPlan::from_links(&[(p0[0], p0[1])]));
    // No detection: stuck forever (same as the legacy behavior).
    assert_eq!(base.clone().run().completion_rate(), 0.0);
    // 50 µs detection: repaired within one RTO.
    let res = base.detection_delay(50_000_000).run();
    assert_eq!(res.completion_rate(), 1.0, "repair must route around");
    let fct = res.flows[0].fct_s().unwrap();
    assert!(fct < 0.05, "repaired recovery took {fct}s");
}

#[test]
fn mptcp_stripes_over_layers_and_completes() {
    let topo = slim_fly(5, 2).unwrap();
    let specs = [
        FlowSpec {
            src: 0,
            dst: 80,
            size: 1 << 20,
            start: 0,
        },
        FlowSpec {
            src: 3,
            dst: 55,
            size: 300_000,
            start: 0,
        },
    ];
    let (res, groups) = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .transport(Transport::tcp_default(TcpVariant::Dctcp))
        .workload(&specs)
        .seed(3)
        .run_mptcp(4);
    assert_eq!(groups.len(), 2);
    assert_eq!(groups[0].len(), 4);
    assert_eq!(res.completion_rate(), 1.0);
    let fcts = mptcp_group_fcts(&res, &groups);
    assert!(fcts.iter().all(|f| f.is_some()));
    // Total bytes conserved across subflows.
    let total: u64 = groups[0]
        .iter()
        .map(|&fid| res.flows[fid as usize].size)
        .sum();
    assert_eq!(total, 1 << 20);
}

#[test]
fn mptcp_survives_failure_of_one_layer_path() {
    // One subflow's pinned layer crosses a failed link; the connection
    // still finishes because that subflow recovers via RTO retransmits on
    // its own layer... unless the layer is fully broken for the pair — in
    // which case the test documents that pinning trades resilience for
    // stability (subflow stalls, connection FCT = None at horizon).
    let topo = slim_fly(5, 2).unwrap();
    let (res, groups) = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 4,
            rho: 0.6,
        })
        .transport(Transport::tcp_default(TcpVariant::Dctcp))
        .workload(&[FlowSpec {
            src: 0,
            dst: 80,
            size: 400_000,
            start: 0,
        }])
        .seed(3)
        .horizon(30_000_000_000)
        .run_mptcp(2);
    let fcts = mptcp_group_fcts(&res, &groups);
    assert_eq!(fcts.len(), 1);
    // No failure injected here: baseline must complete.
    assert!(fcts[0].is_some());
}

#[test]
fn ecmp_minimal_survives_failure_when_alternatives_exist() {
    // On a fat tree, packet spraying has many minimal paths; killing one
    // still leaves the rest. This documents what §V-G contrasts against.
    let topo = fatpaths_net::topo::fattree::fat_tree(4, 1);
    // Fail one edge→agg link not on every path: edge 0 → agg (first).
    let agg = topo.graph.neighbors(0)[0];
    let res = Scenario::on(&topo)
        .scheme(SchemeSpec::Minimal)
        .lb(fatpaths_sim::LoadBalancing::PacketSpray)
        .workload(&[FlowSpec {
            src: 0,
            dst: 10,
            size: 128 * 1024,
            start: 0,
        }])
        .horizon(50_000_000_000)
        .fail_link(0, agg)
        .run();
    assert_eq!(res.completion_rate(), 1.0);
}
