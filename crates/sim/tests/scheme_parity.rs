//! API-parity regression tests for the `RoutingScheme` redesign: the
//! trait-based simulator must produce bit-identical results no matter how
//! the scheme is dispatched (concrete type, trait object, or the
//! `Scenario` builder's enum), preserving the behavior of the old
//! hard-coded `Routing` enum paths. Plus smoke tests that the previously
//! theory-only baselines complete real workloads.

use fatpaths_core::ecmp::DistanceMatrix;
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_core::past::PastVariant;
use fatpaths_core::scheme::{MinimalScheme, PastScheme, RoutingScheme, SpainScheme};
use fatpaths_core::spain::SpainConfig;
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::topo::{fattree::fat_tree, slimfly::slim_fly, TopoKind, Topology};
use fatpaths_sim::{
    LoadBalancing, Scenario, SchemeSpec, SimConfig, SimResult, Simulator, Transport,
};
use fatpaths_workloads::arrivals::FlowSpec;

fn permutation_flows(topo: &Topology, offset: u64, size: u64) -> Vec<FlowSpec> {
    let n = topo.num_endpoints() as u64;
    (0..n)
        .filter_map(|e| {
            let d = ((e + offset) % n) as u32;
            (topo.endpoint_router(e as u32) != topo.endpoint_router(d)).then_some(FlowSpec {
                src: e as u32,
                dst: d,
                size,
                start: (e * 10_000),
            })
        })
        .collect()
}

/// Flow-level fingerprint: finish times, retransmits, trims — equal
/// fingerprints mean bit-identical simulation outcomes.
fn fingerprint(r: &SimResult) -> Vec<(Option<u64>, u32, u32)> {
    r.flows
        .iter()
        .map(|f| (f.finish, f.retx, f.trims))
        .collect()
}

/// The old `Routing::Layered` path, reconstructed: static dispatch on
/// `RoutingTables` must equal dynamic dispatch and the builder, for the
/// same seed, on a fat tree and on a Slim Fly.
#[test]
fn layered_dispatch_paths_are_bit_identical() {
    for topo in [slim_fly(5, 2).unwrap(), fat_tree(4, 2)] {
        let flows = permutation_flows(&topo, 7, 96 * 1024);
        let ls = build_random_layers(&topo.graph, &LayerConfig::new(4, 0.6, 11));
        let rt = RoutingTables::build(&topo.graph, &ls);
        let cfg = SimConfig {
            lb: LoadBalancing::FatPathsLayers,
            seed: 11,
            ..SimConfig::default()
        };

        // Static dispatch (concrete scheme type).
        let mut sim_static = Simulator::new(&topo, &rt, cfg);
        sim_static.add_flows(&flows);
        let r_static = sim_static.run();

        // Dynamic dispatch (trait object — the default Simulator type).
        let dyn_scheme: &dyn RoutingScheme = &rt;
        let mut sim_dyn: Simulator<'_> = Simulator::new(&topo, dyn_scheme, cfg);
        sim_dyn.add_flows(&flows);
        let r_dyn = sim_dyn.run();

        // Builder (enum dispatch), same seed.
        let r_builder = Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .workload(&flows)
            .seed(11)
            .run();

        assert_eq!(fingerprint(&r_static), fingerprint(&r_dyn), "{}", topo.name);
        assert_eq!(
            fingerprint(&r_static),
            fingerprint(&r_builder),
            "{}",
            topo.name
        );
        assert_eq!(r_static.end_time, r_dyn.end_time);
        assert_eq!(r_static.trims, r_builder.trims);
        assert_eq!(r_static.completion_rate(), 1.0);
    }
}

/// The old `Routing::Minimal` path, reconstructed, across all three
/// ECMP-family balancers on a fat tree and a Slim Fly.
#[test]
fn minimal_dispatch_paths_are_bit_identical() {
    for topo in [slim_fly(5, 2).unwrap(), fat_tree(4, 2)] {
        let flows = permutation_flows(&topo, 13, 64 * 1024);
        let dm = DistanceMatrix::build(&topo.graph);
        let ms = MinimalScheme::new(&topo.graph, &dm);
        for lb in [
            LoadBalancing::EcmpFlow,
            LoadBalancing::PacketSpray,
            LoadBalancing::LetFlow,
        ] {
            let cfg = SimConfig {
                lb,
                seed: 2,
                ..SimConfig::default()
            };
            let mut sim_static = Simulator::new(&topo, &ms, cfg);
            sim_static.add_flows(&flows);
            let r_static = sim_static.run();

            let dyn_scheme: &dyn RoutingScheme = &ms;
            let mut sim_dyn: Simulator<'_> = Simulator::new(&topo, dyn_scheme, cfg);
            sim_dyn.add_flows(&flows);
            let r_dyn = sim_dyn.run();

            let r_builder = Scenario::on(&topo)
                .scheme(SchemeSpec::Minimal)
                .lb(lb)
                .workload(&flows)
                .seed(2)
                .run();

            assert_eq!(
                fingerprint(&r_static),
                fingerprint(&r_dyn),
                "{:?} {}",
                lb,
                topo.name
            );
            assert_eq!(
                fingerprint(&r_static),
                fingerprint(&r_builder),
                "{:?} {}",
                lb,
                topo.name
            );
            assert_eq!(r_static.completion_rate(), 1.0, "{:?} {}", lb, topo.name);
        }
    }
}

/// SPAIN completes every flow of a permutation on a small topology, under
/// both transports — the baseline is simulatable, not just scorable.
#[test]
fn spain_adapter_completes_all_flows() {
    let topo = slim_fly(5, 2).unwrap();
    let flows = permutation_flows(&topo, 21, 64 * 1024);
    let spain = SpainScheme::build(
        &topo.graph,
        &SpainConfig {
            k_paths: 2,
            ..SpainConfig::default()
        },
    );
    assert!(spain.num_layers() >= 2);
    for transport in [
        Transport::ndp_default(),
        Transport::tcp_default(fatpaths_sim::TcpVariant::Dctcp),
    ] {
        let cfg = SimConfig {
            transport,
            lb: LoadBalancing::FatPathsLayers,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topo, &spain, cfg);
        sim.add_flows(&flows);
        let res = sim.run();
        assert_eq!(res.completion_rate(), 1.0, "SPAIN under {transport:?}");
    }
}

/// PAST completes every flow of a permutation on a small topology; its
/// single-path-per-pair nature shows up as a strictly worse makespan than
/// FatPaths on the same workload.
#[test]
fn past_adapter_completes_all_flows() {
    let topo = slim_fly(5, 2).unwrap();
    let flows = permutation_flows(&topo, 21, 64 * 1024);
    let past = PastScheme::build(&topo.graph, PastVariant::Bfs, 4);
    let cfg = SimConfig {
        lb: LoadBalancing::EcmpFlow,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&topo, &past, cfg);
    sim.add_flows(&flows);
    let res = sim.run();
    assert_eq!(res.completion_rate(), 1.0);

    let fp = Scenario::on(&topo)
        .scheme(SchemeSpec::LayeredRandom {
            n_layers: 9,
            rho: 0.6,
        })
        .workload(&flows)
        .seed(1)
        .run();
    assert!(
        fp.makespan().unwrap() <= res.makespan().unwrap(),
        "layered routing should not lose to single-path PAST"
    );
}

/// KSP and Valiant complete the adversarial workload on the small-class
/// Slim Fly through the builder — the full §VII comparison set runs.
#[test]
fn ksp_and_valiant_complete_on_small_class_sf() {
    let topo = build(TopoKind::SlimFly, SizeClass::Small, 1);
    let p = topo.concentration[0] as u64;
    let offset = p * (topo.num_routers() as u64 / 2 + 1);
    let flows = permutation_flows(&topo, offset, 32 * 1024);
    for spec in [
        SchemeSpec::Ksp { k: 3 },
        SchemeSpec::Valiant { n_layers: 4 },
    ] {
        let res = Scenario::on(&topo)
            .scheme(spec)
            .workload(&flows)
            .seed(2)
            .run();
        assert_eq!(res.completion_rate(), 1.0, "{}", spec.label());
    }
}
