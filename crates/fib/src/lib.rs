//! # fatpaths-fib
//!
//! FIB compilation: turns any [`RoutingScheme`] into the forwarding
//! state a commodity Ethernet switch would actually hold (§V-E of the
//! paper, and the resource-consumption axis of the multipathing survey,
//! Besta et al. 2020).
//!
//! The deployability argument of FatPaths is that layered routing needs
//! nothing beyond standard hardware: the layer rides in address bits or
//! a VLAN tag, and each switch forwards by **destination-prefix rules**
//! pointing at **ECMP groups**. Everything else in this workspace
//! computes routing *analytically* — `NextHops` derived from graphs on
//! demand. This crate makes the switch-resident state explicit:
//!
//! * [`Fib`] / [`SwitchFib`] — per-switch tables of
//!   `(layer tag, endpoint-address range) → ECMP group` entries, with
//!   per-switch ECMP-group deduplication (two rules pointing at the same
//!   port set share one group, as real ASICs share group-table slots);
//! * [`compile()`] — the compiler, in two modes:
//!   [`CompileMode::HostRoutes`] emits one rule per destination router,
//!   while [`CompileMode::Aggregated`] run-length merges rules over
//!   adjacent destination ranges that resolve to the same group. The
//!   merge automatically exploits topology structure — fat-tree pods,
//!   Dragonfly groups, and HyperX rows occupy contiguous endpoint-id
//!   ranges, so whole domains collapse into single rules, while
//!   irregular Slim Fly / Jellyfish / Xpander tables stay close to host
//!   routes;
//! * [`TableBudget`] / [`FibStats`] — raw vs. compressed entry counts,
//!   group counts, a byte estimate, and overflow accounting against
//!   configurable TCAM/SRAM capacities;
//! * [`CompiledScheme`] — a [`RoutingScheme`] adapter that forwards by
//!   longest-prefix match against the compiled tables, so the packet
//!   simulator runs on *exactly* the state a switch would hold, and a
//!   `repair_routes` pass that prices link-failure repair in rewritten
//!   FIB rows.
//!
//! Compiled forwarding is pinned byte-identical to analytic forwarding
//! across the full baselines grid (`crates/sim/tests/compiled_parity.rs`),
//! and the `memory` experiment sweeps the resulting table state across
//! every topology of the paper.
//!
//! [`RoutingScheme`]: fatpaths_core::scheme::RoutingScheme

pub mod compile;
pub mod compiled;
pub mod table;

pub use compile::{compile, CompileMode};
pub use compiled::CompiledScheme;
pub use table::{Fib, FibEntry, FibStats, SwitchFib, TableBudget};
