//! The open routing-scheme interface: every scheme the paper compares —
//! FatPaths layers, ECMP-family minimal multipath, SPAIN, PAST,
//! k-shortest-paths, and Valiant load balancing — exposes the same
//! hop-by-hop forwarding contract, so the packet simulator (and any other
//! consumer) is generic over routing.
//!
//! The contract is destination-based forwarding with a per-packet layer
//! tag, which is what commodity hardware implements (§V-E): at router `r`,
//! a packet tagged `layer` and destined to `dst_router` may leave through
//! any port in [`RoutingScheme::candidate_ports`]. Load balancing (which
//! candidate a packet actually takes, and when a flow changes its layer
//! tag) stays in the simulator — schemes only define the *path sets*.
//!
//! Schemes that need mid-route state transitions (Valiant's two phases)
//! implement [`RoutingScheme::update_layer`], a per-hop tag rewrite — the
//! software analogue of VLAN rewriting / segment popping. Tags the
//! endpoints may *select* are `0..num_layers()`; rewritten internal tags
//! may exceed that range and are owned entirely by the scheme.

use crate::ecmp::DistanceMatrix;
use crate::fwd::{fnv1a, RoutingTables};
use crate::ksp::k_shortest_paths;
use crate::past::{PastTrees, PastVariant};
use crate::repair::{DownLinks, RouteRepair};
use crate::spain::{build_spain_layers, SpainConfig, SpainLayers};
use fatpaths_net::graph::{Graph, RouterId};

/// Inline capacity of a [`PortSet`]; candidate sets beyond this spill to
/// the heap. Sized to cover the largest minimal-multipath fan-out the
/// evaluation uses — a Large-class fat tree (k = 54) has k/2 = 27
/// minimal up-ports per inter-pod hop — so the per-packet hot path stays
/// allocation-free on every paper-size topology.
pub const PORTSET_INLINE: usize = 28;

/// A small set of candidate output ports, inline up to
/// [`PORTSET_INLINE`] entries. Order is part of the contract: load
/// balancers index into it deterministically, so schemes must emit ports
/// in a stable order (ascending, for every scheme in this crate).
#[derive(Clone, Debug, Default)]
pub struct PortSet {
    len: u32,
    inline: [u16; PORTSET_INLINE],
    spill: Vec<u16>,
}

impl PortSet {
    /// The empty set.
    pub fn new() -> PortSet {
        PortSet::default()
    }

    /// A one-port set.
    pub fn single(port: u16) -> PortSet {
        let mut s = PortSet::default();
        s.push(port);
        s
    }

    /// Appends a candidate port.
    pub fn push(&mut self, port: u16) {
        let n = self.len as usize;
        if self.spill.is_empty() && n < PORTSET_INLINE {
            self.inline[n] = port;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline[..n]);
            }
            self.spill.push(port);
        }
        self.len += 1;
    }

    /// The candidates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u16] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff no candidate exists (destination unreachable).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Set equality is slice equality (order is part of the contract), so
/// an inline set equals its spilled twin.
impl PartialEq for PortSet {
    fn eq(&self, other: &PortSet) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PortSet {}

/// A pluggable routing scheme: per (layer, router, destination-router)
/// candidate output ports plus metadata. Implementations must be
/// loop-free per layer: following any candidate port must make progress
/// toward the destination under the scheme's own forwarding rule.
///
/// `Sync` is a supertrait: the sharded simulator shares one scheme
/// reference across all shard workers, so lookups must be safe from
/// multiple threads. Every scheme is immutable routing state after
/// construction, so this costs implementations nothing — it only rules
/// out interior mutability (`Cell`/`RefCell`) in hot lookup paths.
pub trait RoutingScheme: Sync {
    /// Short scheme identifier for logs and CSV rows.
    fn name(&self) -> &'static str;

    /// Number of endpoint-selectable layers (≥ 1). Endpoints tag packets
    /// with layers in `0..num_layers()`; flowlet load balancing re-picks
    /// within that range.
    fn num_layers(&self) -> usize;

    /// Total span of layer tags that may appear on a packet under this
    /// scheme: the endpoint-selectable tags `0..num_layers()` plus any
    /// scheme-internal rewritten tags ([`RoutingScheme::update_layer`]
    /// results, e.g. Valiant's phase-2 tags). FIB compilation
    /// materializes one per-switch table row set per tag in this range,
    /// so [`candidate_ports`](RoutingScheme::candidate_ports) must be
    /// total over `0..tag_space()`.
    ///
    /// **Wrapper contract.** A scheme that wraps another (the FIB-
    /// compiled scheme, the TE scheme over static tables, `Box<T>`) must
    /// forward this method to the inner scheme rather than inherit the
    /// `num_layers()` default: a wrapper that drops the override
    /// silently truncates the inner tag range, and every packet carrying
    /// a rewritten tag ≥ `num_layers()` becomes unroutable after
    /// compilation. The blanket `Box` impl below forwards it; the
    /// `boxed_wrappers_forward_the_whole_contract` test pins that this
    /// stays true for non-default implementations.
    fn tag_space(&self) -> usize {
        self.num_layers()
    }

    /// Output ports of `at_router` through which a packet tagged `layer`
    /// and destined to an endpoint of `dst_router` may leave. Never
    /// called with `at_router == dst_router`. An empty set means the
    /// destination is unreachable (the simulator treats this as fatal).
    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet;

    /// Per-hop layer-tag rewrite, applied when a packet arrives at
    /// `at_router` before port selection. Identity for single-phase
    /// schemes; Valiant uses it to switch from the "toward intermediate"
    /// phase to the "toward destination" phase.
    fn update_layer(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> u8 {
        let _ = (at_router, dst_router);
        layer
    }

    /// Link-state-change hook: the scheme's routing response to the given
    /// set of down links, as a sparse [`RouteRepair`] overlay the
    /// simulator consults before [`candidate_ports`]
    /// (see the overlay's docs for entry semantics).
    ///
    /// The default returns an empty overlay — the scheme does not reroute
    /// and recovery stays end-to-end (senders re-pick layers after
    /// timeouts, §V-G). [`RoutingTables`] repairs affected `(layer, dst)`
    /// rows incrementally; [`MinimalScheme`] rebuilds its distance view
    /// from the degraded graph.
    ///
    /// **Wrapper contract.** A wrapper scheme must delegate this hook to
    /// (or derive it from) its inner scheme — never inherit the empty
    /// default. A wrapper that drops it silently disables fault repair
    /// for every scheme it wraps: simulations still run, but failures
    /// are only ever recovered end-to-end, which corrupts any resilience
    /// comparison. The FIB-compiled scheme delegates and re-prices the
    /// overlay in FIB rows; the TE scheme reroutes through its
    /// controller on the negotiated cost snapshot; `Box<T>` forwards
    /// verbatim (pinned by `boxed_wrappers_forward_the_whole_contract`).
    ///
    /// [`candidate_ports`]: RoutingScheme::candidate_ports
    fn repair_routes(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        let _ = (base, down);
        RouteRepair::none()
    }
}

/// Boxed schemes forward the whole contract — lets adapters (e.g. the
/// FIB-compiled scheme) own an arbitrary inner scheme as
/// `Box<dyn RoutingScheme>` while staying a `RoutingScheme` themselves.
impl<T: RoutingScheme + ?Sized> RoutingScheme for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn num_layers(&self) -> usize {
        (**self).num_layers()
    }

    fn tag_space(&self) -> usize {
        (**self).tag_space()
    }

    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        (**self).candidate_ports(layer, at_router, dst_router)
    }

    fn update_layer(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> u8 {
        (**self).update_layer(layer, at_router, dst_router)
    }

    fn repair_routes(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        (**self).repair_routes(base, down)
    }
}

/// FatPaths layered forwarding: one deterministic port per (layer, src,
/// dst), falling back to the complete layer 0 when a sparse layer cannot
/// reach the destination (it is connected by construction, so the
/// fallback only covers defensive clamping).
impl RoutingScheme for RoutingTables {
    fn name(&self) -> &'static str {
        "layered"
    }

    fn num_layers(&self) -> usize {
        self.n_layers()
    }

    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        let l = (layer as usize).min(self.n_layers() - 1);
        match self
            .next_port(l, at_router, dst_router)
            .or_else(|| self.next_port(0, at_router, dst_router))
        {
            Some(p) => PortSet::single(p),
            None => PortSet::new(),
        }
    }

    fn repair_routes(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        self.repair(base, down)
    }
}

/// Minimal multipath over a [`DistanceMatrix`] — the ECMP / packet-spray /
/// LetFlow substrate. This is the `DistanceMatrix` adapter: the matrix
/// alone cannot enumerate ports (it stores distances, not adjacency), so
/// the adapter pairs it with the graph it was built from.
#[derive(Clone, Copy, Debug)]
pub struct MinimalScheme<'a> {
    /// The topology's router graph.
    pub graph: &'a Graph,
    /// All-pairs hop distances over `graph`.
    pub dm: &'a DistanceMatrix,
}

impl<'a> MinimalScheme<'a> {
    /// Pairs a distance matrix with its base graph.
    pub fn new(graph: &'a Graph, dm: &'a DistanceMatrix) -> Self {
        MinimalScheme { graph, dm }
    }
}

impl RoutingScheme for MinimalScheme<'_> {
    fn name(&self) -> &'static str {
        "minimal"
    }

    fn num_layers(&self) -> usize {
        1
    }

    fn candidate_ports(&self, _layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        self.dm.minimal_port_set(self.graph, at_router, dst_router)
    }

    /// Adapter rebuild: recompute all-pairs distances on the degraded
    /// graph and overlay every pair whose minimal port set changed —
    /// ports stay numbered by the *original* graph (the physical ports
    /// the simulator addresses), with down links filtered out.
    fn repair_routes(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        let mut rep = RouteRepair::none();
        if down.is_empty() {
            return rep;
        }
        let degraded = base.without_edges(down.as_slice());
        let dm2 = DistanceMatrix::build(&degraded);
        let nr = base.n();
        for dst in 0..nr as u32 {
            for src in 0..nr as u32 {
                if src == dst {
                    continue;
                }
                let new = degraded_minimal_ports(base, &dm2, down, src, dst);
                let old = self.dm.minimal_port_set(self.graph, src, dst);
                if new.as_slice() != old.as_slice() {
                    rep.insert(0, src, dst, new);
                }
            }
        }
        rep
    }
}

/// Minimal ports of `src` toward `dst` under degraded distances `dm2`,
/// numbered by the original `base` graph, skipping down links. Empty when
/// the pair is disconnected in the degraded graph.
fn degraded_minimal_ports(
    base: &Graph,
    dm2: &DistanceMatrix,
    down: &DownLinks,
    src: RouterId,
    dst: RouterId,
) -> PortSet {
    let mut out = PortSet::new();
    let Some(ds) = dm2.get(src, dst) else {
        return out;
    };
    for (port, &nb) in base.neighbors(src).iter().enumerate() {
        if down.contains(src, nb) {
            continue;
        }
        if dm2.get(nb, dst) == Some(ds - 1) {
            out.push(port as u16);
        }
    }
    debug_assert!(!out.is_empty(), "reachable pair must have a minimal port");
    out
}

/// SPAIN (Mudigonda et al., NSDI'10) as a simulatable scheme: the merged
/// VLAN forests become routing layers with per-layer destination-based
/// forwarding. Forests do not span every pair in every layer, so lookups
/// fall back to the first layer that reaches the destination — the VLAN
/// the end host would have selected for that destination.
#[derive(Clone, Debug)]
pub struct SpainScheme {
    tables: RoutingTables,
    /// VLAN subgraph count before merging (§VI-B's resource cost).
    pub vlans_before_merge: usize,
}

impl SpainScheme {
    /// Runs the SPAIN construction on `base` and compiles its layers into
    /// forwarding tables.
    pub fn build(base: &Graph, cfg: &SpainConfig) -> Self {
        let sl = build_spain_layers(base, cfg);
        Self::from_layers(base, &sl)
    }

    /// Compiles previously built SPAIN layers.
    pub fn from_layers(base: &Graph, sl: &SpainLayers) -> Self {
        SpainScheme {
            tables: RoutingTables::build(base, &sl.layers),
            vlans_before_merge: sl.vlans_before_merge,
        }
    }

    /// The compiled per-layer tables.
    pub fn tables(&self) -> &RoutingTables {
        &self.tables
    }
}

impl RoutingScheme for SpainScheme {
    fn name(&self) -> &'static str {
        "spain"
    }

    fn num_layers(&self) -> usize {
        self.tables.n_layers()
    }

    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        // Preferred VLAN first, then the rest in cyclic order.
        cyclic_fallback_port(&self.tables, layer, at_router, dst_router)
    }
}

/// Forwarding shared by the forest-layered schemes (SPAIN, KSP), whose
/// layers may not span every pair: the tagged layer first, then the
/// remaining layers in cyclic order — the first one that reaches the
/// destination wins. Loop-free: forwarding one hop within the chosen
/// layer keeps that layer reachable at the next router (it sits on a
/// layer path to the destination), so a packet's scan offset never
/// increases along its route; the pair (offset, in-layer distance)
/// decreases lexicographically at every hop.
fn cyclic_fallback_port(
    tables: &RoutingTables,
    layer: u8,
    at_router: RouterId,
    dst_router: RouterId,
) -> PortSet {
    let n = tables.n_layers();
    let start = (layer as usize) % n;
    for off in 0..n {
        if let Some(p) = tables.next_port((start + off) % n, at_router, dst_router) {
            return PortSet::single(p);
        }
    }
    PortSet::new()
}

/// PAST (Stephens et al., CoNEXT'12) as a simulatable scheme: one
/// spanning tree per destination, compiled to a flat `(dst, src) → port`
/// table. Exactly one path per pair — the §VI deficiency made measurable.
#[derive(Clone, Debug)]
pub struct PastScheme {
    nr: usize,
    ports: Vec<u16>,
    variant: PastVariant,
}

impl PastScheme {
    /// Builds the per-destination trees and compiles them to ports.
    pub fn build(g: &Graph, variant: PastVariant, seed: u64) -> Self {
        let trees = PastTrees::build(g, variant, seed);
        Self::from_trees(g, &trees, variant)
    }

    /// Compiles previously built trees.
    pub fn from_trees(g: &Graph, trees: &PastTrees, variant: PastVariant) -> Self {
        let nr = g.n();
        assert_eq!(trees.num_trees(), nr, "tree count must match router count");
        let mut ports = vec![u16::MAX; nr * nr];
        for dst in 0..nr as u32 {
            for src in 0..nr as u32 {
                if src == dst {
                    continue;
                }
                if let Some(next) = trees.next_hop(src, dst) {
                    let p = g
                        .port_of(src, next)
                        .expect("PAST tree edge must exist in the graph");
                    ports[dst as usize * nr + src as usize] = p as u16;
                }
            }
        }
        PastScheme { nr, ports, variant }
    }

    /// Which tree construction this scheme uses.
    pub fn variant(&self) -> PastVariant {
        self.variant
    }
}

impl RoutingScheme for PastScheme {
    fn name(&self) -> &'static str {
        "past"
    }

    fn num_layers(&self) -> usize {
        1
    }

    fn candidate_ports(&self, _layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        let p = self.ports[dst_router as usize * self.nr + at_router as usize];
        if p == u16::MAX {
            PortSet::new()
        } else {
            PortSet::single(p)
        }
    }
}

/// Configuration of the [`KspScheme`] build.
#[derive(Clone, Copy, Debug)]
pub struct KspConfig {
    /// Paths per pair (= layers of the compiled scheme).
    pub k: usize,
    /// Cap on the number of (src, dst) pairs Yen's algorithm runs on;
    /// larger graphs are sampled with a deterministic stride. `0` = all.
    pub max_pairs: usize,
}

impl Default for KspConfig {
    fn default() -> Self {
        KspConfig {
            k: 4,
            max_pairs: 4000,
        }
    }
}

/// k-shortest-paths routing (Singla et al.; Appendix C-D) as a
/// simulatable scheme. The i-th shortest paths of (sampled) pairs are
/// unioned into layer i's subgraph; minimal forwarding within each layer
/// then realizes "spread over the k shortest paths" with plain
/// destination-based tables, mirroring how §VI treats KSP as a layered
/// comparison target. Layers are patched to connectivity so every pair
/// remains routable in every layer.
#[derive(Clone, Debug)]
pub struct KspScheme {
    tables: RoutingTables,
}

impl KspScheme {
    /// Runs Yen's algorithm over the (sampled) pairs — in parallel, one
    /// task per pair; Yen dominates construction cost — and compiles the
    /// per-rank path unions into forwarding tables.
    pub fn build(base: &Graph, cfg: &KspConfig) -> Self {
        assert!(cfg.k >= 1, "need at least one path per pair");
        let nr = base.n();
        let mut edge_sets: Vec<rustc_hash::FxHashSet<(u32, u32)>> =
            vec![rustc_hash::FxHashSet::default(); cfg.k];
        let total_pairs = nr * (nr - 1);
        let stride = if cfg.max_pairs == 0 || total_pairs <= cfg.max_pairs {
            1
        } else {
            total_pairs.div_ceil(cfg.max_pairs)
        };
        let mut sampled: Vec<(u32, u32)> = Vec::new();
        let mut idx = 0usize;
        for s in 0..nr as u32 {
            for d in 0..nr as u32 {
                if s == d {
                    continue;
                }
                idx += 1;
                if idx.is_multiple_of(stride) {
                    sampled.push((s, d));
                }
            }
        }
        use rayon::prelude::*;
        let per_pair: Vec<Vec<Vec<u32>>> = sampled
            .into_par_iter()
            .map(|(s, d)| k_shortest_paths(base, s, d, cfg.k))
            .collect();
        // Union the rank-i paths sequentially (pair order, deterministic).
        for paths in &per_pair {
            for (i, set) in edge_sets.iter_mut().enumerate() {
                // Rank i path, or the longest available one.
                let p = paths.get(i).or(paths.last()).unwrap();
                for w in p.windows(2) {
                    set.insert((w[0].min(w[1]), w[0].max(w[1])));
                }
            }
        }
        let graphs: Vec<Graph> = edge_sets
            .into_iter()
            .map(|set| {
                let edges: Vec<(u32, u32)> = set.into_iter().collect();
                connect_with_base(base, edges)
            })
            .collect();
        let layers = crate::layers::LayerSet { graphs };
        KspScheme {
            tables: RoutingTables::build(base, &layers),
        }
    }

    /// The compiled per-rank tables.
    pub fn tables(&self) -> &RoutingTables {
        &self.tables
    }
}

/// Builds a graph from `edges`, greedily adding base-graph edges that
/// bridge components until connected (deterministic: canonical order).
fn connect_with_base(base: &Graph, mut edges: Vec<(u32, u32)>) -> Graph {
    loop {
        let g = Graph::from_edges(base.n(), &edges);
        if g.is_connected() {
            return g;
        }
        // Label components, then add the first bridging edge per pair of
        // components in canonical edge order.
        let mut label = vec![u32::MAX; base.n()];
        let mut next = 0u32;
        for s in 0..base.n() as u32 {
            if label[s as usize] != u32::MAX {
                continue;
            }
            let mut stack = vec![s];
            label[s as usize] = next;
            while let Some(u) = stack.pop() {
                for &v in g.neighbors(u) {
                    if label[v as usize] == u32::MAX {
                        label[v as usize] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        let mut seen = rustc_hash::FxHashSet::default();
        let before = edges.len();
        for (u, v) in base.edges() {
            let (cu, cv) = (label[u as usize], label[v as usize]);
            if cu != cv && seen.insert((cu.min(cv), cu.max(cv))) {
                edges.push((u, v));
            }
        }
        assert!(edges.len() > before, "base graph must be connected");
    }
}

impl RoutingScheme for KspScheme {
    fn name(&self) -> &'static str {
        "ksp"
    }

    fn num_layers(&self) -> usize {
        self.tables.n_layers()
    }

    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        // Preferred rank first, then the rest in cyclic order (layers are
        // patched to connectivity, so the first rank always resolves).
        cyclic_fallback_port(&self.tables, layer, at_router, dst_router)
    }
}

/// Valiant load balancing (VLB): route minimally to a per-(layer,
/// destination) intermediate router, then minimally to the destination.
/// The two phases are encoded in the layer tag — phase-1 tags are
/// `0..n_vlb` (endpoint-selectable), and [`RoutingScheme::update_layer`]
/// rewrites tag `l` to `n_vlb + l` when the packet reaches the
/// intermediate. Both phases follow strictly decreasing BFS distances, so
/// forwarding is loop-free.
#[derive(Clone, Debug)]
pub struct ValiantScheme<'a> {
    graph: &'a Graph,
    dm: DistanceMatrix,
    n_vlb: usize,
    seed: u64,
}

impl<'a> ValiantScheme<'a> {
    /// Builds VLB with `n_vlb` selectable intermediates per destination.
    pub fn build(graph: &'a Graph, n_vlb: usize, seed: u64) -> Self {
        assert!(
            (1..=127).contains(&n_vlb),
            "layer tag is u8: phase bit needs n_vlb <= 127"
        );
        ValiantScheme {
            graph,
            dm: DistanceMatrix::build(graph),
            n_vlb,
            seed,
        }
    }

    /// The intermediate router of layer `l` toward `dst`.
    #[inline]
    pub fn intermediate(&self, l: usize, dst: RouterId) -> RouterId {
        let nr = self.graph.n() as u64;
        (fnv1a(self.seed ^ ((l as u64) << 40) ^ dst as u64) % nr) as u32
    }
}

impl RoutingScheme for ValiantScheme<'_> {
    fn name(&self) -> &'static str {
        "valiant"
    }

    fn num_layers(&self) -> usize {
        self.n_vlb
    }

    /// Phase-1 tags `0..n_vlb` are endpoint-selectable; `update_layer`
    /// rewrites tag `l` to `n_vlb + l` at the intermediate, so the full
    /// tag span a packet can carry is twice the selectable range.
    fn tag_space(&self) -> usize {
        2 * self.n_vlb
    }

    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        let l = layer as usize;
        let target = if l < self.n_vlb {
            let w = self.intermediate(l, dst_router);
            // Degenerate draws (w == current router is handled by
            // update_layer; w == dst makes phase 1 the whole route).
            if w == at_router {
                dst_router
            } else {
                w
            }
        } else {
            dst_router
        };
        self.dm.minimal_port_set(self.graph, at_router, target)
    }

    fn update_layer(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> u8 {
        let l = layer as usize;
        if l < self.n_vlb && self.intermediate(l, dst_router) == at_router {
            (self.n_vlb + l) as u8
        } else {
            layer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{build_random_layers, LayerConfig};
    use fatpaths_net::topo::slimfly::slim_fly;

    /// Walks hop-by-hop through `scheme` from `s` to `t` on `layer`,
    /// always taking the first candidate; applies `update_layer` like the
    /// simulator does. Returns the router path.
    fn walk(scheme: &dyn RoutingScheme, g: &Graph, mut layer: u8, s: u32, t: u32) -> Vec<u32> {
        let mut at = s;
        let mut path = vec![s];
        while at != t {
            layer = scheme.update_layer(layer, at, t);
            let ports = scheme.candidate_ports(layer, at, t);
            assert!(!ports.is_empty(), "unreachable at {at} toward {t}");
            at = g.neighbor_at(at, ports.as_slice()[0] as u32);
            path.push(at);
            assert!(path.len() <= g.n() + 2, "forwarding loop: {path:?}");
        }
        path
    }

    #[test]
    fn portset_inline_and_spill() {
        let mut s = PortSet::new();
        assert!(s.is_empty());
        for p in 0..(PORTSET_INLINE as u16 + 5) {
            s.push(p);
        }
        assert_eq!(s.len(), PORTSET_INLINE + 5);
        let expect: Vec<u16> = (0..(PORTSET_INLINE as u16 + 5)).collect();
        assert_eq!(s.as_slice(), &expect[..]);
        assert_eq!(PortSet::single(7).as_slice(), &[7]);
    }

    #[test]
    fn routing_tables_scheme_matches_next_port() {
        let t = slim_fly(5, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(4, 0.6, 1));
        let rt = RoutingTables::build(&t.graph, &ls);
        for layer in 0..4u8 {
            for (s, d) in [(0u32, 30u32), (7, 44), (21, 3)] {
                let ps = rt.candidate_ports(layer, s, d);
                assert_eq!(
                    ps.as_slice(),
                    &[rt.next_port(layer as usize, s, d).unwrap()]
                );
            }
        }
        // Out-of-range layer clamps like the old simulator did.
        let clamped = rt.candidate_ports(200, 0, 30);
        assert_eq!(clamped.as_slice(), &[rt.next_port(3, 0, 30).unwrap()]);
        assert_eq!(RoutingScheme::num_layers(&rt), 4);
    }

    #[test]
    fn minimal_scheme_ports_match_distance_matrix() {
        let t = slim_fly(5, 1).unwrap();
        let dm = DistanceMatrix::build(&t.graph);
        let ms = MinimalScheme::new(&t.graph, &dm);
        let mut out = Vec::new();
        for (s, d) in [(0u32, 17u32), (3, 44), (10, 29)] {
            dm.minimal_ports(&t.graph, s, d, &mut out);
            assert_eq!(ms.candidate_ports(0, s, d).as_slice(), &out[..]);
        }
        assert_eq!(ms.num_layers(), 1);
    }

    #[test]
    fn spain_scheme_reaches_every_pair() {
        let t = slim_fly(5, 1).unwrap();
        let sp = SpainScheme::build(&t.graph, &SpainConfig::default());
        assert!(sp.num_layers() >= 2);
        for (s, d) in [(0u32, 49u32), (13, 7), (25, 40)] {
            for layer in 0..sp.num_layers() as u8 {
                let p = walk(&sp, &t.graph, layer, s, d);
                assert_eq!(*p.last().unwrap(), d);
            }
        }
    }

    #[test]
    fn past_scheme_single_deterministic_path() {
        let t = slim_fly(5, 1).unwrap();
        let trees = PastTrees::build(&t.graph, PastVariant::Bfs, 3);
        let ps = PastScheme::from_trees(&t.graph, &trees, PastVariant::Bfs);
        assert_eq!(ps.variant(), PastVariant::Bfs);
        let p = walk(&ps, &t.graph, 0, 4, 37);
        assert_eq!(p, trees.path(4, 37).unwrap());
        // Layer tag is irrelevant: same path on any tag.
        assert_eq!(walk(&ps, &t.graph, 5, 4, 37), p);
    }

    #[test]
    fn ksp_layers_cover_all_pairs_and_rank0_is_minimal() {
        let t = slim_fly(5, 1).unwrap();
        let ks = KspScheme::build(&t.graph, &KspConfig { k: 3, max_pairs: 0 });
        assert_eq!(ks.num_layers(), 3);
        for (s, d) in [(0u32, 49u32), (11, 30), (42, 2)] {
            let p0 = walk(&ks, &t.graph, 0, s, d);
            // Rank-0 layer contains every pair's shortest path.
            assert_eq!(p0.len() as u32 - 1, t.graph.bfs(s)[d as usize]);
            for layer in 1..3u8 {
                let p = walk(&ks, &t.graph, layer, s, d);
                assert_eq!(*p.last().unwrap(), d);
            }
        }
    }

    #[test]
    fn valiant_routes_via_intermediate_and_terminates() {
        let t = slim_fly(7, 1).unwrap();
        let vs = ValiantScheme::build(&t.graph, 4, 9);
        assert_eq!(vs.num_layers(), 4);
        let mut detoured = 0;
        for (s, d) in [(0u32, 60u32), (5, 90), (33, 12), (80, 2)] {
            let dmin = t.graph.bfs(s)[d as usize];
            for l in 0..4u8 {
                let p = walk(&vs, &t.graph, l, s, d);
                assert_eq!(*p.last().unwrap(), d);
                let w = vs.intermediate(l as usize, d);
                if w != s && w != d {
                    assert!(p.contains(&w), "VLB path skipped its intermediate");
                }
                if p.len() as u32 - 1 > dmin {
                    detoured += 1;
                }
            }
        }
        assert!(detoured > 0, "VLB never took a non-minimal route");
    }

    #[test]
    fn default_update_layer_is_identity() {
        let t = slim_fly(5, 1).unwrap();
        let dm = DistanceMatrix::build(&t.graph);
        let ms = MinimalScheme::new(&t.graph, &dm);
        assert_eq!(ms.update_layer(3, 0, 10), 3);
    }

    /// A scheme overriding every defaultable method with sentinel
    /// behavior; if boxing reached a trait default instead of the
    /// override, the sentinels vanish.
    struct SentinelScheme;

    impl RoutingScheme for SentinelScheme {
        fn name(&self) -> &'static str {
            "sentinel"
        }
        fn num_layers(&self) -> usize {
            2
        }
        fn tag_space(&self) -> usize {
            5
        }
        fn candidate_ports(&self, layer: u8, _at: RouterId, _dst: RouterId) -> PortSet {
            PortSet::single(layer as u16)
        }
        fn update_layer(&self, layer: u8, _at: RouterId, _dst: RouterId) -> u8 {
            layer + 1
        }
        fn repair_routes(&self, _base: &Graph, down: &DownLinks) -> RouteRepair {
            let mut r = RouteRepair::none();
            r.insert(0, down.len() as u32, 9, PortSet::single(7));
            r
        }
    }

    /// Wrappers must forward the *whole* contract: a `Box<dyn
    /// RoutingScheme>` (the representation compiled/TE wrappers own
    /// their inner scheme as) must hit the inner overrides of
    /// `tag_space` and `repair_routes`, not the trait defaults — a
    /// wrapper that reaches the defaults silently truncates the tag
    /// range and disables fault repair for everything it wraps.
    #[test]
    fn boxed_wrappers_forward_the_whole_contract() {
        let t = slim_fly(5, 1).unwrap();
        let boxed: Box<dyn RoutingScheme> = Box::new(SentinelScheme);
        assert_eq!(boxed.name(), "sentinel");
        assert_eq!(boxed.num_layers(), 2);
        assert_eq!(boxed.tag_space(), 5, "tag_space fell back to num_layers");
        assert_eq!(boxed.candidate_ports(3, 0, 1).as_slice(), &[3]);
        assert_eq!(boxed.update_layer(3, 0, 1), 4);
        let down = DownLinks::from_links(&[(0, 1)]);
        let rep = boxed.repair_routes(&t.graph, &down);
        assert_eq!(rep.len(), 1, "repair_routes fell back to the empty default");
        assert_eq!(rep.lookup(0, 1, 9).unwrap().as_slice(), &[7]);
    }
}
