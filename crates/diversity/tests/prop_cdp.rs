//! Property-based tests for the diversity metrics: monotonicity, degree
//! bounds, and agreement with exact max-flow.

use fatpaths_diversity::cdp::{cdp, edge_disjoint_maxflow, EdgeIds};
use fatpaths_diversity::collisions::{collision_histogram, fraction_with_at_least};
use fatpaths_net::graph::Graph;
use fatpaths_net::topo::jellyfish::random_regular_edges;
use proptest::prelude::*;

fn connected_regular(n: usize, k: usize, seed: u64) -> Graph {
    Graph::from_edges(n, &random_regular_edges(n, k, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cdp_monotone_in_length(seed in 0u64..100, s in 0u32..29, t in 0u32..29) {
        prop_assume!(s != t);
        let g = connected_regular(30, 5, seed);
        let e = EdgeIds::new(&g);
        let mut prev = 0;
        for l in 1..=6u32 {
            let c = cdp(&g, &e, &[s], &[t], l);
            prop_assert!(c >= prev, "CDP decreased when l grew");
            prev = c;
        }
    }

    #[test]
    fn cdp_bounded_by_degree_and_maxflow(seed in 0u64..100, s in 0u32..29, t in 0u32..29) {
        prop_assume!(s != t);
        let g = connected_regular(30, 5, seed);
        let e = EdgeIds::new(&g);
        let c = cdp(&g, &e, &[s], &[t], 30);
        let mf = edge_disjoint_maxflow(&g, s, t);
        prop_assert!(c <= 5, "CDP exceeds endpoint degree");
        prop_assert!(c <= mf, "greedy CDP exceeds exact max-flow");
        // Greedy must find at least one path in a connected graph.
        prop_assert!(c >= 1);
    }

    #[test]
    fn maxflow_symmetric(seed in 0u64..60, s in 0u32..19, t in 0u32..19) {
        prop_assume!(s != t);
        let g = connected_regular(20, 4, seed);
        prop_assert_eq!(edge_disjoint_maxflow(&g, s, t), edge_disjoint_maxflow(&g, t, s));
    }

    #[test]
    fn collision_histogram_conserves_flows(
        flows in prop::collection::vec((0u32..20, 0u32..20), 0..200)
    ) {
        let hist = collision_histogram(&flows);
        let inter_router = flows.iter().filter(|(s, d)| s != d).count() as u64;
        let total: u64 = hist.iter().enumerate().map(|(c, &n)| c as u64 * n).sum();
        prop_assert_eq!(total, inter_router);
        // Fractions are probabilities.
        let f = fraction_with_at_least(&hist, 2);
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
