//! Length-limited connectivity via randomized linear algebra
//! (Appendix B-C, after Cheung, Lau & Leung).
//!
//! Each router holds a vector; the source's neighbors are seeded with
//! pairwise-independent random vectors, and vectors propagate along edges
//! with random coefficients: `F_l = F_{l-1}·K + P_s`. After `l` rounds,
//! the rank of the vectors at `t`'s in-neighborhood equals (w.h.p.) the
//! number of vertex-disjoint `s→t` paths of length ≤ `l+1` — a
//! cross-check for the combinatorial CDP of §IV-B1 that needs only
//! matrix–vector products (here over `f64` with rank via Gaussian
//! elimination and a pivot tolerance).

use fatpaths_net::graph::{Graph, RouterId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Estimates the number of vertex-disjoint `s → t` paths of length ≤
/// `max_len` via `rounds` of randomized propagation. Deterministic in
/// `seed`. `s` and `t` must differ and not be adjacent-equal.
pub fn algebraic_vertex_connectivity(
    g: &Graph,
    s: RouterId,
    t: RouterId,
    max_len: u32,
    seed: u64,
) -> u32 {
    assert_ne!(s, t);
    let n = g.n();
    let k = g.degree(s).max(g.degree(t));
    let mut rng = StdRng::seed_from_u64(seed);
    // F: per vertex, a k-dimensional value vector.
    let mut f = vec![vec![0.0f64; k]; n];
    // P_s: unit vector per neighbor of s (injected every round).
    let seeds: Vec<(u32, usize)> = g
        .neighbors(s)
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    // Random edge coefficients (consistent across rounds).
    let mut coef = rustc_hash::FxHashMap::default();
    for (u, v) in g.edges() {
        coef.insert((u, v), rng.random_range(0.1..1.0f64));
        coef.insert((v, u), rng.random_range(0.1..1.0f64));
    }
    // After r rounds, vectors at t's neighbors represent paths of length
    // ≤ r+1 (one more hop reaches t); a direct s–t edge is counted
    // separately since vertex connectivity is ill-defined for neighbors
    // (the paper's footnote 6).
    let rounds = max_len.saturating_sub(1);
    let mut next = vec![vec![0.0f64; k]; n];
    for _ in 0..rounds {
        for row in next.iter_mut() {
            row.iter_mut().for_each(|x| *x = 0.0);
        }
        for u in 0..n as u32 {
            // Vectors flow along edges; s and t do not relay (vertex
            // connectivity: interior vertices are the scarce resource, and
            // paths through s or t would not be vertex-disjoint).
            if u == s || u == t {
                continue;
            }
            let fu = &f[u as usize];
            if fu.iter().all(|&x| x == 0.0) {
                continue;
            }
            for &v in g.neighbors(u) {
                let c = coef[&(u, v)];
                let (dst, src) = (v as usize, u as usize);
                if dst == src {
                    continue;
                }
                // Split borrow: indices differ.
                let (a, b) = if dst < src {
                    let (lo, _) = next.split_at_mut(src);
                    (&mut lo[dst], &f[src])
                } else {
                    let (_, hi) = next.split_at_mut(dst);
                    (&mut hi[0], &f[src])
                };
                for (x, &y) in a.iter_mut().zip(b) {
                    *x += c * y;
                }
            }
        }
        // Inject P_s at s's neighbors.
        for &(v, i) in &seeds {
            next[v as usize][i] += 1.0;
        }
        std::mem::swap(&mut f, &mut next);
    }
    // Rank of the vectors sitting at t's in-neighborhood (excluding s —
    // a path "ending at s" would loop through the source), plus one for
    // the direct edge if present.
    let rows: Vec<Vec<f64>> = g
        .neighbors(t)
        .iter()
        .filter(|&&v| v != s)
        .map(|&v| f[v as usize].clone())
        .collect();
    rank(rows) + u32::from(g.has_edge(s, t) && max_len >= 1)
}

/// Rank by Gaussian elimination with partial pivoting and a relative
/// tolerance (the randomized construction keeps true ranks well
/// separated from numerical noise).
fn rank(mut rows: Vec<Vec<f64>>) -> u32 {
    if rows.is_empty() {
        return 0;
    }
    let cols = rows[0].len();
    let scale: f64 = rows
        .iter()
        .flat_map(|r| r.iter().map(|x| x.abs()))
        .fold(0.0, f64::max)
        .max(1e-300);
    let tol = scale * 1e-9;
    let mut rank = 0usize;
    for c in 0..cols {
        // Find pivot.
        let Some(p) = (rank..rows.len())
            .max_by(|&a, &b| rows[a][c].abs().partial_cmp(&rows[b][c].abs()).unwrap())
        else {
            break;
        };
        if rows[p][c].abs() <= tol {
            continue;
        }
        rows.swap(rank, p);
        let pivot_row = rows[rank].clone();
        for r in rows.iter_mut().skip(rank + 1) {
            let factor = r[c] / pivot_row[c];
            if factor != 0.0 {
                for (x, &pv) in r.iter_mut().zip(&pivot_row) {
                    *x -= factor * pv;
                }
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta() -> Graph {
        // 0-1 direct; 0-2-1; 0-3-4-1: 3 vertex-disjoint paths at l ≤ 3.
        Graph::from_edges(5, &[(0, 1), (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)])
    }

    #[test]
    fn counts_disjoint_paths_on_theta() {
        let g = theta();
        // At 4 rounds, all three disjoint paths (lengths 1, 2, 3) count.
        assert_eq!(algebraic_vertex_connectivity(&g, 0, 1, 4, 7), 3);
        // With 1 round, only the direct edge's contribution reaches t.
        assert_eq!(algebraic_vertex_connectivity(&g, 0, 1, 1, 7), 1);
    }

    #[test]
    fn path_graph_has_connectivity_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(algebraic_vertex_connectivity(&g, 0, 3, 6, 3), 1);
    }

    #[test]
    fn clique_connectivity_is_degree() {
        let mut e = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                e.push((u, v));
            }
        }
        let g = Graph::from_edges(6, &e);
        // K6: 5 vertex-disjoint 0→5 paths (1 direct + 4 two-hop).
        assert_eq!(algebraic_vertex_connectivity(&g, 0, 5, 3, 11), 5);
    }

    #[test]
    fn agrees_with_menger_on_slim_fly_sample() {
        let t = fatpaths_net::topo::slimfly::slim_fly(5, 1).unwrap();
        let alg = algebraic_vertex_connectivity(&t.graph, 0, 33, 6, 5);
        let mf = crate::cdp::edge_disjoint_maxflow(&t.graph, 0, 33);
        // Vertex connectivity ≤ edge connectivity; in a regular graph with
        // rich structure they track closely.
        assert!(alg <= mf + 1, "algebraic {alg} vs maxflow {mf}");
        assert!(
            alg >= 3,
            "SF should offer several disjoint paths, got {alg}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = theta();
        let a = algebraic_vertex_connectivity(&g, 0, 1, 4, 42);
        let b = algebraic_vertex_connectivity(&g, 0, 1, 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn rank_helper() {
        assert_eq!(rank(vec![vec![1.0, 0.0], vec![0.0, 1.0]]), 2);
        assert_eq!(rank(vec![vec![1.0, 2.0], vec![2.0, 4.0]]), 1);
        assert_eq!(rank(vec![vec![0.0, 0.0]]), 0);
    }
}
