//! Resilience sweep: the paper's robustness claim (§V-G) made a
//! first-class, sweepable experiment axis.
//!
//! Grid: topology × routing scheme × uniform link-failure fraction ×
//! detection mode, each cell a packet simulation of a permutation
//! workload on a degraded network. Two detection modes bracket the
//! design space:
//!
//! * `none` — failures are never detected; recovery is purely
//!   end-to-end. This isolates *multipath resilience*: FatPaths layers
//!   mask failures because senders re-pick layers on timeout, while
//!   flow-hash ECMP on a single minimal path is stuck forever.
//! * `50us` — the control plane repairs routing 50 µs after the change
//!   (via [`fatpaths_sim::RoutingScheme::repair_routes`]); this
//!   isolates *repairability* and lifts even single-path schemes.
//!
//! Output per cell: completions, statically unreachable pairs (flows
//! whose router pair is disconnected in the degraded graph — no scheme
//! can deliver those), FCT mean/p99, FCT slowdown vs. the same cell at
//! fraction 0, and drop counters. Fault sets are sampled per
//! `(topology, fraction)` coordinate via [`cell_seed`], so every scheme
//! and detection mode faces the *same* failures, and the CSV is
//! byte-identical at any thread count.

use crate::common::{f, label, write_summary, write_text};
use fatpaths_net::classes::{build, SizeClass};
use fatpaths_net::fault::{FaultModel, FaultPlan};
use fatpaths_net::topo::{TopoKind, Topology};
use fatpaths_sim::metrics::Summary;
use fatpaths_sim::{
    cell_seed, coord_str, CompileMode, LoadBalancing, Scenario, SchemeSpec, SweepRunner,
};
use fatpaths_workloads::arrivals::FlowSpec;
use std::io;

/// Failure fractions swept (0 is the healthy reference for slowdowns).
pub const FRACTIONS: [f64; 4] = [0.0, 0.02, 0.05, 0.10];

/// Detection modes: `None` = never detected (end-to-end recovery only),
/// `Some(d)` = routing repairs `d` ps after each link-state change.
const DETECTION: [(&str, Option<u64>); 2] = [("none", None), ("50us", Some(50_000_000))];

/// Simulation horizon: generous against the 2 ms NDP RTO, so repaired /
/// rerouted flows finish while genuinely stuck flows are cut off.
const HORIZON_PS: u64 = 50_000_000_000; // 50 ms

/// The scheme matrix: FatPaths layered routing vs. the ECMP-minimal
/// family (the §V-G contrast), per-packet spraying as the
/// oblivious-multipath middle ground, and the FIB-compiled layered
/// scheme — behaviorally identical to `fatpaths` by the compiled-parity
/// guarantee, but repairing *switch state*: its rows price every repair
/// pass in rewritten FIB rules (the `fib_rows` column). The compiled
/// arm deliberately runs in *both* detection modes even though
/// `detect=none` fires no repair (its fib_rows is 0 there): the grid
/// stays a full cross product, and the detect=none rows demonstrate
/// compiled ≡ analytic inside the artifact itself.
fn schemes() -> Vec<(
    &'static str,
    SchemeSpec,
    Option<LoadBalancing>,
    Option<CompileMode>,
)> {
    let fat = SchemeSpec::LayeredRandom {
        n_layers: 9,
        rho: 0.6,
    };
    vec![
        ("fatpaths", fat, None, None),
        (
            "ecmp",
            SchemeSpec::Minimal,
            Some(LoadBalancing::EcmpFlow),
            None,
        ),
        (
            "spray",
            SchemeSpec::Minimal,
            Some(LoadBalancing::PacketSpray),
            None,
        ),
        ("fatpaths_fib", fat, None, Some(CompileMode::Aggregated)),
    ]
}

/// CSV header of the resilience artifact.
const HEADER: &str = "topology,scheme,detect,fraction,failed_links,flows,completed,\
                      unreachable_pairs,fct_mean_ms,fct_p99_ms,slowdown,drops,unroutable,\
                      repair_ticks,repair_rows,fib_rows,quiesce_ms";

/// One endpoint-permutation flow set: endpoint `e` sends `size` bytes to
/// `e + offset (mod n)` (self-pairs skipped).
fn permutation_flows(topo: &Topology, offset: u64, size: u64) -> Vec<FlowSpec> {
    let n = topo.num_endpoints() as u64;
    (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + offset) % n) as u32,
            size,
            start: 0,
        })
        .filter(|fl| fl.src != fl.dst)
        .collect()
}

/// Counts flows whose router pair is disconnected in the degraded graph
/// — deliverable by no routing scheme, the floor on incompletions.
fn unreachable_pairs(topo: &Topology, plan: &FaultPlan, flows: &[FlowSpec]) -> usize {
    if plan.static_failures().is_empty() {
        return 0;
    }
    let degraded = topo.graph.without_edges(plan.static_failures());
    // Component labels via BFS from each unvisited router.
    let nr = degraded.n();
    let mut comp = vec![u32::MAX; nr];
    let mut next = 0u32;
    let mut queue = Vec::new();
    for s in 0..nr as u32 {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = next;
        queue.push(s);
        while let Some(u) = queue.pop() {
            for &v in degraded.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push(v);
                }
            }
        }
        next += 1;
    }
    flows
        .iter()
        .filter(|fl| {
            comp[topo.endpoint_router(fl.src) as usize]
                != comp[topo.endpoint_router(fl.dst) as usize]
        })
        .count()
}

/// Metrics of one grid cell, pre-assembly.
struct CellOut {
    completed: usize,
    flows: usize,
    unreachable: usize,
    failed_links: usize,
    fct_mean_s: f64,
    fct_p99_s: f64,
    drops: u64,
    unroutable: u64,
    repair_ticks: usize,
    repair_rows: u64,
    fib_rows: u64,
    /// Telemetry-derived: time from the last repair pass to network
    /// quiescence (0 when nothing was repaired).
    quiesce_s: f64,
}

/// Runs the resilience grid on the given topologies and returns
/// `(csv_text, summary_text)`, assembled in grid order after the
/// parallel phase (bit-identical for any thread count).
pub fn resilience_matrix_on(topos: Vec<Topology>, fractions: &[f64]) -> (String, String) {
    let flow_size = 64 * 1024u64;
    let specs = schemes();
    // Per-topology shared workload.
    let prep_cells: Vec<usize> = (0..topos.len()).collect();
    let prep = SweepRunner::new("resilience-prep", prep_cells).run(|_, &ti| {
        let topo = topos[ti].clone();
        let flows = permutation_flows(&topo, 21, flow_size);
        (topo, flows)
    });
    let mut cells: Vec<(usize, usize, usize, usize)> = Vec::new();
    for ti in 0..prep.len() {
        for si in 0..specs.len() {
            for fi in 0..fractions.len() {
                for di in 0..DETECTION.len() {
                    cells.push((ti, si, fi, di));
                }
            }
        }
    }
    let fractions_owned = fractions.to_vec();
    let results = SweepRunner::new("resilience", cells).run(|_, &(ti, si, fi, di)| {
        let (topo, flows) = &prep[ti];
        let (_, spec, lb, compiled) = specs[si];
        let fraction = fractions_owned[fi];
        // One fault set per (topology, fraction): every scheme and
        // detection mode faces the same failures. Seeded from
        // coordinates, never from grid position or execution order.
        let fault_seed = cell_seed(
            "resilience-faults",
            &[coord_str(&label(topo)), fraction.to_bits()],
        );
        let plan = FaultPlan::sample(topo, &FaultModel::UniformFraction { fraction }, fault_seed);
        let unreachable = unreachable_pairs(topo, &plan, flows);
        let failed_links = plan.num_static();
        let mut sc = Scenario::on(topo)
            .scheme(spec)
            .workload(flows)
            .seed(5)
            .horizon(HORIZON_PS)
            .fault_plan(plan);
        if let Some(lb) = lb {
            sc = sc.lb(lb);
        }
        if let Some(mode) = compiled {
            sc = sc.compiled(mode);
        }
        if let (_, Some(delay)) = DETECTION[di] {
            sc = sc.detection_delay(delay);
        }
        // Traced run: the trace feeds the time-to-quiescence column
        // (how long traffic kept flowing after the last repair pass).
        let (res, trace) = sc.run_traced();
        let fct = Summary::of(&res.fcts(None));
        CellOut {
            completed: res.completed().count(),
            flows: res.flows.len(),
            unreachable,
            failed_links,
            fct_mean_s: fct.mean,
            fct_p99_s: fct.p99,
            drops: res.drops,
            unroutable: res.unroutable,
            repair_ticks: res.repair_ticks(),
            repair_rows: res.repair_rows(),
            fib_rows: res.fib_rows(),
            quiesce_s: trace.time_to_quiescence_ps() as f64 * 1e-12,
        }
    });
    // Serial assembly in grid order; slowdown references the fraction-0
    // cell of the same (topology, scheme, detect) slice.
    let nd = DETECTION.len();
    let nf = fractions.len();
    let cell_index =
        |ti: usize, si: usize, fi: usize, di: usize| ((ti * specs.len() + si) * nf + fi) * nd + di;
    let mut csv = String::from(HEADER);
    csv.push('\n');
    let mut summary =
        String::from("Resilience — FatPaths layers vs ECMP-minimal under uniform link failures\n");
    for (ti, (topo, _)) in prep.iter().enumerate() {
        summary.push_str(&format!(
            "-- {} ({} endpoints, {} links) --\n",
            label(topo),
            topo.num_endpoints(),
            topo.graph.m()
        ));
        for (si, (name, ..)) in specs.iter().enumerate() {
            for (fi, &fraction) in fractions.iter().enumerate() {
                for (di, (dlabel, _)) in DETECTION.iter().enumerate() {
                    let c = &results[cell_index(ti, si, fi, di)];
                    let base = &results[cell_index(ti, si, 0, di)];
                    let slowdown = if base.fct_mean_s > 0.0 {
                        c.fct_mean_s / base.fct_mean_s
                    } else {
                        0.0
                    };
                    csv.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                        label(topo),
                        name,
                        dlabel,
                        f(fraction),
                        c.failed_links,
                        c.flows,
                        c.completed,
                        c.unreachable,
                        f(c.fct_mean_s * 1e3),
                        f(c.fct_p99_s * 1e3),
                        f(slowdown),
                        c.drops,
                        c.unroutable,
                        c.repair_ticks,
                        c.repair_rows,
                        c.fib_rows,
                        f(c.quiesce_s * 1e3)
                    ));
                    if fi + 1 == nf {
                        summary.push_str(&format!(
                            "{:<9} detect={:<5} f={:.2}: {}/{} done ({} unreachable), \
                             mean {:>7.3} ms ({:.2}x healthy)\n",
                            name,
                            dlabel,
                            fraction,
                            c.completed,
                            c.flows,
                            c.unreachable,
                            c.fct_mean_s * 1e3,
                            slowdown
                        ));
                    }
                }
            }
        }
    }
    summary.push_str(
        "Paper (§V-G): preprovisioned layers mask link failures without control-plane\n\
         help (detect=none), while single-path ECMP strands every flow whose path died\n\
         until routing is repaired (detect=50us) — and no scheme beats the\n\
         unreachable-pair floor set by the degraded topology itself. The\n\
         fatpaths_fib rows run the same layered routing from compiled per-switch\n\
         FIBs (byte-identical behavior); their fib_rows column prices each repair\n\
         pass in rewritten forwarding rules.\n",
    );
    (csv, summary)
}

/// The shipped experiment: small-class SF, DF, and FT3 under the
/// [`FRACTIONS`] failure sweep.
pub fn resilience(quick: bool) -> io::Result<()> {
    let kinds = [TopoKind::SlimFly, TopoKind::Dragonfly, TopoKind::FatTree];
    let topos = SweepRunner::new("resilience-topos", kinds.to_vec())
        .run(|_, &kind| build(kind, SizeClass::Small, 1));
    let fractions: &[f64] = if quick { &[0.0, 0.05] } else { &FRACTIONS };
    let (csv, summary) = resilience_matrix_on(topos, fractions);
    write_text("resilience.csv", &csv)?;
    write_summary("resilience", &summary)
}
