//! Offline shim for `rayon`: the parallel-iterator API subset this
//! workspace uses, executed **sequentially**. Semantics (item order in
//! `collect`, zip pairing, `map_init` reuse) match rayon's observable
//! behavior, so swapping the real crate back in is a manifest change only.

/// Sequential stand-in for a rayon parallel iterator.
pub struct Par<I>(pub I);

impl<I: Iterator> Par<I> {
    /// Index–item pairs.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Pairs this iterator with another parallel iterator.
    pub fn zip<J: IntoParItem>(self, other: J) -> Par<std::iter::Zip<I, J::Inner>> {
        Par(self.0.zip(other.into_inner()))
    }

    /// Maps each item.
    pub fn map<F, R>(self, f: F) -> Par<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        Par(self.0.map(f))
    }

    /// Maps with per-worker scratch state (one worker here, so `init` runs
    /// once and the scratch value is reused across all items).
    pub fn map_init<INIT, T, F, R>(self, mut init: INIT, mut f: F) -> Par<impl Iterator<Item = R>>
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item) -> R,
    {
        let mut scratch = init();
        Par(self.0.map(move |item| f(&mut scratch, item)))
    }

    /// Filters items.
    pub fn filter<F>(self, f: F) -> Par<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        Par(self.0.filter(f))
    }

    /// Consumes every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Collects into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// Conversion used by [`Par::zip`] so both `Par<_>` values and plain
/// iterables can appear on the right-hand side.
pub trait IntoParItem {
    /// Underlying iterator type.
    type Inner: Iterator;
    /// Unwraps into the underlying iterator.
    fn into_inner(self) -> Self::Inner;
}

impl<I: Iterator> IntoParItem for Par<I> {
    type Inner = I;
    fn into_inner(self) -> I {
        self.0
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = std::ops::Range<$t>;
            fn into_par_iter(self) -> Par<Self::Iter> {
                Par(self)
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize, i32);

/// `par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing (sequential) "parallel" iterator.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Mutable chunk iterator.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, Par, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_zip_enumerate_for_each() {
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for x in ca.iter_mut().chain(cb.iter_mut()) {
                    *x = i as u32;
                }
            });
        assert_eq!(a, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(b, a);
    }

    #[test]
    fn map_init_collect_preserves_order() {
        let v: Vec<u32> = (0..10u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        let w: Vec<u32> = vec![1u32, 2, 3]
            .par_iter()
            .map_init(
                || 10u32,
                |s, &x| {
                    *s += 1;
                    x + *s
                },
            )
            .collect();
        assert_eq!(w, vec![12, 14, 16]);
    }
}
