//! Parallel-vs-single-thread parity: the flagship guarantee of the
//! execution layer. Extends PR 1's dispatch-parity suite (which pinned
//! bit-identical results across static/dyn/enum dispatch) to the new
//! axis — *thread count*. Every stage that fans out on the pool must
//! produce byte-identical artifacts whether it runs on the 4-thread pool
//! pinned here or inline on one thread via `rayon::run_sequential`.
//!
//! The headline test runs the full `baselines` matrix (all eight schemes
//! on SF, DF, and FT3) both ways and compares the CSV and the summary
//! byte for byte.

use fatpaths_core::ecmp::DistanceMatrix;
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_core::scheme::{KspConfig, KspScheme, RoutingScheme};
use fatpaths_diversity::apsp::shortest_path_stats;
use fatpaths_experiments::adaptive::adaptive_matrix_on;
use fatpaths_experiments::baselines::baselines_matrix_on;
use fatpaths_experiments::churn::churn_matrix_on;
use fatpaths_experiments::memory::memory_matrix_on;
use fatpaths_experiments::resilience::resilience_matrix_on;
use fatpaths_experiments::te::te_matrix_on;
use fatpaths_net::topo::slimfly::slim_fly;
use fatpaths_net::topo::Topology;

/// Pin the process-global pool wide enough that the "parallel" side of
/// every comparison really crosses threads, even on a 1-core runner.
fn wide_pool() {
    rayon::ensure_pool(4);
}

/// Miniature instances of the three `baselines` topologies — the same
/// families as the real experiment (SF/DF/FT3), small enough that the
/// 24-cell matrix runs twice within a debug test budget. Parity does
/// not depend on instance size or on the statistics being meaningful.
fn mini_topos() -> Vec<Topology> {
    vec![
        slim_fly(5, 2).unwrap(),
        fatpaths_net::topo::dragonfly::dragonfly(3),
        fatpaths_net::topo::fattree::fat_tree(4, 1),
    ]
}

/// The `baselines` experiment — the full (topology × scheme) grid on
/// SF/DF/FT3 — emits byte-identical CSV and summary text on the pool
/// and on a single thread.
#[test]
fn baselines_matrix_is_bit_identical_across_thread_counts() {
    wide_pool();
    let window = 0.002;
    let (csv_par, summary_par) = baselines_matrix_on(mini_topos(), window);
    let (csv_seq, summary_seq) =
        rayon::run_sequential(|| baselines_matrix_on(mini_topos(), window));
    assert!(
        csv_par == csv_seq,
        "baselines CSV differs between pooled and single-threaded runs"
    );
    assert!(
        summary_par == summary_seq,
        "baselines summary differs between pooled and single-threaded runs"
    );
    // Sanity: the artifact is the real matrix, not an empty stub.
    assert_eq!(
        csv_par.lines().count(),
        1 + 3 * 8,
        "3 topologies × 8 schemes"
    );
}

/// The `resilience` experiment — fault sampling, degraded-network
/// simulation, and route repair across the (topology × scheme ×
/// fraction × detection) grid — emits byte-identical CSV and summary
/// on the pool and on a single thread. Fault sets are seeded from cell
/// coordinates via `cell_seed`, so this holds by construction; the test
/// pins it.
#[test]
fn resilience_matrix_is_bit_identical_across_thread_counts() {
    wide_pool();
    let topos = || {
        vec![
            slim_fly(5, 2).unwrap(),
            fatpaths_net::topo::fattree::fat_tree(4, 1),
        ]
    };
    let fractions = [0.0, 0.05];
    let (csv_par, summary_par) = resilience_matrix_on(topos(), &fractions);
    let (csv_seq, summary_seq) =
        rayon::run_sequential(|| resilience_matrix_on(topos(), &fractions));
    assert!(
        csv_par == csv_seq,
        "resilience CSV differs between pooled and single-threaded runs"
    );
    assert!(
        summary_par == summary_seq,
        "resilience summary differs between pooled and single-threaded runs"
    );
    // Sanity: 2 topologies × 4 schemes × 2 fractions × 2 detection modes.
    assert_eq!(csv_par.lines().count(), 1 + 2 * 4 * 2 * 2);
}

/// The `churn` experiment — rolling-reboot schedules, timed
/// router-down/up events, host-dead workload filtering, and batched
/// route repair across the (topology × scheme × fraction × stagger)
/// grid — emits byte-identical CSV and summary on the pool and on a
/// single thread. Reboot schedules are seeded from cell coordinates
/// via `cell_seed`, so this holds by construction; the test pins it.
#[test]
fn churn_matrix_is_bit_identical_across_thread_counts() {
    wide_pool();
    let topos = || {
        vec![
            slim_fly(5, 2).unwrap(),
            fatpaths_net::topo::fattree::fat_tree(4, 1),
        ]
    };
    let (fractions, staggers) = ([0.1], [500u64]);
    let (csv_par, summary_par) = churn_matrix_on(topos(), &fractions, &staggers);
    let (csv_seq, summary_seq) =
        rayon::run_sequential(|| churn_matrix_on(topos(), &fractions, &staggers));
    assert!(
        csv_par == csv_seq,
        "churn CSV differs between pooled and single-threaded runs"
    );
    assert!(
        summary_par == summary_seq,
        "churn summary differs between pooled and single-threaded runs"
    );
    // Sanity: 2 topologies × 4 schemes × 1 fraction × 1 stagger × 2 samplers.
    assert_eq!(csv_par.lines().count(), 1 + 2 * 4 * 2);
}

/// The `memory` experiment — FIB compilation (parallel per-switch row
/// builds) and table statistics across the (topology × scheme × layer
/// count × compile mode) grid — emits byte-identical CSV and summary
/// on the pool and on a single thread. Compilation is a pure function
/// of the cell coordinates, so this holds by construction; the test
/// pins it (the acceptance criterion of the FIB subsystem).
#[test]
fn memory_matrix_is_bit_identical_across_thread_counts() {
    wide_pool();
    let topos = || {
        vec![
            slim_fly(5, 2).unwrap(),
            fatpaths_net::topo::fattree::fat_tree(4, 1),
        ]
    };
    let layer_counts = [3usize];
    let (csv_par, summary_par) = memory_matrix_on(topos(), &layer_counts);
    let (csv_seq, summary_seq) = rayon::run_sequential(|| memory_matrix_on(topos(), &layer_counts));
    assert!(
        csv_par == csv_seq,
        "memory CSV differs between pooled and single-threaded runs"
    );
    assert!(
        summary_par == summary_seq,
        "memory summary differs between pooled and single-threaded runs"
    );
    // Sanity: 2 topologies × 2 schemes (layered@3 + ecmp) × 2 modes.
    assert_eq!(csv_par.lines().count(), 1 + 2 * 2 * 2);
}

/// The `te` experiment — PathFinder-style congestion negotiation
/// (parallel per-(layer, destination) tree rebuilds each pricing
/// iteration), matrix scoring, and the analytic throughput bound across
/// the (topology × matrix × scheme) grid — emits byte-identical CSV and
/// summary on the pool and on a single thread. Negotiation accumulates
/// loads sequentially in demand order and rebuilds trees as pure
/// functions of the iteration's price vector, so this holds by
/// construction; the test pins it.
#[test]
fn te_matrix_is_bit_identical_across_thread_counts() {
    wide_pool();
    let topos = || {
        vec![
            slim_fly(5, 2).unwrap(),
            fatpaths_net::topo::fattree::fat_tree(4, 1),
        ]
    };
    let (csv_par, summary_par) = te_matrix_on(topos(), 4, 0.6);
    let (csv_seq, summary_seq) = rayon::run_sequential(|| te_matrix_on(topos(), 4, 0.6));
    assert!(
        csv_par == csv_seq,
        "te CSV differs between pooled and single-threaded runs"
    );
    assert!(
        summary_par == summary_seq,
        "te summary differs between pooled and single-threaded runs"
    );
    // Sanity: 2 topologies × 2 matrices × 3 schemes.
    assert_eq!(csv_par.lines().count(), 1 + 2 * 2 * 3);
}

/// The `adaptive` experiment — queue-depth flowlet steering scored
/// against oblivious hashing across the (topology × matrix × routing ×
/// boundary) grid — emits byte-identical CSV and summary on the pool
/// and on a single thread. The boundary decision is a pure function of
/// shard-local queue snapshots taken at canonical event times, so this
/// holds by construction; the test pins it (the acceptance criterion of
/// the adaptive subsystem, alongside `shard_parity`'s shard-count leg).
#[test]
fn adaptive_matrix_is_bit_identical_across_thread_counts() {
    wide_pool();
    let topos = || {
        vec![
            slim_fly(5, 2).unwrap(),
            fatpaths_net::topo::fattree::fat_tree(4, 1),
        ]
    };
    let (csv_par, summary_par) = adaptive_matrix_on(topos(), 4, 0.6);
    let (csv_seq, summary_seq) = rayon::run_sequential(|| adaptive_matrix_on(topos(), 4, 0.6));
    assert!(
        csv_par == csv_seq,
        "adaptive CSV differs between pooled and single-threaded runs"
    );
    assert!(
        summary_par == summary_seq,
        "adaptive summary differs between pooled and single-threaded runs"
    );
    // Sanity: 2 topologies × 3 matrices × 2 routings × 2 boundaries.
    assert_eq!(csv_par.lines().count(), 1 + 2 * 3 * 2 * 2);
}

/// APSP statistics (parallel BFS fan-out per source) are identical in
/// every field, including the f64 average, across execution modes.
#[test]
fn apsp_stats_parity() {
    wide_pool();
    let t = slim_fly(7, 1).unwrap();
    let par = shortest_path_stats(&t.graph);
    let seq = rayon::run_sequential(|| shortest_path_stats(&t.graph));
    assert_eq!(par, seq);
    assert_eq!(par.avg_path_length.to_bits(), seq.avg_path_length.to_bits());
}

/// Routing-table construction (flat parallel pass over all
/// (layer, destination) rows) yields identical tables and distances.
#[test]
fn routing_table_build_parity() {
    wide_pool();
    let t = slim_fly(7, 1).unwrap();
    let ls = build_random_layers(&t.graph, &LayerConfig::new(6, 0.6, 9));
    let par = RoutingTables::build(&t.graph, &ls);
    let seq = rayon::run_sequential(|| RoutingTables::build(&t.graph, &ls));
    assert_eq!(par.n_layers(), seq.n_layers());
    for layer in 0..par.n_layers() {
        for s in 0..t.num_routers() as u32 {
            for d in (0..t.num_routers() as u32).step_by(7) {
                assert_eq!(par.next_port(layer, s, d), seq.next_port(layer, s, d));
                assert_eq!(
                    par.layer_distance(layer, s, d),
                    seq.layer_distance(layer, s, d)
                );
            }
        }
    }
}

/// Distance-matrix and KSP scheme construction (parallel BFS rows /
/// parallel Yen runs) agree with their single-threaded selves.
#[test]
fn scheme_construction_parity() {
    wide_pool();
    let t = slim_fly(5, 1).unwrap();
    let dm_par = DistanceMatrix::build(&t.graph);
    let dm_seq = rayon::run_sequential(|| DistanceMatrix::build(&t.graph));
    for s in 0..t.num_routers() as u32 {
        for d in 0..t.num_routers() as u32 {
            assert_eq!(dm_par.get(s, d), dm_seq.get(s, d));
        }
    }
    let cfg = KspConfig {
        k: 3,
        max_pairs: 400,
    };
    let ksp_par = KspScheme::build(&t.graph, &cfg);
    let ksp_seq = rayon::run_sequential(|| KspScheme::build(&t.graph, &cfg));
    for layer in 0..ksp_par.num_layers() as u8 {
        for s in (0..t.num_routers() as u32).step_by(3) {
            for d in (1..t.num_routers() as u32).step_by(5) {
                let a = ksp_par.candidate_ports(layer, s, d);
                let b = ksp_seq.candidate_ports(layer, s, d);
                assert_eq!(a.as_slice(), b.as_slice(), "layer {layer} {s}->{d}");
            }
        }
    }
}

/// The `trace` experiment's telemetry artifacts — the NDJSON trace and
/// the per-interval time-series CSV — are byte-identical on the pool
/// and on a single thread. This is the export-layer face of the
/// telemetry determinism contract: shard-local collection plus a
/// canonical-order merge means thread scheduling can never leak into a
/// trace a user diffs or archives from CI.
#[test]
fn telemetry_trace_artifacts_are_bit_identical_across_thread_counts() {
    use fatpaths_sim::{Scenario, SchemeSpec, TelemetryConfig};
    use fatpaths_workloads::arrivals::FlowSpec;
    wide_pool();
    let topo = slim_fly(5, 2).unwrap();
    let n = topo.num_endpoints() as u64;
    let flows: Vec<FlowSpec> = (0..n)
        .map(|e| FlowSpec {
            src: e as u32,
            dst: ((e + 21) % n) as u32,
            size: 64 * 1024,
            start: 0,
        })
        .filter(|fl| fl.src != fl.dst)
        .collect();
    let run = || {
        Scenario::on(&topo)
            .scheme(SchemeSpec::LayeredRandom {
                n_layers: 4,
                rho: 0.6,
            })
            .workload(&flows)
            .seed(7)
            .shards(4)
            .telemetry(TelemetryConfig {
                span_every: 1,
                seed: 7,
                ..TelemetryConfig::on()
            })
            .run_traced()
            .1
    };
    let tr_par = run();
    let tr_seq = rayon::run_sequential(run);
    assert!(
        tr_par.to_ndjson() == tr_seq.to_ndjson(),
        "trace NDJSON differs between pooled and single-threaded runs"
    );
    assert!(
        tr_par.to_timeseries_csv() == tr_seq.to_timeseries_csv(),
        "trace time-series CSV differs between pooled and single-threaded runs"
    );
    // Sanity: the artifact carries real samples and spans.
    assert!(tr_par.total_wire_bytes() > 0);
    assert!(!tr_par.spans.is_empty());
}
