//! Per-layer destination-based forwarding tables (Listing 3, §V-C/§V-E).
//!
//! For each layer `i` and destination router `t`, the forwarding function
//! `σᵢ(s, t)` returns the output *port of the base graph* that is the first
//! hop of a minimal path from `s` to `t` **within layer i**. Tables are
//! built from one BFS per (layer, destination) — `O(Nr · m)` per layer,
//! parallelized over destinations — and store one `u16` port per
//! (destination, source): the `O(Nr)`-per-destination compression of §V-E
//! (all endpoints of a router share its routes).
//!
//! When several neighbors lie on minimal paths, the tie is broken by a
//! deterministic hash of `(layer, src, dst)`, which decorrelates the
//! choices across layers ("we try to pick different next-hop choices for
//! each layer", §V-B) and across sources.

use crate::layers::LayerSet;
use crate::repair::{DownLinks, RouteRepair};
use crate::scheme::PortSet;
use fatpaths_net::graph::{Graph, RouterId, UNREACHABLE};
use rayon::prelude::*;

/// Marker for "no route" / "self" in the flat tables.
pub const NO_PORT: u16 = u16::MAX;

/// Forwarding tables for every layer of a [`LayerSet`].
#[derive(Clone, Debug)]
pub struct RoutingTables {
    nr: usize,
    /// `tables[layer][dst * nr + src]` = base-graph output port at `src`.
    tables: Vec<Vec<u16>>,
    /// `dists[layer][dst * nr + src]` = hop distance within the layer
    /// (`u8::MAX` if unreachable). Used by adaptivity and analysis.
    dists: Vec<Vec<u8>>,
    /// `fallback[layer][dst * nr + src]` = a second, distinct minimal
    /// next-hop port (`NO_PORT` if the chosen one is the only minimal
    /// next hop) — precomputed at build so single-link repair is O(1)
    /// when an equal-cost alternative exists.
    fallback: Vec<Vec<u16>>,
    /// The layer subgraphs the tables were built from, retained so link
    /// failures can be repaired per layer (degraded BFS on the affected
    /// rows only).
    layers: LayerSet,
}

/// One `(layer, dst)` build unit: layer index, destination, and the
/// mutable port/distance/fallback rows it fills.
type DestRow<'a> = (usize, usize, &'a mut [u16], &'a mut [u8], &'a mut [u16]);

/// FNV-1a on a 64-bit key — the deterministic tie-breaker (the paper's
/// routers use Fowler–Noll–Vo hashing for ECMP; we reuse it here).
#[inline]
pub fn fnv1a(key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..8 {
        h ^= (key >> (8 * i)) & 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RoutingTables {
    /// Builds tables for all layers. `base` must be the graph the layers
    /// were sampled from (ports refer to it).
    ///
    /// All `(layer, destination)` rows are filled in one flat parallel
    /// pass across the entire layer vector — rather than layer by layer —
    /// so thread utilization stays high even when the per-layer row count
    /// is small relative to the pool.
    pub fn build(base: &Graph, layers: &LayerSet) -> Self {
        let nr = base.n();
        for lg in &layers.graphs {
            assert_eq!(lg.n(), nr, "layer router count mismatch");
        }
        let mut tables: Vec<Vec<u16>> = (0..layers.len()).map(|_| vec![NO_PORT; nr * nr]).collect();
        let mut dists: Vec<Vec<u8>> = (0..layers.len()).map(|_| vec![u8::MAX; nr * nr]).collect();
        let mut fallback: Vec<Vec<u16>> =
            (0..layers.len()).map(|_| vec![NO_PORT; nr * nr]).collect();
        let rows: Vec<DestRow<'_>> = tables
            .iter_mut()
            .zip(dists.iter_mut())
            .zip(fallback.iter_mut())
            .enumerate()
            .flat_map(|(li, ((table, dmat), fmat))| {
                table
                    .chunks_mut(nr)
                    .zip(dmat.chunks_mut(nr))
                    .zip(fmat.chunks_mut(nr))
                    .enumerate()
                    .map(move |(dst, ((trow, drow), frow))| (li, dst, trow, drow, frow))
            })
            .collect();
        rows.into_par_iter()
            .for_each(|(li, dst, trow, drow, frow)| {
                fill_destination(
                    base,
                    layers.layer(li),
                    li as u32,
                    dst as u32,
                    trow,
                    drow,
                    frow,
                );
            });
        RoutingTables {
            nr,
            tables,
            dists,
            fallback,
            layers: layers.clone(),
        }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.tables.len()
    }

    /// Number of routers.
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// `σᵢ(src, dst)`: output port at `src` toward `dst` in layer `layer`,
    /// or `None` if `dst` is unreachable in that layer (or `src == dst`).
    #[inline]
    pub fn next_port(&self, layer: usize, src: RouterId, dst: RouterId) -> Option<u16> {
        let p = self.tables[layer][dst as usize * self.nr + src as usize];
        (p != NO_PORT).then_some(p)
    }

    /// Hop distance from `src` to `dst` within `layer` (`None` if
    /// unreachable).
    #[inline]
    pub fn layer_distance(&self, layer: usize, src: RouterId, dst: RouterId) -> Option<u32> {
        let d = self.dists[layer][dst as usize * self.nr + src as usize];
        (d != u8::MAX).then_some(d as u32)
    }

    /// True iff `dst` is reachable from `src` within `layer`.
    #[inline]
    pub fn reachable(&self, layer: usize, src: RouterId, dst: RouterId) -> bool {
        src == dst || self.tables[layer][dst as usize * self.nr + src as usize] != NO_PORT
    }

    /// Resolves the full router path `src → dst` in `layer` by iterating σ.
    /// Returns `None` if unreachable. The result includes both endpoints.
    pub fn path(
        &self,
        base: &Graph,
        layer: usize,
        src: RouterId,
        dst: RouterId,
    ) -> Option<Vec<RouterId>> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let port = self.next_port(layer, cur, dst)?;
            cur = base.neighbor_at(cur, port as u32);
            path.push(cur);
            if path.len() > self.nr + 1 {
                unreachable!("forwarding loop — tables are distance-decreasing by construction");
            }
        }
        Some(path)
    }

    /// Approximate memory footprint in bytes (for the §VII-C remark that
    /// routing tables are a simulation memory concern). Counts the port,
    /// fallback-port, and distance entries.
    pub fn memory_bytes(&self) -> usize {
        self.tables.len() * self.nr * self.nr * (2 * std::mem::size_of::<u16>() + 1)
    }

    /// The layer subgraphs the tables were built from.
    pub fn layer_set(&self) -> &LayerSet {
        &self.layers
    }

    /// The precomputed second-choice minimal next-hop port at `src`
    /// toward `dst` in `layer` (`None` if the chosen port is the only
    /// minimal next hop).
    #[inline]
    pub fn fallback_port(&self, layer: usize, src: RouterId, dst: RouterId) -> Option<u16> {
        let p = self.fallback[layer][dst as usize * self.nr + src as usize];
        (p != NO_PORT).then_some(p)
    }

    /// Link-failure repair (the layered arm of
    /// [`RoutingScheme::repair_routes`](crate::scheme::RoutingScheme::repair_routes)):
    /// returns a sparse overlay covering exactly the `(layer, dst)` rows
    /// the down links invalidate.
    ///
    /// Per affected row the repair is **incremental**: if every router
    /// whose chosen next hop crosses a down link still has a live
    /// equal-cost alternative (checked first against the precomputed
    /// [`fallback_port`](RoutingTables::fallback_port)), in-layer
    /// distances are provably unchanged and the repair is a handful of
    /// O(1) port swaps. Only rows where a distance actually changes are
    /// recomputed with a BFS on the degraded layer graph. Routers left
    /// unable to reach `dst` within a sparse layer fall back to the
    /// (repaired) layer-0 route; an empty overlay entry marks pairs
    /// disconnected even in the degraded base graph.
    ///
    /// Assumes layer 0 is the complete layer (true for FatPaths tables),
    /// so layer-0 reachability equals degraded-base reachability.
    pub fn repair(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        let mut rep = RouteRepair::none();
        if down.is_empty() {
            return rep;
        }
        let nr = self.nr;
        let mut new_trow = vec![NO_PORT; nr];
        let mut new_drow = vec![u8::MAX; nr];
        let mut new_frow = vec![NO_PORT; nr];
        // (src, dst) pairs whose layer-0 row the repair rewrote; pairs a
        // sparse layer could never reach must shadow them too (below).
        let mut layer0_touched: Vec<(RouterId, RouterId)> = Vec::new();
        // Ascending layer order matters: sparse-layer fallbacks resolve
        // against layer 0's already-repaired rows.
        for l in 0..self.n_layers() {
            let lg = self.layers.layer(l);
            let layer_down: Vec<(RouterId, RouterId)> =
                down.iter().filter(|&(u, v)| lg.has_edge(u, v)).collect();
            if layer_down.is_empty() {
                continue;
            }
            let degraded = lg.without_edges(&layer_down);
            for dst in 0..nr as u32 {
                let trow = &self.tables[l][dst as usize * nr..][..nr];
                let drow = &self.dists[l][dst as usize * nr..][..nr];
                let frow = &self.fallback[l][dst as usize * nr..][..nr];
                let mut swaps: Vec<(RouterId, u16)> = Vec::new();
                let mut full = false;
                'edges: for &(u, v) in &layer_down {
                    for (a, b) in [(u, v), (v, u)] {
                        let (da, db) = (drow[a as usize], drow[b as usize]);
                        if da == u8::MAX || db == u8::MAX || da != db + 1 {
                            continue; // edge not used downhill from `a`
                        }
                        let to_b =
                            base.port_of(a, b).expect("down link must be a base edge") as u16;
                        if trow[a as usize] != to_b {
                            // `a`'s chosen next hop is a different, still
                            // minimal neighbor; if that link is also down
                            // its own iteration handles it.
                            continue;
                        }
                        // Live minimal alternative: the precomputed
                        // fallback port if its link survives, else the
                        // first live minimal layer-neighbor in port order.
                        let fb = frow[a as usize];
                        let alt =
                            if fb != NO_PORT && !down.contains(a, base.neighbor_at(a, fb as u32)) {
                                Some(fb)
                            } else {
                                scan_live_minimal(base, lg, drow, down, a, da)
                            };
                        match alt {
                            Some(p) => swaps.push((a, p)),
                            None => {
                                full = true;
                                break 'edges;
                            }
                        }
                    }
                }
                if !full {
                    // Every broken chosen hop has a live equal-cost
                    // alternative ⇒ all in-layer distances are unchanged
                    // (induction on BFS level) ⇒ the swaps alone repair
                    // the row, loop-free.
                    for (a, p) in swaps {
                        if l == 0 {
                            layer0_touched.push((a, dst));
                        }
                        rep.insert(l as u8, a, dst, PortSet::single(p));
                    }
                    continue;
                }
                new_trow.fill(NO_PORT);
                new_drow.fill(u8::MAX);
                new_frow.fill(NO_PORT);
                fill_destination(
                    base,
                    &degraded,
                    l as u32,
                    dst,
                    &mut new_trow,
                    &mut new_drow,
                    &mut new_frow,
                );
                for src in 0..nr as u32 {
                    if src == dst {
                        continue;
                    }
                    let (np, op) = (new_trow[src as usize], trow[src as usize]);
                    if np == op {
                        continue;
                    }
                    let entry = if np != NO_PORT {
                        PortSet::single(np)
                    } else if l == 0 {
                        // Disconnected even in the (complete) base layer.
                        PortSet::new()
                    } else {
                        // Unreachable within this sparse layer: resolve
                        // the layer-0 fallback now so the overlay stores
                        // the final decision.
                        self.layer0_resolution(&rep, src, dst)
                    };
                    if l == 0 {
                        layer0_touched.push((src, dst));
                    }
                    rep.insert(l as u8, src, dst, entry);
                }
            }
        }
        // Pairs a sparse layer could never reach (NO_PORT at build time)
        // forward through `candidate_ports`' internal layer-0 fallback —
        // which reads the *original* layer-0 table. Wherever the repair
        // rewrote a layer-0 row, shadow those sparse-layer keys with the
        // repaired entry so the fallback cannot resurrect a dead port.
        // (FatPaths layers are connected by construction, so this pass is
        // a no-op there; it matters for externally built layer sets with
        // unreachable sparse-layer pairs.)
        for &(src, dst) in &layer0_touched {
            let repaired = rep
                .lookup(0, src, dst)
                .expect("touched layer-0 rows have entries")
                .clone();
            for l in 1..self.n_layers() {
                if self.tables[l][dst as usize * nr + src as usize] == NO_PORT
                    && rep.lookup(l as u8, src, dst).is_none()
                {
                    rep.insert(l as u8, src, dst, repaired.clone());
                }
            }
        }
        rep
    }

    /// The repaired layer-0 route for `(src, dst)`: the overlay row if
    /// layer 0 was repaired there, else the original table entry.
    fn layer0_resolution(&self, rep: &RouteRepair, src: RouterId, dst: RouterId) -> PortSet {
        if let Some(e) = rep.lookup(0, src, dst) {
            return e.clone();
        }
        match self.next_port(0, src, dst) {
            Some(p) => PortSet::single(p),
            None => PortSet::new(),
        }
    }
}

/// A live minimal next-hop port at `a` (in-layer distance `da` per
/// `drow`): the first layer-neighbor one step closer to the destination
/// whose link is not down, in port order.
fn scan_live_minimal(
    base: &Graph,
    lg: &Graph,
    drow: &[u8],
    down: &DownLinks,
    a: RouterId,
    da: u8,
) -> Option<u16> {
    for &w in lg.neighbors(a) {
        if drow[w as usize] != u8::MAX && drow[w as usize] + 1 == da && !down.contains(a, w) {
            return Some(base.port_of(a, w).expect("layer edge in base") as u16);
        }
    }
    None
}

/// Fills one destination row: BFS from `dst` in the layer graph, then picks
/// for every source a hash-selected minimal next hop, plus (when the tie
/// has ≥ 2 candidates) the cyclically-next minimal neighbor as the
/// precomputed repair fallback.
fn fill_destination(
    base: &Graph,
    lg: &Graph,
    layer: u32,
    dst: u32,
    trow: &mut [u16],
    drow: &mut [u8],
    frow: &mut [u16],
) {
    let dist = lg.bfs(dst);
    for (src, &d) in dist.iter().enumerate() {
        if d == UNREACHABLE || src as u32 == dst {
            continue;
        }
        drow[src] = d.min(u8::MAX as u32 - 1) as u8;
        // Candidates: layer-neighbors one step closer to dst.
        let src = src as u32;
        let nbs = lg.neighbors(src);
        let count = nbs.iter().filter(|&&v| dist[v as usize] + 1 == d).count();
        debug_assert!(count > 0);
        let key = (layer as u64) << 48 | (src as u64) << 24 | dst as u64;
        let pick = (fnv1a(key) % count as u64) as usize;
        let minimal = |n: usize| {
            nbs.iter()
                .filter(|&&v| dist[v as usize] + 1 == d)
                .nth(n)
                .copied()
                .unwrap()
        };
        let chosen = minimal(pick);
        let port = base
            .port_of(src, chosen)
            .expect("layer edge must exist in base graph");
        trow[src as usize] = port as u16;
        if count > 1 {
            let alt = minimal((pick + 1) % count);
            frow[src as usize] =
                base.port_of(src, alt)
                    .expect("layer edge must exist in base graph") as u16;
        }
    }
    drow[dst as usize] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{build_random_layers, LayerConfig, LayerSet};
    use fatpaths_net::topo::slimfly::slim_fly;

    fn tables_for(q: u32, n_layers: usize, rho: f64) -> (Graph, RoutingTables) {
        let t = slim_fly(q, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(n_layers, rho, 7));
        let rt = RoutingTables::build(&t.graph, &ls);
        (t.graph.clone(), rt)
    }

    #[test]
    fn layer_zero_paths_are_minimal() {
        let (g, rt) = tables_for(5, 3, 0.6);
        for (s, t) in [(0u32, 17u32), (3, 44), (10, 29)] {
            let p = rt.path(&g, 0, s, t).unwrap();
            let d = g.bfs(s)[t as usize];
            assert_eq!(p.len() as u32 - 1, d, "layer-0 path not minimal");
        }
    }

    #[test]
    fn sparse_layer_paths_valid_and_loop_free() {
        let (g, rt) = tables_for(7, 5, 0.5);
        for layer in 0..rt.n_layers() {
            for (s, t) in [(0u32, 90u32), (5, 60), (33, 12)] {
                let p = rt.path(&g, layer, s, t).expect("connected layer");
                // Consecutive hops are base edges.
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
                assert_eq!(p.first(), Some(&s));
                assert_eq!(p.last(), Some(&t));
                // No router repeats (loop-freedom).
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                assert_eq!(q.len(), p.len());
            }
        }
    }

    #[test]
    fn sparse_layers_yield_non_minimal_paths() {
        // §V-B: minimal routes in a sparse layer are usually non-minimal on
        // the full topology — that is the whole point.
        let (g, rt) = tables_for(7, 6, 0.4);
        let mut longer = 0;
        let mut total = 0;
        for layer in 1..rt.n_layers() {
            for s in (0..98u32).step_by(13) {
                for t in (1..98u32).step_by(17) {
                    if s == t {
                        continue;
                    }
                    let d_min = g.bfs(s)[t as usize];
                    let d_layer = rt.layer_distance(layer, s, t).unwrap();
                    assert!(d_layer >= d_min);
                    total += 1;
                    if d_layer > d_min {
                        longer += 1;
                    }
                }
            }
        }
        assert!(
            longer * 3 > total,
            "expected a large fraction of non-minimal layer paths ({longer}/{total})"
        );
    }

    #[test]
    fn path_length_matches_layer_distance() {
        let (g, rt) = tables_for(5, 4, 0.5);
        for layer in 0..4 {
            for (s, t) in [(1u32, 40u32), (8, 31)] {
                let p = rt.path(&g, layer, s, t).unwrap();
                assert_eq!(p.len() as u32 - 1, rt.layer_distance(layer, s, t).unwrap());
            }
        }
    }

    #[test]
    fn different_layers_give_different_paths() {
        let (g, rt) = tables_for(7, 8, 0.5);
        // For a sample of pairs, at least one sparse layer must route
        // differently than layer 0 (path diversity across layers).
        let mut diverse = 0;
        let pairs = [(0u32, 50u32), (3, 77), (20, 91), (40, 13), (60, 25)];
        for &(s, t) in &pairs {
            let p0 = rt.path(&g, 0, s, t).unwrap();
            if (1..rt.n_layers()).any(|l| rt.path(&g, l, s, t).unwrap() != p0) {
                diverse += 1;
            }
        }
        assert!(diverse >= 4, "only {diverse}/5 pairs saw layer diversity");
    }

    #[test]
    fn minimal_only_tables() {
        let t = slim_fly(5, 1).unwrap();
        let ls = LayerSet::minimal_only(&t.graph);
        let rt = RoutingTables::build(&t.graph, &ls);
        assert_eq!(rt.n_layers(), 1);
        assert!(rt.reachable(0, 0, 49));
        assert_eq!(rt.next_port(0, 7, 7), None);
    }

    /// Walks `src → dst` in `layer` through tables + repair overlay the
    /// way the simulator does (overlay first, then the scheme's
    /// `candidate_ports` with its internal layer-0 fallback). Returns the
    /// path, or `None` if an unreachable entry is hit.
    fn walk_repaired(
        g: &Graph,
        rt: &RoutingTables,
        rep: &crate::repair::RouteRepair,
        layer: usize,
        src: u32,
        dst: u32,
    ) -> Option<Vec<u32>> {
        use crate::scheme::RoutingScheme;
        let mut at = src;
        let mut path = vec![src];
        while at != dst {
            let port = match rep.lookup(layer as u8, at, dst) {
                Some(e) if e.is_empty() => return None,
                Some(e) => e.as_slice()[0],
                None => rt.candidate_ports(layer as u8, at, dst).as_slice()[0],
            };
            at = g.neighbor_at(at, port as u32);
            path.push(at);
            assert!(path.len() <= g.n() + 1, "loop: {path:?}");
        }
        Some(path)
    }

    #[test]
    fn empty_down_set_repairs_nothing() {
        let (g, rt) = tables_for(5, 3, 0.6);
        let rep = rt.repair(&g, &crate::repair::DownLinks::from_links(&[]));
        assert!(rep.is_empty());
    }

    #[test]
    fn repair_routes_around_single_failed_link() {
        let (g, rt) = tables_for(5, 4, 0.6);
        // Fail the first hop of layer 0's 0→41 path.
        let p0 = rt.path(&g, 0, 0, 41).unwrap();
        let down = crate::repair::DownLinks::from_links(&[(p0[0], p0[1])]);
        let rep = rt.repair(&g, &down);
        assert!(!rep.is_empty());
        for layer in 0..rt.n_layers() {
            for (s, t) in [(0u32, 41u32), (41, 0), (7, 30), (3, 44)] {
                let p = walk_repaired(&g, &rt, &rep, layer, s, t)
                    .expect("one dead link cannot disconnect SF");
                // The repaired route never crosses the dead link.
                for w in p.windows(2) {
                    assert!(
                        !(w[0] == p0[0] && w[1] == p0[1] || w[0] == p0[1] && w[1] == p0[0]),
                        "layer {layer} {s}->{t} crossed the dead link: {p:?}"
                    );
                }
                // No router repeats (loop-freedom).
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                assert_eq!(q.len(), p.len());
            }
        }
    }

    #[test]
    fn fallback_ports_exist_where_ties_do() {
        let t = slim_fly(7, 1).unwrap();
        let ls = build_random_layers(&t.graph, &LayerConfig::new(3, 0.7, 5));
        let rt = RoutingTables::build(&t.graph, &ls);
        let mut with_fb = 0;
        let mut checked = 0;
        for s in (0..98u32).step_by(7) {
            for d in (1..98u32).step_by(11) {
                if s == d {
                    continue;
                }
                checked += 1;
                if let Some(fb) = rt.fallback_port(0, s, d) {
                    with_fb += 1;
                    // The fallback is itself a minimal next hop, distinct
                    // from the chosen one.
                    let chosen = rt.next_port(0, s, d).unwrap();
                    assert_ne!(fb, chosen);
                    let w = t.graph.neighbor_at(s, fb as u32);
                    assert_eq!(
                        rt.layer_distance(0, w, d).unwrap() + 1,
                        rt.layer_distance(0, s, d).unwrap()
                    );
                }
            }
        }
        // SF is mostly single-minimal-path, but some pairs tie.
        assert!(with_fb > 0, "no fallback among {checked} pairs");
    }

    #[test]
    fn repair_marks_disconnected_pairs_unreachable() {
        // Star-ish: cut the only edge to a leaf.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        let ls = LayerSet::minimal_only(&g);
        let rt = RoutingTables::build(&g, &ls);
        let rep = rt.repair(&g, &crate::repair::DownLinks::from_links(&[(0, 1)]));
        // 0 is now isolated: every pair involving 0 must be an empty entry.
        for other in 1..4u32 {
            assert!(rep.lookup(0, 0, other).unwrap().is_empty());
            assert!(rep.lookup(0, other, 0).unwrap().is_empty());
        }
        // The triangle 1-2-3 stays routable.
        assert!(walk_repaired(&g, &rt, &rep, 0, 2, 3).is_some());
    }

    #[test]
    fn build_time_unreachable_sparse_rows_shadow_repaired_layer0() {
        // Base: 4-cycle. Layer 1 deliberately leaves router 3 isolated,
        // so (0, 3) is unreachable in layer 1 at build time and forwards
        // through candidate_ports' internal layer-0 fallback. Fail layer
        // 0's direct 0-3 link: the repair must shadow the (layer 1, 0, 3)
        // key too, or the stale layer-0 port would resurrect the dead
        // link.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let layer1 = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let ls = LayerSet {
            graphs: vec![g.clone(), layer1],
        };
        let rt = RoutingTables::build(&g, &ls);
        assert_eq!(rt.next_port(1, 0, 3), None, "pair must start unreachable");
        // Layer 0 routes 0 -> 3 over the direct edge; fail it.
        let down = crate::repair::DownLinks::from_links(&[(0, 3)]);
        let rep = rt.repair(&g, &down);
        // The repaired layer-0 row detours 0 -> 1 -> 2 -> 3.
        let p0 = rep.lookup(0, 0, 3).expect("layer-0 row repaired");
        assert_eq!(p0.as_slice(), &[g.port_of(0, 1).unwrap() as u16]);
        // The sparse layer's key is shadowed with the same repaired route.
        let p1 = rep.lookup(1, 0, 3).expect("sparse-layer key shadowed");
        assert_eq!(p1.as_slice(), p0.as_slice());
        // And the walk on the sparse layer avoids the dead link.
        let path = walk_repaired(&g, &rt, &rep, 1, 0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fnv_is_deterministic_and_spread() {
        let a = fnv1a(1);
        let b = fnv1a(1);
        let c = fnv1a(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
