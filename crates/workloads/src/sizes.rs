//! Flow-size distribution (§VII-A4).
//!
//! The paper draws flow sizes from the pFabric web-search distribution
//! "discretized to 20 flows, with an average flow size of 1MB", spanning
//! the 32 KiB – 2 MiB range every plot uses. We reproduce exactly that: 20
//! log-spaced sizes on `[32 KiB, 2 MiB]` with a power-law tilt
//! `p_i ∝ s_i^a`, where `a` is solved by bisection so the mean is 1 MiB —
//! preserving the mice/elephant mix that drives the mean-vs-tail
//! separation in Figs. 2/11/14 (see DESIGN.md §2.4).

use rand::Rng;

/// KiB/MiB helpers.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * 1024;

/// A discrete flow-size distribution.
#[derive(Clone, Debug)]
pub struct FlowSizeDist {
    sizes: Vec<u64>,
    cumulative: Vec<f64>,
}

impl FlowSizeDist {
    /// The paper's web-search-like distribution: 20 log-spaced sizes on
    /// `[32 KiB, 2 MiB]`, mean 1 MiB.
    pub fn web_search() -> Self {
        Self::log_spaced(32 * KIB, 2 * MIB, 20, MIB as f64)
    }

    /// `buckets` log-spaced sizes on `[lo, hi]` tilted to the given mean.
    pub fn log_spaced(lo: u64, hi: u64, buckets: usize, target_mean: f64) -> Self {
        assert!(lo > 0 && hi > lo && buckets >= 2);
        let ratio = (hi as f64 / lo as f64).powf(1.0 / (buckets as f64 - 1.0));
        let sizes: Vec<u64> = (0..buckets)
            .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as u64)
            .collect();
        assert!(
            target_mean > lo as f64 && target_mean < hi as f64,
            "target mean must lie inside the size range"
        );
        // Solve p_i ∝ s_i^a for the exponent a giving the target mean.
        let mean_for = |a: f64| -> f64 {
            let mut wsum = 0.0;
            let mut msum = 0.0;
            for &s in &sizes {
                let w = (s as f64).powf(a);
                wsum += w;
                msum += w * s as f64;
            }
            msum / wsum
        };
        let (mut alo, mut ahi) = (-4.0f64, 4.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (alo + ahi);
            if mean_for(mid) < target_mean {
                alo = mid;
            } else {
                ahi = mid;
            }
        }
        let a = 0.5 * (alo + ahi);
        let weights: Vec<f64> = sizes.iter().map(|&s| (s as f64).powf(a)).collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(buckets);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        *cumulative.last_mut().unwrap() = 1.0;
        FlowSizeDist { sizes, cumulative }
    }

    /// A degenerate single-size distribution (for fixed-size experiments).
    pub fn fixed(size: u64) -> Self {
        FlowSizeDist {
            sizes: vec![size],
            cumulative: vec![1.0],
        }
    }

    /// Draws one flow size.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let x: f64 = rng.random();
        let idx = self.cumulative.partition_point(|&c| c < x);
        self.sizes[idx.min(self.sizes.len() - 1)]
    }

    /// Exact mean of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut m = 0.0;
        for (&s, &c) in self.sizes.iter().zip(&self.cumulative) {
            m += (c - prev) * s as f64;
            prev = c;
        }
        m
    }

    /// The support (distinct sizes).
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn web_search_mean_is_one_mib() {
        let d = FlowSizeDist::web_search();
        assert_eq!(d.sizes().len(), 20);
        assert_eq!(d.sizes()[0], 32 * KIB);
        assert_eq!(*d.sizes().last().unwrap(), 2 * MIB);
        assert!(
            (d.mean() - MIB as f64).abs() / (MIB as f64) < 0.01,
            "mean {}",
            d.mean()
        );
    }

    #[test]
    fn sampling_matches_mean() {
        let d = FlowSizeDist::web_search();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let sum: u128 = (0..n).map(|_| d.sample(&mut rng) as u128).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - d.mean()).abs() / d.mean() < 0.02, "empirical {emp}");
    }

    #[test]
    fn heavy_tail_mice_majority_elephant_bytes() {
        // Small flows exist in numbers; large flows dominate bytes — the
        // qualitative property of the web-search mix.
        let d = FlowSizeDist::web_search();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let small = samples.iter().filter(|&&s| s <= 128 * KIB).count();
        assert!(small > 3_000, "small-flow share too low: {small}");
        let big_bytes: u64 = samples.iter().filter(|&&s| s >= MIB).sum();
        let all_bytes: u64 = samples.iter().sum();
        assert!(big_bytes * 2 > all_bytes, "elephants should dominate bytes");
    }

    #[test]
    fn fixed_distribution() {
        let d = FlowSizeDist::fixed(MIB);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), MIB);
        assert_eq!(d.mean(), MIB as f64);
    }
}
