//! SPAIN comparison baseline (Mudigonda et al., NSDI'10; Listing 4,
//! Appendix C-B).
//!
//! SPAIN precomputes, per destination, a set of redundancy-exploiting paths,
//! colors them into per-destination VLANs (each VLAN acyclic), and greedily
//! merges VLAN subgraphs across destinations while the union stays acyclic.
//! Layers are therefore *forests* — the structural weakness §VI exploits:
//! a tree holds at most `Nr − 1` of the topology's `Nr·k'/2` links, so
//! `O(k')` to `O(Nr)` layers are needed where FatPaths needs `O(1)`.
//!
//! Per DESIGN.md, the per-destination path sets are computed as `k`
//! weighted-BFS trees with disjointness-preferring weight updates (each
//! color class is then a tree by construction), which preserves SPAIN's
//! layer structure while keeping the build `O(k · Nr · m)`.

use crate::layers::LayerSet;
use fatpaths_net::graph::{Graph, RouterId};
use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashSet;

/// Configuration for the SPAIN layer build.
#[derive(Clone, Copy, Debug)]
pub struct SpainConfig {
    /// Trees (≈ disjoint paths) computed per destination.
    pub k_paths: usize,
    /// Cap on merged layers (`None` = merge fully, report what results).
    pub max_layers: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpainConfig {
    fn default() -> Self {
        SpainConfig {
            k_paths: 3,
            max_layers: None,
            seed: 0,
        }
    }
}

/// Result of the SPAIN construction.
#[derive(Clone, Debug)]
pub struct SpainLayers {
    /// Merged acyclic layers (forests), as subgraphs of the base graph.
    pub layers: LayerSet,
    /// Number of VLAN subgraphs before merging (the resource cost §VI-B
    /// compares against).
    pub vlans_before_merge: usize,
}

/// Builds SPAIN layers on `base`.
pub fn build_spain_layers(base: &Graph, cfg: &SpainConfig) -> SpainLayers {
    let nr = base.n();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Per destination: k trees, each an edge set (acyclic by construction).
    let mut subgraphs: Vec<FxHashSet<(u32, u32)>> = Vec::new();
    let mut edge_use = vec![0u64; base.m()];
    let edge_index = base.edge_index_map();
    for dst in 0..nr as u32 {
        for _ in 0..cfg.k_paths {
            let tree = weighted_bfs_tree(base, dst, &edge_use, &edge_index, &mut rng);
            for &e in &tree {
                edge_use[edge_index[&e] as usize] += 1;
            }
            subgraphs.push(tree);
        }
    }
    let vlans_before_merge = subgraphs.len();
    // Greedy merging (randomized order): union two subgraphs iff acyclic.
    subgraphs.shuffle(&mut rng);
    let mut merged: Vec<FxHashSet<(u32, u32)>> = Vec::new();
    for sg in subgraphs {
        let mut placed = false;
        for m in merged.iter_mut() {
            if union_acyclic(nr, m, &sg) {
                m.extend(sg.iter().copied());
                placed = true;
                break;
            }
        }
        if !placed {
            merged.push(sg);
        }
    }
    if let Some(cap) = cfg.max_layers {
        merged.truncate(cap);
    }
    let graphs: Vec<Graph> = merged
        .into_iter()
        .map(|edges| {
            let list: Vec<(u32, u32)> = edges.into_iter().collect();
            Graph::from_edges(nr, &list)
        })
        .collect();
    SpainLayers {
        layers: LayerSet { graphs },
        vlans_before_merge,
    }
}

/// BFS tree rooted at `dst` preferring lightly-used edges: neighbors are
/// visited in order of accumulated use count (random tiebreak), the SPAIN
/// "prefer disjoint paths" rule.
fn weighted_bfs_tree(
    base: &Graph,
    dst: RouterId,
    edge_use: &[u64],
    edge_index: &rustc_hash::FxHashMap<(u32, u32), u32>,
    rng: &mut StdRng,
) -> FxHashSet<(u32, u32)> {
    let nr = base.n();
    let mut tree = FxHashSet::default();
    let mut visited = vec![false; nr];
    visited[dst as usize] = true;
    let mut frontier = vec![dst];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        // Expand the whole frontier level; candidate edges sorted by use.
        let mut cands: Vec<(u64, u64, u32, u32)> = Vec::new(); // (use, tiebreak, from, to)
        for &u in &frontier {
            for &v in base.neighbors(u) {
                if !visited[v as usize] {
                    let k = (u.min(v), u.max(v));
                    cands.push((edge_use[edge_index[&k] as usize], rng.random::<u64>(), u, v));
                }
            }
        }
        cands.sort_unstable();
        for (_, _, u, v) in cands {
            if !visited[v as usize] {
                visited[v as usize] = true;
                tree.insert((u.min(v), u.max(v)));
                next.push(v);
            }
        }
        frontier = next;
    }
    tree
}

/// True iff `a ∪ b` is acyclic (forest check via union-find).
fn union_acyclic(nr: usize, a: &FxHashSet<(u32, u32)>, b: &FxHashSet<(u32, u32)>) -> bool {
    let mut parent: Vec<u32> = (0..nr as u32).collect();
    fn find(p: &mut [u32], mut x: u32) -> u32 {
        while p[x as usize] != x {
            p[x as usize] = p[p[x as usize] as usize];
            x = p[x as usize];
        }
        x
    }
    for &(u, v) in a.iter().chain(b.iter().filter(|e| !a.contains(e))) {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru == rv {
            return false;
        }
        parent[ru as usize] = rv;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::{fattree::fat_tree, slimfly::slim_fly};

    #[test]
    fn layers_are_forests() {
        let t = slim_fly(5, 1).unwrap();
        let s = build_spain_layers(&t.graph, &SpainConfig::default());
        for g in &s.layers.graphs {
            // Forest: m ≤ n − components. Cheap check: m < n.
            assert!(g.m() < g.n(), "layer has a cycle: m={} n={}", g.m(), g.n());
        }
        assert!(s.vlans_before_merge >= t.num_routers());
    }

    #[test]
    fn merging_reduces_layer_count() {
        let t = slim_fly(5, 1).unwrap();
        let s = build_spain_layers(&t.graph, &SpainConfig::default());
        assert!(s.layers.len() < s.vlans_before_merge);
        // §VI-B: SPAIN needs at least O(k') layers to cover the links.
        assert!(s.layers.len() >= 3);
    }

    #[test]
    fn spain_on_fat_tree_covers_all_pairs() {
        // SPAIN was designed for Clos: every pair must be connected in at
        // least one layer.
        let t = fat_tree(4, 1);
        let s = build_spain_layers(&t.graph, &SpainConfig::default());
        let rt = crate::fwd::RoutingTables::build(&t.graph, &s.layers);
        for a in 0..t.num_routers() as u32 {
            for b in 0..t.num_routers() as u32 {
                if a != b {
                    assert!(
                        (0..rt.n_layers()).any(|l| rt.reachable(l, a, b)),
                        "({a},{b}) unreachable in every SPAIN layer"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let t = slim_fly(5, 1).unwrap();
        let a = build_spain_layers(&t.graph, &SpainConfig::default());
        let b = build_spain_layers(&t.graph, &SpainConfig::default());
        assert_eq!(a.layers.len(), b.layers.len());
    }
}
