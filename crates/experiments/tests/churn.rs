//! Acceptance test for the `churn` experiment: on miniature SF and FT3
//! instances, FatPaths layered routing sustains strictly higher
//! completed-flow goodput than flow-hash ECMP over minimal paths
//! through a rolling reboot — the paper's robustness contrast (§V-G)
//! in its time-varying, node-level form. Fault schedules derive from
//! cell coordinates, so these numbers are bit-stable at any thread
//! count.

use fatpaths_experiments::churn::churn_matrix_on;
use fatpaths_net::topo::Topology;

fn mini_topos() -> Vec<Topology> {
    vec![
        fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(),
        fatpaths_net::topo::fattree::fat_tree(6, 1),
    ]
}

/// One parsed CSV row of the churn artifact.
#[derive(Debug)]
struct Row {
    topology: String,
    scheme: String,
    fraction: f64,
    stagger_us: u64,
    rebooted: u64,
    flows: usize,
    host_dead: usize,
    completed: usize,
    on_time: usize,
    stranded: usize,
    goodput: f64,
}

fn parse(csv: &str) -> Vec<Row> {
    csv.lines()
        .skip(1)
        .map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            Row {
                topology: c[0].into(),
                scheme: c[1].into(),
                fraction: c[2].parse().unwrap(),
                stagger_us: c[3].parse().unwrap(),
                rebooted: c[4].parse().unwrap(),
                flows: c[5].parse().unwrap(),
                host_dead: c[6].parse().unwrap(),
                completed: c[7].parse().unwrap(),
                on_time: c[8].parse().unwrap(),
                stranded: c[9].parse().unwrap(),
                goodput: c[10].parse().unwrap(),
            }
        })
        .collect()
}

#[test]
fn fatpaths_sustains_higher_goodput_through_rolling_reboot() {
    let fractions = [0.1];
    let staggers = [500u64, 2_000];
    let (csv, _summary) = churn_matrix_on(mini_topos(), &fractions, &staggers);
    let rows = parse(&csv);
    let find = |topo: &str, scheme: &str, stagger: u64| -> &Row {
        rows.iter()
            .find(|r| r.topology == topo && r.scheme == scheme && r.stagger_us == stagger)
            .unwrap_or_else(|| panic!("missing row {topo}/{scheme}/{stagger}"))
    };
    for topo in ["SF", "FT3"] {
        for &stagger in &staggers {
            let fat = find(topo, "fatpaths", stagger);
            let ecmp = find(topo, "ecmp", stagger);
            eprintln!(
                "{topo} stagger={stagger}us: fatpaths {}/{} on-time {} ({} host_dead, \
                 {} stranded, {:.3} Gb/s) vs ecmp {}/{} on-time {} ({} host_dead, \
                 {} stranded, {:.3} Gb/s)",
                fat.completed,
                fat.flows,
                fat.on_time,
                fat.host_dead,
                fat.stranded,
                fat.goodput,
                ecmp.completed,
                ecmp.flows,
                ecmp.on_time,
                ecmp.host_dead,
                ecmp.stranded,
                ecmp.goodput
            );
            // Sanity: the schedule really rebooted routers and the
            // workload really lost hosts to them.
            assert!(fat.rebooted > 0, "{topo}: no routers rebooted");
            assert_eq!(fat.fraction, 0.1);
            // host_dead is a property of the fault plan, not the scheme.
            assert_eq!(fat.host_dead, ecmp.host_dead, "{topo}/{stagger}");
            assert_eq!(fat.flows, ecmp.flows, "{topo}/{stagger}");
            // Accounting closes: host_dead + completed + stranded = flows.
            for r in [fat, ecmp] {
                assert_eq!(
                    r.host_dead + r.completed + r.stranded,
                    r.flows,
                    "{topo}/{}/{stagger}: accounting leak",
                    r.scheme
                );
            }
            // The acceptance criterion: layered routing sustains higher
            // completed-flow goodput than ECMP-minimal through the roll.
            assert!(
                fat.goodput > ecmp.goodput,
                "{topo} stagger={stagger}: fatpaths {} !> ecmp {}",
                fat.goodput,
                ecmp.goodput
            );
        }
    }
}

#[test]
fn detection_and_batched_repair_lift_ecmp_goodput() {
    let (csv, _summary) = churn_matrix_on(mini_topos(), &[0.1], &[500]);
    let rows = parse(&csv);
    for topo in ["SF", "FT3"] {
        let stuck = rows
            .iter()
            .find(|r| r.topology == topo && r.scheme == "ecmp")
            .unwrap();
        let repaired = rows
            .iter()
            .find(|r| r.topology == topo && r.scheme == "ecmp_rep")
            .unwrap();
        assert!(
            repaired.completed >= stuck.completed,
            "{topo}: repair lowered ECMP completions ({} < {})",
            repaired.completed,
            stuck.completed
        );
        assert!(
            repaired.goodput > stuck.goodput,
            "{topo}: repair did not lift ECMP goodput ({} !> {})",
            repaired.goodput,
            stuck.goodput
        );
    }
}
