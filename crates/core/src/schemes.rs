//! The routing-scheme feature matrix of Table I.
//!
//! Encodes, as data, the paper's comparison of path-diversity support
//! across routing schemes and architectures, and renders it as a text
//! table (the `table1` experiment harness).

/// Degree of support for one path-diversity aspect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Support {
    /// Full support (👍 in the paper).
    Yes,
    /// Limited support.
    Limited,
    /// No support.
    No,
    /// Offered only for resilience, not performance (superscript R).
    Resilience,
    /// Offered only within spanning trees (superscript S).
    SpanningTree,
    /// Limited *and* spanning-tree-restricted.
    LimitedSpanningTree,
}

impl Support {
    /// Compact cell text.
    pub fn cell(self) -> &'static str {
        match self {
            Support::Yes => "Y",
            Support::Limited => "~",
            Support::No => "-",
            Support::Resilience => "R",
            Support::SpanningTree => "S",
            Support::LimitedSpanningTree => "~S",
        }
    }
}

/// One row of Table I.
#[derive(Clone, Copy, Debug)]
pub struct SchemeRow {
    /// Scheme name (and reference, where it disambiguates).
    pub name: &'static str,
    /// TCP/IP stack layer(s).
    pub stack_layer: &'static str,
    /// Arbitrary shortest paths.
    pub sp: Support,
    /// Non-minimal paths.
    pub np: Support,
    /// Simultaneous minimal + non-minimal.
    pub sm: Support,
    /// Multi-pathing between two hosts.
    pub mp: Support,
    /// Disjoint paths.
    pub dp: Support,
    /// Adaptive load balancing.
    pub alb: Support,
    /// Arbitrary topology.
    pub at: Support,
}

/// The full Table I dataset.
pub fn table_i() -> Vec<SchemeRow> {
    use Support::*;
    vec![
        SchemeRow {
            name: "Valiant (VLB)",
            stack_layer: "L2-L3",
            sp: No,
            np: Yes,
            sm: No,
            mp: No,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "Spanning Tree (ST)",
            stack_layer: "L2",
            sp: SpanningTree,
            np: SpanningTree,
            sm: No,
            mp: No,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "Simple routing (OSPF etc.)",
            stack_layer: "L2,L3",
            sp: Yes,
            np: No,
            sm: No,
            mp: No,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "UGAL",
            stack_layer: "L2-L3",
            sp: Yes,
            np: Yes,
            sm: No,
            mp: No,
            dp: No,
            alb: Yes,
            at: Yes,
        },
        SchemeRow {
            name: "ECMP / OMP / Pkt. Spraying",
            stack_layer: "L2,L3",
            sp: Yes,
            np: No,
            sm: No,
            mp: Yes,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "DCell",
            stack_layer: "L2-L3",
            sp: No,
            np: Yes,
            sm: No,
            mp: No,
            dp: No,
            alb: No,
            at: No,
        },
        SchemeRow {
            name: "Monsoon",
            stack_layer: "L2,L3",
            sp: Limited,
            np: Limited,
            sm: No,
            mp: Limited,
            dp: No,
            alb: No,
            at: No,
        },
        SchemeRow {
            name: "PortLand",
            stack_layer: "L2",
            sp: Yes,
            np: No,
            sm: No,
            mp: Yes,
            dp: No,
            alb: No,
            at: No,
        },
        SchemeRow {
            name: "DRILL / LocalFlow / DRB",
            stack_layer: "L2",
            sp: Yes,
            np: No,
            sm: No,
            mp: Yes,
            dp: No,
            alb: Yes,
            at: No,
        },
        SchemeRow {
            name: "VL2",
            stack_layer: "L3",
            sp: Yes,
            np: No,
            sm: No,
            mp: Yes,
            dp: No,
            alb: Limited,
            at: No,
        },
        SchemeRow {
            name: "Al-Fares et al.",
            stack_layer: "L2-L3",
            sp: Yes,
            np: No,
            sm: No,
            mp: Yes,
            dp: Yes,
            alb: Yes,
            at: No,
        },
        SchemeRow {
            name: "BCube",
            stack_layer: "L2-L3",
            sp: Yes,
            np: No,
            sm: No,
            mp: Yes,
            dp: Yes,
            alb: No,
            at: No,
        },
        SchemeRow {
            name: "SEATTLE et al.",
            stack_layer: "L2",
            sp: Yes,
            np: No,
            sm: No,
            mp: No,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "VIRO",
            stack_layer: "L2-L3",
            sp: SpanningTree,
            np: SpanningTree,
            sm: No,
            mp: No,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "Ethernet on Air",
            stack_layer: "L2",
            sp: SpanningTree,
            np: SpanningTree,
            sm: No,
            mp: Resilience,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "PAST",
            stack_layer: "L2",
            sp: LimitedSpanningTree,
            np: LimitedSpanningTree,
            sm: No,
            mp: No,
            dp: Yes,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "MLAG / MC-LAG",
            stack_layer: "L2",
            sp: Limited,
            np: Limited,
            sm: No,
            mp: Resilience,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "MOOSE",
            stack_layer: "L2",
            sp: Yes,
            np: No,
            sm: No,
            mp: No,
            dp: Limited,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "MPA",
            stack_layer: "L3",
            sp: Yes,
            np: Yes,
            sm: No,
            mp: Yes,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "AMP",
            stack_layer: "L3",
            sp: Yes,
            np: No,
            sm: No,
            mp: Yes,
            dp: No,
            alb: Yes,
            at: Yes,
        },
        SchemeRow {
            name: "MSTP / GOE / Viking",
            stack_layer: "L2",
            sp: SpanningTree,
            np: SpanningTree,
            sm: No,
            mp: Yes,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "SPB / TRILL / Shadow MACs",
            stack_layer: "L2",
            sp: Yes,
            np: Resilience,
            sm: No,
            mp: Yes,
            dp: No,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "SPAIN",
            stack_layer: "L2",
            sp: LimitedSpanningTree,
            np: LimitedSpanningTree,
            sm: LimitedSpanningTree,
            mp: Yes,
            dp: Yes,
            alb: No,
            at: Yes,
        },
        SchemeRow {
            name: "XPath",
            stack_layer: "L3",
            sp: Yes,
            np: Limited,
            sm: Limited,
            mp: Yes,
            dp: Yes,
            alb: Limited,
            at: Yes,
        },
        SchemeRow {
            name: "Source routing (Jyothi et al.)",
            stack_layer: "L3",
            sp: Yes,
            np: Resilience,
            sm: Resilience,
            mp: No,
            dp: No,
            alb: No,
            at: Limited,
        },
        SchemeRow {
            name: "FatPaths [this work]",
            stack_layer: "L2-L3",
            sp: Yes,
            np: Yes,
            sm: Yes,
            mp: Yes,
            dp: Yes,
            alb: Yes,
            at: Yes,
        },
    ]
}

/// Renders Table I as fixed-width text.
pub fn render_table_i() -> String {
    let rows = table_i();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34}{:<8}{:>4}{:>4}{:>4}{:>4}{:>4}{:>5}{:>4}\n",
        "Scheme", "Layer", "SP", "NP", "SM", "MP", "DP", "ALB", "AT"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34}{:<8}{:>4}{:>4}{:>4}{:>4}{:>4}{:>5}{:>4}\n",
            r.name,
            r.stack_layer,
            r.sp.cell(),
            r.np.cell(),
            r.sm.cell(),
            r.mp.cell(),
            r.dp.cell(),
            r.alb.cell(),
            r.at.cell()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatpaths_is_the_only_full_row() {
        let rows = table_i();
        let full = |r: &SchemeRow| {
            [r.sp, r.np, r.sm, r.mp, r.dp, r.alb, r.at]
                .iter()
                .all(|&s| s == Support::Yes)
        };
        let full_rows: Vec<&str> = rows.iter().filter(|r| full(r)).map(|r| r.name).collect();
        assert_eq!(full_rows, vec!["FatPaths [this work]"]);
    }

    #[test]
    fn table_contains_all_baselines_we_implement() {
        let rows = table_i();
        for needle in ["SPAIN", "PAST", "ECMP", "Valiant"] {
            assert!(
                rows.iter().any(|r| r.name.contains(needle)),
                "{needle} missing from Table I"
            );
        }
    }

    #[test]
    fn render_is_aligned() {
        let text = render_table_i();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), table_i().len() + 1);
        // All lines the same width (fixed columns).
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }
}
