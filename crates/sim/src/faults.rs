//! Shared fault state: one writer, copy-on-write epochs, K readers.
//!
//! Every fault the simulator models derives *statically* from the
//! [`FaultPlan`]: which links die or revive when is fixed before the
//! first packet moves, and the repair overlay the control plane installs
//! after each change is a pure function of the down set at that instant.
//! The pre-PR-8 engine exploited this by **replicating** the fault state
//! into every shard and replaying the identical event sequence K times —
//! simple, but O(K · network) memory: at a million endpoints the
//! per-port down bitmask, dead-router vector, and repair overlay
//! dominated the per-shard footprint and became the scale wall.
//!
//! This module replaces the replicas with a single [`FaultWriter`]:
//!
//! * statics and timed events accumulate in the writer exactly as they
//!   used to accumulate per shard;
//! * [`FaultWriter::finalize`] replays the timed events once, *before*
//!   the run, through the same canonical [`EventQueue`] ordering the
//!   shards use, and publishes one [`FaultEpoch`] snapshot per event —
//!   copy-on-write: components untouched by an event share the previous
//!   epoch's `Arc`, so a `RepairTick` clones no bitmask and a `LinkDown`
//!   clones no repair overlay;
//! * shards keep the fault events in their queues (window boundaries,
//!   `end_time`, and horizon truncation are unchanged) but their
//!   handlers collapse to an epoch-cursor bump — the hot-path reads go
//!   through the shared snapshot for the shard's current epoch.
//!
//! Determinism: the writer pops its queue in the same canonical
//! `(time, class, key)` order every shard pops the same events embedded
//! in its traffic stream, and the `RepairTick` burst-coalescing dedup
//! (`repair_at`) is replicated bit-for-bit on both sides, so epoch `i`
//! is exactly the state after the `i`-th fault event on every shard.

use crate::config::SimConfig;
use crate::engine::{EvKind, EventQueue, TimePs};
use crate::metrics::RepairTickRecord;
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::RoutingScheme;
use fatpaths_net::fault::FaultPlan;
use fatpaths_net::topo::Topology;
use std::sync::Arc;

/// One immutable snapshot of the fault state, shared read-only by every
/// shard. `Arc` components are copy-on-write across epochs: an epoch
/// re-shares every component the event that produced it did not touch.
#[derive(Clone, Debug)]
pub(crate) struct FaultEpoch {
    /// Down-state bitmask, one bit per *global* output port.
    pub port_down: Arc<Vec<u64>>,
    /// Ports currently down (fast-path gate: zero skips the bitmask).
    pub down_count: u32,
    pub router_dead: Arc<Vec<bool>>,
    /// Dead routers (fast-path gate: zero skips the vector).
    pub dead_router_count: u32,
    /// Scheme-computed repaired rows, sealed to the interval form
    /// (empty until a detection fires).
    pub repair: Arc<RouteRepair>,
}

impl FaultEpoch {
    #[inline]
    pub(crate) fn is_port_down(&self, port: u32) -> bool {
        self.port_down[port as usize / 64] >> (port % 64) & 1 == 1
    }

    #[inline]
    pub(crate) fn router_is_dead(&self, r: u32) -> bool {
        self.router_dead[r as usize]
    }
}

/// The replayed fault history: epoch `0` is the post-static state, epoch
/// `i > 0` the state after the `i`-th fault event (`LinkDown`/`LinkUp`/
/// `RouterDown`/`RouterUp`/`RepairTick`) in canonical order. Shards
/// index it with their local epoch cursor.
#[derive(Debug, Default)]
pub(crate) struct FaultTimeline {
    pub epochs: Vec<FaultEpoch>,
    /// One record per replayed `RepairTick`, in execution order. The
    /// driver truncates to the ticks the run actually reached (early
    /// termination can leave trailing ticks unexecuted).
    pub log: Vec<RepairTickRecord>,
}

/// The single mutable owner of the fault state: accumulates the plan,
/// replays it once at run start, publishes the epochs.
#[derive(Debug)]
pub(crate) struct FaultWriter {
    now: TimePs,
    events: EventQueue,
    port_down: Vec<u64>,
    down_count: u32,
    /// Currently-down links in canonical form (feeds route repair):
    /// links failed in their own right plus links incident to a dead
    /// router.
    down_links: Vec<(u32, u32)>,
    /// Links failed in their own right, kept apart from `down_links` so
    /// a reviving router does not resurrect an independently cut link.
    link_failed: rustc_hash::FxHashSet<(u32, u32)>,
    router_dead: Vec<bool>,
    dead_router_count: u32,
    /// Time of the currently scheduled repair pass, if any (burst
    /// coalescing: one `RepairTick` per event batch — the dedup every
    /// shard replicates).
    repair_at: Option<TimePs>,
    /// Components touched since the last published epoch.
    links_dirty: bool,
    routers_dirty: bool,
}

impl FaultWriter {
    pub(crate) fn new(n_ports_total: usize, n_routers: usize) -> Self {
        FaultWriter {
            now: 0,
            events: EventQueue::default(),
            port_down: vec![0u64; n_ports_total.div_ceil(64)],
            down_count: 0,
            down_links: Vec::new(),
            link_failed: rustc_hash::FxHashSet::default(),
            router_dead: vec![false; n_routers],
            dead_router_count: 0,
            repair_at: None,
            links_dirty: false,
            routers_dirty: false,
        }
    }

    /// Applies a plan's statics immediately and queues its timed events
    /// for [`FaultWriter::finalize`]. Mirrors what
    /// `Simulator::apply_fault_plan` used to do per shard, done once.
    pub(crate) fn apply_plan(&mut self, topo: &Topology, net_base: &[u32], plan: &FaultPlan) {
        for &(u, v) in plan.static_failures() {
            self.fail_link_now(topo, net_base, u, v);
        }
        for &r in plan.static_router_failures() {
            self.set_router_state(topo, net_base, r, false);
        }
        for ev in plan.events() {
            let kind = if ev.up {
                EvKind::LinkUp { u: ev.u, v: ev.v }
            } else {
                EvKind::LinkDown { u: ev.u, v: ev.v }
            };
            self.events.push(ev.at, kind);
        }
        for ev in plan.router_events() {
            let kind = if ev.up {
                EvKind::RouterUp { router: ev.router }
            } else {
                EvKind::RouterDown { router: ev.router }
            };
            self.events.push(ev.at, kind);
        }
    }

    /// Number of timed fault events still queued for replay.
    #[cfg(test)]
    pub(crate) fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// True iff router `r` is currently dead in the writer's working
    /// state (statics applied; timed events once finalized).
    pub(crate) fn router_is_dead(&self, r: u32) -> bool {
        self.router_dead[r as usize]
    }

    /// True iff link `{u, v}` is currently down — failed in its own
    /// right or incident to a dead router.
    pub(crate) fn link_is_down(&self, u: u32, v: u32) -> bool {
        self.down_links.contains(&(u.min(v), u.max(v)))
    }

    /// Schedules the control plane's reaction to a link-state change, if
    /// detection is enabled. A burst of simultaneous changes (a router
    /// death fails its whole radix at once; a maintenance window kills
    /// several routers in one timestamp) coalesces into a single
    /// `RepairTick`: the repair pass runs once per event batch, over the
    /// full down set, not once per changed link. Shards replicate this
    /// exact dedup against their own queues so their event streams stay
    /// in lockstep with the replay.
    pub(crate) fn schedule_repair(&mut self, delay: Option<TimePs>) {
        if let Some(delay) = delay {
            let at = self.now + delay;
            if self.repair_at != Some(at) {
                self.events.push(at, EvKind::RepairTick);
                self.repair_at = Some(at);
            }
        }
    }

    /// Replays every queued fault event through the canonical order and
    /// publishes the epoch timeline. Run once, at simulation start;
    /// events beyond the horizon are dropped unexecuted (the shards
    /// never reach them either).
    pub(crate) fn finalize<R: RoutingScheme + ?Sized>(
        &mut self,
        topo: &Topology,
        net_base: &[u32],
        scheme: &R,
        cfg: &SimConfig,
    ) -> FaultTimeline {
        // Statics may have fired a repair schedule before `finalize`;
        // `apply_fault_plan` handles that (shards need the same push),
        // so here the pending queue is replayed as-is.
        let mut tl = FaultTimeline::default();
        let mut repair = Arc::new(RouteRepair::none());
        self.links_dirty = true;
        self.routers_dirty = true;
        self.publish(&mut tl, &repair);
        while let Some(t) = self.events.peek_time() {
            if cfg.horizon > 0 && t > cfg.horizon {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked");
            self.now = t;
            match ev {
                EvKind::LinkDown { u, v } => {
                    self.fail_link_now(topo, net_base, u, v);
                    self.schedule_repair(cfg.detection_delay);
                }
                EvKind::LinkUp { u, v } => {
                    self.restore_link_now(topo, net_base, u, v);
                    self.schedule_repair(cfg.detection_delay);
                }
                EvKind::RouterDown { router } => {
                    self.set_router_state(topo, net_base, router, false);
                    self.schedule_repair(cfg.detection_delay);
                }
                EvKind::RouterUp { router } => {
                    self.set_router_state(topo, net_base, router, true);
                    self.schedule_repair(cfg.detection_delay);
                }
                EvKind::RepairTick => {
                    if self.repair_at == Some(self.now) {
                        self.repair_at = None;
                    }
                    let down = DownLinks::from_links(&self.down_links);
                    let mut rep = scheme.repair_routes(&topo.graph, &down);
                    rep.seal();
                    tl.log.push(RepairTickRecord {
                        at: self.now,
                        rows: rep.len() as u64,
                        fib_rows: rep.fib_rows_rewritten,
                    });
                    repair = Arc::new(rep);
                }
                other => unreachable!("non-fault event {other:?} in the fault queue"),
            }
            self.publish(&mut tl, &repair);
        }
        tl
    }

    /// Publishes the current working state as the next epoch,
    /// re-sharing every component the event did not touch.
    fn publish(&mut self, tl: &mut FaultTimeline, repair: &Arc<RouteRepair>) {
        let prev = tl.epochs.last();
        let port_down = match (self.links_dirty, prev) {
            (false, Some(p)) => p.port_down.clone(),
            _ => Arc::new(self.port_down.clone()),
        };
        let router_dead = match (self.routers_dirty, prev) {
            (false, Some(p)) => p.router_dead.clone(),
            _ => Arc::new(self.router_dead.clone()),
        };
        tl.epochs.push(FaultEpoch {
            port_down,
            down_count: self.down_count,
            router_dead,
            dead_router_count: self.dead_router_count,
            repair: repair.clone(),
        });
        self.links_dirty = false;
        self.routers_dirty = false;
    }

    // ---- the fault-state machine (moved verbatim from the per-shard
    //      replicas; semantics unchanged) --------------------------------

    /// Fails link `{u, v}` in its own right (static failure or a
    /// `LinkDown` event): recorded in `link_failed` so a later router
    /// revival does not resurrect it.
    pub(crate) fn fail_link_now(&mut self, topo: &Topology, net_base: &[u32], u: u32, v: u32) {
        self.link_failed.insert((u.min(v), u.max(v)));
        self.set_link_state(topo, net_base, u, v, false);
    }

    /// Clears link `{u, v}`'s own failure; the link comes back only if
    /// neither endpoint router is dead.
    pub(crate) fn restore_link_now(&mut self, topo: &Topology, net_base: &[u32], u: u32, v: u32) {
        self.link_failed.remove(&(u.min(v), u.max(v)));
        if !self.router_dead[u as usize] && !self.router_dead[v as usize] {
            self.set_link_state(topo, net_base, u, v, true);
        }
    }

    /// Flips router `r`'s state. Death atomically fails every incident
    /// link; revival restores exactly the incident links whose other end
    /// is alive and not independently failed. Idempotent.
    pub(crate) fn set_router_state(&mut self, topo: &Topology, net_base: &[u32], r: u32, up: bool) {
        if self.router_dead[r as usize] != up {
            return; // already in that state (dead == !up)
        }
        self.routers_dirty = true;
        if up {
            self.router_dead[r as usize] = false;
            self.dead_router_count -= 1;
            for &nb in topo.graph.neighbors(r) {
                if !self.router_dead[nb as usize]
                    && !self.link_failed.contains(&(r.min(nb), r.max(nb)))
                {
                    self.set_link_state(topo, net_base, r, nb, true);
                }
            }
        } else {
            self.router_dead[r as usize] = true;
            self.dead_router_count += 1;
            for &nb in topo.graph.neighbors(r) {
                self.set_link_state(topo, net_base, r, nb, false);
            }
        }
    }

    /// Flips the state of link `{u, v}` (both directions). Idempotent.
    pub(crate) fn set_link_state(
        &mut self,
        topo: &Topology,
        net_base: &[u32],
        u: u32,
        v: u32,
        up: bool,
    ) {
        assert!(topo.graph.has_edge(u, v), "no such link");
        let key = (u.min(v), u.max(v));
        let was_down = self.down_links.contains(&key);
        if up == was_down {
            // State actually changes.
            self.links_dirty = true;
            if up {
                self.down_links.retain(|&k| k != key);
                self.down_count -= 1;
            } else {
                self.down_links.push(key);
                self.down_count += 1;
            }
            for (a, b) in [(u, v), (v, u)] {
                let port =
                    net_base[a as usize] + topo.graph.port_of(a, b).expect("checked has_edge");
                let (w, bit) = (port as usize / 64, port % 64);
                if up {
                    self.port_down[w] &= !(1u64 << bit);
                } else {
                    self.port_down[w] |= 1u64 << bit;
                }
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn down_count(&self) -> u32 {
        self.down_count
    }

    #[cfg(test)]
    pub(crate) fn down_links(&self) -> &[(u32, u32)] {
        &self.down_links
    }
}
