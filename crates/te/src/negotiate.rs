//! The PathFinder negotiation loop over FatPaths layers.
//!
//! PathFinder routes FPGA nets through a shared wire graph by letting
//! them *negotiate*: every iteration reroutes each net along cheapest
//! paths where a wire's cost is its base cost scaled by a present
//! congestion penalty and an accumulated historic penalty, so persistent
//! conflicts price themselves out of contention. Here the "nets" are
//! the `(layer, destination)` forwarding trees of a FatPaths layer set,
//! the "wires" are network links, and the congestion signal is per-link
//! load under a concrete traffic matrix.
//!
//! The unit of negotiation is the whole tree, not a per-flow path:
//! destination-based forwarding means every router holds exactly one
//! next hop per `(layer, dst)`, and mixing rows from two different trees
//! toward the same destination can create forwarding loops. Trees are
//! therefore rebuilt wholesale each iteration — a weighted Dijkstra per
//! `(layer, dst)` on the layer subgraph — and the best iteration's trees
//! (lowest peak link load) are kept.

use fatpaths_core::fwd::{fnv1a, RoutingTables, NO_PORT};
use fatpaths_core::layers::LayerSet;
use fatpaths_core::repair::{DownLinks, RouteRepair};
use fatpaths_core::scheme::{PortSet, RoutingScheme};
use fatpaths_mcf::RouterDemand;
use fatpaths_net::graph::{Graph, RouterId};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Knobs of the negotiation loop. The defaults converge on every
/// paper-size topology class within a handful of iterations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TeConfig {
    /// Historic-cost accumulation rate: every iteration each link adds
    /// `hist_factor · max(0, load/mean − 1)` to its permanent penalty —
    /// PathFinder's `hfac`. Larger values escape oscillation faster but
    /// overshoot; `0` disables history (pure present-cost iteration).
    pub hist_factor: f64,
    /// Present-cost slope: a link currently carrying `load` costs
    /// `(1 + hist) · (1 + present_factor · load/mean)` — PathFinder's
    /// `pfac`, applied to normalized load instead of wire overuse since
    /// links have no hard signal capacity.
    pub present_factor: f64,
    /// Iteration budget. Negotiation stops early on convergence; hitting
    /// the budget is reported via [`TeScheme::converged`]` == false`.
    pub max_iterations: usize,
    /// Convergence threshold: stop when the peak link load changes by
    /// less than `epsilon` (relative) between iterations.
    pub epsilon: f64,
}

impl Default for TeConfig {
    fn default() -> Self {
        TeConfig {
            hist_factor: 0.4,
            present_factor: 0.8,
            max_iterations: 16,
            epsilon: 1e-3,
        }
    }
}

/// Forwarding tables specialized to a traffic matrix by negotiated-
/// congestion routing. Drop-in [`RoutingScheme`]: same destination-based
/// per-layer contract as the static [`RoutingTables`] it starts from, so
/// it compiles through `fatpaths-fib` and repairs through
/// [`RoutingScheme::repair_routes`] unchanged.
#[derive(Clone, Debug)]
pub struct TeScheme {
    pub(crate) nr: usize,
    /// Negotiated `tables[layer][dst * nr + src]` ports (base-graph port
    /// numbering, like the static tables).
    pub(crate) tables: Vec<Vec<u16>>,
    /// The layer subgraphs negotiation routed within.
    pub(crate) layers: LayerSet,
    /// Final negotiated per-edge cost (the price snapshot of the best
    /// iteration) — reused by repair so degraded reroutes respect the
    /// negotiated congestion picture.
    pub(crate) costs: Vec<f64>,
    /// `layer_eids[layer][router][i]` = base edge id of the layer edge to
    /// `layer.neighbors(router)[i]` — precomputed so tree builds index
    /// costs without hashing.
    pub(crate) layer_eids: Vec<Vec<Vec<u32>>>,
    /// The (sorted) traffic matrix the tables were negotiated for.
    pub(crate) demands: Vec<RouterDemand>,
    cfg: TeConfig,
    iterations: usize,
    converged: bool,
    peak: f64,
}

impl TeScheme {
    /// Runs the negotiation: starts from the static `tables` (iteration
    /// 0 scores them unchanged, so the result is never worse than the
    /// input) and iterates reroute → measure → re-price over `demands`.
    ///
    /// Deterministic for fixed inputs at any thread count: demands are
    /// sorted, load accumulation is sequential in demand order, tree
    /// rebuilds are pure functions of the iteration's price vector, and
    /// equal-cost predecessor ties break by `fnv1a(layer, src, dst)` —
    /// the same key the static build uses.
    pub fn negotiate(
        base: &Graph,
        tables: &RoutingTables,
        demands: &[RouterDemand],
        cfg: &TeConfig,
    ) -> TeScheme {
        let nr = tables.nr();
        let nl = tables.n_layers();
        let m = base.m();
        let layers = tables.layer_set().clone();
        let edge_index = base.edge_index_map();
        let eid = |u: u32, v: u32| edge_index[&(u.min(v), u.max(v))];
        let base_eids: Vec<Vec<u32>> = (0..nr as u32)
            .map(|u| base.neighbors(u).iter().map(|&v| eid(u, v)).collect())
            .collect();
        let layer_eids: Vec<Vec<Vec<u32>>> = (0..nl)
            .map(|l| {
                let lg = layers.layer(l);
                (0..nr as u32)
                    .map(|u| lg.neighbors(u).iter().map(|&v| eid(u, v)).collect())
                    .collect()
            })
            .collect();
        // Iteration 0: the static tables, copied row by row.
        let mut cur: Vec<Vec<u16>> = (0..nl)
            .map(|l| {
                let mut t = vec![NO_PORT; nr * nr];
                for dst in 0..nr as u32 {
                    for src in 0..nr as u32 {
                        if let Some(p) = tables.next_port(l, src, dst) {
                            t[dst as usize * nr + src as usize] = p;
                        }
                    }
                }
                t
            })
            .collect();
        let mut demands = demands.to_vec();
        demands.sort_by_key(|d| (d.src, d.dst));
        let total: f64 = demands.iter().map(|d| d.demand).sum();
        let mut scheme = TeScheme {
            nr,
            tables: cur.clone(),
            layers,
            costs: vec![1.0; m],
            layer_eids,
            demands,
            cfg: *cfg,
            iterations: 0,
            converged: true,
            peak: 0.0,
        };
        if total <= 0.0 || m == 0 {
            return scheme; // nothing to negotiate over
        }
        let mut hist = vec![0.0f64; m];
        let mut costs = vec![1.0f64; m];
        let mut loads = measure_loads(base, &base_eids, &cur, nr, &scheme.demands);
        let mut prev = peak_of(&loads);
        scheme.peak = prev;
        scheme.converged = false;
        for _ in 0..cfg.max_iterations {
            let mean = loads.iter().sum::<f64>() / m as f64;
            if mean <= 0.0 {
                scheme.converged = true;
                break;
            }
            for e in 0..m {
                let norm = loads[e] / mean;
                hist[e] += cfg.hist_factor * (norm - 1.0).max(0.0);
                costs[e] = (1.0 + hist[e]) * (1.0 + cfg.present_factor * norm);
            }
            scheme.iterations += 1;
            rebuild_trees(base, &scheme.layers, &scheme.layer_eids, &costs, &mut cur);
            loads = measure_loads(base, &base_eids, &cur, nr, &scheme.demands);
            let peak = peak_of(&loads);
            if peak < scheme.peak {
                scheme.peak = peak;
                scheme.tables = cur.clone();
                scheme.costs = costs.clone();
            }
            if (prev - peak).abs() <= cfg.epsilon * prev.max(f64::MIN_POSITIVE) {
                scheme.converged = true;
                break;
            }
            prev = peak;
        }
        scheme
    }

    /// Number of negotiation iterations executed (0 for an empty matrix).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// True when the loop met the [`TeConfig::epsilon`] criterion before
    /// exhausting [`TeConfig::max_iterations`].
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Peak per-link load of the kept (best) iteration under the
    /// negotiated matrix at unit demand scale — `1 / peak` is the
    /// achieved throughput the sweep reports.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The configuration the scheme was negotiated with.
    pub fn config(&self) -> &TeConfig {
        &self.cfg
    }

    /// The (sorted) traffic matrix the tables were negotiated for.
    pub fn demands(&self) -> &[RouterDemand] {
        &self.demands
    }

    /// Negotiated port at `src` toward `dst` in `layer` (`None` when the
    /// pair is unreachable within the layer, or `src == dst`).
    #[inline]
    pub fn next_port(&self, layer: usize, src: RouterId, dst: RouterId) -> Option<u16> {
        let p = self.tables[layer][dst as usize * self.nr + src as usize];
        (p != NO_PORT).then_some(p)
    }

    /// Resolves the full router path `src → dst` in `layer`, falling back
    /// to layer 0 where the sparse layer has no row (the same resolution
    /// `candidate_ports` applies). `None` if unroutable.
    pub fn path(
        &self,
        base: &Graph,
        layer: usize,
        src: RouterId,
        dst: RouterId,
    ) -> Option<Vec<RouterId>> {
        let mut path = vec![src];
        let mut at = src;
        while at != dst {
            let p = self
                .next_port(layer, at, dst)
                .or_else(|| self.next_port(0, at, dst))?;
            at = base.neighbor_at(at, p as u32);
            path.push(at);
            if path.len() > self.nr + 1 {
                return None; // defensive: negotiated trees are loop-free
            }
        }
        Some(path)
    }
}

impl RoutingScheme for TeScheme {
    fn name(&self) -> &'static str {
        "te"
    }

    fn num_layers(&self) -> usize {
        self.tables.len()
    }

    fn candidate_ports(&self, layer: u8, at_router: RouterId, dst_router: RouterId) -> PortSet {
        let l = (layer as usize).min(self.tables.len() - 1);
        match self
            .next_port(l, at_router, dst_router)
            .or_else(|| self.next_port(0, at_router, dst_router))
        {
            Some(p) => PortSet::single(p),
            None => PortSet::new(),
        }
    }

    /// Delegates to a fresh [`crate::TeController`] — one coalesced
    /// repair per tick, pricing degraded reroutes with the negotiated
    /// cost snapshot. Hold a controller across ticks to reuse its
    /// per-layer rebuild cache.
    fn repair_routes(&self, base: &Graph, down: &DownLinks) -> RouteRepair {
        crate::TeController::new(self).repair(base, down)
    }
}

/// Rebuilds every `(layer, dst)` tree under the given price vector —
/// one flat parallel pass, mirroring the static build's work division.
fn rebuild_trees(
    base: &Graph,
    layers: &LayerSet,
    layer_eids: &[Vec<Vec<u32>>],
    costs: &[f64],
    cur: &mut [Vec<u16>],
) {
    let nr = base.n();
    let rows: Vec<(usize, usize, &mut [u16])> = cur
        .iter_mut()
        .enumerate()
        .flat_map(|(l, t)| {
            t.chunks_mut(nr)
                .enumerate()
                .map(move |(dst, row)| (l, dst, row))
        })
        .collect();
    rows.into_par_iter().for_each(|(l, dst, row)| {
        row.fill(NO_PORT);
        weighted_tree(
            base,
            layers.layer(l),
            &layer_eids[l],
            costs,
            None,
            l as u32,
            dst as u32,
            row,
        );
    });
}

/// `f64` ordered by `total_cmp` so it can key the Dijkstra heap.
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Builds one negotiated `(layer, dst)` tree: Dijkstra from `dst` over
/// the layer subgraph under `costs`, then one hash-tie-broken cheapest
/// predecessor per source — the same `fnv1a(layer, src, dst)` discipline
/// as the static tables. `skip` masks down links (degraded rebuilds).
///
/// Deterministic: the heap orders by `(distance, router)` and final
/// distances are unique minima, so the pick depends only on inputs.
/// Loop-free: costs are ≥ 1, so following the chosen port strictly
/// decreases the distance-to-destination.
#[allow(clippy::too_many_arguments)]
pub(crate) fn weighted_tree(
    base: &Graph,
    lg: &Graph,
    eids: &[Vec<u32>],
    costs: &[f64],
    skip: Option<&DownLinks>,
    layer: u32,
    dst: u32,
    trow: &mut [u16],
) {
    let n = lg.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[dst as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), dst)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (i, &v) in lg.neighbors(u).iter().enumerate() {
            if skip.is_some_and(|s| s.contains(u, v)) {
                continue;
            }
            let nd = d + costs[eids[u as usize][i] as usize];
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    for src in 0..n as u32 {
        let ds = dist[src as usize];
        if src == dst || !ds.is_finite() {
            continue;
        }
        let nbs = lg.neighbors(src);
        // Candidates: neighbors whose settled distance plus the edge
        // price equals ours bit-exactly — the neighbor that relaxed us
        // always qualifies, so the set is non-empty.
        let cand = |i: usize, v: u32| {
            !skip.is_some_and(|s| s.contains(src, v))
                && dist[v as usize] + costs[eids[src as usize][i] as usize] == ds
        };
        let count = nbs.iter().enumerate().filter(|&(i, &v)| cand(i, v)).count();
        debug_assert!(count > 0);
        let key = (layer as u64) << 48 | (src as u64) << 24 | dst as u64;
        let pick = (fnv1a(key) % count as u64) as usize;
        let (_, &chosen) = nbs
            .iter()
            .enumerate()
            .filter(|&(i, &v)| cand(i, v))
            .nth(pick)
            .unwrap();
        trow[src as usize] = base
            .port_of(src, chosen)
            .expect("layer edge must exist in base graph") as u16;
    }
}

/// Per-edge load of the tree set under `demands` with equal split over
/// layers — the demand model the simulator's flowlet hashing realizes.
/// Sequential in (sorted) demand order, so float accumulation is
/// order-stable at any thread count.
fn measure_loads(
    base: &Graph,
    base_eids: &[Vec<u32>],
    tables: &[Vec<u16>],
    nr: usize,
    demands: &[RouterDemand],
) -> Vec<f64> {
    let nl = tables.len();
    let mut loads = vec![0.0f64; base.m()];
    for d in demands {
        let share = d.demand / nl as f64;
        for l in 0..nl {
            let mut at = d.src;
            let mut lcur = l;
            let mut hops = 0usize;
            while at != d.dst {
                let mut p = tables[lcur][d.dst as usize * nr + at as usize];
                if p == NO_PORT && lcur != 0 {
                    lcur = 0; // sparse layer has no row: finish on layer 0
                    p = tables[0][d.dst as usize * nr + at as usize];
                }
                if p == NO_PORT {
                    break; // disconnected pair
                }
                loads[base_eids[at as usize][p as usize] as usize] += share;
                at = base.neighbor_at(at, p as u32);
                hops += 1;
                if hops > nr {
                    break; // defensive cap; trees are loop-free
                }
            }
        }
    }
    loads
}

fn peak_of(loads: &[f64]) -> f64 {
    loads.iter().copied().fold(0.0, f64::max)
}
