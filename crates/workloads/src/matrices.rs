//! Adversarial traffic-matrix generators — the seeded source shared by
//! the TE sweep and scenario-diversity work.
//!
//! [`Pattern`](crate::patterns::Pattern) generates *structural* traffic
//! (off-diagonals, shuffles) oblivious to the topology; the matrices
//! here are *topology-aware* stress cases built on
//! `fatpaths-mcf::worstcase`'s distance-maximizing router matching:
//!
//! * [`MatrixSpec::WorstCase`] — the paper's worst-case permutation:
//!   matched router pairs at maximal distance, bidirectional endpoint
//!   flows (§VI-C / Fig. 9 machinery).
//! * [`MatrixSpec::HeavyHitter`] — the worst-case permutation with a
//!   skewed overlay: a fraction of every router's endpoints is redirected
//!   toward a few hot destination routers, creating the incast-flavored
//!   heavy hitters adaptive schemes are supposed to route around.
//!
//! Deterministic in `(topology, spec, seed)`: the only randomness is the
//! seeded matching tie-break and hotspot draw.

use fatpaths_mcf::{worst_case_flows, worst_case_router_matching};
use fatpaths_net::topo::Topology;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A topology-aware adversarial traffic matrix.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixSpec {
    /// Distance-maximizing router permutation with `intensity` scaling
    /// the per-router endpoint count (see
    /// [`fatpaths_mcf::worst_case_flows`]).
    WorstCase {
        /// Fraction of each router's endpoints that participate.
        intensity: f64,
    },
    /// [`MatrixSpec::WorstCase`] with `skew` of every router's endpoints
    /// redirected to `hotspots` hot destination routers.
    HeavyHitter {
        /// Number of hot destination routers.
        hotspots: usize,
        /// Fraction of each source router's endpoints aimed at hotspots.
        skew: f64,
    },
    /// Synchronized incast: a few seeded target endpoints (one per
    /// distinct router) each receive `fan_in` concurrent flows from
    /// endpoints of distinct other routers — the many-to-one microburst
    /// (partition/aggregate) that adaptive flowlet steering is supposed
    /// to absorb at the senders' first hops.
    Incast {
        /// Number of incast target endpoints.
        targets: usize,
        /// Concurrent senders per target.
        fan_in: usize,
    },
}

impl MatrixSpec {
    /// Short label used in result files.
    pub fn label(&self) -> String {
        match self {
            MatrixSpec::WorstCase { .. } => "worstcase".into(),
            MatrixSpec::HeavyHitter { hotspots, .. } => format!("hot{hotspots}"),
            MatrixSpec::Incast { fan_in, .. } => format!("incast{fan_in}"),
        }
    }
}

/// Generates the endpoint flow pairs of `spec` on `topo`. Deterministic
/// in `seed`.
pub fn matrix_flows(topo: &Topology, spec: &MatrixSpec, seed: u64) -> Vec<(u32, u32)> {
    match spec {
        MatrixSpec::WorstCase { intensity } => worst_case_flows(topo, *intensity, seed),
        MatrixSpec::HeavyHitter { hotspots, skew } => {
            heavy_hitter_flows(topo, *hotspots, *skew, seed)
        }
        MatrixSpec::Incast { targets, fan_in } => incast_flows(topo, *targets, *fan_in, seed),
    }
}

/// Seeded incast targets, each served by `fan_in` senders cycling over
/// the non-target routers (one endpoint per router first, wrapping into
/// deeper endpoints only once every router contributed).
fn incast_flows(topo: &Topology, targets: usize, fan_in: usize, seed: u64) -> Vec<(u32, u32)> {
    // Only endpoint-bearing routers participate: fat-tree aggregation
    // and core switches can neither host an incast target nor a sender.
    let mut routers: Vec<u32> = (0..topo.num_routers() as u32)
        .filter(|&r| !topo.router_endpoints(r).is_empty())
        .collect();
    let targets = targets.clamp(1, routers.len().saturating_sub(1).max(1));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f);
    routers.shuffle(&mut rng);
    let (hot, rest) = routers.split_at(targets.min(routers.len()));
    let mut out = Vec::new();
    for (ti, &tr) in hot.iter().enumerate() {
        let teps = topo.router_endpoints(tr);
        let tp = teps.len();
        if tp == 0 || rest.is_empty() {
            continue;
        }
        let dst = teps.start + (ti % tp) as u32;
        let mut placed = 0usize;
        // Offset by the target index so targets do not draw the same
        // sender routers in lockstep; bounded in case of empty routers.
        for k in ti..ti + 4 * fan_in * rest.len() {
            if placed == fan_in {
                break;
            }
            let sr = rest[k % rest.len()];
            let seps = topo.router_endpoints(sr);
            let sp = seps.len();
            if sp == 0 {
                continue;
            }
            let src = seps.start + ((k / rest.len()) % sp) as u32;
            if src != dst {
                out.push((src, dst));
                placed += 1;
            }
        }
    }
    out
}

/// Worst-case matching with a hotspot overlay: for every matched source
/// router, the first `ceil(p · skew)` endpoints send to endpoints of hot
/// routers (cycled deterministically); the rest keep their matched
/// partner. Hot routers only receive.
fn heavy_hitter_flows(topo: &Topology, hotspots: usize, skew: f64, seed: u64) -> Vec<(u32, u32)> {
    let nr = topo.num_routers();
    let hotspots = hotspots.clamp(1, nr.saturating_sub(1).max(1));
    let matching = worst_case_router_matching(&topo.graph, seed);
    let mut partner: Vec<Option<u32>> = vec![None; nr];
    for &(a, b) in &matching {
        partner[a as usize] = Some(b);
        partner[b as usize] = Some(a);
    }
    let mut routers: Vec<u32> = (0..nr as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    routers.shuffle(&mut rng);
    let hot = &routers[..hotspots];
    let mut out = Vec::new();
    for r in 0..nr as u32 {
        if hot.contains(&r) {
            continue; // hot routers only receive
        }
        let eps = topo.router_endpoints(r);
        let p = eps.len();
        let k_hot = ((p as f64 * skew).ceil() as usize).min(p);
        for (i, e) in eps.enumerate() {
            let dst_router = if i < k_hot {
                hot[(r as usize + i) % hotspots]
            } else {
                match partner[r as usize] {
                    Some(b) => b,
                    None => continue, // unmatched router: hotspot flows only
                }
            };
            let dsts = topo.router_endpoints(dst_router);
            let dp = dsts.len();
            if dp == 0 {
                continue;
            }
            let dst = dsts.start + ((r as usize + i) % dp) as u32;
            if e != dst {
                out.push((e, dst));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatpaths_net::topo::slimfly::slim_fly;

    #[test]
    fn worst_case_matches_mcf_generator() {
        let t = slim_fly(5, 2).unwrap();
        let spec = MatrixSpec::WorstCase { intensity: 0.6 };
        assert_eq!(matrix_flows(&t, &spec, 9), worst_case_flows(&t, 0.6, 9));
        assert_eq!(spec.label(), "worstcase");
    }

    #[test]
    fn heavy_hitter_is_deterministic_and_skewed() {
        let t = slim_fly(5, 2).unwrap();
        let spec = MatrixSpec::HeavyHitter {
            hotspots: 2,
            skew: 0.5,
        };
        let a = matrix_flows(&t, &spec, 4);
        let b = matrix_flows(&t, &spec, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_eq!(spec.label(), "hot2");
        // The hot routers dominate the destination distribution.
        let mut counts = vec![0usize; t.num_routers()];
        for &(_, d) in &a {
            counts[t.endpoint_router(d) as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        let hot_share: usize = sorted[..2].iter().sum();
        assert!(
            hot_share * 3 > a.len(),
            "hotspots got {hot_share}/{} flows",
            a.len()
        );
    }

    #[test]
    fn incast_converges_on_targets() {
        let t = slim_fly(5, 2).unwrap();
        let spec = MatrixSpec::Incast {
            targets: 3,
            fan_in: 8,
        };
        let a = matrix_flows(&t, &spec, 6);
        assert_eq!(a, matrix_flows(&t, &spec, 6));
        assert_eq!(a.len(), 3 * 8);
        assert_eq!(spec.label(), "incast8");
        // Exactly `targets` distinct destinations, `fan_in` flows each,
        // and every sender sits on a different router than its target.
        let mut dsts: Vec<u32> = a.iter().map(|&(_, d)| d).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), 3);
        for &(s, d) in &a {
            assert_ne!(t.endpoint_router(s), t.endpoint_router(d));
        }
        assert_ne!(matrix_flows(&t, &spec, 6), matrix_flows(&t, &spec, 7));
    }

    #[test]
    fn heavy_hitter_seed_changes_hotspots() {
        let t = slim_fly(5, 2).unwrap();
        let spec = MatrixSpec::HeavyHitter {
            hotspots: 1,
            skew: 1.0,
        };
        let a = matrix_flows(&t, &spec, 1);
        let b = matrix_flows(&t, &spec, 2);
        assert_ne!(a, b);
    }
}
