//! # fatpaths-core
//!
//! The FatPaths paper's primary contribution — **layered routing** (§V) —
//! plus every comparison routing scheme of §VI, unified behind one
//! interface:
//!
//! * [`scheme`] — the **[`RoutingScheme`] trait**:
//!   per `(layer, router, destination)` candidate-port sets plus
//!   metadata. Everything below implements it (directly or through an
//!   adapter), so the packet simulator and the analysis pipelines treat
//!   FatPaths and all its baselines interchangeably — an open scheme
//!   registry rather than a hardcoded two-way branch;
//! * [`layers`] — layer abstraction + random uniform edge sampling
//!   (Listing 1);
//! * [`interference_min`] — the path-interference-minimizing construction
//!   (Listing 2);
//! * [`fwd`] — per-layer destination-based forwarding tables σᵢ
//!   (Listing 3), `O(Nr)` entries per destination; implements
//!   [`RoutingScheme`] directly;
//! * [`repair`] — the route-repair vocabulary
//!   ([`DownLinks`],
//!   [`RouteRepair`]) behind the
//!   [`RoutingScheme::repair_routes`]
//!   link-state hook: layered tables repair affected rows incrementally,
//!   adapters rebuild from the degraded graph;
//! * [`ecmp`] — minimal multipath port sets, ECMP flow hashing, packet
//!   spraying (adapter: [`MinimalScheme`]);
//! * [`spain`], [`past`], [`ksp`] — the SPAIN, PAST and k-shortest-paths
//!   baselines (Appendix C), simulatable through
//!   [`SpainScheme`] /
//!   [`PastScheme`] /
//!   [`KspScheme`]; Valiant load balancing is
//!   [`ValiantScheme`];
//! * [`schemes`] — Table I's feature matrix as data.
//!
//! To add a new routing scheme, implement
//! [`RoutingScheme`] (and, for the fluent config
//! API, add a `SchemeSpec` variant in `fatpaths-sim`); the simulator's
//! event loop needs no changes.

pub mod ecmp;
pub mod fwd;
pub mod interference_min;
pub mod ksp;
pub mod layers;
pub mod past;
pub mod repair;
pub mod scheme;
pub mod schemes;
pub mod spain;

pub use ecmp::DistanceMatrix;
pub use fwd::{fnv1a, RoutingTables, NO_PORT};
pub use interference_min::{build_interference_min_layers, ImConfig};
pub use ksp::k_shortest_paths;
pub use layers::{build_random_layers, LayerConfig, LayerSet};
pub use past::{PastTrees, PastVariant};
pub use repair::{DownLinks, RouteRepair};
pub use scheme::{
    KspConfig, KspScheme, MinimalScheme, PastScheme, PortSet, RoutingScheme, SpainScheme,
    ValiantScheme,
};
pub use spain::{build_spain_layers, SpainConfig, SpainLayers};
