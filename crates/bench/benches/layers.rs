//! Benchmarks for the FatPaths core: layer construction (both variants)
//! and forwarding-table builds, including the ablation sweeps over ρ and n
//! that DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fatpaths_core::fwd::RoutingTables;
use fatpaths_core::interference_min::{build_interference_min_layers, ImConfig};
use fatpaths_core::layers::{build_random_layers, LayerConfig};
use fatpaths_net::topo::slimfly::slim_fly;
use std::hint::black_box;

fn bench_layer_construction(c: &mut Criterion) {
    let t = slim_fly(19, 14).unwrap();
    let mut g = c.benchmark_group("layer_construction_sf722");
    g.sample_size(10);
    for rho in [0.5, 0.8] {
        g.bench_with_input(
            BenchmarkId::new("random_n9", format!("rho{rho}")),
            &rho,
            |b, &rho| {
                b.iter(|| black_box(build_random_layers(&t.graph, &LayerConfig::new(9, rho, 1))))
            },
        );
    }
    for n in [2usize, 4, 9] {
        g.bench_with_input(
            BenchmarkId::new("random_rho06", format!("n{n}")),
            &n,
            |b, &n| {
                b.iter(|| black_box(build_random_layers(&t.graph, &LayerConfig::new(n, 0.6, 1))))
            },
        );
    }
    g.bench_function("interference_min_n4", |b| {
        b.iter(|| {
            black_box(build_interference_min_layers(
                &t.graph,
                &ImConfig {
                    n_layers: 4,
                    seed: 1,
                    ..ImConfig::default()
                },
            ))
        })
    });
    g.finish();
}

fn bench_forwarding_tables(c: &mut Criterion) {
    let t = slim_fly(19, 14).unwrap();
    let ls = build_random_layers(&t.graph, &LayerConfig::new(4, 0.6, 1));
    let mut g = c.benchmark_group("forwarding_tables");
    g.sample_size(10);
    g.bench_function("build_sf722_n4", |b| {
        b.iter(|| black_box(RoutingTables::build(&t.graph, &ls)))
    });
    let rt = RoutingTables::build(&t.graph, &ls);
    g.bench_function("path_resolution", |b| {
        b.iter(|| black_box(rt.path(&t.graph, 2, 7, 600)))
    });
    g.finish();
}

criterion_group!(benches, bench_layer_construction, bench_forwarding_tables);
criterion_main!(benches);
