//! Acceptance test for the `resilience` experiment (§V-G): on miniature
//! SF and FT3 instances, FatPaths layered routing completes strictly
//! more flows than flow-hash ECMP over minimal paths once ≥ 5% of links
//! fail and failures are never repaired — the paper's core robustness
//! contrast, pinned deterministically (fault sets derive from cell
//! coordinates, so these numbers are bit-stable at any thread count).

use fatpaths_experiments::resilience::{resilience_matrix_on, FRACTIONS};
use fatpaths_net::topo::Topology;

fn mini_topos() -> Vec<Topology> {
    vec![
        fatpaths_net::topo::slimfly::slim_fly(5, 2).unwrap(),
        fatpaths_net::topo::fattree::fat_tree(6, 1),
    ]
}

/// One parsed CSV row of the resilience artifact.
struct Row {
    topology: String,
    scheme: String,
    detect: String,
    fraction: f64,
    flows: usize,
    completed: usize,
    unreachable: usize,
}

fn parse(csv: &str) -> Vec<Row> {
    csv.lines()
        .skip(1)
        .map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            Row {
                topology: c[0].into(),
                scheme: c[1].into(),
                detect: c[2].into(),
                fraction: c[3].parse().unwrap(),
                flows: c[5].parse().unwrap(),
                completed: c[6].parse().unwrap(),
                unreachable: c[7].parse().unwrap(),
            }
        })
        .collect()
}

#[test]
fn fatpaths_completes_strictly_more_than_ecmp_under_failures() {
    let (csv, _summary) = resilience_matrix_on(mini_topos(), &FRACTIONS);
    let rows = parse(&csv);
    let find = |topo: &str, scheme: &str, detect: &str, fraction: f64| -> &Row {
        rows.iter()
            .find(|r| {
                r.topology == topo
                    && r.scheme == scheme
                    && r.detect == detect
                    && (r.fraction - fraction).abs() < 1e-9
            })
            .unwrap_or_else(|| panic!("missing row {topo}/{scheme}/{detect}/{fraction}"))
    };
    for topo in ["SF", "FT3"] {
        // Healthy network: every scheme delivers everything.
        for scheme in ["fatpaths", "ecmp"] {
            let r = find(topo, scheme, "none", 0.0);
            assert_eq!(r.completed, r.flows, "{topo}/{scheme} healthy baseline");
        }
        for fraction in [0.05, 0.10] {
            let fat = find(topo, "fatpaths", "none", fraction);
            let ecmp = find(topo, "ecmp", "none", fraction);
            // The acceptance criterion: layered routing completes
            // strictly more flows than ECMP-minimal at ≥ 5% failures.
            assert!(
                fat.completed > ecmp.completed,
                "{topo} f={fraction}: fatpaths {} !> ecmp {}",
                fat.completed,
                ecmp.completed
            );
            // End-to-end layer re-picking masks failures statistically:
            // nearly all reachable flows get through even with zero
            // control-plane help (a pair whose live layers are few can
            // miss them in the random re-pick draws within the horizon).
            assert!(
                5 * (fat.completed + fat.unreachable) >= 4 * fat.flows,
                "{topo} f={fraction}: fatpaths stranded too many reachable \
                 flows ({} + {} of {})",
                fat.completed,
                fat.unreachable,
                fat.flows
            );
            // ECMP strands reachable flows (that is the deficiency).
            assert!(
                ecmp.completed + ecmp.unreachable < ecmp.flows,
                "{topo} f={fraction}: expected ECMP to strand reachable flows"
            );
            // With detection + incremental table repair, FatPaths
            // delivers *everything* the degraded topology can: affected
            // (layer, dst) rows are repaired, and sparse layers fall
            // back to the repaired layer 0 only for disconnected pairs.
            let fat_rep = find(topo, "fatpaths", "50us", fraction);
            assert!(
                fat_rep.completed + fat_rep.unreachable >= fat_rep.flows,
                "{topo} f={fraction}: repaired fatpaths stranded reachable \
                 flows ({} + {} < {})",
                fat_rep.completed,
                fat_rep.unreachable,
                fat_rep.flows
            );
        }
    }
}

#[test]
fn detection_and_repair_lift_ecmp_completions() {
    let (csv, _summary) = resilience_matrix_on(mini_topos(), &[0.0, 0.05]);
    let rows = parse(&csv);
    for topo in ["SF", "FT3"] {
        let stuck = rows
            .iter()
            .find(|r| {
                r.topology == topo && r.scheme == "ecmp" && r.detect == "none" && r.fraction > 0.0
            })
            .unwrap();
        let repaired = rows
            .iter()
            .find(|r| {
                r.topology == topo && r.scheme == "ecmp" && r.detect == "50us" && r.fraction > 0.0
            })
            .unwrap();
        // With a detection delay, the MinimalScheme rebuild reroutes
        // around the failures: ECMP recovers everything reachable.
        assert!(
            repaired.completed > stuck.completed,
            "{topo}: repair did not lift ECMP ({} !> {})",
            repaired.completed,
            stuck.completed
        );
        assert!(
            repaired.completed + repaired.unreachable >= repaired.flows,
            "{topo}: repaired ECMP still stranded reachable flows"
        );
    }
}
