//! Per-flow records and summary statistics (§VII-A5: FCT, throughput per
//! flow, workload completion time).

use crate::engine::TimePs;

/// Outcome of one simulated flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowRecord {
    /// Payload size in bytes.
    pub size: u64,
    /// Injection time.
    pub start: TimePs,
    /// Completion time (`None` if the horizon cut it off).
    pub finish: Option<TimePs>,
    /// Retransmitted packets.
    pub retx: u32,
    /// NDP payload trims observed by this flow's receiver.
    pub trims: u32,
    /// The flow was never injected: its source or destination host sat
    /// behind a dead router at start time. Distinct from an incomplete
    /// flow (`finish = None` with `host_dead = false`), which was
    /// injected but cut off by the horizon, and from `unroutable`
    /// drops, which are the network's failure between live hosts.
    pub host_dead: bool,
    /// The flow was injected but aborted mid-transfer: an endpoint died
    /// *after* injection and the sender burned
    /// [`SimConfig::abort_on_host_death`](crate::config::SimConfig::abort_on_host_death)
    /// RTOs against the dead host. Separates "the host came back and
    /// the same transfer finished" (no abort, late `finish`) from "the
    /// transfer would have to be restarted" (abort, `finish = None`).
    /// Aborted flows stay in the eligible denominator — the connection
    /// reset is the scheme-visible outcome of the fault.
    pub aborted: bool,
}

impl FlowRecord {
    /// Flow completion time in seconds.
    pub fn fct_s(&self) -> Option<f64> {
        self.finish.map(|f| (f - self.start) as f64 / 1e12)
    }

    /// Throughput per flow in MiB/s (size / FCT) — Fig. 2's metric.
    pub fn throughput_mib_s(&self) -> Option<f64> {
        self.fct_s()
            .map(|s| self.size as f64 / (1024.0 * 1024.0) / s)
    }
}

/// One control-plane repair pass (`RepairTick`): when it ran and how
/// much state it touched — the per-event cost record the churn and
/// resilience sweeps aggregate into control-plane-work columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairTickRecord {
    /// Simulation time the repair pass executed.
    pub at: TimePs,
    /// Routing rows the recomputed overlay covers
    /// (`RouteRepair::len`).
    pub rows: u64,
    /// FIB rows a compiled scheme would push for this overlay
    /// (`RouteRepair::fib_rows_rewritten`; zero for analytic schemes).
    pub fib_rows: u64,
}

/// Execution-layer counters for one run: how many lookahead windows the
/// driver stepped, how much traffic crossed shard boundaries, and how
/// much fault state was published. Purely observational — none of it
/// feeds back into the simulation, so the determinism contract (results
/// bit-identical across shard and thread counts) is unaffected; the
/// counters themselves (except `peak_rss_kb`, a process-wide OS
/// measurement) are deterministic for a fixed shard count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunProfile {
    /// Shards the run executed with.
    pub shards: u32,
    /// Conservative-lookahead windows stepped.
    pub windows: u64,
    /// Boundary packets exchanged through the mailboxes.
    pub mailbox_msgs: u64,
    /// Wire bytes those boundary packets carried.
    pub mailbox_bytes: u64,
    /// Fault epochs published by the writer (≥ 1: the post-static
    /// snapshot counts).
    pub epochs_published: u64,
    /// Control-plane repair passes the run reached.
    pub repair_ticks: u64,
    /// Peak resident set size of the process in KiB (`VmHWM`), read at
    /// the end of the run; 0 where `/proc` is unavailable.
    pub peak_rss_kb: u64,
}

/// Best-effort reset of the process peak-RSS high-water mark: writes
/// `5` to `/proc/self/clear_refs` (Linux: reset `VmHWM` to the current
/// RSS). [`Simulator::run`](crate::Simulator::run) calls this at run
/// start so each run's [`RunProfile::peak_rss_kb`] measures *that* run
/// instead of the process-lifetime peak. Silently a no-op where the
/// file is absent or not writable (non-Linux, locked-down containers) —
/// the residual caveat there is the old behavior: only the first large
/// run in a process measures itself accurately. Even on Linux the reset
/// floor is the *current* RSS, so memory still held from earlier runs
/// (allocator caches, leaked arenas) stays in the baseline.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`), or 0
/// where `/proc/self/status` is unavailable. A high-water mark: it
/// never decreases on its own over a process lifetime — pair with
/// [`reset_peak_rss`] to scope it to a run.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Aggregate simulation result.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Per-flow outcomes, in flow order.
    pub flows: Vec<FlowRecord>,
    /// Packets dropped at tail-drop queues (TCP mode) or on down links.
    pub drops: u64,
    /// Payloads trimmed (NDP mode).
    pub trims: u64,
    /// Packets dropped because routing had no live candidate port — the
    /// destination was unreachable in the degraded network.
    pub unroutable: u64,
    /// Time the last event executed.
    pub end_time: TimePs,
    /// One record per control-plane repair pass, in execution order.
    pub repair_log: Vec<RepairTickRecord>,
    /// Execution-layer counters (windows, mailbox traffic, memory).
    pub profile: RunProfile,
}

impl SimResult {
    /// Completed flows only.
    pub fn completed(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.iter().filter(|f| f.finish.is_some())
    }

    /// Flows that were actually injected — both endpoints alive at start
    /// time. The denominator for completion accounting: `host_dead`
    /// flows are a property of the fault plan (the host is gone), not of
    /// the routing scheme under test.
    pub fn eligible(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.iter().filter(|f| !f.host_dead)
    }

    /// Flows excluded from the workload because an endpoint was behind a
    /// dead router at start time.
    pub fn host_dead(&self) -> usize {
        self.flows.iter().filter(|f| f.host_dead).count()
    }

    /// Flows aborted mid-transfer after burning the configured RTO
    /// budget against an endpoint that died post-injection.
    pub fn aborted(&self) -> usize {
        self.flows.iter().filter(|f| f.aborted).count()
    }

    /// Number of control-plane repair passes that ran.
    pub fn repair_ticks(&self) -> usize {
        self.repair_log.len()
    }

    /// Total routing rows touched across all repair passes.
    pub fn repair_rows(&self) -> u64 {
        self.repair_log.iter().map(|r| r.rows).sum()
    }

    /// Total FIB rows rewritten across all repair passes (nonzero only
    /// for FIB-compiled schemes).
    pub fn fib_rows(&self) -> u64 {
        self.repair_log.iter().map(|r| r.fib_rows).sum()
    }

    /// Fraction of eligible flows that completed (`host_dead` flows are
    /// excluded from the denominator; 1.0 when nothing was eligible).
    pub fn completion_rate(&self) -> f64 {
        let eligible = self.eligible().count();
        if eligible == 0 {
            return 1.0;
        }
        self.completed().count() as f64 / eligible as f64
    }

    /// Makespan of a bulk phase: last finish − first start.
    pub fn makespan(&self) -> Option<TimePs> {
        let first = self.flows.iter().map(|f| f.start).min()?;
        let last = self.flows.iter().filter_map(|f| f.finish).max()?;
        Some(last - first)
    }

    /// FCTs (seconds) of completed flows, optionally restricted to flows of
    /// exactly `size` bytes.
    pub fn fcts(&self, size: Option<u64>) -> Vec<f64> {
        self.completed()
            .filter(|f| size.is_none_or(|s| f.size == s))
            .filter_map(|f| f.fct_s())
            .collect()
    }
}

/// Mean of a sample (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// `pct`-th percentile by nearest-rank on a copy (0 for empty);
/// `pct` in `[0, 100]`. For the common mean/p50/p99/max bundle prefer
/// [`Summary::of`], which sorts once instead of once per percentile.
pub fn percentile(xs: &[f64], pct: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[rank(v.len(), pct)]
}

/// Nearest-rank index for `pct` in `[0, 100]` over a sorted sample of
/// `n` elements — the one formula [`percentile`] and [`Summary`] share.
fn rank(n: usize, pct: f64) -> usize {
    let idx = ((pct / 100.0) * (n as f64 - 1.0)).round() as usize;
    idx.min(n - 1)
}

/// The standard sample digest every sweep reports — computed with a
/// single sort instead of one sort per [`percentile`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Median by nearest-rank.
    pub p50: f64,
    /// 99th percentile by nearest-rank.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Digest of `xs`. Percentiles use the same nearest-rank formula as
    /// [`percentile`], so `Summary::of(xs).p99 == percentile(xs, 99.0)`
    /// exactly; the mean is summed in input order, matching [`mean`].
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Summary::default();
        }
        let mean = mean(xs);
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Summary {
            mean,
            p50: v[rank(v.len(), 50.0)],
            p99: v[rank(v.len(), 99.0)],
            max: v[v.len() - 1],
            n: v.len(),
        }
    }
}

/// [`histogram`]'s result: per-bin counts over `[lo, hi)` plus explicit
/// counts of the samples that fell outside the range — previously those
/// were dropped silently, which made a histogram over a misjudged range
/// indistinguishable from one over a sparse sample.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramResult {
    /// Per-bin counts; bin `i` covers `[lo + i·w, lo + (i+1)·w)`.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl HistogramResult {
    /// Samples that landed inside `[lo, hi)`.
    pub fn in_range(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total samples seen, out-of-range included.
    pub fn total(&self) -> u64 {
        self.in_range() + self.underflow + self.overflow
    }
}

/// Histogram with fixed-width bins over `[lo, hi)`. Out-of-range
/// samples are counted, not dropped — see [`HistogramResult`].
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> HistogramResult {
    assert!(hi > lo && bins > 0);
    let mut h = HistogramResult {
        counts: vec![0u64; bins],
        ..HistogramResult::default()
    };
    let w = (hi - lo) / bins as f64;
    for &x in xs {
        if x < lo {
            h.underflow += 1;
        } else if x >= hi {
            h.overflow += 1;
        } else {
            h.counts[((x - lo) / w) as usize] += 1;
        }
    }
    h
}

/// MPTCP connection FCTs: a connection completes when its slowest subflow
/// does. `groups` comes from `Simulator::add_mptcp_flows`; returns one FCT
/// (seconds) per connection, `None` if any subflow was cut off.
pub fn mptcp_group_fcts(result: &SimResult, groups: &[Vec<u32>]) -> Vec<Option<f64>> {
    groups
        .iter()
        .map(|g| {
            let mut worst: f64 = 0.0;
            for &fid in g {
                match result.flows[fid as usize].fct_s() {
                    Some(f) => worst = worst.max(f),
                    None => return None,
                }
            }
            Some(worst)
        })
        .collect()
}

/// Groups completed flows by size and reports
/// `(size, mean TPF, tail-1% TPF, count)` per group, ascending by size —
/// the rows of Figs. 2 and 11.
pub fn throughput_by_size(result: &SimResult) -> Vec<(u64, f64, f64, usize)> {
    use rustc_hash::FxHashMap;
    let mut groups: FxHashMap<u64, Vec<f64>> = FxHashMap::default();
    for f in result.completed() {
        if let Some(tp) = f.throughput_mib_s() {
            groups.entry(f.size).or_default().push(tp);
        }
    }
    let mut out: Vec<(u64, f64, f64, usize)> = groups
        .into_iter()
        .map(|(size, tps)| (size, mean(&tps), percentile(&tps, 1.0), tps.len()))
        .collect();
    out.sort_unstable_by_key(|&(s, ..)| s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_and_throughput() {
        let f = FlowRecord {
            size: 1 << 20,
            start: 0,
            finish: Some(1_000_000_000_000),
            retx: 0,
            trims: 0,
            host_dead: false,
            aborted: false,
        };
        assert_eq!(f.fct_s(), Some(1.0));
        assert!((f.throughput_mib_s().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 50.0), 51.0); // round(0.5·99)=50 → xs[50]
    }

    #[test]
    fn histogram_bins() {
        let xs = [0.5, 1.5, 1.6, 9.9, 10.0, -0.1];
        let h = histogram(&xs, 0.0, 10.0, 10);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.overflow, 1); // 10.0 sits outside [lo, hi)
        assert_eq!(h.underflow, 1);
        assert_eq!(h.in_range(), 4);
        assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn summary_matches_scalar_helpers() {
        let xs: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.mean, mean(&xs));
        assert_eq!(s.p50, percentile(&xs, 50.0));
        assert_eq!(s.p99, percentile(&xs, 99.0));
        assert_eq!(s.max, 100.0);
        assert_eq!(s.n, 100);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn group_by_size() {
        let mk = |size, fct_ps| FlowRecord {
            size,
            start: 0,
            finish: Some(fct_ps),
            retx: 0,
            trims: 0,
            host_dead: false,
            aborted: false,
        };
        let r = SimResult {
            flows: vec![mk(100, 1_000_000), mk(100, 2_000_000), mk(200, 1_000_000)],
            ..Default::default()
        };
        let g = throughput_by_size(&r);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, 100);
        assert_eq!(g[0].3, 2);
    }

    #[test]
    fn completion_rate() {
        let r = SimResult {
            flows: vec![
                FlowRecord {
                    size: 1,
                    start: 0,
                    finish: Some(5),
                    retx: 0,
                    trims: 0,
                    host_dead: false,
                    aborted: false,
                },
                FlowRecord {
                    size: 1,
                    start: 0,
                    finish: None,
                    retx: 0,
                    trims: 0,
                    host_dead: false,
                    aborted: false,
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.completion_rate(), 0.5);
    }

    #[test]
    fn host_dead_flows_leave_the_denominator() {
        let mk = |finish, host_dead| FlowRecord {
            size: 1,
            start: 0,
            finish,
            retx: 0,
            trims: 0,
            host_dead,
            aborted: false,
        };
        let r = SimResult {
            // One completed, one stranded, two host-dead.
            flows: vec![
                mk(Some(5), false),
                mk(None, false),
                mk(None, true),
                mk(None, true),
            ],
            ..Default::default()
        };
        assert_eq!(r.host_dead(), 2);
        assert_eq!(r.eligible().count(), 2);
        assert_eq!(r.completion_rate(), 0.5);
        // All flows host-dead: nothing was eligible, nothing failed.
        let all_dead = SimResult {
            flows: vec![mk(None, true)],
            ..Default::default()
        };
        assert_eq!(all_dead.completion_rate(), 1.0);
    }
}
